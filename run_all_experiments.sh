#!/bin/bash
# Regenerate every figure/table (one parallel sweep) plus the ablations;
# tee into results/. The sweep's CSVs are byte-identical for any --jobs
# value, so this script is free to use every core.
set -u
cd "$(dirname "$0")"
mkdir -p results

echo "=== all figures/tables ($(date +%H:%M:%S), $(nproc) jobs) ==="
cargo run --release -q -p fs-bench --bin all -- --jobs "$(nproc)" \
    > results/all_figures_full.txt 2> >(tail -1 >&2)
echo "    exit $?"

for bin in ablation_arrays ablation_rankings ablation_resize; do
    echo "=== $bin ($(date +%H:%M:%S)) ==="
    cargo run --release -q -p fs-bench --bin "$bin" > "results/${bin}_full.txt" 2>&1
    echo "    exit $?"
done
echo "ALL DONE $(date +%H:%M:%S)"
