#!/bin/bash
# Regenerate every figure/table and the ablations; tee into results/.
set -u
cd "$(dirname "$0")"
mkdir -p results
for bin in table2 fig1 fig3 fig4 fig7 fig2 fig5 fig6 fig8 ablation_arrays ablation_rankings ablation_resize; do
    echo "=== $bin ($(date +%H:%M:%S)) ==="
    cargo run --release -q -p fs-bench --bin "$bin" > "results/${bin}_full.txt" 2>&1
    echo "    exit $?"
done
echo "ALL DONE $(date +%H:%M:%S)"
