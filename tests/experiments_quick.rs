//! Integration smoke tests for the parallel experiment runner: every
//! figure/table experiment must produce a non-empty CSV with its
//! declared header, and the output must be byte-identical regardless of
//! the worker count. Runs at `Smoke` scale so the whole sweep finishes
//! in seconds even in debug builds.

use fs_bench::experiments;
use fs_bench::Scale;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fs_bench_experiments_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn all_experiments_produce_csvs_with_expected_headers() {
    let dir = scratch_dir("smoke");
    let exps = experiments::all();
    let summaries = experiments::run_experiments(&exps, Scale::Smoke, 4, &dir, false, false);
    assert_eq!(summaries.len(), exps.len(), "one summary per experiment");

    for (exp, summary) in exps.iter().zip(&summaries) {
        let path = dir.join(format!("{}.csv", exp.csv));
        assert_eq!(summary.csv_path, path);
        let contents = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
        let mut lines = contents.lines();
        assert_eq!(
            lines.next(),
            Some(exp.header.join(",").as_str()),
            "{}: header row",
            exp.name
        );
        let data_rows = lines.count();
        assert!(data_rows > 0, "{}: CSV has data rows", exp.name);
        assert_eq!(data_rows, summary.rows, "{}: summary row count", exp.name);
        assert!(summary.jobs > 0, "{}: at least one sweep point", exp.name);
        // Every cell count matches the header width.
        for line in contents.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                exp.header.len(),
                "{}: row width matches header: {line}",
                exp.name
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// FNV-1a 64-bit, the same zero-dependency hash used elsewhere in the
/// workspace — stable across platforms and Rust versions, unlike
/// `DefaultHasher`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Pinned FNV-1a hashes of every experiment CSV at Smoke scale. These
/// freeze simulator *behavior*: any change to victim selection, stats,
/// or trace generation shows up as a hash mismatch. Regenerate (only
/// when an intentional behavior change lands) with:
///
/// ```text
/// cargo test -q --test experiments_quick -- --ignored --nocapture print_golden_smoke_hashes
/// ```
const GOLDEN_SMOKE_HASHES: &[(&str, u64)] = &[
    ("table2_config", 0xe95ad8dea13cb3b5),
    ("fig1_dilemma", 0x773d0d908c123ba2),
    ("fig3_scaling_factors", 0x58bbd7a6e11d50d6),
    ("fig2_pf_degradation", 0x16f867b28cf7d6a8),
    ("fig4_assoc_cdf", 0xc1d723e646d1632e),
    ("fig5_size_deviation", 0xd6503da5ff853acf),
    ("fig5_size_deviation_timeseries", 0xc09ed79bccef6a1e),
    ("fig6_assoc_sensitivity", 0xafe04e1ddeb5d284),
    ("fig7_qos", 0x2789b2f7240c1054),
    ("fig8_sensitivity", 0x29ff0202575112b9),
    ("fig8_sensitivity_timeseries", 0xf5203f357d6baec2),
];

/// Every CSV a Smoke sweep leaves in `dir`, sorted by file stem.
fn csv_stems(dir: &std::path::Path) -> Vec<String> {
    let mut stems: Vec<String> = fs::read_dir(dir)
        .expect("read results dir")
        .filter_map(|e| {
            let path = e.ok()?.path();
            (path.extension()? == "csv")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    stems.sort();
    stems
}

#[test]
fn smoke_csvs_match_golden_hashes() {
    let dir = scratch_dir("golden");
    let exps = experiments::all();
    experiments::run_experiments(&exps, Scale::Smoke, 2, &dir, false, false);
    let golden: HashMap<&str, u64> = GOLDEN_SMOKE_HASHES.iter().copied().collect();
    let stems = csv_stems(&dir);
    assert_eq!(
        stems,
        {
            let mut want: Vec<String> = golden.keys().map(|s| s.to_string()).collect();
            want.sort();
            want
        },
        "the sweep's CSV file set (main + timeseries) matches the pinned set"
    );
    let mut mismatches = Vec::new();
    for stem in &stems {
        let bytes = fs::read(dir.join(format!("{stem}.csv"))).expect("csv");
        let got = fnv1a64(&bytes);
        let want = golden[stem.as_str()];
        if got != want {
            mismatches.push(format!("{stem}: {got:#018x} != pinned {want:#018x}"));
        }
    }
    let _ = fs::remove_dir_all(&dir);
    assert!(
        mismatches.is_empty(),
        "CSV content changed — if intentional, re-pin via the ignored \
         print_golden_smoke_hashes test:\n{}",
        mismatches.join("\n")
    );
}

/// Regeneration helper for `GOLDEN_SMOKE_HASHES`; run with `--ignored
/// --nocapture` and paste the output over the table above.
#[test]
#[ignore = "prints replacement golden hashes; not a check"]
fn print_golden_smoke_hashes() {
    let dir = scratch_dir("golden_print");
    let exps = experiments::all();
    experiments::run_experiments(&exps, Scale::Smoke, 2, &dir, false, false);
    for stem in csv_stems(&dir) {
        let bytes = fs::read(dir.join(format!("{stem}.csv"))).expect("csv");
        println!("    (\"{stem}\", {:#018x}),", fnv1a64(&bytes));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn csv_bytes_and_stats_are_thread_count_invariant() {
    let exps = experiments::all();
    let run = |tag: &str, jobs: usize| {
        let dir = scratch_dir(tag);
        let summaries = experiments::run_experiments(&exps, Scale::Smoke, jobs, &dir, false, false);
        // Every file the sweep wrote, timeseries siblings included.
        let csvs: HashMap<String, Vec<u8>> = csv_stems(&dir)
            .into_iter()
            .map(|stem| {
                let bytes = fs::read(dir.join(format!("{stem}.csv"))).expect("csv");
                (stem, bytes)
            })
            .collect();
        // Aggregate stats, minus wall time (the only nondeterministic field).
        let stats: Vec<(&str, usize, usize, Option<f64>)> = summaries
            .iter()
            .map(|s| (s.name, s.jobs, s.rows, s.mean_miss_rate))
            .collect();
        let _ = fs::remove_dir_all(&dir);
        (csvs, stats)
    };

    let (csv_1, stats_1) = run("serial", 1);
    let (csv_8, stats_8) = run("parallel", 8);

    assert_eq!(
        stats_1, stats_8,
        "aggregate stats identical across thread counts"
    );
    assert_eq!(
        csv_1.keys().collect::<std::collections::BTreeSet<_>>(),
        csv_8.keys().collect::<std::collections::BTreeSet<_>>(),
        "same CSV file set across thread counts"
    );
    for (name, bytes) in &csv_1 {
        assert_eq!(
            Some(bytes),
            csv_8.get(name),
            "{name}.csv byte-identical across thread counts"
        );
    }
}
