//! Integration smoke tests for the parallel experiment runner: every
//! figure/table experiment must produce a non-empty CSV with its
//! declared header, and the output must be byte-identical regardless of
//! the worker count. Runs at `Smoke` scale so the whole sweep finishes
//! in seconds even in debug builds.

use fs_bench::experiments;
use fs_bench::Scale;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fs_bench_experiments_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn all_experiments_produce_csvs_with_expected_headers() {
    let dir = scratch_dir("smoke");
    let exps = experiments::all();
    let summaries = experiments::run_experiments(&exps, Scale::Smoke, 4, &dir, false, false);
    assert_eq!(summaries.len(), exps.len(), "one summary per experiment");

    for (exp, summary) in exps.iter().zip(&summaries) {
        let path = dir.join(format!("{}.csv", exp.csv));
        assert_eq!(summary.csv_path, path);
        let contents = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
        let mut lines = contents.lines();
        assert_eq!(
            lines.next(),
            Some(exp.header.join(",").as_str()),
            "{}: header row",
            exp.name
        );
        let data_rows = lines.count();
        assert!(data_rows > 0, "{}: CSV has data rows", exp.name);
        assert_eq!(data_rows, summary.rows, "{}: summary row count", exp.name);
        assert!(summary.jobs > 0, "{}: at least one sweep point", exp.name);
        // Every cell count matches the header width.
        for line in contents.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                exp.header.len(),
                "{}: row width matches header: {line}",
                exp.name
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn csv_bytes_and_stats_are_thread_count_invariant() {
    let exps = experiments::all();
    let run = |tag: &str, jobs: usize| {
        let dir = scratch_dir(tag);
        let summaries = experiments::run_experiments(&exps, Scale::Smoke, jobs, &dir, false, false);
        let csvs: HashMap<String, Vec<u8>> = exps
            .iter()
            .map(|e| {
                let bytes = fs::read(dir.join(format!("{}.csv", e.csv))).expect("csv");
                (e.csv.to_string(), bytes)
            })
            .collect();
        // Aggregate stats, minus wall time (the only nondeterministic field).
        let stats: Vec<(&str, usize, usize, Option<f64>)> = summaries
            .iter()
            .map(|s| (s.name, s.jobs, s.rows, s.mean_miss_rate))
            .collect();
        let _ = fs::remove_dir_all(&dir);
        (csvs, stats)
    };

    let (csv_1, stats_1) = run("serial", 1);
    let (csv_8, stats_8) = run("parallel", 8);

    assert_eq!(
        stats_1, stats_8,
        "aggregate stats identical across thread counts"
    );
    for (name, bytes) in &csv_1 {
        assert_eq!(
            Some(bytes),
            csv_8.get(name),
            "{name}.csv byte-identical across thread counts"
        );
    }
}
