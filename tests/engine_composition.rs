//! Cross-crate composition tests: the engine driving every array kind,
//! demotion/promotion flows through the Vantage scheme, and end-to-end
//! determinism.

use futility_scaling::prelude::*;

/// Vantage's demotions and promotions flow through the engine: lines
/// retagged into the unmanaged pool are counted there, and a hit
/// promotes them back to the accessor.
#[test]
fn vantage_demotion_and_promotion_through_engine() {
    let lines = 512;
    let mut cache = PartitionedCache::new(
        Box::new(RandomCandidates::new(lines, 16, 3)),
        Box::new(ExactLru::new()),
        Box::new(Vantage::default_config()),
        2,
    );
    // 90% managed split between two partitions.
    cache.set_targets(&[230, 230]);
    // Fill with P0 lines it will keep re-touching, then stream P1 hard:
    // P1 exceeds its target, its tail gets demoted to the unmanaged pool.
    for i in 0..200u64 {
        cache.access(PartitionId(0), i, AccessMeta::default());
    }
    for i in 0..40_000u64 {
        cache.access(PartitionId(1), 10_000 + i, AccessMeta::default());
        if i % 8 == 0 {
            // Keep P0 warm so its lines are not the futile ones.
            cache.access(PartitionId(0), i % 200, AccessMeta::default());
        }
    }
    let state = cache.state();
    assert_eq!(state.pools(), 3, "two partitions + unmanaged pool");
    assert!(
        state.actual[2] > 0,
        "demotions populated the unmanaged pool ({:?})",
        state.actual
    );
    assert_eq!(
        state.actual.iter().sum::<usize>(),
        cache.array().occupied(),
        "pool accounting stays consistent through retags"
    );
    // Promotion: hit a line that currently sits in the unmanaged pool.
    let unmanaged_before = state.actual[2];
    let promoted = (10_000..50_000u64)
        .rev()
        .find(|addr| {
            cache
                .array()
                .lookup(*addr)
                .and_then(|s| cache.array().occupant(s))
                .is_some_and(|o| o.part == PartitionId(2))
        })
        .expect("some line is unmanaged");
    cache.access(PartitionId(1), promoted, AccessMeta::default());
    let state = cache.state();
    assert_eq!(
        state.actual[2],
        unmanaged_before - 1,
        "hit promoted the line"
    );
    let slot = cache.array().lookup(promoted).expect("still resident");
    assert_eq!(
        cache.array().occupant(slot).expect("occupied").part,
        PartitionId(1)
    );
}

/// The engine composes with the relocating zcache: lines stay findable
/// across relocation chains and partition accounting holds.
#[test]
fn zcache_composition_preserves_invariants() {
    let mut cache = PartitionedCache::new(
        Box::new(ZCache::new(64, 4, 16, 9)),
        Box::new(ExactLru::new()),
        Box::new(FsFeedback::default_config()),
        2,
    );
    cache.set_targets(&[160, 96]);
    for i in 0..30_000u64 {
        let p = PartitionId((i % 2) as u16);
        let addr = (i * 17) % 600 + p.index() as u64 * 100_000;
        cache.access(p, addr, AccessMeta::default());
    }
    assert_eq!(cache.array().occupied(), 256);
    assert_eq!(cache.state().actual.iter().sum::<usize>(), 256);
    let occ0 = cache.state().actual[0] as f64;
    assert!(
        (occ0 / 160.0 - 1.0).abs() < 0.2,
        "FS holds targets on a zcache too (actual {occ0})"
    );
    assert!(cache.stats().total_hits() > 0);
}

/// Identical seeds produce bit-identical simulations (no ambient
/// randomness anywhere in the stack).
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(1_024, 16, 77)),
            Box::new(CoarseLru::new()),
            Box::new(FsFeedback::default_config()),
            2,
        );
        cache.set_targets(&[700, 324]);
        let traces = vec![
            benchmark("mcf")
                .expect("profile")
                .generate_with_base(50_000, 5, 0),
            benchmark("lbm")
                .expect("profile")
                .generate_with_base(50_000, 6, 1 << 40),
        ];
        InterleavedDriver::new(traces).run(&mut cache, 0.0);
        (
            cache.state().actual.clone(),
            cache.stats().total_hits(),
            cache.stats().total_misses(),
            cache.stats().partition(PartitionId(0)).evict_futility_sum,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert!((a.3 - b.3).abs() < 1e-12);
}

/// The skew-associative array and every ranking compose with every
/// scheme without violating occupancy accounting (randomized smoke).
#[test]
fn all_schemes_and_rankings_compose_on_skew_array() {
    for scheme_name in [
        "pf",
        "cqvp",
        "prism",
        "vantage",
        "fs-feedback",
        "unpartitioned",
    ] {
        for ranking_name in ["lru", "coarse-lru", "lfu", "opt", "random", "rrip"] {
            let scheme: Box<dyn PartitionScheme> = match scheme_name {
                "fs-feedback" => Box::new(FsFeedback::default_config()),
                other => baselines::by_name(other).expect("known scheme"),
            };
            let mut cache = PartitionedCache::new(
                Box::new(SkewAssociative::new(32, 8, 4)),
                ranking::by_name(ranking_name).expect("known ranking"),
                scheme,
                3,
            );
            for i in 0..5_000u64 {
                let p = PartitionId((i % 3) as u16);
                let addr = (i * 1_103) % 700 + p.index() as u64 * 10_000;
                // OPT needs a next-use hint; a synthetic one is fine for
                // the smoke test.
                cache.access(p, addr, AccessMeta::with_next_use(i + 100));
            }
            assert_eq!(
                cache.state().actual.iter().sum::<usize>(),
                cache.array().occupied(),
                "{scheme_name}/{ranking_name} broke accounting"
            );
            assert!(
                cache.stats().total_hits() + cache.stats().total_misses() == 5_000,
                "{scheme_name}/{ranking_name} lost accesses"
            );
        }
    }
}

/// Way-partitioning through the engine: sizes converge to the way
/// proportions and lines never migrate across way boundaries.
#[test]
fn way_partitioning_through_engine() {
    let ways = 16;
    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::new(64, ways, LineHash::new(21))),
        Box::new(ExactLru::new()),
        Box::new(WayPartitioned::new(ways)),
        2,
    );
    let total = 64 * ways;
    cache.set_targets(&[total * 3 / 4, total / 4]);
    for i in 0..80_000u64 {
        let p = PartitionId((i % 2) as u16);
        let addr = (i * 7_919) % 3_000 + p.index() as u64 * 100_000;
        cache.access(p, addr, AccessMeta::default());
    }
    let actual = &cache.state().actual;
    // 12 of 16 ways → 768 lines; 4 ways → 256 lines.
    assert!(
        (actual[0] as f64 / 768.0 - 1.0).abs() < 0.05,
        "P0 fills its 12 ways (actual {})",
        actual[0]
    );
    assert!(
        (actual[1] as f64 / 256.0 - 1.0).abs() < 0.05,
        "P1 fills its 4 ways (actual {})",
        actual[1]
    );
}
