//! Checkpoint/resume replay proofs: a snapshot taken between accesses
//! is a *complete* description of the simulation. For every array ×
//! ranking × scheme combination, running K accesses, snapshotting, and
//! continuing for M more must be observably identical to restoring the
//! snapshot into a freshly built engine and feeding it the same M
//! accesses — the same outcome sequence, statistics, partition state,
//! recorder samples, and (the strongest form) the same final snapshot
//! bytes. The property test adds arbitrary checkpoint positions, a
//! mid-stream statistics reset (the warmup boundary, which checkpoints
//! may straddle on either side) and a batched-replay arm.

use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, tk_assert_eq, vec_of, CaseResult};

const PARTS: usize = 3;
const ARRAYS: usize = 5;
const RANKINGS: usize = 9;
const SCHEMES: usize = 7;

/// Mirror of the batch-equivalence grid, extended with way-partitioning
/// (scheme index 6), which is only meaningful on the set-associative
/// array (index 0) whose slot layout is `set * ways + way`.
fn build(array_idx: usize, ranking_idx: usize, scheme_idx: usize, seed: u64) -> PartitionedCache {
    let array: Box<dyn cachesim::array::CacheArray> = match array_idx {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(seed))),
        1 => Box::new(SkewAssociative::new(8, 4, seed)),
        2 => Box::new(ZCache::new(8, 4, 8, seed)),
        3 => Box::new(RandomCandidates::new(32, 4, seed)),
        _ => Box::new(FullyAssociative::new(32)),
    };
    // 0..6 the sweep registry, 6 the naive shadow reference, 7..9 the
    // bucket backends with their own FSSN sections (DESIGN.md §14).
    let ranking: Box<dyn FutilityRanking> = match ranking_idx {
        i if i < 6 => ranking::by_name(ranking::ALL_RANKINGS[i]).unwrap(),
        6 => cachesim::naive_lru(),
        7 => ranking::by_name("coarse-lru-bucket").unwrap(),
        _ => ranking::by_name("rrip-bucket").unwrap(),
    };
    let scheme: Box<dyn PartitionScheme> = match scheme_idx {
        0 => cachesim::evict_max_futility(),
        1 => Box::new(Pf),
        2 => Box::new(Cqvp),
        3 => Box::new(FsFeedback::default_config()),
        4 => Box::new(Vantage::default_config()),
        5 => Box::new(Prism::default_config()),
        _ => Box::new(WayPartitioned::new(4)),
    };
    let mut cache = PartitionedCache::new(array, ranking, scheme, PARTS);
    cache.set_targets(&[16, 10, 6]);
    cache
}

fn stream(seed: u64, n: usize) -> Vec<(PartitionId, u64, AccessMeta)> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let part = PartitionId(((x >> 16) % PARTS as u64) as u16);
            // Bounded universe with cross-partition overlap so foreign
            // hits occur and the rankings keep recycling state.
            let base = (x >> 33) % 160;
            let addr = if base.is_multiple_of(5) {
                base
            } else {
                base + part.0 as u64 * 1_000
            };
            (part, addr, AccessMeta::default())
        })
        .collect()
}

fn feed(cache: &mut PartitionedCache, accesses: &[(PartitionId, u64, AccessMeta)]) {
    for &(p, a, m) in accesses {
        cache.access(p, a, m);
    }
}

/// Every grid combination: run K, snapshot, run M — the resumed engine
/// must match outcome-for-outcome and byte-for-byte, with a live
/// recorder on both sides.
#[test]
fn snapshot_resume_replays_every_combination() {
    const K: usize = 800;
    const M: usize = 500;
    let mut failures = Vec::new();
    for array_idx in 0..ARRAYS {
        for ranking_idx in 0..RANKINGS {
            for scheme_idx in 0..SCHEMES {
                if scheme_idx == 6 && array_idx != 0 {
                    continue; // way-partitioning needs set*ways+way slots
                }
                let accesses = stream(0xFEED ^ (array_idx * 64 + ranking_idx * 8) as u64, K + M);
                let name = format!("array {array_idx}/ranking {ranking_idx}/scheme {scheme_idx}");

                let mut full = build(array_idx, ranking_idx, scheme_idx, 7);
                full.attach_timeseries(32, 64);
                feed(&mut full, &accesses[..K]);
                let snap = full.snapshot();
                let suffix: Vec<AccessOutcome> = accesses[K..]
                    .iter()
                    .map(|&(p, a, m)| full.access(p, a, m))
                    .collect();

                let mut resumed = build(array_idx, ranking_idx, scheme_idx, 7);
                resumed.attach_timeseries(32, 64);
                if let Err(e) = resumed.restore(&snap) {
                    failures.push(format!("{name}: restore failed: {e}"));
                    continue;
                }
                let replayed: Vec<AccessOutcome> = accesses[K..]
                    .iter()
                    .map(|&(p, a, m)| resumed.access(p, a, m))
                    .collect();

                if suffix != replayed {
                    failures.push(format!("{name}: outcome sequences diverge"));
                    continue;
                }
                if full.state().actual != resumed.state().actual {
                    failures.push(format!("{name}: occupancies diverge"));
                    continue;
                }
                if full.timeseries().unwrap().rows() != resumed.timeseries().unwrap().rows() {
                    failures.push(format!("{name}: recorder rows diverge"));
                    continue;
                }
                if full.snapshot() != resumed.snapshot() {
                    failures.push(format!("{name}: final snapshot bytes diverge"));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "resume replay diverged:\n{}",
        failures.join("\n")
    );
}

/// Generated case: an access stream, percentage positions for the
/// checkpoint and the warmup reset (so checkpoints land on either side
/// of the reset), a block-size schedule for the batched arm, and one
/// grid combination.
type ResumeCase = (
    (Vec<(u16, u64)>, usize, usize),
    (usize, usize, usize),
    Vec<usize>,
);

fn prop_resume_matches_uninterrupted(
    ((raw, k_pct, w_pct), (array_idx, ranking_idx, scheme_idx), block_sizes): &ResumeCase,
) -> CaseResult {
    let scheme_idx = if *scheme_idx == 6 && *array_idx != 0 {
        0 // way-partitioning only fits the set-associative layout
    } else {
        *scheme_idx
    };
    let accesses: Vec<(PartitionId, u64, AccessMeta)> = raw
        .iter()
        .map(|&(p, base)| {
            let part = PartitionId(p % PARTS as u16);
            let addr = if base.is_multiple_of(5) {
                base
            } else {
                base + part.0 as u64 * 1_000
            };
            (part, addr, AccessMeta::default())
        })
        .collect();
    let k = accesses.len() * k_pct / 100;
    let warmup = accesses.len() * w_pct / 100;

    // Uninterrupted reference: reset stats at `warmup`, snapshot at `k`.
    let mut full = build(*array_idx, *ranking_idx, scheme_idx, 7);
    full.attach_timeseries(16, 32);
    let mut snap = None;
    for (i, &(p, a, m)) in accesses.iter().enumerate() {
        if i == warmup {
            full.stats_mut().reset();
        }
        if i == k {
            snap = Some(full.snapshot());
        }
        full.access(p, a, m);
    }
    if warmup == accesses.len() {
        full.stats_mut().reset();
    }
    let snap = snap.unwrap_or_else(|| full.snapshot());

    // Scalar resume arm: restore, then replay the tail (including the
    // reset when the checkpoint straddles it).
    let mut resumed = build(*array_idx, *ranking_idx, scheme_idx, 7);
    resumed.attach_timeseries(16, 32);
    resumed
        .restore(&snap)
        .map_err(|e| testkit::Failure::fail(format!("restore failed: {e}")))?;
    for (i, &(p, a, m)) in accesses.iter().enumerate().skip(k) {
        if i == warmup {
            resumed.stats_mut().reset();
        }
        resumed.access(p, a, m);
    }
    // A trailing reset (warmup == len) precedes the fallback snapshot in
    // the reference arm, so it only belongs to the tail when k < len.
    if warmup == accesses.len() && k < accesses.len() {
        resumed.stats_mut().reset();
    }
    tk_assert_eq!(full.snapshot(), resumed.snapshot());

    // Batched resume arm: the tail replayed through `access_batch` in
    // arbitrary blocks must land on the same bytes (no reset inside a
    // block: the engine flushes deferred hits only at block ends).
    let mut batched = build(*array_idx, *ranking_idx, scheme_idx, 7);
    batched.attach_timeseries(16, 32);
    batched
        .restore(&snap)
        .map_err(|e| testkit::Failure::fail(format!("restore failed: {e}")))?;
    let mut block = AccessBlock::new();
    let mut sizes = block_sizes.iter().cycle();
    let mut i = k;
    while i < accesses.len() {
        if i == warmup {
            batched.stats_mut().reset();
        }
        let mut take = (*sizes.next().unwrap()).clamp(1, accesses.len() - i);
        // Blocks never straddle the reset point.
        if i < warmup {
            take = take.min(warmup - i);
        }
        block.clear();
        for &(p, a, m) in &accesses[i..i + take] {
            block.push(p, a, m);
        }
        batched.access_batch(&block);
        i += take;
    }
    if warmup == accesses.len() && k < accesses.len() {
        batched.stats_mut().reset();
    }
    tk_assert_eq!(full.snapshot(), batched.snapshot());
    tk_assert!(
        full.timeseries().unwrap().rows() == batched.timeseries().unwrap().rows(),
        "batched-resume recorder rows diverge"
    );
    Ok(())
}

#[test]
fn resume_replay_property() {
    check(
        "resume_replay_property",
        &(
            (
                vec_of(
                    (int_range(0u16..PARTS as u16 * 3), int_range(0u64..160)),
                    40..400,
                ),
                int_range(0usize..101),
                int_range(0usize..101),
            ),
            (
                int_range(0usize..ARRAYS),
                int_range(0usize..RANKINGS),
                int_range(0usize..SCHEMES),
            ),
            vec_of(int_range(1usize..24), 1..6),
        ),
        prop_resume_matches_uninterrupted,
    );
}

/// The pinned straddling case: checkpoint strictly before the warmup
/// reset, so the resumed engine replays the reset itself.
#[test]
fn checkpoint_before_warmup_reset_replays() {
    let raw: Vec<(u16, u64)> = (0..200u64)
        .map(|i| ((i % 9) as u16, (i * 13) % 160))
        .collect();
    let case: ResumeCase = ((raw, 25, 75), (3, 0, 3), vec![7]);
    prop_resume_matches_uninterrupted(&case).unwrap();
}

/// Sharded arm: a `ShardedEngine::snapshot()` (the versioned container
/// of per-shard images) is a complete description of the whole sharded
/// simulation. Run K blocks, snapshot, continue for M more — the
/// restored replica must match hit-for-hit, with identical merged
/// statistics, merged recorder rows, and final snapshot bytes.
#[test]
fn sharded_snapshot_resume_replays() {
    // Both coarse-LRU backends: the treap default and the two-level
    // bucket structure, whose nested per-shard images carry the
    // "coarse-lru-bucket" FSSN section.
    for backend in ["treap", "bucket"] {
        sharded_snapshot_resume_replays_with(backend);
    }
}

fn sharded_snapshot_resume_replays_with(backend: &str) {
    const SHARDS: usize = 4;
    const SH_PARTS: usize = 4;
    let build_sharded = || {
        let mut e = fs_bench::sharded_engine_for_backend(
            "fs-feedback",
            1024,
            SHARDS,
            SH_PARTS,
            0xBEEF,
            backend,
        );
        e.attach_timeseries(64, 256);
        e
    };
    let block_of = |seed: u64, n: usize| {
        let mut b = AccessBlock::new();
        let mut x = seed | 1;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.push(
                PartitionId(((x >> 16) % SH_PARTS as u64) as u16),
                (x >> 33) % 4_096,
                AccessMeta::default(),
            );
        }
        b
    };

    let mut donor = build_sharded();
    for k in 0..6u64 {
        donor.access_batch(&block_of(k * 7 + 1, 700));
    }
    let snap = donor.snapshot();

    let mut resumed = build_sharded();
    resumed.restore(&snap).expect("restore sharded snapshot");

    for m in 0..4u64 {
        let b = block_of(m * 11 + 100, 500);
        assert_eq!(
            donor.access_batch(&b),
            resumed.access_batch(&b),
            "block {m}"
        );
    }
    let (ds, rs) = (donor.merged_stats(), resumed.merged_stats());
    assert_eq!(ds.total_hits(), rs.total_hits());
    assert_eq!(ds.total_misses(), rs.total_misses());
    for p in 0..SH_PARTS {
        let id = PartitionId(p as u16);
        assert_eq!(ds.size_mad(id).to_bits(), rs.size_mad(id).to_bits());
    }
    assert_eq!(donor.merged_recorder_rows(), resumed.merged_recorder_rows());
    assert_eq!(donor.snapshot(), resumed.snapshot());

    // Composition checks: wrong shard count and wrong partition count
    // both fail descriptively, and never panic.
    let err =
        fs_bench::sharded_engine_for_backend("fs-feedback", 1024, 2, SH_PARTS, 0xBEEF, backend)
            .restore(&snap)
            .expect_err("shard-count mismatch must be rejected");
    assert!(format!("{err}").contains("shards"), "{err}");
    let err = fs_bench::sharded_engine_for_backend("fs-feedback", 1024, SHARDS, 8, 0xBEEF, backend)
        .restore(&snap)
        .expect_err("partition-count mismatch must be rejected");
    assert!(format!("{err}").contains("partitions"), "{err}");
    // Backend mismatch: a snapshot from one coarse-LRU backend must not
    // restore into the other (different FSSN ranking sections).
    let other = if backend == "treap" {
        "bucket"
    } else {
        "treap"
    };
    fs_bench::sharded_engine_for_backend("fs-feedback", 1024, SHARDS, SH_PARTS, 0xBEEF, other)
        .restore(&snap)
        .expect_err("backend mismatch must be rejected");
}
