//! End-to-end QoS tests on the timing simulator: the Figure 7 claim in
//! miniature — enforcement protects latency-sensitive subjects from
//! streaming bullies, and better enforcement means better subject IPC.

use futility_scaling::prelude::*;
use simqos::static_qos;

const TOTAL_LINES: usize = 16_384; // 1MB
const SUBJECTS: usize = 2;
const SUBJECT_LINES: usize = 4_096; // 256KB each
const CORES: usize = 6;

fn subject_metrics(scheme: Box<dyn PartitionScheme>) -> (f64, f64) {
    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(
            TOTAL_LINES,
            16,
            LineHash::new(4),
        )),
        Box::new(CoarseLru::new()),
        scheme,
        CORES,
    );
    cache.set_targets(&static_qos(
        TOTAL_LINES,
        SUBJECTS,
        SUBJECT_LINES,
        CORES - SUBJECTS,
    ));
    let gromacs = benchmark("gromacs").expect("profile");
    let lbm = benchmark("lbm").expect("profile");
    let threads: Vec<Thread> = (0..CORES)
        .map(|i| {
            let profile = if i < SUBJECTS { &gromacs } else { &lbm };
            Thread::new(
                format!("t{i}"),
                profile.generate_with_base(120_000, 60 + i as u64, (i as u64) << 40),
            )
        })
        .collect();
    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    let result = sys.run(0.3);
    let ipc = (0..SUBJECTS).map(|i| result.threads[i].ipc()).sum::<f64>() / SUBJECTS as f64;
    let occ = (0..SUBJECTS)
        .map(|i| sys.cache().stats().avg_occupancy(PartitionId(i as u16)) / SUBJECT_LINES as f64)
        .sum::<f64>()
        / SUBJECTS as f64;
    (ipc, occ)
}

#[test]
fn fs_protects_subjects_from_streaming_bullies() {
    let (fs_ipc, fs_occ) = subject_metrics(Box::new(FsFeedback::default_config()));
    let (shared_ipc, shared_occ) =
        subject_metrics(Box::new(cachesim::scheme_api::EvictMaxFutility));
    assert!(
        fs_occ > shared_occ + 0.2,
        "FS occupancy {fs_occ:.3} should dominate unregulated {shared_occ:.3}"
    );
    assert!(
        fs_ipc > shared_ipc * 1.02,
        "isolation must pay off: FS {fs_ipc:.4} vs shared {shared_ipc:.4}"
    );
}

#[test]
fn fullassoc_bounds_every_realizable_scheme() {
    // The ideal cannot lose to the realizable schemes (modest slack for
    // simulation noise and LRU quirks).
    let mut cache = PartitionedCache::new(
        Box::new(FullyAssociative::new(TOTAL_LINES)),
        Box::new(CoarseLru::new()),
        Box::new(FullAssocIdeal),
        CORES,
    );
    cache.set_targets(&static_qos(
        TOTAL_LINES,
        SUBJECTS,
        SUBJECT_LINES,
        CORES - SUBJECTS,
    ));
    let gromacs = benchmark("gromacs").expect("profile");
    let lbm = benchmark("lbm").expect("profile");
    let threads: Vec<Thread> = (0..CORES)
        .map(|i| {
            let profile = if i < SUBJECTS { &gromacs } else { &lbm };
            Thread::new(
                format!("t{i}"),
                profile.generate_with_base(120_000, 60 + i as u64, (i as u64) << 40),
            )
        })
        .collect();
    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    let result = sys.run(0.3);
    let ideal_ipc = (0..SUBJECTS).map(|i| result.threads[i].ipc()).sum::<f64>() / SUBJECTS as f64;
    let (fs_ipc, _) = subject_metrics(Box::new(FsFeedback::default_config()));
    assert!(
        ideal_ipc >= fs_ipc * 0.97,
        "ideal {ideal_ipc:.4} should bound FS {fs_ipc:.4}"
    );
}

#[test]
fn weighted_speedup_accounts_interference() {
    // Weighted speedup of co-running threads must be below N (they
    // share cache and memory bandwidth) but above 0.
    let solo_ipc = |name: &str, base: u64| -> f64 {
        let cache = PartitionedCache::new(
            Box::new(SetAssociative::with_lines(
                TOTAL_LINES,
                16,
                LineHash::new(4),
            )),
            Box::new(CoarseLru::new()),
            cachesim::evict_max_futility(),
            1,
        );
        let trace =
            benchmark(name)
                .expect("profile")
                .generate_with_base(60_000, 60 + base, base << 40);
        let mut sys = System::new(
            SystemConfig::micro2014(),
            cache,
            vec![Thread::new(name, trace)],
        );
        sys.run(0.3).threads[0].ipc()
    };
    let alone = [solo_ipc("gromacs", 0), solo_ipc("lbm", 1)];

    let cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(
            TOTAL_LINES,
            16,
            LineHash::new(4),
        )),
        Box::new(CoarseLru::new()),
        cachesim::evict_max_futility(),
        2,
    );
    let mut sys = System::new(
        SystemConfig::micro2014(),
        cache,
        vec![
            Thread::new(
                "gromacs",
                benchmark("gromacs")
                    .expect("profile")
                    .generate_with_base(60_000, 60, 0),
            ),
            Thread::new(
                "lbm",
                benchmark("lbm")
                    .expect("profile")
                    .generate_with_base(60_000, 61, 1 << 40),
            ),
        ],
    );
    let r = sys.run(0.3);
    let shared: Vec<f64> = r.threads.iter().map(|t| t.ipc()).collect();
    let ws = simqos::weighted_speedup(&shared, &alone);
    assert!(ws > 0.5 && ws <= 2.0 + 1e-9, "weighted speedup {ws}");
    // The subject suffers from sharing; enforcement is what Figure 7
    // quantifies.
    assert!(shared[0] <= alone[0] * 1.001);
}
