//! Snapshot decoding is total: *any* damaged input — truncated at an
//! arbitrary offset, any single bit flipped, or a format-version bump —
//! must make `restore` return a descriptive [`SnapshotError`], never
//! panic, and never silently accept the state. Failures replay exactly
//! via `TESTKIT_SEED` (the harness prints the seed with the shrunk
//! counterexample).

use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, CaseResult};

const PARTS: usize = 3;

fn build(combo: usize, seed: u64) -> PartitionedCache {
    let array: Box<dyn cachesim::array::CacheArray> = match combo % 3 {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(seed))),
        1 => Box::new(ZCache::new(8, 4, 8, seed)),
        _ => Box::new(RandomCandidates::new(32, 4, seed)),
    };
    let ranking: Box<dyn FutilityRanking> =
        ranking::by_name(ranking::ALL_RANKINGS[combo % 6]).unwrap();
    let scheme: Box<dyn PartitionScheme> = match combo % 4 {
        0 => Box::new(FsFeedback::default_config()),
        1 => Box::new(Vantage::default_config()),
        2 => Box::new(Prism::default_config()),
        _ => cachesim::evict_max_futility(),
    };
    let mut cache = PartitionedCache::new(array, ranking, scheme, PARTS);
    cache.set_targets(&[16, 10, 6]);
    cache
}

fn driven_snapshot(combo: usize) -> (PartitionedCache, Vec<u8>) {
    let mut cache = build(combo, 7);
    let mut x = 0x5EED_u64 | 1;
    for _ in 0..400 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let part = PartitionId(((x >> 16) % PARTS as u64) as u16);
        cache.access(part, (x >> 33) % 160, AccessMeta::default());
    }
    let snap = cache.snapshot();
    (cache, snap)
}

/// Generated case: a composition, a damage kind, and where to damage.
type CorruptionCase = ((usize, usize), (usize, usize));

fn prop_damaged_snapshot_is_rejected(
    ((combo, kind), (offset, bit)): &CorruptionCase,
) -> CaseResult {
    let (mut cache, snap) = driven_snapshot(*combo);
    let mut bad = snap.clone();
    match kind % 3 {
        0 => bad.truncate(offset % snap.len()),
        1 => bad[offset % snap.len()] ^= 1 << (bit % 8),
        _ => {
            // Unsupported future format version in the header.
            bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        }
    }
    let err = match cache.restore(&bad) {
        Err(e) => e,
        Ok(()) => {
            return Err(testkit::Failure::fail(format!(
                "damaged snapshot accepted (kind {kind}, offset {offset}, bit {bit})"
            )))
        }
    };
    tk_assert!(
        !err.to_string().is_empty(),
        "error must describe the damage"
    );
    // A rejected restore leaves the engine officially unspecified, but
    // the *pristine* bytes must still restore into a fresh engine: the
    // failure is a property of the input, not lingering reader state.
    let mut fresh = build(*combo, 7);
    fresh
        .restore(&snap)
        .map_err(|e| testkit::Failure::fail(format!("pristine snapshot rejected: {e}")))?;
    Ok(())
}

#[test]
fn damaged_snapshots_are_rejected_without_panicking() {
    check(
        "damaged_snapshots_rejected",
        &(
            (int_range(0usize..24), int_range(0usize..3)),
            (int_range(0usize..1 << 20), int_range(0usize..8)),
        ),
        prop_damaged_snapshot_is_rejected,
    );
}

/// The same totality holds one container up: a checkpoint file (driver
/// state + embedded engine image) rejects truncation and bit flips
/// through `fs_bench::checkpoint::load`.
#[test]
fn damaged_checkpoint_files_are_rejected() {
    use cachesim::Trace;
    use workloads::RateControlledDriver;

    let composition = || {
        let cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(128, 8, 3)),
            cachesim::naive_lru(),
            cachesim::evict_max_futility(),
            2,
        );
        let traces = vec![
            Trace::from_addrs((0..20_000u64).map(|i| i % 500), 1),
            Trace::from_addrs((0..20_000u64).map(|i| (1 << 20) | (i % 300)), 1),
        ];
        (cache, RateControlledDriver::new(traces, vec![0.5, 0.5], 9))
    };
    let (mut cache, mut driver) = composition();
    driver.run(&mut cache, 2_000);
    let file = fs_bench::checkpoint::save("exp", "p", &driver, &cache, 2_000);

    check(
        "damaged_checkpoints_rejected",
        &(
            (int_range(0usize..2), int_range(0usize..1 << 20)),
            int_range(0usize..8),
        ),
        |&((kind, offset), bit)| {
            let mut bad = file.clone();
            match kind {
                0 => bad.truncate(offset % file.len()),
                _ => bad[offset % file.len()] ^= 1 << (bit % 8),
            }
            let (mut cache2, mut driver2) = composition();
            match fs_bench::checkpoint::load(&bad, "exp", "p", &mut driver2, &mut cache2) {
                Err(e) => {
                    tk_assert!(!e.to_string().is_empty());
                    Ok(())
                }
                Ok(_) => Err(testkit::Failure::fail(format!(
                    "damaged checkpoint accepted (kind {kind}, offset {offset}, bit {bit})"
                ))),
            }
        },
    );

    // And the pristine container still round-trips.
    let (mut cache2, mut driver2) = composition();
    let done = fs_bench::checkpoint::load(&file, "exp", "p", &mut driver2, &mut cache2).unwrap();
    assert_eq!(done, 2_000);
    assert_eq!(cache.snapshot(), cache2.snapshot());
}
