//! Integration tests of the paper's headline claims, spanning the
//! cachesim / ranking / futility-core / baselines / workloads crates.

use futility_scaling::prelude::*;

fn feed_uniform(cache: &mut PartitionedCache, parts: usize, accesses: u64, footprint: u64) {
    // splitmix64: a full-period hash so every partition sweeps its whole
    // footprint pseudo-randomly (a bare multiply can degenerate to a
    // short orbit for some partition counts).
    let mix = |mut z: u64| {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in 0..accesses {
        let part = PartitionId((i % parts as u64) as u16);
        let addr = (mix(i) % footprint) + part.index() as u64 * (1 << 40);
        cache.access(part, addr, AccessMeta::default());
    }
}

/// Section IV-D: FS enforces sizes statistically close to target even
/// with asymmetric insertion pressure.
#[test]
fn feedback_fs_holds_asymmetric_targets() {
    let lines = 8_192;
    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(lines, 16, LineHash::new(11))),
        Box::new(CoarseLru::new()),
        Box::new(FsFeedback::default_config()),
        4,
    );
    let targets = [4_096usize, 2_048, 1_024, 1_024];
    cache.set_targets(&targets);
    feed_uniform(&mut cache, 4, 600_000, 40_000);
    for (i, &t) in targets.iter().enumerate() {
        let actual = cache.state().actual[i] as f64;
        assert!(
            (actual / t as f64 - 1.0).abs() < 0.12,
            "partition {i}: actual {actual} vs target {t}"
        );
    }
}

/// Section IV-C: FS associativity is independent of the number of
/// partitions, while PF degrades toward the 0.5 floor.
#[test]
fn fs_associativity_is_independent_of_partition_count() {
    let aef = |scheme: Box<dyn PartitionScheme>, n: usize| -> f64 {
        let mut cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(1_024 * n, 16, 5)),
            Box::new(ExactLru::new()),
            scheme,
            n,
        );
        feed_uniform(&mut cache, n, 60_000 * n as u64, 4_000);
        // Average subject AEF across partitions.
        (0..n)
            .map(|i| cache.stats().partition(PartitionId(i as u16)).aef())
            .sum::<f64>()
            / n as f64
    };
    let fs2 = aef(Box::new(FsFeedback::default_config()), 2);
    let fs16 = aef(Box::new(FsFeedback::default_config()), 16);
    let pf2 = aef(Box::new(Pf), 2);
    let pf16 = aef(Box::new(Pf), 16);
    assert!(
        (fs2 - fs16).abs() < 0.08,
        "FS AEF moved with N: {fs2:.3} vs {fs16:.3}"
    );
    assert!(
        pf2 - pf16 > 0.10,
        "PF should degrade with N: {pf2:.3} vs {pf16:.3}"
    );
    assert!(fs16 > pf16 + 0.1, "FS must beat PF at high N");
}

/// Section IV-B: the partitioning bound. A partition whose insertion
/// rate is below S^R cannot be held at S by any replacement scheme;
/// just above the bound it can.
#[test]
fn partitioning_bound_is_real() {
    // R = 2 makes the bound large enough to straddle experimentally:
    // S1 = 0.7 ⇒ bound = 0.49.
    let run = |i1: f64| -> f64 {
        let lines = 4_096;
        let mut cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(lines, 2, 9)),
            Box::new(ExactLru::new()),
            Box::new(FsFeedback::default_config()),
            2,
        );
        cache.set_targets(&[(lines as f64 * 0.7) as usize, (lines as f64 * 0.3) as usize]);
        let t0 = Trace::from_addrs((0..4_000_000u64).map(|i| i % 3_000_000), 1);
        let t1 = Trace::from_addrs((0..4_000_000u64).map(|i| (1 << 40) + i % 3_000_000), 1);
        let mut driver = RateControlledDriver::new(vec![t0, t1], vec![i1, 1.0 - i1], 3);
        driver.run(&mut cache, 300_000);
        cache.state().actual[0] as f64 / lines as f64
    };
    let below_bound = run(0.30); // 0.30 < 0.49: unenforceable
    let above_bound = run(0.65); // 0.65 > 0.49: enforceable
    assert!(
        below_bound < 0.60,
        "below the bound the partition cannot reach 0.7 (got {below_bound:.3})"
    );
    assert!(
        (above_bound - 0.7).abs() < 0.05,
        "above the bound FS holds 0.7 (got {above_bound:.3})"
    );
}

/// Smooth resizing: retargeting at runtime converges without any flush.
#[test]
fn retargeting_converges_without_flush() {
    let lines = 8_192;
    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(lines, 16, LineHash::new(13))),
        Box::new(CoarseLru::new()),
        Box::new(FsFeedback::default_config()),
        2,
    );
    cache.set_targets(&[6_144, 2_048]);
    feed_uniform(&mut cache, 2, 400_000, 30_000);
    assert!((cache.state().actual[0] as f64 / 6_144.0 - 1.0).abs() < 0.12);
    // Swap the allocation. No lines are invalidated; the scheme simply
    // steers evictions until sizes flip.
    cache.set_targets(&[2_048, 6_144]);
    feed_uniform(&mut cache, 2, 400_000, 30_000);
    assert!(
        (cache.state().actual[1] as f64 / 6_144.0 - 1.0).abs() < 0.12,
        "partition 1 should have grown to the new target (actual {})",
        cache.state().actual[1]
    );
    assert_eq!(
        cache.state().actual.iter().sum::<usize>(),
        lines,
        "no lines were flushed during resizing"
    );
}

/// The analytic and feedback FS variants agree on steady-state sizing.
#[test]
fn analytic_and_feedback_fs_agree() {
    let lines = 8_192;
    let run = |scheme: Box<dyn PartitionScheme>| -> usize {
        let mut cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(lines, 16, 21)),
            Box::new(ExactLru::new()),
            scheme,
            2,
        );
        cache.set_targets(&[lines * 3 / 4, lines / 4]);
        let t0 = Trace::from_addrs((0..2_000_000u64).map(|i| i % 1_000_000), 1);
        let t1 = Trace::from_addrs((0..2_000_000u64).map(|i| (1 << 40) + i % 1_000_000), 1);
        let mut d = RateControlledDriver::new(vec![t0, t1], vec![0.5, 0.5], 17);
        d.run(&mut cache, 250_000);
        cache.state().actual[0]
    };
    let analytic = run(Box::new(
        FsAnalytic::from_rates(&[0.5, 0.5], &[0.75, 0.25], 16).expect("feasible"),
    ));
    let feedback = run(Box::new(FsFeedback::default_config()));
    let target = lines * 3 / 4;
    for (name, got) in [("analytic", analytic), ("feedback", feedback)] {
        assert!(
            (got as f64 / target as f64 - 1.0).abs() < 0.08,
            "{name} FS settled at {got} (target {target})"
        );
    }
}
