//! The batched access pipeline is an implementation detail: feeding a
//! stream through `access_batch` (in arbitrarily sized blocks) must be
//! observably identical to feeding it access by access — the same
//! `AccessOutcome` sequence, statistics, partition state and recorder
//! samples — for every array × ranking × scheme combination, including
//! blocks that straddle a mid-stream statistics reset (the warmup
//! boundary of `InterleavedDriver`).

use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, tk_assert_eq, vec_of, CaseResult};

const PARTS: usize = 3;

const ARRAYS: usize = 5;
const RANKINGS: usize = 7;
const SCHEMES: usize = 6;

fn build(array_idx: usize, ranking_idx: usize, scheme_idx: usize, seed: u64) -> PartitionedCache {
    let array: Box<dyn cachesim::array::CacheArray> = match array_idx {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(seed))),
        1 => Box::new(SkewAssociative::new(8, 4, seed)),
        2 => Box::new(ZCache::new(8, 4, 8, seed)),
        3 => Box::new(RandomCandidates::new(32, 4, seed)),
        _ => Box::new(FullyAssociative::new(32)),
    };
    let ranking: Box<dyn FutilityRanking> = if ranking_idx < 6 {
        ranking::by_name(ranking::ALL_RANKINGS[ranking_idx]).unwrap()
    } else {
        cachesim::naive_lru()
    };
    let scheme: Box<dyn PartitionScheme> = match scheme_idx {
        0 => cachesim::evict_max_futility(),
        1 => Box::new(Pf),
        2 => Box::new(Cqvp),
        3 => Box::new(FsFeedback::default_config()),
        4 => Box::new(Vantage::default_config()),
        _ => Box::new(Prism::default_config()),
    };
    // The fully-associative array needs a ranking with max_futility_line;
    // NaiveLru and the registry rankings all provide it.
    let mut cache = PartitionedCache::new(array, ranking, scheme, PARTS);
    cache.set_targets(&[16, 10, 6]);
    cache
}

/// Generated case: an access stream, a block-size schedule (cycled over
/// the stream, so block boundaries land at arbitrary offsets) and one
/// array × ranking × scheme combination.
type BatchCase = ((Vec<(u16, u64)>, Vec<usize>), (usize, usize, usize));

fn prop_batch_matches_scalar(
    ((accesses, block_sizes), (array_idx, ranking_idx, scheme_idx)): &BatchCase,
) -> CaseResult {
    let mut scalar = build(*array_idx, *ranking_idx, *scheme_idx, 7);
    let mut batched = build(*array_idx, *ranking_idx, *scheme_idx, 7);

    let stream: Vec<(PartitionId, u64, AccessMeta)> = accesses
        .iter()
        .map(|&(p, base)| {
            let part = PartitionId(p % PARTS as u16);
            // Per-partition namespaces with some cross-partition overlap
            // (every 5th address is shared) so foreign hits occur.
            let addr = if base % 5 == 0 {
                base
            } else {
                base + part.0 as u64 * 1_000
            };
            (part, addr, AccessMeta::default())
        })
        .collect();

    let expect: Vec<AccessOutcome> = stream
        .iter()
        .map(|&(p, a, m)| scalar.access(p, a, m))
        .collect();

    let mut got = Vec::new();
    let mut block = AccessBlock::new();
    let mut hits = 0u64;
    let mut bs = block_sizes.iter().cycle();
    let mut i = 0usize;
    while i < stream.len() {
        let take = (*bs.next().unwrap()).clamp(1, stream.len() - i);
        block.clear();
        for &(p, a, m) in &stream[i..i + take] {
            block.push(p, a, m);
        }
        hits += batched.access_batch_into(&block, &mut got);
        i += take;
    }

    tk_assert_eq!(got.len(), expect.len());
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        if g != e {
            return Err(testkit::Failure::fail(format!(
                "outcome {i} diverged: batched {g:?} vs scalar {e:?}"
            )));
        }
    }
    tk_assert_eq!(hits, expect.iter().filter(|o| o.is_hit()).count() as u64);
    tk_assert_eq!(batched.time(), scalar.time());
    tk_assert_eq!(batched.state().actual, scalar.state().actual);
    let (sa, sb) = (scalar.stats(), batched.stats());
    tk_assert_eq!(sa.total_hits(), sb.total_hits());
    tk_assert_eq!(sa.total_misses(), sb.total_misses());
    for p in 0..PARTS as u16 {
        let (pa, pb) = (sa.partition(PartitionId(p)), sb.partition(PartitionId(p)));
        tk_assert_eq!(pa.hits, pb.hits);
        tk_assert_eq!(pa.misses, pb.misses);
        tk_assert_eq!(pa.evictions, pb.evictions);
        tk_assert!((pa.evict_futility_sum - pb.evict_futility_sum).abs() < 1e-12);
    }
    Ok(())
}

#[test]
fn batch_matches_scalar_across_grid() {
    check(
        "batch_matches_scalar_across_grid",
        &(
            (
                vec_of((int_range(0u16..3), int_range(0u64..120)), 1..800),
                vec_of(int_range(1usize..97), 1..8),
            ),
            (
                int_range(0usize..ARRAYS),
                int_range(0usize..RANKINGS),
                int_range(0usize..SCHEMES),
            ),
        ),
        prop_batch_matches_scalar,
    );
}

/// A mid-stream `stats_mut().reset()` (the warmup boundary) interacts
/// with batching exactly as with scalar feeding when the driver flushes
/// at the reset point — post-reset statistics must match a scalar
/// replay that resets at the same access index.
#[test]
fn batch_straddles_warmup_reset() {
    for (array_idx, ranking_idx, scheme_idx) in
        [(0, 0, 3), (1, 6, 1), (2, 1, 4), (3, 5, 5), (4, 2, 0)]
    {
        let mut scalar = build(array_idx, ranking_idx, scheme_idx, 7);
        let mut batched = build(array_idx, ranking_idx, scheme_idx, 7);
        let stream: Vec<(PartitionId, u64)> = (0..1000u64)
            .map(|i| {
                (
                    PartitionId((i % PARTS as u64) as u16),
                    (i * 23) % 90 + (i % PARTS as u64) * 1_000,
                )
            })
            .collect();
        let reset_at = 487usize; // mid-block for every power-of-two block size

        for (i, &(p, a)) in stream.iter().enumerate() {
            scalar.access(p, a, AccessMeta::default());
            if i + 1 == reset_at {
                scalar.stats_mut().reset();
            }
        }

        let mut block = AccessBlock::new();
        for seg in [&stream[..reset_at], &stream[reset_at..]] {
            for chunk in seg.chunks(64) {
                block.clear();
                for &(p, a) in chunk {
                    block.push(p, a, AccessMeta::default());
                }
                batched.access_batch(&block);
            }
            if seg.len() == reset_at {
                batched.stats_mut().reset();
            }
        }

        assert_eq!(batched.time(), scalar.time());
        assert_eq!(batched.state().actual, scalar.state().actual);
        assert_eq!(batched.stats().total_hits(), scalar.stats().total_hits());
        assert_eq!(
            batched.stats().total_misses(),
            scalar.stats().total_misses()
        );
    }
}

/// With a recorder attached the batch path must produce the identical
/// sample stream (it falls back to scalar feeding internally so the
/// recorder observes every access).
#[test]
fn batch_preserves_recorder_samples() {
    let mut scalar = build(1, 0, 3, 7);
    let mut batched = build(1, 0, 3, 7);
    scalar.attach_timeseries(16, 1 << 12);
    batched.attach_timeseries(16, 1 << 12);

    let mut block = AccessBlock::new();
    for i in 0..2_000u64 {
        let p = PartitionId((i % PARTS as u64) as u16);
        let addr = (i * 37) % 120 + p.0 as u64 * 1_000;
        scalar.access(p, addr, AccessMeta::default());
        block.push(p, addr, AccessMeta::default());
        if block.len() == 97 {
            batched.access_batch(&block);
            block.clear();
        }
    }
    batched.access_batch(&block);

    let (ts_a, ts_b) = (
        scalar.timeseries().expect("recorder attached"),
        batched.timeseries().expect("recorder attached"),
    );
    assert_eq!(ts_a.len(), ts_b.len());
    for (a, b) in ts_a.samples().zip(ts_b.samples()) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.series, b.series);
        assert_eq!(a.part, b.part);
        // Bitwise comparison so NaN samples (e.g. AEF before any
        // eviction) compare equal to themselves.
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "sample diverged: {a:?} vs {b:?}"
        );
    }
}

/// The `InterleavedDriver` (now feeding blocks) must produce the same
/// statistics as a hand-rolled scalar round-robin replay with the same
/// warmup-reset rule.
#[test]
fn interleaved_driver_batched_matches_scalar_replay() {
    let traces: Vec<Trace> = (0..PARTS as u64)
        .map(|p| Trace::from_addrs((0..700u64).map(|i| (i * 13) % (60 + p * 20) + p * 1_000), 1))
        .collect();
    let warmup_fraction = 0.37;

    let mut driven = build(0, 0, 3, 7);
    InterleavedDriver::new(traces.clone()).run(&mut driven, warmup_fraction);

    // Scalar reference: the pre-batching driver loop.
    let mut scalar = build(0, 0, 3, 7);
    let mut cursors: Vec<(Vec<u64>, Vec<u64>, usize)> = traces
        .into_iter()
        .map(|t| {
            let next_use = t.annotate_next_use();
            let addrs: Vec<u64> = t.accesses.iter().map(|a| a.addr).collect();
            (addrs, next_use, 0usize)
        })
        .collect();
    let total: usize = cursors.iter().map(|c| c.0.len()).sum();
    let warmup = (total as f64 * warmup_fraction) as usize;
    let mut fed = 0usize;
    let mut reset_done = false;
    while cursors.iter().any(|c| c.2 < c.0.len()) {
        for (i, cur) in cursors.iter_mut().enumerate() {
            if cur.2 < cur.0.len() {
                let meta = AccessMeta::with_next_use(cur.1[cur.2]);
                scalar.access(PartitionId(i as u16), cur.0[cur.2], meta);
                cur.2 += 1;
                fed += 1;
            }
        }
        if !reset_done && fed >= warmup {
            scalar.stats_mut().reset();
            reset_done = true;
        }
    }

    assert_eq!(driven.time(), scalar.time());
    assert_eq!(driven.state().actual, scalar.state().actual);
    assert_eq!(driven.stats().total_hits(), scalar.stats().total_hits());
    assert_eq!(driven.stats().total_misses(), scalar.stats().total_misses());
    for p in 0..PARTS as u16 {
        let (pa, pb) = (
            scalar.stats().partition(PartitionId(p)),
            driven.stats().partition(PartitionId(p)),
        );
        assert_eq!(pa.hits, pb.hits);
        assert_eq!(pa.misses, pb.misses);
        assert_eq!(pa.evictions, pb.evictions);
    }
}
