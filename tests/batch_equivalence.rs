//! The batched access pipeline is an implementation detail: feeding a
//! stream through `access_batch` (in arbitrarily sized blocks) must be
//! observably identical to feeding it access by access — the same
//! `AccessOutcome` sequence, statistics, partition state and recorder
//! samples — for every array × ranking × scheme combination, including
//! blocks that straddle a mid-stream statistics reset (the warmup
//! boundary of `InterleavedDriver`).

use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, tk_assert_eq, vec_of, CaseResult};

const PARTS: usize = 3;

const ARRAYS: usize = 5;
const RANKINGS: usize = 9;
const SCHEMES: usize = 6;

fn build(array_idx: usize, ranking_idx: usize, scheme_idx: usize, seed: u64) -> PartitionedCache {
    let array: Box<dyn cachesim::array::CacheArray> = match array_idx {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(seed))),
        1 => Box::new(SkewAssociative::new(8, 4, seed)),
        2 => Box::new(ZCache::new(8, 4, 8, seed)),
        3 => Box::new(RandomCandidates::new(32, 4, seed)),
        _ => Box::new(FullyAssociative::new(32)),
    };
    // Indices 0..6 are the sweep registry, 6 the naive shadow reference,
    // 7..9 the treap-free bucket backends (DESIGN.md §14) whose
    // `on_hit_batch` replays hit runs last-writer-wins.
    let ranking: Box<dyn FutilityRanking> = match ranking_idx {
        i if i < 6 => ranking::by_name(ranking::ALL_RANKINGS[i]).unwrap(),
        6 => cachesim::naive_lru(),
        7 => ranking::by_name("coarse-lru-bucket").unwrap(),
        _ => ranking::by_name("rrip-bucket").unwrap(),
    };
    let scheme: Box<dyn PartitionScheme> = match scheme_idx {
        0 => cachesim::evict_max_futility(),
        1 => Box::new(Pf),
        2 => Box::new(Cqvp),
        3 => Box::new(FsFeedback::default_config()),
        4 => Box::new(Vantage::default_config()),
        _ => Box::new(Prism::default_config()),
    };
    // The fully-associative array needs a ranking with max_futility_line;
    // NaiveLru and the registry rankings all provide it.
    let mut cache = PartitionedCache::new(array, ranking, scheme, PARTS);
    cache.set_targets(&[16, 10, 6]);
    cache
}

/// Generated case: an access stream, a block-size schedule (cycled over
/// the stream, so block boundaries land at arbitrary offsets) and one
/// array × ranking × scheme combination.
type BatchCase = ((Vec<(u16, u64)>, Vec<usize>), (usize, usize, usize));

fn prop_batch_matches_scalar(
    ((accesses, block_sizes), (array_idx, ranking_idx, scheme_idx)): &BatchCase,
) -> CaseResult {
    let mut scalar = build(*array_idx, *ranking_idx, *scheme_idx, 7);
    let mut batched = build(*array_idx, *ranking_idx, *scheme_idx, 7);

    let stream: Vec<(PartitionId, u64, AccessMeta)> = accesses
        .iter()
        .map(|&(p, base)| {
            let part = PartitionId(p % PARTS as u16);
            // Per-partition namespaces with some cross-partition overlap
            // (every 5th address is shared) so foreign hits occur.
            let addr = if base % 5 == 0 {
                base
            } else {
                base + part.0 as u64 * 1_000
            };
            (part, addr, AccessMeta::default())
        })
        .collect();

    let expect: Vec<AccessOutcome> = stream
        .iter()
        .map(|&(p, a, m)| scalar.access(p, a, m))
        .collect();

    let mut got = Vec::new();
    let mut block = AccessBlock::new();
    let mut hits = 0u64;
    let mut bs = block_sizes.iter().cycle();
    let mut i = 0usize;
    while i < stream.len() {
        let take = (*bs.next().unwrap()).clamp(1, stream.len() - i);
        block.clear();
        for &(p, a, m) in &stream[i..i + take] {
            block.push(p, a, m);
        }
        hits += batched.access_batch_into(&block, &mut got);
        i += take;
    }

    tk_assert_eq!(got.len(), expect.len());
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        if g != e {
            return Err(testkit::Failure::fail(format!(
                "outcome {i} diverged: batched {g:?} vs scalar {e:?}"
            )));
        }
    }
    tk_assert_eq!(hits, expect.iter().filter(|o| o.is_hit()).count() as u64);
    tk_assert_eq!(batched.time(), scalar.time());
    tk_assert_eq!(batched.state().actual, scalar.state().actual);
    let (sa, sb) = (scalar.stats(), batched.stats());
    tk_assert_eq!(sa.total_hits(), sb.total_hits());
    tk_assert_eq!(sa.total_misses(), sb.total_misses());
    for p in 0..PARTS as u16 {
        let (pa, pb) = (sa.partition(PartitionId(p)), sb.partition(PartitionId(p)));
        tk_assert_eq!(pa.hits, pb.hits);
        tk_assert_eq!(pa.misses, pb.misses);
        tk_assert_eq!(pa.evictions, pb.evictions);
        tk_assert!((pa.evict_futility_sum - pb.evict_futility_sum).abs() < 1e-12);
    }
    Ok(())
}

#[test]
fn batch_matches_scalar_across_grid() {
    check(
        "batch_matches_scalar_across_grid",
        &(
            (
                vec_of((int_range(0u16..3), int_range(0u64..120)), 1..800),
                vec_of(int_range(1usize..97), 1..8),
            ),
            (
                int_range(0usize..ARRAYS),
                int_range(0usize..RANKINGS),
                int_range(0usize..SCHEMES),
            ),
        ),
        prop_batch_matches_scalar,
    );
}

/// A mid-stream `stats_mut().reset()` (the warmup boundary) interacts
/// with batching exactly as with scalar feeding when the driver flushes
/// at the reset point — post-reset statistics must match a scalar
/// replay that resets at the same access index.
#[test]
fn batch_straddles_warmup_reset() {
    for (array_idx, ranking_idx, scheme_idx) in [
        (0, 0, 3),
        (1, 6, 1),
        (2, 1, 4),
        (3, 5, 5),
        (4, 2, 0),
        (0, 7, 3),
        (2, 8, 5),
    ] {
        let mut scalar = build(array_idx, ranking_idx, scheme_idx, 7);
        let mut batched = build(array_idx, ranking_idx, scheme_idx, 7);
        let stream: Vec<(PartitionId, u64)> = (0..1000u64)
            .map(|i| {
                (
                    PartitionId((i % PARTS as u64) as u16),
                    (i * 23) % 90 + (i % PARTS as u64) * 1_000,
                )
            })
            .collect();
        let reset_at = 487usize; // mid-block for every power-of-two block size

        for (i, &(p, a)) in stream.iter().enumerate() {
            scalar.access(p, a, AccessMeta::default());
            if i + 1 == reset_at {
                scalar.stats_mut().reset();
            }
        }

        let mut block = AccessBlock::new();
        for seg in [&stream[..reset_at], &stream[reset_at..]] {
            for chunk in seg.chunks(64) {
                block.clear();
                for &(p, a) in chunk {
                    block.push(p, a, AccessMeta::default());
                }
                batched.access_batch(&block);
            }
            if seg.len() == reset_at {
                batched.stats_mut().reset();
            }
        }

        assert_eq!(batched.time(), scalar.time());
        assert_eq!(batched.state().actual, scalar.state().actual);
        assert_eq!(batched.stats().total_hits(), scalar.stats().total_hits());
        assert_eq!(
            batched.stats().total_misses(),
            scalar.stats().total_misses()
        );
    }
}

/// Drive `stream` through a scalar and a batched engine of the given
/// grid cell (blocks of 64, so gathered miss runs cap out and block
/// tails land mid-run) and require identical outcomes and statistics.
fn assert_streams_match(
    array_idx: usize,
    ranking_idx: usize,
    scheme_idx: usize,
    stream: &[(PartitionId, u64)],
) {
    let ctx = format!("cell {array_idx}/{ranking_idx}/{scheme_idx}");
    let mut scalar = build(array_idx, ranking_idx, scheme_idx, 7);
    let mut batched = build(array_idx, ranking_idx, scheme_idx, 7);
    let expect: Vec<AccessOutcome> = stream
        .iter()
        .map(|&(p, a)| scalar.access(p, a, AccessMeta::default()))
        .collect();
    let mut got = Vec::new();
    let mut block = AccessBlock::new();
    for chunk in stream.chunks(64) {
        block.clear();
        for &(p, a) in chunk {
            block.push(p, a, AccessMeta::default());
        }
        batched.access_batch_into(&block, &mut got);
    }
    assert_eq!(got, expect, "{ctx}");
    assert_eq!(batched.time(), scalar.time(), "{ctx}");
    assert_eq!(batched.state().actual, scalar.state().actual, "{ctx}");
    for p in 0..PARTS as u16 {
        let (pa, pb) = (
            scalar.stats().partition(PartitionId(p)),
            batched.stats().partition(PartitionId(p)),
        );
        assert_eq!(pa.hits, pb.hits, "{ctx}");
        assert_eq!(pa.misses, pb.misses, "{ctx}");
        assert_eq!(pa.evictions, pb.evictions, "{ctx}");
        assert!(
            (pa.evict_futility_sum - pb.evict_futility_sum).abs() < 1e-12,
            "{ctx}"
        );
    }
}

/// Miss-dominated blocks over the full grid: an address universe far
/// larger than the 32-line caches keeps the certain-miss run gatherer
/// (and, where the composition supports it, the byte-lane SWAR victim
/// pick) engaged for essentially every access.
#[test]
fn miss_dominated_blocks_match_scalar_across_grid() {
    for array_idx in 0..ARRAYS {
        for ranking_idx in 0..RANKINGS {
            for scheme_idx in 0..SCHEMES {
                let stream: Vec<(PartitionId, u64)> = (0..400u64)
                    .map(|i| {
                        let p = PartitionId((i % PARTS as u64) as u16);
                        (p, (i * 97) % 4096 + p.0 as u64 * 10_000)
                    })
                    .collect();
                assert_streams_match(array_idx, ranking_idx, scheme_idx, &stream);
            }
        }
    }
}

/// Alternating hit/miss blocks over the full grid: eight accesses to a
/// small resident set, then eight churn accesses, so every block
/// boundary flips between the deferred-hit-run and gathered-miss-run
/// machinery (including runs cut short by an intervening hit).
#[test]
fn alternating_hit_miss_blocks_match_scalar_across_grid() {
    for array_idx in 0..ARRAYS {
        for ranking_idx in 0..RANKINGS {
            for scheme_idx in 0..SCHEMES {
                let stream: Vec<(PartitionId, u64)> = (0..400u64)
                    .map(|i| {
                        let p = PartitionId((i % PARTS as u64) as u16);
                        let addr = if (i / 8) % 2 == 0 {
                            (i % 8) + p.0 as u64 * 1_000
                        } else {
                            (i * 131) % 4096 + 20_000 + p.0 as u64 * 10_000
                        };
                        (p, addr)
                    })
                    .collect();
                assert_streams_match(array_idx, ranking_idx, scheme_idx, &stream);
            }
        }
    }
}

/// The SWAR argmax must agree with the scalar strict-`>` first-max scan
/// on every input — the tie-breaking order is part of the contract, so
/// narrow value ranges (forcing massed ties) are generated alongside
/// full-range 15-bit values.
#[test]
fn swar_argmax_matches_scalar_reference() {
    // testkit's `check` hands properties `&G::Output`, here `&Vec<u16>`.
    #[allow(clippy::ptr_arg)]
    fn prop(vals: &Vec<u16>) -> CaseResult {
        tk_assert!(!vals.is_empty());
        tk_assert_eq!(
            cachesim::swar::argmax_u15(vals),
            cachesim::swar::argmax_u15_scalar(vals)
        );
        Ok(())
    }
    check(
        "swar_argmax_full_range",
        &vec_of(int_range(0u16..0x8000), 1..80),
        prop,
    );
    check(
        "swar_argmax_heavy_ties",
        &vec_of(int_range(0u16..4), 1..80),
        prop,
    );
}

/// Tie-breaking pinned bit-exactly: duplicated maxima must resolve to
/// the lowest index wherever the duplicates fall relative to the packed
/// 4-lane words.
#[test]
fn swar_argmax_tie_break_is_first_index() {
    use cachesim::swar::argmax_u15;
    assert_eq!(argmax_u15(&[5, 5, 5, 5, 5]), 0);
    assert_eq!(argmax_u15(&[1, 9, 9]), 1);
    assert_eq!(argmax_u15(&[0, 0, 0]), 0, "zero max must not hit padding");
    for (a, b) in [(0, 3), (2, 4), (3, 7), (1, 8), (5, 13), (0, 15)] {
        let mut vals = vec![2u16; 16];
        vals[a] = 32640; // 255 << 7, the byte-lane maximum
        vals[b] = 32640;
        assert_eq!(argmax_u15(&vals), a, "dup at {a},{b}");
    }
}

/// A scheme wrapper that hides the byte-lane capability, forcing the
/// engine down the scalar f64 victim path while delegating everything
/// else — the reference the byte lane is checked against.
struct NoByteLane(Box<dyn PartitionScheme>);

impl PartitionScheme for NoByteLane {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn extra_pools(&self) -> usize {
        self.0.extra_pools()
    }
    fn configure(&mut self, state: &PartitionState) {
        self.0.configure(state);
    }
    fn victim(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision {
        self.0.victim(incoming, cands, state)
    }
    fn victim_into(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
        out: &mut VictimDecision,
    ) {
        self.0.victim_into(incoming, cands, state, out);
    }
    fn victim_partition_fully_assoc(
        &mut self,
        incoming: PartitionId,
        state: &PartitionState,
    ) -> PartitionId {
        self.0.victim_partition_fully_assoc(incoming, state)
    }
    fn notify_insert(&mut self, part: PartitionId, state: &PartitionState) {
        self.0.notify_insert(part, state);
    }
    fn notify_evict(&mut self, part: PartitionId, state: &PartitionState) {
        self.0.notify_evict(part, state);
    }
    fn notify_hit(&mut self, part: PartitionId) {
        self.0.notify_hit(part);
    }
    fn insertion_pool(&self, incoming: PartitionId) -> PartitionId {
        self.0.insertion_pool(incoming)
    }
    fn on_foreign_hit(
        &mut self,
        line_pool: PartitionId,
        accessor: PartitionId,
    ) -> Option<PartitionId> {
        self.0.on_foreign_hit(line_pool, accessor)
    }
    fn wants_exact_ranking(&self) -> bool {
        self.0.wants_exact_ranking()
    }
    fn telemetry(&self, state: &PartitionState, out: &mut Vec<cachesim::Probe>) {
        self.0.telemetry(state, out);
    }
    fn save_state(&self, w: &mut cachesim::SnapshotWriter) {
        self.0.save_state(w);
    }
    fn load_state(
        &mut self,
        r: &mut cachesim::SnapshotReader,
    ) -> Result<(), cachesim::SnapshotError> {
        self.0.load_state(r)
    }
    // wants_futility_bytes deliberately left at the default `false`.
}

/// The byte lane is bit-exact: for every byte-capable ranking × scheme
/// pair, an engine taking the SWAR integer path must replay a
/// churn-heavy stream identically (outcomes, statistics and final
/// snapshot bytes) to one forced down the scalar f64 futility path.
/// Scalar-vs-batch equivalence cannot see this — both sides of that
/// comparison share `miss_path` — so this is the dedicated proof.
#[test]
fn byte_lane_matches_f64_path_bit_exactly() {
    let schemes: [&dyn Fn() -> Box<dyn PartitionScheme>; 2] =
        [&|| cachesim::evict_max_futility(), &|| {
            Box::new(FsFeedback::default_config())
        }];
    for ranking_name in ["coarse-lru", "rrip", "coarse-lru-bucket", "rrip-bucket"] {
        for make_scheme in schemes {
            let build_one = |scheme: Box<dyn PartitionScheme>| {
                let mut c = PartitionedCache::new(
                    Box::new(SetAssociative::new(8, 4, LineHash::new(7))),
                    ranking::by_name(ranking_name).unwrap(),
                    scheme,
                    PARTS,
                );
                c.set_targets(&[16, 10, 6]);
                c
            };
            let mut byte_lane = build_one(make_scheme());
            let mut f64_path = build_one(Box::new(NoByteLane(make_scheme())));
            let ctx = format!("{ranking_name}/{}", byte_lane.scheme().name());
            assert!(
                byte_lane.scheme().wants_futility_bytes(),
                "{ctx}: byte lane not enabled"
            );
            assert!(!f64_path.scheme().wants_futility_bytes());
            // Churn-heavy with periodic re-touches: evictions dominate
            // (so victim selection runs constantly and feedback shift
            // widths move) but ties and re-references still occur.
            for i in 0..3_000u64 {
                let p = PartitionId((i % PARTS as u64) as u16);
                let addr = (i * 37) % 300 + p.0 as u64 * 10_000;
                let a = byte_lane.access(p, addr, AccessMeta::default());
                let b = f64_path.access(p, addr, AccessMeta::default());
                assert_eq!(a, b, "{ctx}: access {i} diverged");
            }
            assert_eq!(
                byte_lane.stats().total_hits(),
                f64_path.stats().total_hits(),
                "{ctx}"
            );
            assert_eq!(byte_lane.state().actual, f64_path.state().actual, "{ctx}");
            assert_eq!(byte_lane.snapshot(), f64_path.snapshot(), "{ctx}");
        }
    }
}

/// With a recorder attached the batch path must produce the identical
/// sample stream (it falls back to scalar feeding internally so the
/// recorder observes every access).
#[test]
fn batch_preserves_recorder_samples() {
    let mut scalar = build(1, 0, 3, 7);
    let mut batched = build(1, 0, 3, 7);
    scalar.attach_timeseries(16, 1 << 12);
    batched.attach_timeseries(16, 1 << 12);

    let mut block = AccessBlock::new();
    for i in 0..2_000u64 {
        let p = PartitionId((i % PARTS as u64) as u16);
        let addr = (i * 37) % 120 + p.0 as u64 * 1_000;
        scalar.access(p, addr, AccessMeta::default());
        block.push(p, addr, AccessMeta::default());
        if block.len() == 97 {
            batched.access_batch(&block);
            block.clear();
        }
    }
    batched.access_batch(&block);

    let (ts_a, ts_b) = (
        scalar.timeseries().expect("recorder attached"),
        batched.timeseries().expect("recorder attached"),
    );
    assert_eq!(ts_a.len(), ts_b.len());
    for (a, b) in ts_a.samples().zip(ts_b.samples()) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.series, b.series);
        assert_eq!(a.part, b.part);
        // Bitwise comparison so NaN samples (e.g. AEF before any
        // eviction) compare equal to themselves.
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "sample diverged: {a:?} vs {b:?}"
        );
    }
}

/// The `InterleavedDriver` (now feeding blocks) must produce the same
/// statistics as a hand-rolled scalar round-robin replay with the same
/// warmup-reset rule.
#[test]
fn interleaved_driver_batched_matches_scalar_replay() {
    let traces: Vec<Trace> = (0..PARTS as u64)
        .map(|p| Trace::from_addrs((0..700u64).map(|i| (i * 13) % (60 + p * 20) + p * 1_000), 1))
        .collect();
    let warmup_fraction = 0.37;

    let mut driven = build(0, 0, 3, 7);
    InterleavedDriver::new(traces.clone()).run(&mut driven, warmup_fraction);

    // Scalar reference: the pre-batching driver loop.
    let mut scalar = build(0, 0, 3, 7);
    let mut cursors: Vec<(Vec<u64>, Vec<u64>, usize)> = traces
        .into_iter()
        .map(|t| {
            let next_use = t.annotate_next_use();
            let addrs: Vec<u64> = t.accesses.iter().map(|a| a.addr).collect();
            (addrs, next_use, 0usize)
        })
        .collect();
    let total: usize = cursors.iter().map(|c| c.0.len()).sum();
    let warmup = (total as f64 * warmup_fraction) as usize;
    let mut fed = 0usize;
    let mut reset_done = false;
    while cursors.iter().any(|c| c.2 < c.0.len()) {
        for (i, cur) in cursors.iter_mut().enumerate() {
            if cur.2 < cur.0.len() {
                let meta = AccessMeta::with_next_use(cur.1[cur.2]);
                scalar.access(PartitionId(i as u16), cur.0[cur.2], meta);
                cur.2 += 1;
                fed += 1;
            }
        }
        if !reset_done && fed >= warmup {
            scalar.stats_mut().reset();
            reset_done = true;
        }
    }

    assert_eq!(driven.time(), scalar.time());
    assert_eq!(driven.state().actual, scalar.state().actual);
    assert_eq!(driven.stats().total_hits(), scalar.stats().total_hits());
    assert_eq!(driven.stats().total_misses(), scalar.stats().total_misses());
    for p in 0..PARTS as u16 {
        let (pa, pb) = (
            scalar.stats().partition(PartitionId(p)),
            driven.stats().partition(PartitionId(p)),
        );
        assert_eq!(pa.hits, pb.hits);
        assert_eq!(pa.misses, pb.misses);
        assert_eq!(pa.evictions, pb.evictions);
    }
}
