//! The tenancy closed loop's determinism contract (DESIGN.md §13):
//! the full loop — shadow-monitor observation, utility re-solve,
//! `set_targets` push, sharded engine enforcement — must be
//! byte-identical for any `--jobs` worker count. Re-solves are keyed
//! to access counts, and the driver splits blocks at epoch boundaries,
//! so targets, resolve events, merged statistics, flight-recorder rows
//! and snapshot bytes cannot depend on how many workers the engine
//! uses or on block framing that puts a re-solve mid-batch.

use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, vec_of, CaseResult};

const TENANTS: usize = 3;
const SHARDS: usize = 4;
/// Total lines across all shards (multiple of `SHARDS * 16`).
const LINES: usize = 4 * 256;
/// Deliberately not a divisor (or multiple) of any generated block
/// size, so re-solves routinely land in the middle of a fed block.
const CADENCE: u64 = 777;

/// Three tenants with deliberately asymmetric QoS: an explicit share
/// with a floor, a capped tenant, and a weighted implicit one — so the
/// re-solve exercises the bounded hill-climb, not just the fallback.
fn allocator() -> UtilityAllocator {
    let qos = QosBuilder::new()
        .tenant(TenantSpec::named("floor").share(0.4).min_lines(LINES / 8))
        .tenant(TenantSpec::named("capped").max_lines(LINES / 2))
        .tenant(TenantSpec::named("weighted").priority(2.0))
        .compile(LINES)
        .expect("valid QoS");
    UtilityAllocator::new(qos, LINES / 32, UmonConfig::default())
}

fn driver(record: bool) -> TenancyDriver {
    let mut engine = fs_bench::sharded_engine_for("fs-feedback", LINES, SHARDS, TENANTS, 0xD1CE);
    if record {
        engine.attach_timeseries(64, 256);
    }
    let mut d = TenancyDriver::new(engine, allocator(), CADENCE);
    d.record_events(true);
    d
}

/// Map a generated `(tenant, base)` pair to a tenant-namespaced
/// address. Tenant 0 reuses a tiny hot set (shallow shadow-stack
/// depths, so its utility curve has real signal); the others roam
/// progressively wider.
fn addr_of(t: u16, base: u64) -> (PartitionId, u64) {
    let t = t % TENANTS as u16;
    let span = 40 + 700 * t as u64;
    (PartitionId(t), ((t as u64) << 40) | (base % span))
}

fn blocks_of(accesses: &[(u16, u64)], sizes: &[usize]) -> Vec<AccessBlock> {
    let mut out = Vec::new();
    let mut cur = AccessBlock::new();
    let mut sizes = sizes.iter().cycle();
    let mut cap = *sizes.next().unwrap();
    for &(t, base) in accesses {
        let (part, addr) = addr_of(t, base);
        cur.push(part, addr, AccessMeta::default());
        if cur.len() >= cap.max(1) {
            out.push(std::mem::take(&mut cur));
            cap = *sizes.next().unwrap();
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Everything the loop exposes, gathered from one replica.
type Observed = (
    u64,
    Vec<usize>,
    Vec<tenancy::ResolveEvent>,
    Vec<u8>,
    Vec<Vec<String>>,
);

fn run_jobs(blocks: &[AccessBlock], jobs: usize, record: bool) -> Observed {
    let mut d = driver(record);
    d.engine_mut().set_jobs(jobs);
    let hits: u64 = blocks.iter().map(|b| d.feed(b)).sum();
    let rows = d.engine().merged_recorder_rows();
    (
        hits,
        d.targets().to_vec(),
        d.events().to_vec(),
        d.engine().snapshot(),
        rows,
    )
}

/// Generated case: an access stream, a block-size schedule, and
/// whether flight recorders are attached.
type Case = ((Vec<(u16, u64)>, Vec<usize>), u8);

fn prop_closed_loop_is_jobs_invariant(((accesses, sizes), record): &Case) -> CaseResult {
    let record = *record == 1;
    let blocks = blocks_of(accesses, sizes);
    let (h1, t1, e1, snap1, rows1) = run_jobs(&blocks, 1, record);
    let (h2, t2, e2, snap2, rows2) = run_jobs(&blocks, 2, record);
    let (hn, tn, en, snapn, rowsn) = run_jobs(&blocks, SHARDS, record);

    tk_assert!(h1 == h2 && h1 == hn, "hits differ across jobs");
    tk_assert!(t1 == t2 && t1 == tn, "live targets differ across jobs");
    tk_assert!(e1 == e2 && e1 == en, "resolve events differ across jobs");
    tk_assert!(
        snap1 == snap2 && snap1 == snapn,
        "snapshot bytes differ across jobs"
    );
    tk_assert!(
        rows1 == rows2 && rows1 == rowsn,
        "recorder rows differ across jobs"
    );
    Ok(())
}

#[test]
fn closed_loop_is_jobs_invariant() {
    let gen = (
        (
            vec_of((int_range(0u16..8), int_range(0u64..3_000)), 1..2_500),
            vec_of(int_range(1usize..200), 1..6),
        ),
        int_range(0u8..2),
    );
    check(
        "tenancy_jobs_invariance",
        &gen,
        prop_closed_loop_is_jobs_invariant,
    );
}

/// Fixed-trace arm with teeth: enough traffic that several re-solves
/// fire (and land mid-block, since 512 does not divide 777), the
/// targets actually move off the initial split, and the merged
/// statistics agree field-by-field bit-for-bit across job counts.
#[test]
fn resolves_land_mid_batch_and_stats_merge_identically() {
    let accesses: Vec<(u16, u64)> = (0..12_000u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
            ((x % 7) as u16, x >> 24)
        })
        .collect();
    let blocks = blocks_of(&accesses, &[512]);

    let observed: Vec<(Observed, cachesim::CacheStats)> = [1usize, 2, SHARDS]
        .into_iter()
        .map(|jobs| {
            let mut d = driver(false);
            d.engine_mut().set_jobs(jobs);
            let hits: u64 = blocks.iter().map(|b| d.feed(b)).sum();
            assert_eq!(d.epochs() as usize, d.events().len());
            let stats = d.engine().merged_stats();
            (
                (
                    hits,
                    d.targets().to_vec(),
                    d.events().to_vec(),
                    d.engine().snapshot(),
                    Vec::new(),
                ),
                stats,
            )
        })
        .collect();

    let (base, base_stats) = &observed[0];
    assert!(
        base.2.len() >= 10,
        "expected many epochs, got {}",
        base.2.len()
    );
    // Every re-solve fired at an exact cadence multiple even though no
    // block boundary coincides with one.
    for (i, e) in base.2.iter().enumerate() {
        assert_eq!(e.at_access, (i as u64 + 1) * CADENCE);
        assert!(!e.at_access.is_multiple_of(512), "landed on a block edge");
        assert_eq!(e.targets.iter().sum::<usize>(), LINES);
    }
    // The loop actually moved capacity (the property is not vacuous).
    let first = &base.2.first().unwrap().targets;
    let last = &base.2.last().unwrap().targets;
    assert_ne!(first, last, "targets never moved: {first:?}");
    assert!(base_stats.total_hits() > 0 && base_stats.total_misses() > 0);

    for (other, other_stats) in &observed[1..] {
        assert_eq!(base, other);
        assert_eq!(base_stats.total_hits(), other_stats.total_hits());
        assert_eq!(base_stats.total_misses(), other_stats.total_misses());
        for t in 0..TENANTS {
            let id = PartitionId(t as u16);
            let (a, b) = (base_stats.partition(id), other_stats.partition(id));
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.misses, b.misses);
            assert_eq!(a.evictions, b.evictions);
            assert_eq!(
                base_stats.size_mad(id).to_bits(),
                other_stats.size_mad(id).to_bits()
            );
            assert_eq!(
                base_stats.avg_occupancy(id).to_bits(),
                other_stats.avg_occupancy(id).to_bits()
            );
        }
    }
}
