//! Integration tests of the baseline schemes' published behaviours —
//! the failure modes the FS paper measures against them.

use futility_scaling::prelude::*;

fn streaming_traces(n: usize, len: usize) -> Vec<Trace> {
    (0..n)
        .map(|i| Trace::from_addrs((0..len as u64).map(move |k| ((i as u64) << 40) + k), 1))
        .collect()
}

/// Vantage's forced-eviction probability is (1−u)^R ≈ 18.5% at
/// u = 0.1, R = 16 (Section VIII-A).
#[test]
fn vantage_forced_eviction_rate_matches_theory() {
    let lines = 8_192;
    let mut cache = PartitionedCache::new(
        Box::new(RandomCandidates::new(lines, 16, 31)),
        Box::new(ExactLru::new()),
        Box::new(Vantage::default_config()),
        8,
    );
    // Vantage's contract: managed targets sum to (1-u) of the array.
    cache.set_targets(&[lines * 9 / 10 / 8; 8]);
    let traces = streaming_traces(8, 120_000);
    InterleavedDriver::new(traces).run(&mut cache, 0.0);
    // Re-derive the rate analytically: with the unmanaged pool holding
    // fraction u of the cache, a candidate list of 16 uniform slots
    // misses it with probability (1-u)^16.
    let unmanaged = cache.state().actual[8] as f64 / lines as f64;
    let expected = (1.0 - unmanaged).powi(16);
    assert!(
        unmanaged > 0.03 && unmanaged < 0.25,
        "unmanaged region self-regulates near u (got {unmanaged:.3})"
    );
    assert!(
        expected > 0.02 && expected < 0.7,
        "forced evictions are a real phenomenon at R=16 (p = {expected:.3})"
    );
}

/// PriSM's abnormality: with N = 32 partitions and R = 16 candidates
/// the sampled partition is usually absent from the candidate list, so
/// PriSM loses sizing control (Section VIII-A: >70% abnormality,
/// occupancy far below target).
#[test]
fn prism_abnormality_degrades_sizing_at_32_partitions() {
    let lines = 16_384;
    let n = 32;
    let mut cache = PartitionedCache::new(
        Box::new(RandomCandidates::new(lines, 16, 33)),
        Box::new(ExactLru::new()),
        Box::new(Prism::default_config()),
        n,
    );
    // Give the first 8 partitions big guarantees while all partitions
    // insert equally: PriSM should fail to hold them.
    let mut targets = vec![lines / 64; n];
    for t in targets.iter_mut().take(8) {
        *t = lines / 16; // 1024 lines each
    }
    cache.set_targets(&targets);
    let traces = streaming_traces(n, 40_000);
    InterleavedDriver::new(traces).run(&mut cache, 0.5);
    let occupancy: f64 = (0..8)
        .map(|i| cache.state().actual[i] as f64 / targets[i] as f64)
        .sum::<f64>()
        / 8.0;
    assert!(
        occupancy < 0.9,
        "PriSM should sit well below target under abnormality (got {occupancy:.3})"
    );

    // Control: feedback FS holds the same configuration.
    let mut cache = PartitionedCache::new(
        Box::new(RandomCandidates::new(lines, 16, 33)),
        Box::new(ExactLru::new()),
        Box::new(FsFeedback::default_config()),
        n,
    );
    cache.set_targets(&targets);
    let traces = streaming_traces(n, 40_000);
    InterleavedDriver::new(traces).run(&mut cache, 0.5);
    let occupancy: f64 = (0..8)
        .map(|i| cache.state().actual[i] as f64 / targets[i] as f64)
        .sum::<f64>()
        / 8.0;
    assert!(
        (occupancy - 1.0).abs() < 0.1,
        "FS holds what PriSM cannot (got {occupancy:.3})"
    );
}

/// CQVP enforces quotas (only violators lose lines) and PF sizes almost
/// exactly; both are sizing-precise on streaming workloads.
#[test]
fn pf_and_cqvp_size_precisely() {
    for scheme_name in ["pf", "cqvp"] {
        let scheme: Box<dyn PartitionScheme> = match scheme_name {
            "pf" => Box::new(Pf),
            _ => Box::new(Cqvp),
        };
        let lines = 4_096;
        let mut cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(lines, 16, 35)),
            Box::new(ExactLru::new()),
            scheme,
            4,
        );
        cache.set_targets(&[2_048, 1_024, 512, 512]);
        let traces = streaming_traces(4, 60_000);
        InterleavedDriver::new(traces).run(&mut cache, 0.5);
        for (i, &t) in [2_048usize, 1_024, 512, 512].iter().enumerate() {
            let actual = cache.state().actual[i];
            assert!(
                (actual as f64 / t as f64 - 1.0).abs() < 0.05,
                "{scheme_name} partition {i}: {actual} vs {t}"
            );
        }
    }
}

/// Vantage promotes unmanaged lines back on a hit, so a hot line never
/// dies in the unmanaged region.
#[test]
fn vantage_promotion_preserves_hot_lines() {
    let lines = 1_024;
    let mut cache = PartitionedCache::new(
        Box::new(RandomCandidates::new(lines, 16, 37)),
        Box::new(ExactLru::new()),
        Box::new(Vantage::default_config()),
        2,
    );
    cache.set_targets(&[512, 410]); // ~90% managed
                                    // Partition 0 hammers a tiny hot set while partition 1 streams.
    for i in 0..400_000u64 {
        if i % 4 == 0 {
            cache.access(PartitionId(0), i % 64, AccessMeta::default());
        } else {
            cache.access(PartitionId(1), (1 << 40) + i, AccessMeta::default());
        }
    }
    let p0 = cache.stats().partition(PartitionId(0));
    // Forced evictions (the (1-u)^R isolation failures) still claim the
    // occasional hot line — exactly the weak-isolation phenomenon the
    // FS paper measures — but promotion keeps the hot set mostly
    // resident rather than letting it die in the unmanaged region.
    assert!(
        p0.miss_ratio() < 0.15,
        "hot set must stay mostly resident (miss ratio {:.4})",
        p0.miss_ratio()
    );
}
