//! The replacement hot path must not allocate once the cache is warm:
//! candidate buffers are reused, the treap arena recycles freed nodes
//! through its free-list, and the per-line hash maps stop growing once
//! the bounded address universe has been seen. A counting global
//! allocator drives the check — after a warm-up pass, a full second
//! pass over the trace must perform zero heap allocations for every
//! ranking × scheme combination on the default set-associative array.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use cachesim::prng::{seed_for, Prng};
use cachesim::{AccessMeta, PartitionId, PartitionedCache, Trace};

const PARTS: usize = 4;
const LINES: usize = 512;
const ACCESSES: usize = 20_000;

/// Eviction-heavy trace over a bounded universe (~4× the cache), so the
/// steady state both misses constantly and revisits every address.
fn workload() -> (Vec<u16>, Vec<u64>, Vec<u64>) {
    let mut rng = Prng::seed_from_u64(seed_for("no_alloc_hot_path", 0));
    let mut parts = Vec::with_capacity(ACCESSES);
    let mut addrs = Vec::with_capacity(ACCESSES);
    for _ in 0..ACCESSES {
        let p: u16 = rng.gen_range(0..PARTS as u16);
        parts.push(p);
        addrs.push(p as u64 * 1_000_000 + rng.gen_range(0..LINES as u64));
    }
    let trace = Trace::from_addrs(addrs.iter().copied(), 1);
    let next_use = trace.annotate_next_use();
    (parts, addrs, next_use)
}

fn drive(cache: &mut PartitionedCache, wl: &(Vec<u16>, Vec<u64>, Vec<u64>)) {
    for i in 0..wl.1.len() {
        cache.access(
            PartitionId(wl.0[i]),
            wl.1[i],
            AccessMeta::with_next_use(wl.2[i]),
        );
    }
}

#[test]
fn warm_cache_access_never_allocates() {
    let wl = workload();
    let rankings = [
        "lru",
        "coarse-lru",
        "coarse-lru-bucket",
        "lfu",
        "random",
        "rrip",
        "rrip-bucket",
        "opt",
    ];
    let schemes = [
        "unpartitioned",
        "pf",
        "cqvp",
        "fs-feedback",
        "vantage",
        "prism",
    ];
    let mut failures = Vec::new();
    for ranking in rankings {
        for scheme in schemes {
            let mut cache = PartitionedCache::new(
                fs_bench::l2_array(LINES, 7),
                fs_bench::futility_ranking(ranking),
                fs_bench::scheme(scheme),
                PARTS,
            );
            cache.stats_mut().sample_deviation = false;
            // Warm up until two consecutive full passes allocate
            // nothing: the first pass fills the cache; later ones let
            // scratch buffers and the treap arenas reach their
            // high-water marks (feedback schemes keep shifting pool
            // occupancies for a few intervals, and an arena Vec only
            // grows when a new high-water mark crosses a capacity
            // boundary). A path that allocates per access can never
            // produce two clean passes, so the check stays strict.
            let mut consecutive_clean = 0;
            for _ in 0..10 {
                let before = ALLOCS.load(Ordering::Relaxed);
                drive(&mut cache, &wl);
                if ALLOCS.load(Ordering::Relaxed) == before {
                    consecutive_clean += 1;
                    if consecutive_clean == 2 {
                        break;
                    }
                } else {
                    consecutive_clean = 0;
                }
            }
            if consecutive_clean < 2 {
                failures.push(format!("{ranking}/{scheme}: never reached steady state"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "warm hot path allocated:\n{}",
        failures.join("\n")
    );
}

/// The batched pipeline must be as allocation-free as the scalar path
/// once warm: the deferred hit-run buffer and the candidate scratch
/// reach their high-water marks during warmup and are reused from then
/// on. Checked on the monomorphized cores (`fs_bench::engine_for`), the
/// same engines the throughput bench times.
#[test]
fn warm_batched_access_never_allocates() {
    let wl = workload();
    let metas: Vec<AccessMeta> =
        wl.2.iter()
            .copied()
            .map(AccessMeta::with_next_use)
            .collect();
    let parts: Vec<PartitionId> = wl.0.iter().copied().map(PartitionId).collect();
    let rankings = [
        "lru",
        "coarse-lru",
        "coarse-lru-bucket",
        "lfu",
        "random",
        "rrip",
        "rrip-bucket",
        "opt",
    ];
    let schemes = [
        "unpartitioned",
        "pf",
        "cqvp",
        "fs-feedback",
        "vantage",
        "prism",
    ];
    let mut failures = Vec::new();
    for ranking in rankings {
        for scheme in schemes {
            let mut cache = fs_bench::engine_for("set-assoc", ranking, scheme, LINES, 7, PARTS);
            cache.stats_mut().sample_deviation = false;
            // Same two-consecutive-clean-passes protocol as the scalar
            // test; each pass feeds the whole trace as one block, the
            // worst case for the deferred hit-run buffer.
            let mut consecutive_clean = 0;
            for _ in 0..10 {
                let before = ALLOCS.load(Ordering::Relaxed);
                cache.access_batch_slices(&parts, &wl.1, &metas);
                if ALLOCS.load(Ordering::Relaxed) == before {
                    consecutive_clean += 1;
                    if consecutive_clean == 2 {
                        break;
                    }
                } else {
                    consecutive_clean = 0;
                }
            }
            if consecutive_clean < 2 {
                failures.push(format!("{ranking}/{scheme}: never reached steady state"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "warm batched hot path allocated:\n{}",
        failures.join("\n")
    );
}

/// The batched *miss* path must reuse its scratch too: an
/// overwhelming-miss trace (universe 64× the cache, so nearly every
/// access gathers into a certain-miss run) must reach the same
/// two-consecutive-clean-passes steady state. Cells are chosen to cover
/// the run gatherer plus both byte-lane scratch buffers — the engine's
/// raw-numerator vector (coarse-lru / rrip) and fs-feedback's shifted
/// copy — alongside a treap-exact ranking whose miss path stays on the
/// f64 lane. The unsuffixed coarse names resolve to the *bucket*
/// backends through `engine_for` (the default fast lane), so the first
/// four cells prove the bucket-backed miss path — node free-list reuse
/// across the evict-then-install order — and the `-treap` cells keep
/// the retired arenas covered.
#[test]
fn warm_batched_miss_runs_never_allocate() {
    let mut rng = Prng::seed_from_u64(seed_for("no_alloc_miss_runs", 0));
    let mut parts = Vec::with_capacity(ACCESSES);
    let mut addrs = Vec::with_capacity(ACCESSES);
    for _ in 0..ACCESSES {
        let p: u16 = rng.gen_range(0..PARTS as u16);
        parts.push(PartitionId(p));
        addrs.push(p as u64 * 10_000_000 + rng.gen_range(0..64 * LINES as u64));
    }
    let metas = vec![AccessMeta::default(); ACCESSES];
    let mut failures = Vec::new();
    for (ranking, scheme) in [
        ("coarse-lru", "fs-feedback"),
        ("rrip", "unpartitioned"),
        ("coarse-lru", "unpartitioned"),
        ("rrip", "fs-feedback"),
        ("coarse-lru-treap", "fs-feedback"),
        ("rrip-treap", "unpartitioned"),
        ("lru", "fs-feedback"),
    ] {
        let mut cache = fs_bench::engine_for("set-assoc", ranking, scheme, LINES, 7, PARTS);
        cache.stats_mut().sample_deviation = false;
        let mut consecutive_clean = 0;
        for _ in 0..10 {
            let before = ALLOCS.load(Ordering::Relaxed);
            cache.access_batch_slices(&parts, &addrs, &metas);
            if ALLOCS.load(Ordering::Relaxed) == before {
                consecutive_clean += 1;
                if consecutive_clean == 2 {
                    break;
                }
            } else {
                consecutive_clean = 0;
            }
        }
        if consecutive_clean < 2 {
            failures.push(format!("{ranking}/{scheme}: never reached steady state"));
        }
    }
    assert!(
        failures.is_empty(),
        "warm batched miss path allocated:\n{}",
        failures.join("\n")
    );
}

/// Checkpointing must not disturb the warm hot path: `snapshot()` is a
/// read-only observer (its own output buffer is allocated off the
/// access path), so every access pass *between* snapshots stays
/// allocation-free. After a `restore()` the rebuilt structures re-reach
/// their high-water marks within the usual warmup protocol and the path
/// is allocation-free again — checkpoint/resume cannot make a steady
/// state leak.
#[test]
fn warm_access_between_checkpoints_never_allocates() {
    let wl = workload();
    for (ranking, scheme) in [("lru", "fs-feedback"), ("rrip", "vantage")] {
        let mut cache = PartitionedCache::new(
            fs_bench::l2_array(LINES, 7),
            fs_bench::futility_ranking(ranking),
            fs_bench::scheme(scheme),
            PARTS,
        );
        cache.stats_mut().sample_deviation = false;
        let warm = |cache: &mut PartitionedCache| {
            let mut consecutive_clean = 0;
            for _ in 0..10 {
                let before = ALLOCS.load(Ordering::Relaxed);
                drive(cache, &wl);
                if ALLOCS.load(Ordering::Relaxed) == before {
                    consecutive_clean += 1;
                    if consecutive_clean == 2 {
                        return true;
                    }
                } else {
                    consecutive_clean = 0;
                }
            }
            false
        };
        assert!(
            warm(&mut cache),
            "{ranking}/{scheme}: never reached steady state"
        );

        // Checkpoint-enabled steady state: after each snapshot the
        // engine must still produce allocation-free passes under the
        // same two-consecutive-clean-passes protocol (rare late
        // high-water-mark growth is tolerated exactly as in the plain
        // tests above — a snapshot takes `&self` and cannot cause it).
        let mut snap = Vec::new();
        for round in 0..3 {
            snap = cache.snapshot();
            assert!(
                warm(&mut cache),
                "{ranking}/{scheme}: no steady state after checkpoint {round}"
            );
        }

        // Restoring rebuilds component state (allocating is fine there);
        // the access path must return to allocation-free afterwards.
        cache.restore(&snap).expect("round-trip restore");
        assert!(
            warm(&mut cache),
            "{ranking}/{scheme}: no steady state after restore"
        );
    }
}

/// The tenancy closed loop must be as allocation-free as the raw
/// sharded path once warm (DESIGN.md §13): `Umon::observe` walks
/// fixed-size shadow stacks, the re-solve writes into the allocator's
/// preallocated curve/scratch/target buffers, the driver's staging
/// block for epoch-straddling sub-ranges reaches its high-water mark
/// during warmup, and `set_targets` reuses the engine's per-shard
/// division scratch. With event recording off (the default), whole
/// passes — including every mid-block re-solve they contain — must
/// allocate nothing.
#[test]
fn warm_tenancy_loop_with_resolves_never_allocates() {
    use cachesim::AccessBlock;
    use tenancy::{QosBuilder, TenancyDriver, TenantSpec, UmonConfig, UtilityAllocator};

    const TENANTS: usize = 3;
    let qos = QosBuilder::new()
        .tenant(TenantSpec::named("a").share(0.4).min_lines(LINES / 8))
        .tenant(TenantSpec::named("b").max_lines(LINES / 2))
        .tenant(TenantSpec::named("c").priority(2.0))
        .compile(LINES)
        .unwrap();
    let alloc = UtilityAllocator::new(qos, LINES / 32, UmonConfig::default());
    let engine = fs_bench::sharded_engine_for("fs-feedback", LINES, 4, TENANTS, 7);
    // Cadence 777 with 512-access blocks: every epoch boundary lands
    // mid-block, so each pass exercises the staging split path and
    // several full re-solves.
    let mut driver = TenancyDriver::new(engine, alloc, 777);
    driver.engine_mut().set_sample_deviation(false);

    let mut rng = Prng::seed_from_u64(seed_for("no_alloc_tenancy", 0));
    let mut blocks = Vec::new();
    let mut cur = AccessBlock::new();
    for _ in 0..ACCESSES {
        let t = rng.gen_range(0..TENANTS as u64) as u16;
        // Tenant 0 reuses a tiny hot set; the others roam wider, so
        // the re-solves keep moving capacity while the loop runs.
        let addr = ((t as u64) << 40) | rng.gen_range(0..40 + 600 * t as u64);
        cur.push(PartitionId(t), addr, AccessMeta::default());
        if cur.len() == 512 {
            blocks.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        blocks.push(cur);
    }

    let mut consecutive_clean = 0;
    for _ in 0..10 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for b in &blocks {
            driver.feed(b);
        }
        if ALLOCS.load(Ordering::Relaxed) == before {
            consecutive_clean += 1;
            if consecutive_clean == 2 {
                break;
            }
        } else {
            consecutive_clean = 0;
        }
    }
    assert!(
        driver.epochs() >= 25,
        "re-solves must be active during the counted passes, got {}",
        driver.epochs()
    );
    assert!(
        consecutive_clean >= 2,
        "warm tenancy loop allocated (never reached steady state)"
    );
}

#[test]
fn stats_construction_is_cheap_and_histogram_lazy() {
    // Constructing stats for many partitions must be O(partitions)
    // small allocations — not 1000-bin futility histograms per
    // partition. With the histogram opt-in left off, even recording
    // evictions must not allocate the bins.
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut stats = cachesim::CacheStats::new(64);
    let after_new = ALLOCS.load(Ordering::Relaxed);
    assert!(
        after_new - before <= 8,
        "CacheStats::new(64) did {} allocations — histogram no longer lazy?",
        after_new - before
    );
    stats.record_eviction(PartitionId(3), 0.5);
    let after_evict = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after_evict, after_new,
        "record_eviction allocated without futility_histogram opt-in"
    );
    // Opting in allocates the bins exactly once, on first use.
    stats.futility_histogram = true;
    stats.record_eviction(PartitionId(3), 0.5);
    assert!(
        ALLOCS.load(Ordering::Relaxed) > after_evict,
        "opt-in first eviction must allocate the histogram"
    );
    let after_first = ALLOCS.load(Ordering::Relaxed);
    stats.record_eviction(PartitionId(3), 0.9);
    assert_eq!(
        ALLOCS.load(Ordering::Relaxed),
        after_first,
        "later evictions reuse the allocated histogram"
    );
}

/// The sharded sequential path (jobs = 1) must be as allocation-free
/// as a single core once warm (DESIGN.md §12): the splitter reuses its
/// per-shard scratch blocks after they reach capacity, and each shard
/// is the same monomorphized core the batched test above checks. Only
/// the merge (`merged_stats` / `merged_recorder_rows`) may allocate,
/// so it stays outside the counted region.
#[test]
fn warm_sharded_split_loop_never_allocates() {
    use cachesim::AccessBlock;

    const SHARDS: usize = 4;
    let wl = workload();
    let mut blocks = Vec::new();
    let mut cur = AccessBlock::new();
    for i in 0..ACCESSES {
        cur.push(PartitionId(wl.0[i]), wl.1[i], AccessMeta::default());
        if cur.len() == 512 {
            blocks.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        blocks.push(cur);
    }

    let mut engine = fs_bench::sharded_engine_for("fs-feedback", LINES, SHARDS, PARTS, 7);
    engine.set_sample_deviation(false);
    let mut consecutive_clean = 0;
    for _ in 0..10 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for b in &blocks {
            engine.access_batch(b);
        }
        if ALLOCS.load(Ordering::Relaxed) == before {
            consecutive_clean += 1;
            if consecutive_clean == 2 {
                break;
            }
        } else {
            consecutive_clean = 0;
        }
    }
    assert!(
        consecutive_clean >= 2,
        "warm sharded split loop allocated (never reached steady state)"
    );
}
