//! The bucket-backend equivalence contract (DESIGN.md §14): the
//! treap-free two-level bucket rankings (`coarse-lru-bucket`,
//! `rrip-bucket`) produce the *same futility values* as their treap
//! counterparts, so every composition that selects victims through
//! candidate futility — the scalar f64 path and the byte-lane SWAR path
//! alike — must replay identically across backends: the same hit/miss
//! sequence, the same victim lines, the same occupancies and the same
//! hit/miss/eviction statistics.
//!
//! Documented deviation (the "or" branch of the ROADMAP item 3 gate):
//! `true_futility` is a counting rank in the bucket backends — lines
//! sharing a 1/16 futility class share a rank, where the treap's exact
//! shadow breaks ties by insertion order. That rank feeds only
//! *observability*: the `Eviction::futility` field of miss outcomes,
//! the AEF statistic and recorder series, and deviation sampling. It
//! never picks victims, except through `max_futility_line`, whose
//! within-class tie order also differs — which is why the `full-assoc`
//! scheme and the `fully-assoc` array keep treap backends in
//! `fs_bench::engine_for` and are excluded from the replay grid here
//! (`max_futility_deviation_is_confined_to_tie_order` pins what *is*
//! guaranteed for them: the same futility class).

use futility_scaling::prelude::*;
use testkit::{check, int_range, vec_of, CaseResult};

const PARTS: usize = 3;
/// Arrays that evict through candidate futility. `FullyAssociative`
/// (index 4 of the batch grid) evicts through `max_futility_line` and
/// is deliberately absent.
const ARRAYS: usize = 4;
const SCHEMES: usize = 6;
/// (treap name, bucket name) — the two coarse families.
const FAMILIES: [(&str, &str); 2] = [("coarse-lru", "coarse-lru-bucket"), ("rrip", "rrip-bucket")];

fn build(array_idx: usize, ranking_name: &str, scheme_idx: usize, seed: u64) -> PartitionedCache {
    let array: Box<dyn cachesim::array::CacheArray> = match array_idx {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(seed))),
        1 => Box::new(SkewAssociative::new(8, 4, seed)),
        2 => Box::new(ZCache::new(8, 4, 8, seed)),
        _ => Box::new(RandomCandidates::new(32, 4, seed)),
    };
    let scheme: Box<dyn PartitionScheme> = match scheme_idx {
        0 => cachesim::evict_max_futility(),
        1 => Box::new(Pf),
        2 => Box::new(Cqvp),
        3 => Box::new(FsFeedback::default_config()),
        4 => Box::new(Vantage::default_config()),
        _ => Box::new(Prism::default_config()),
    };
    let mut cache = PartitionedCache::new(
        array,
        ranking::by_name(ranking_name).unwrap(),
        scheme,
        PARTS,
    );
    cache.set_targets(&[16, 10, 6]);
    cache
}

/// Outcome equality modulo the one documented deviation: the
/// `Eviction::futility` observability field may differ (treap exact
/// rank vs bucket counting rank); everything decision-relevant — hit
/// vs miss, whether an eviction happened, and *which line* from *which
/// pool* was evicted — must be identical.
fn outcomes_agree(a: &AccessOutcome, b: &AccessOutcome) -> bool {
    match (a, b) {
        (AccessOutcome::Hit, AccessOutcome::Hit) => true,
        (AccessOutcome::Miss { evicted: ea }, AccessOutcome::Miss { evicted: eb }) => {
            match (ea, eb) {
                (None, None) => true,
                (Some(x), Some(y)) => x.addr == y.addr && x.part == y.part,
                _ => false,
            }
        }
        _ => false,
    }
}

/// Replay `stream` through a treap-backed and a bucket-backed build of
/// the same cell and require agreement on everything decision-relevant.
fn assert_backends_agree(
    array_idx: usize,
    scheme_idx: usize,
    treap_name: &str,
    bucket_name: &str,
    stream: &[(PartitionId, u64)],
) -> Result<(), String> {
    let ctx = format!("cell {array_idx}/{scheme_idx} {treap_name} vs {bucket_name}");
    let mut treap = build(array_idx, treap_name, scheme_idx, 7);
    let mut bucket = build(array_idx, bucket_name, scheme_idx, 7);
    for (i, &(p, a)) in stream.iter().enumerate() {
        let ot = treap.access(p, a, AccessMeta::default());
        let ob = bucket.access(p, a, AccessMeta::default());
        if !outcomes_agree(&ot, &ob) {
            return Err(format!("{ctx}: access {i} diverged: {ot:?} vs {ob:?}"));
        }
    }
    if treap.time() != bucket.time() {
        return Err(format!("{ctx}: times diverge"));
    }
    if treap.state().actual != bucket.state().actual {
        return Err(format!("{ctx}: occupancies diverge"));
    }
    let (st, sb) = (treap.stats(), bucket.stats());
    if st.total_hits() != sb.total_hits() || st.total_misses() != sb.total_misses() {
        return Err(format!("{ctx}: hit/miss totals diverge"));
    }
    for p in 0..PARTS as u16 {
        let (pa, pb) = (st.partition(PartitionId(p)), sb.partition(PartitionId(p)));
        if (pa.hits, pa.misses, pa.evictions) != (pb.hits, pb.misses, pb.evictions) {
            return Err(format!("{ctx}: partition {p} statistics diverge"));
        }
    }
    Ok(())
}

/// Churn-heavy deterministic stream: the universe is ~10× the cache so
/// victim selection runs on most accesses, with periodic re-touches so
/// futility classes mix.
fn churn_stream(seed: u64, n: usize) -> Vec<(PartitionId, u64)> {
    (0..n as u64)
        .map(|i| {
            let p = PartitionId(((i ^ seed) % PARTS as u64) as u16);
            let addr = if i % 7 < 2 {
                (i * 13) % 24 + p.0 as u64 * 1_000 // resident re-touches
            } else {
                (i * 97 + seed) % 360 + 10_000 + p.0 as u64 * 10_000
            };
            (p, addr)
        })
        .collect()
}

/// Every futility-selecting cell of the grid, both families: the bucket
/// backend must replay the treap backend's decisions exactly.
#[test]
fn bucket_replays_treap_across_grid() {
    let mut failures = Vec::new();
    for array_idx in 0..ARRAYS {
        for scheme_idx in 0..SCHEMES {
            for (treap_name, bucket_name) in FAMILIES {
                let stream = churn_stream((array_idx * 8 + scheme_idx) as u64, 2_500);
                if let Err(e) =
                    assert_backends_agree(array_idx, scheme_idx, treap_name, bucket_name, &stream)
                {
                    failures.push(e);
                }
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Generated case: an access stream plus one grid cell and family.
type AbCase = (Vec<(u16, u64)>, (usize, usize, usize));

fn prop_bucket_matches_treap((raw, (array_idx, scheme_idx, family)): &AbCase) -> CaseResult {
    let (treap_name, bucket_name) = FAMILIES[family % FAMILIES.len()];
    let stream: Vec<(PartitionId, u64)> = raw
        .iter()
        .map(|&(p, base)| {
            let part = PartitionId(p % PARTS as u16);
            // Shared addresses every 5th base so foreign hits (and the
            // retag machinery of Vantage/PriSM) engage.
            let addr = if base % 5 == 0 {
                base
            } else {
                base + part.0 as u64 * 1_000
            };
            (part, addr)
        })
        .collect();
    assert_backends_agree(*array_idx, *scheme_idx, treap_name, bucket_name, &stream)
        .map_err(testkit::Failure::fail)
}

#[test]
fn bucket_matches_treap_property() {
    check(
        "bucket_matches_treap_property",
        &(
            vec_of((int_range(0u16..9), int_range(0u64..200)), 50..900),
            (
                int_range(0usize..ARRAYS),
                int_range(0usize..SCHEMES),
                int_range(0usize..FAMILIES.len()),
            ),
        ),
        prop_bucket_matches_treap,
    );
}

/// Recorder agreement: with identical decisions, every recorded series
/// except `aef` (interval mean eviction futility — fed by the deviating
/// `true_futility`) must match bit-for-bit across backends. The `aef`
/// series must still be *present* on both sides, so the exclusion below
/// stays principled rather than silently widening.
#[test]
fn recorder_rows_match_except_aef() {
    for (array_idx, scheme_idx) in [(0, 3), (2, 0)] {
        for (treap_name, bucket_name) in FAMILIES {
            let ctx = format!("cell {array_idx}/{scheme_idx} {bucket_name}");
            let mut treap = build(array_idx, treap_name, scheme_idx, 7);
            let mut bucket = build(array_idx, bucket_name, scheme_idx, 7);
            treap.attach_timeseries(32, 1 << 12);
            bucket.attach_timeseries(32, 1 << 12);
            for (p, a) in churn_stream(11, 3_000) {
                treap.access(p, a, AccessMeta::default());
                bucket.access(p, a, AccessMeta::default());
            }
            let (ta, tb) = (
                treap.timeseries().expect("recorder attached"),
                bucket.timeseries().expect("recorder attached"),
            );
            assert_eq!(ta.len(), tb.len(), "{ctx}: sample counts diverge");
            let mut saw_aef = false;
            for (a, b) in ta.samples().zip(tb.samples()) {
                assert_eq!(
                    (a.time, a.series, a.part),
                    (b.time, b.series, b.part),
                    "{ctx}"
                );
                if a.series == "aef" {
                    saw_aef = true;
                    continue;
                }
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "{ctx}: sample diverged: {a:?} vs {b:?}"
                );
            }
            assert!(saw_aef, "{ctx}: no aef samples — exclusion is vacuous");
        }
    }
}

/// What the excluded compositions *are* guaranteed: `max_futility_line`
/// may pick a different line within the maximal futility class (tie
/// order), but never a line from a lower class — both backends' picks
/// carry the same coarse futility value at every step.
#[test]
fn max_futility_deviation_is_confined_to_tie_order() {
    const P: PartitionId = PartitionId(0);
    for (treap_name, bucket_name) in FAMILIES {
        let mut treap = ranking::by_name(treap_name).unwrap();
        let mut bucket = ranking::by_name(bucket_name).unwrap();
        for r in [&mut treap, &mut bucket] {
            r.reset(1);
        }
        let mut resident = std::collections::HashSet::new();
        let mut x = 5u64;
        for t in 0..4_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let addr = (x >> 33) % 96;
            let hit = !resident.insert(addr);
            for r in [&mut treap, &mut bucket] {
                if hit {
                    r.on_hit(P, addr, t, AccessMeta::default());
                } else {
                    r.on_insert(P, addr, t, AccessMeta::default());
                }
            }
            if t % 61 == 0 && t > 0 {
                let lt = treap.max_futility_line(P).expect("non-empty pool");
                let lb = bucket.max_futility_line(P).expect("non-empty pool");
                // Same class — compared through the *treap's* futility so
                // a bucket bug cannot vouch for itself.
                assert_eq!(
                    treap.futility(P, lt),
                    treap.futility(P, lb),
                    "{bucket_name}: picks from different futility classes at t={t}"
                );
            }
        }
    }
}
