//! The sharded engine's determinism contract (DESIGN.md §12): every
//! observable output — merged statistics, merged flight-recorder rows,
//! and the per-shard snapshot bytes inside `ShardedEngine::snapshot()`
//! — must be byte-identical for any `--jobs` worker count (1, 2, all
//! shards) and independent of the order in which shards complete
//! their sub-blocks. Shards own disjoint address sets and the merge is
//! shard-keyed, so the only way these can differ is a bug in the
//! splitter, the worker pool, or the merge.

use cachesim::shard_of;
use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, vec_of, CaseResult};

const PARTS: usize = 4;
const SHARDS: usize = 4;
/// Total lines across all shards (small enough to churn constantly).
const LINES: usize = 4 * 256;

fn build(record: bool) -> ShardedEngine {
    let mut e = fs_bench::sharded_engine_for("fs-feedback", LINES, SHARDS, PARTS, 0xC0FFEE);
    if record {
        e.attach_timeseries(64, 256);
    }
    e
}

/// Map a generated `(part, base)` pair to a partition-namespaced
/// address with some cross-partition overlap (every 5th address is
/// shared, so foreign hits and retags occur).
fn addr_of(p: u16, base: u64) -> (PartitionId, u64) {
    let part = PartitionId(p % PARTS as u16);
    let addr = if base.is_multiple_of(5) {
        base
    } else {
        base + part.0 as u64 * 10_000
    };
    (part, addr)
}

fn blocks_of(accesses: &[(u16, u64)], sizes: &[usize]) -> Vec<AccessBlock> {
    let mut out = Vec::new();
    let mut cur = AccessBlock::new();
    let mut sizes = sizes.iter().cycle();
    let mut cap = *sizes.next().unwrap();
    for &(p, base) in accesses {
        let (part, addr) = addr_of(p, base);
        cur.push(part, addr, AccessMeta::default());
        if cur.len() >= cap.max(1) {
            out.push(std::mem::take(&mut cur));
            cap = *sizes.next().unwrap();
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drive `blocks` through a replica at the given job count, returning
/// `(total hits, snapshot bytes, merged recorder rows)`.
fn run_jobs(blocks: &[AccessBlock], jobs: usize, record: bool) -> (u64, Vec<u8>, Vec<Vec<String>>) {
    let mut e = build(record);
    e.set_jobs(jobs);
    let hits: u64 = blocks.iter().map(|b| e.access_batch(b)).sum();
    (hits, e.snapshot(), e.merged_recorder_rows())
}

/// Drive `blocks` by splitting each one manually and applying the
/// sub-blocks to the shards in *reverse* shard order — a sequential
/// stand-in for the most adversarial completion order the worker pool
/// could produce.
fn run_reversed(blocks: &[AccessBlock], record: bool) -> (u64, Vec<u8>, Vec<Vec<String>>) {
    let mut e = build(record);
    let mut hits = 0u64;
    for block in blocks {
        let subs: Vec<AccessBlock> = e.split(block).to_vec();
        for s in (0..SHARDS).rev() {
            if !subs[s].is_empty() {
                hits += e.shard_mut(s).access_batch(&subs[s]);
            }
        }
    }
    (hits, e.snapshot(), e.merged_recorder_rows())
}

/// Generated case: an access stream, a block-size schedule, and
/// whether flight recorders are attached (recorders force the
/// per-shard scalar path, so both per-shard pipelines are covered).
type Case = ((Vec<(u16, u64)>, Vec<usize>), u8);

fn prop_jobs_and_completion_order_invisible(((accesses, sizes), record): &Case) -> CaseResult {
    let record = *record == 1;
    let blocks = blocks_of(accesses, sizes);
    let (h1, snap1, rows1) = run_jobs(&blocks, 1, record);
    let (h2, snap2, rows2) = run_jobs(&blocks, 2, record);
    let (hn, snapn, rowsn) = run_jobs(&blocks, SHARDS, record);
    let (hr, snapr, rowsr) = run_reversed(&blocks, record);

    tk_assert!(h1 == h2, "hits: jobs=1 vs jobs=2 ({h1} vs {h2})");
    tk_assert!(h1 == hn, "hits: jobs=1 vs jobs=N ({h1} vs {hn})");
    tk_assert!(
        h1 == hr,
        "hits: jobs=1 vs reversed completion ({h1} vs {hr})"
    );
    tk_assert!(snap1 == snap2, "snapshot bytes: jobs=1 vs jobs=2");
    tk_assert!(snap1 == snapn, "snapshot bytes: jobs=1 vs jobs=N");
    tk_assert!(snap1 == snapr, "snapshot bytes: jobs=1 vs reversed");
    tk_assert!(rows1 == rows2, "recorder rows: jobs=1 vs jobs=2");
    tk_assert!(rows1 == rowsn, "recorder rows: jobs=1 vs jobs=N");
    tk_assert!(rows1 == rowsr, "recorder rows: jobs=1 vs reversed");
    Ok(())
}

/// Sanity: with recorders attached and enough traffic to pass each
/// shard's cadence, the merged rows are non-empty and shard-keyed (so
/// the property above isn't comparing empty vectors).
#[test]
fn recorder_rows_are_produced_and_shard_keyed() {
    let accesses: Vec<(u16, u64)> = (0..20_000u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
            ((x % 13) as u16, x % 2_048)
        })
        .collect();
    let blocks = blocks_of(&accesses, &[256]);
    let (_, _, rows) = run_jobs(&blocks, SHARDS, true);
    assert!(!rows.is_empty());
    for row in &rows {
        let shard: usize = row[0].parse().expect("shard column");
        assert!(shard < SHARDS, "{row:?}");
    }
}

#[test]
fn jobs_and_completion_order_are_unobservable() {
    let gen = (
        (
            vec_of((int_range(0u16..8), int_range(0u64..2_000)), 1..1_500),
            vec_of(int_range(1usize..200), 1..6),
        ),
        int_range(0u8..2),
    );
    check(
        "sharded_jobs_invariance",
        &gen,
        prop_jobs_and_completion_order_invisible,
    );
}

/// Merged statistics agree field-by-field across job counts (the
/// snapshot comparison above covers per-shard stats bit-exactly; this
/// pins the *merge* itself, including the lazy deviation sums).
#[test]
fn merged_stats_are_jobs_invariant() {
    let accesses: Vec<(u16, u64)> = (0..40_000u64)
        .map(|i| {
            let x = i.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((x % 97) as u16, (x >> 16) % 3_000)
        })
        .collect();
    let blocks = blocks_of(&accesses, &[300]);
    let stats: Vec<_> = [1usize, 2, SHARDS]
        .into_iter()
        .map(|jobs| {
            let mut e = build(false);
            e.set_jobs(jobs);
            for b in &blocks {
                e.access_batch(b);
            }
            e.merged_stats()
        })
        .collect();
    let base = &stats[0];
    assert!(base.total_hits() > 0 && base.total_misses() > 0);
    for other in &stats[1..] {
        assert_eq!(base.total_hits(), other.total_hits());
        assert_eq!(base.total_misses(), other.total_misses());
        for p in 0..PARTS {
            let id = PartitionId(p as u16);
            let (a, b) = (base.partition(id), other.partition(id));
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.misses, b.misses);
            assert_eq!(a.evictions, b.evictions);
            assert_eq!(
                a.evict_futility_sum.to_bits(),
                b.evict_futility_sum.to_bits()
            );
            assert_eq!(base.size_mad(id).to_bits(), other.size_mad(id).to_bits());
            assert_eq!(
                base.avg_occupancy(id).to_bits(),
                other.avg_occupancy(id).to_bits()
            );
            assert_eq!(base.size_dev_samples(id), other.size_dev_samples(id));
        }
    }
}

/// The splitter is a pure function of the address: the same trace
/// split twice yields the same sub-blocks, each an in-order
/// subsequence of the original owned by that shard.
#[test]
fn split_is_stable_and_order_preserving() {
    let mut e = build(false);
    let mut block = AccessBlock::new();
    for i in 0..5_000u64 {
        let x = i.wrapping_mul(0x9E3779B97F4A7C15);
        let (part, addr) = addr_of((x % 11) as u16, x % 4_096);
        block.push(part, addr, AccessMeta::default());
    }
    let first: Vec<AccessBlock> = e.split(&block).to_vec();
    let second: Vec<AccessBlock> = e.split(&block).to_vec();
    for s in 0..SHARDS {
        assert_eq!(first[s].addrs(), second[s].addrs(), "shard {s}");
        let expect: Vec<u64> = block
            .addrs()
            .iter()
            .copied()
            .filter(|&a| shard_of(SHARDS, a) == s)
            .collect();
        assert_eq!(first[s].addrs(), expect.as_slice(), "shard {s}");
    }
    assert_eq!(
        first.iter().map(|b| b.len()).sum::<usize>(),
        block.len(),
        "no access may be lost or duplicated"
    );
}
