//! The flight recorder is an observer: attaching it must not change
//! simulation behavior. A testkit property drives two identical caches
//! — one with a `TimeSeriesRecorder`, one without — through the same
//! generated access sequence and demands identical outcomes (hit/miss,
//! evicted line and futility), identical final stats, and identical
//! partition state, for every scheme/array/ranking combination drawn.

use futility_scaling::prelude::*;
use testkit::{check, int_range, tk_assert, tk_assert_eq, vec_of, CaseResult};

fn build(scheme_idx: usize, array_idx: usize, ranking_idx: usize, seed: u64) -> PartitionedCache {
    let scheme: Box<dyn PartitionScheme> = match scheme_idx {
        0 => Box::new(Pf),
        1 => Box::new(FsFeedback::default_config()),
        2 => Box::new(FsAnalytic::with_alphas(vec![1.0, 4.0, 16.0])),
        3 => Box::new(Vantage::default_config()),
        _ => Box::new(Prism::default_config()),
    };
    let array: Box<dyn cachesim::array::CacheArray> = match array_idx {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(seed))),
        1 => Box::new(RandomCandidates::new(32, 4, seed)),
        _ => Box::new(SkewAssociative::new(8, 4, seed)),
    };
    let ranking = ranking::by_name(["lru", "coarse-lru", "lfu"][ranking_idx]).unwrap();
    let mut cache = PartitionedCache::new(array, ranking, scheme, 3);
    cache.set_targets(&[16, 10, 6]);
    cache
}

type ObserverCase = ((Vec<(u16, u64)>, u64), (usize, usize, usize));

fn prop_recorder_is_pure_observer(
    ((accesses, cadence), (scheme_idx, array_idx, ranking_idx)): &ObserverCase,
) -> CaseResult {
    let mut plain = build(*scheme_idx, *array_idx, *ranking_idx, 7);
    let mut recorded = build(*scheme_idx, *array_idx, *ranking_idx, 7);
    recorded.attach_timeseries(*cadence, 1 << 12);

    for &(p, base) in accesses {
        let part = PartitionId(p);
        let addr = base + (p as u64) * 1_000;
        let a = plain.access(part, addr, AccessMeta::default());
        let b = recorded.access(part, addr, AccessMeta::default());
        tk_assert_eq!(a.is_hit(), b.is_hit());
        match (a.eviction(), b.eviction()) {
            (None, None) => {}
            (Some(ea), Some(eb)) => {
                tk_assert_eq!(ea.addr, eb.addr);
                tk_assert!((ea.futility - eb.futility).abs() < 1e-12);
            }
            _ => return Err(testkit::Failure::fail("eviction presence diverged")),
        }
    }

    // Final aggregate state matches exactly.
    tk_assert_eq!(plain.state().actual, recorded.state().actual);
    let (sa, sb) = (plain.stats(), recorded.stats());
    tk_assert_eq!(sa.total_hits(), sb.total_hits());
    tk_assert_eq!(sa.total_misses(), sb.total_misses());
    for p in 0..3u16 {
        let (pa, pb) = (sa.partition(PartitionId(p)), sb.partition(PartitionId(p)));
        tk_assert_eq!(pa.evictions, pb.evictions);
        tk_assert!((pa.evict_futility_sum - pb.evict_futility_sum).abs() < 1e-9);
    }

    // And the recorder actually recorded: one occupancy sample per
    // partition per cadence tick that fit in the ring.
    let ts = recorded.timeseries().expect("recorder attached");
    let expected_ticks = accesses.len() as u64 / cadence;
    if expected_ticks > 0 {
        tk_assert!(!ts.is_empty(), "no samples despite {expected_ticks} ticks");
        let occ = ts.samples().filter(|s| s.series == "occupancy").count();
        tk_assert!(occ >= 3, "fewer occupancy samples than partitions");
    }
    Ok(())
}

#[test]
fn recorder_is_pure_observer() {
    check(
        "recorder_is_pure_observer",
        &(
            (
                vec_of((int_range(0u16..3), int_range(0u64..120)), 1..600),
                int_range(1u64..40),
            ),
            (
                int_range(0usize..5),
                int_range(0usize..3),
                int_range(0usize..3),
            ),
        ),
        prop_recorder_is_pure_observer,
    );
}

/// Scheme telemetry probes surface through the recorder for the
/// schemes that define them, with finite values and sane partitions.
#[test]
fn scheme_probes_flow_through_recorder() {
    for (idx, series) in [
        (1usize, "shift_width"), // FsFeedback
        (3, "aperture"),         // Vantage
        (4, "evict_prob"),       // PriSM
    ] {
        let mut cache = build(idx, 1, 0, 11);
        cache.attach_timeseries(16, 1 << 12);
        for i in 0..2_000u64 {
            let p = (i % 3) as u16;
            cache.access(
                PartitionId(p),
                (i * 37) % 120 + p as u64 * 1_000,
                AccessMeta::default(),
            );
        }
        let ts = cache.timeseries().expect("recorder attached");
        let probes: Vec<_> = ts.samples().filter(|s| s.series == series).collect();
        assert!(!probes.is_empty(), "scheme {idx}: no `{series}` probes");
        for s in probes {
            assert!(s.value.is_finite(), "{series} not finite: {}", s.value);
            assert!(s.part.is_some(), "{series} must be per-partition");
        }
    }
}
