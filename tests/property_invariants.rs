//! Property-based tests (testkit) of the core data-structure and
//! engine invariants, cross-checked against reference models.
//!
//! Each property is a plain function from a generated value to
//! [`testkit::CaseResult`], so pinned regression inputs (found by
//! earlier shrinking runs) replay as ordinary named unit tests below.
//! To reproduce a reported failure case, re-run with the seed from the
//! panic message: `TESTKIT_SEED=0x... cargo test -q <test_name>`.

use cachesim::ostree::OsTreap;
use futility_scaling::prelude::*;
use std::collections::{BTreeSet, HashSet};
use testkit::{check, int_range, set_of, tk_assert, tk_assert_eq, vec_of, CaseResult, Failure};

/// The order-statistic treap agrees with a BTreeSet reference model
/// under arbitrary insert/remove/rank/select sequences.
fn prop_ostree_matches_btreeset(ops: &[(u8, u64)]) -> CaseResult {
    let mut treap: OsTreap<(u64, u64)> = OsTreap::new(42);
    let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
    for &(op, k) in ops {
        let key = (k, 0u64);
        match op {
            0 => tk_assert_eq!(treap.insert(key), model.insert(key)),
            1 => tk_assert_eq!(treap.remove(&key), model.remove(&key)),
            2 => {
                let expect = model.range(..key).count();
                tk_assert_eq!(treap.rank(&key), expect);
            }
            _ => {
                let r = (k as usize) % (model.len() + 1);
                tk_assert_eq!(treap.select(r), model.iter().nth(r));
            }
        }
        tk_assert_eq!(treap.len(), model.len());
        tk_assert_eq!(treap.min(), model.iter().next());
        tk_assert_eq!(treap.max(), model.iter().next_back());
    }
    Ok(())
}

#[test]
fn ostree_matches_btreeset() {
    check(
        "ostree_matches_btreeset",
        &vec_of((int_range(0u8..4), int_range(0u64..200)), 1..400),
        |ops| prop_ostree_matches_btreeset(ops),
    );
}

/// Engine invariants hold for any access sequence, scheme and array:
/// occupancy equals the sum of partition sizes, resident lines are
/// findable, hits + misses equals accesses.
fn prop_engine_invariants_hold(
    (accesses, scheme_idx, array_idx): &(Vec<(u16, u64)>, usize, usize),
) -> CaseResult {
    let scheme: Box<dyn PartitionScheme> = match scheme_idx {
        0 => Box::new(Pf),
        1 => Box::new(FsFeedback::default_config()),
        2 => Box::new(Cqvp),
        _ => Box::new(Vantage::default_config()),
    };
    let array: Box<dyn cachesim::array::CacheArray> = match array_idx {
        0 => Box::new(SetAssociative::new(8, 4, LineHash::new(1))),
        1 => Box::new(RandomCandidates::new(32, 4, 2)),
        _ => Box::new(SkewAssociative::new(8, 4, 3)),
    };
    let mut cache = PartitionedCache::new(array, Box::new(ExactLru::new()), scheme, 3);
    let mut resident: HashSet<u64> = HashSet::new();
    let mut n = 0u64;
    for &(p, base) in accesses {
        let part = PartitionId(p);
        let addr = base + (p as u64) * 1_000; // per-partition namespaces
        let out = cache.access(part, addr, AccessMeta::default());
        n += 1;
        if out.is_hit() {
            tk_assert!(resident.contains(&addr), "hit on non-resident line");
        } else {
            if let Some(ev) = out.eviction() {
                tk_assert!(resident.remove(&ev.addr), "evicted a ghost line");
                tk_assert!(ev.futility >= 0.0 && ev.futility <= 1.0);
            }
            resident.insert(addr);
        }
        // Cross-check engine state against the model.
        let state = cache.state();
        tk_assert_eq!(state.actual.iter().sum::<usize>(), cache.array().occupied());
        tk_assert_eq!(cache.array().occupied(), resident.len());
    }
    let stats = cache.stats();
    tk_assert_eq!(stats.total_hits() + stats.total_misses(), n);
    for &addr in &resident {
        tk_assert!(cache.array().lookup(addr).is_some(), "resident line lost");
    }
    Ok(())
}

#[test]
fn engine_invariants_hold() {
    check(
        "engine_invariants_hold",
        &(
            vec_of((int_range(0u16..3), int_range(0u64..120)), 1..800),
            int_range(0usize..4),
            int_range(0usize..3),
        ),
        prop_engine_invariants_hold,
    );
}

/// Every ranking reports futility in [0, 1] for tracked lines —
/// strictly positive for the exact rankings, while the coarse
/// hardware approximations (coarse-lru, rrip) may report 0 for
/// lines tagged in the current timestamp bucket — and its
/// most-futile line indeed has the maximum futility.
fn prop_ranking_futility_is_normalized((name_idx, lines): &(usize, HashSet<u64>)) -> CaseResult {
    let name = ranking::ALL_RANKINGS[*name_idx];
    let exact = matches!(name, "lru" | "lfu" | "opt" | "random");
    let mut r = ranking::by_name(name).expect("ranking exists");
    r.reset(1);
    let p = PartitionId(0);
    for (t, &addr) in lines.iter().enumerate() {
        r.on_insert(p, addr, t as u64 + 1, AccessMeta::with_next_use(addr * 3));
    }
    tk_assert_eq!(r.pool_len(p), lines.len());
    let mut max_f = 0.0f64;
    for &addr in lines {
        let f = r.futility(p, addr);
        tk_assert!(
            (0.0..=1.0).contains(&f) && (!exact || f > 0.0),
            "futility {f} out of range for {name}"
        );
        max_f = max_f.max(f);
    }
    if let Some(top) = r.max_futility_line(p) {
        tk_assert!(lines.contains(&top));
        tk_assert!((r.futility(p, top) - max_f).abs() < 1e-9);
    }
    // Untracked lines report zero.
    tk_assert_eq!(r.futility(p, 10_000), 0.0);
    Ok(())
}

#[test]
fn ranking_futility_is_normalized() {
    check(
        "ranking_futility_is_normalized",
        &(int_range(0usize..6), set_of(int_range(0u64..500), 1..60)),
        prop_ranking_futility_is_normalized,
    );
}

/// Pinned proptest counterexample: the coarse-lru ranking with a pool
/// whose newest timestamp bucket once broke the max-futility agreement.
#[test]
fn ranking_futility_regression_coarse_timestamp_bucket() {
    let lines: HashSet<u64> = [
        18, 1, 152, 473, 3, 14, 5, 13, 20, 436, 11, 46, 9, 4, 12, 435, 238, 151, 16, 10, 19, 15, 6,
        0, 7, 17, 101, 497, 2, 130, 123, 8,
    ]
    .into_iter()
    .collect();
    assert_case_holds(prop_ranking_futility_is_normalized(&(1, lines)));
}

/// The analytic solver's scaling factors reproduce the requested
/// insertion fractions for random feasible configurations.
fn prop_scaling_solver_satisfies_balance((raw, sizes_raw): &(Vec<u32>, Vec<u32>)) -> CaseResult {
    let n = raw.len().min(sizes_raw.len());
    let tot_i: u32 = raw[..n].iter().sum();
    let tot_s: u32 = sizes_raw[..n].iter().sum();
    let insertions: Vec<f64> = raw[..n].iter().map(|&x| x as f64 / tot_i as f64).collect();
    let sizes: Vec<f64> = sizes_raw[..n]
        .iter()
        .map(|&x| x as f64 / tot_s as f64)
        .collect();
    // Skip draws the (subset-generalized) feasibility bound rejects.
    use futility_core::scaling::ScalingError;
    let alphas = match futility_core::scaling::solve_scaling_factors(&insertions, &sizes, 16) {
        Ok(a) => a,
        Err(ScalingError::Infeasible { .. }) => return Err(Failure::Reject),
        Err(e) => return Err(Failure::fail(format!("must solve: {e}"))),
    };
    let e = futility_core::scaling::eviction_fractions(&sizes, &alphas, 16);
    for (ei, ii) in e.iter().zip(&insertions) {
        tk_assert!((ei - ii).abs() < 1e-3, "E {ei} vs I {ii}");
    }
    let min = alphas.iter().cloned().fold(f64::INFINITY, f64::min);
    tk_assert!((min - 1.0).abs() < 1e-9, "normalized to min 1");
    Ok(())
}

#[test]
fn scaling_solver_satisfies_balance() {
    check(
        "scaling_solver_satisfies_balance",
        &(
            vec_of(int_range(1u32..20), 2..5),
            vec_of(int_range(1u32..20), 2..5),
        ),
        prop_scaling_solver_satisfies_balance,
    );
}

/// Pinned proptest counterexample: a dominant-insertion partition
/// (I = 13/15) with the smallest size share once made the solver blow
/// past the balance tolerance instead of reporting infeasibility.
#[test]
fn scaling_solver_regression_dominant_insertion_share() {
    assert_case_holds(prop_scaling_solver_satisfies_balance(&(
        vec![13, 1, 1],
        vec![1, 3, 5],
    )));
}

/// Trace next-use annotation is self-consistent: the annotated
/// index always points at the next occurrence of the same address.
fn prop_next_use_annotation_is_consistent(addrs: &[u64]) -> CaseResult {
    let trace = Trace::from_addrs(addrs.iter().copied(), 1);
    let next = trace.annotate_next_use();
    for (i, &nu) in next.iter().enumerate() {
        if nu == cachesim::NO_NEXT_USE {
            tk_assert!(
                !addrs[i + 1..].contains(&addrs[i]),
                "claimed dead but reused"
            );
        } else {
            let j = nu as usize;
            tk_assert!(j > i);
            tk_assert_eq!(addrs[j], addrs[i]);
            tk_assert!(!addrs[i + 1..j].contains(&addrs[i]), "skipped a use");
        }
    }
    Ok(())
}

#[test]
fn next_use_annotation_is_consistent() {
    check(
        "next_use_annotation_is_consistent",
        &vec_of(int_range(0u64..30), 1..200),
        |addrs| prop_next_use_annotation_is_consistent(addrs),
    );
}

/// Belady optimality in miniature: on a fully-associative cache of
/// any size, the OPT ranking never yields fewer hits than LRU for
/// the same trace.
fn prop_opt_dominates_lru_on_fully_associative((addrs, cap): &(Vec<u64>, usize)) -> CaseResult {
    let trace = Trace::from_addrs(addrs.iter().copied(), 1);
    let hits = |ranking: Box<dyn cachesim::FutilityRanking>| -> u64 {
        let mut cache = PartitionedCache::new(
            Box::new(FullyAssociative::new(*cap)),
            ranking,
            cachesim::evict_max_futility(),
            1,
        );
        for (a, nu) in trace.iter_with_next_use() {
            cache.access(PartitionId(0), a.addr, AccessMeta::with_next_use(nu));
        }
        cache.stats().total_hits()
    };
    let opt_hits = hits(Box::new(Opt::new()));
    let lru_hits = hits(Box::new(ExactLru::new()));
    tk_assert!(
        opt_hits >= lru_hits,
        "OPT {opt_hits} must dominate LRU {lru_hits} at capacity {cap}"
    );
    Ok(())
}

#[test]
fn opt_dominates_lru_on_fully_associative() {
    check(
        "opt_dominates_lru_on_fully_associative",
        &(vec_of(int_range(0u64..40), 50..400), int_range(2usize..16)),
        prop_opt_dominates_lru_on_fully_associative,
    );
}

/// `futility_batch` must be bitwise identical to per-candidate scalar
/// `futility` for every ranking (the engine routes all miss-path
/// futility through the batch API, so any divergence would silently
/// change victim selection). Pools are populated by a random
/// insert/hit/evict/retag history; probes mix resident and untracked
/// lines; the batch runs twice to check scratch-buffer reuse.
/// (ranking index, op history as `(op, pool, addr)`, probes as
/// `(pool, addr)`) — the generated input for the batch-vs-scalar
/// property below.
type BatchCase = (usize, Vec<(u8, u16, u64)>, Vec<(u16, u64)>);

fn prop_futility_batch_matches_scalar((name_idx, ops, probes): &BatchCase) -> CaseResult {
    const POOLS: usize = 3;
    // Index 6 is the cachesim-internal reference ranking; 0..6 are the
    // ranking crate's implementations.
    let (name, mut r): (&str, Box<dyn cachesim::FutilityRanking>) = if *name_idx == 6 {
        ("naive-lru", cachesim::naive_lru())
    } else {
        let n = ranking::ALL_RANKINGS[*name_idx];
        (n, ranking::by_name(n).expect("ranking exists"))
    };
    r.reset(POOLS);

    // Replay a valid history: each address lives in at most one pool at
    // a time, exactly as the engine guarantees.
    let mut home: std::collections::HashMap<u64, PartitionId> = std::collections::HashMap::new();
    let mut time = 0u64;
    for &(op, p_raw, addr) in ops {
        time += 1;
        let p = PartitionId(p_raw % POOLS as u16);
        let meta = AccessMeta::with_next_use(time * 7 + addr);
        match (op % 4, home.get(&addr).copied()) {
            (0, None) => {
                r.on_insert(p, addr, time, meta);
                home.insert(addr, p);
            }
            (1, Some(cur)) => r.on_hit(cur, addr, time, meta),
            (2, Some(cur)) => {
                r.on_evict(cur, addr);
                home.remove(&addr);
            }
            (3, Some(cur)) if cur != p => {
                r.on_retag(cur, p, addr);
                home.insert(addr, p);
            }
            _ => {}
        }
    }

    // Candidates as the engine would build them: resident lines carry
    // their true pool, untracked probes an arbitrary one.
    let cands: Vec<Candidate> = probes
        .iter()
        .enumerate()
        .map(|(i, &(p_raw, addr))| Candidate {
            slot: i as u32,
            addr,
            part: home
                .get(&addr)
                .copied()
                .unwrap_or(PartitionId(p_raw % POOLS as u16)),
            futility: 0.0,
        })
        .collect();
    let expected: Vec<f64> = cands.iter().map(|c| r.futility(c.part, c.addr)).collect();

    for round in 0..2 {
        let mut batch = cands.clone();
        r.futility_batch(&mut batch);
        for (c, &want) in batch.iter().zip(&expected) {
            tk_assert!(
                c.futility.to_bits() == want.to_bits(),
                "{name} round {round}: batch {} != scalar {} for addr {} pool {:?}",
                c.futility,
                want,
                c.addr,
                c.part
            );
        }
    }
    Ok(())
}

#[test]
fn futility_batch_matches_scalar() {
    check(
        "futility_batch_matches_scalar",
        &(
            int_range(0usize..7),
            vec_of(
                (int_range(0u8..4), int_range(0u16..4), int_range(0u64..90)),
                1..300,
            ),
            vec_of((int_range(0u16..4), int_range(0u64..120)), 1..24),
        ),
        prop_futility_batch_matches_scalar,
    );
}

/// A pinned case passes if the property holds or the case is rejected
/// by its precondition (e.g. the solver now reports infeasibility where
/// it once mis-solved) — only a property violation fails.
fn assert_case_holds(result: CaseResult) {
    if let Err(Failure::Fail(msg)) = result {
        panic!("pinned regression case failed: {msg}");
    }
}
