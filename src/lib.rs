#![warn(missing_docs)]

//! # futility-scaling
//!
//! A from-scratch Rust reproduction of *"Futility Scaling:
//! High-Associativity Cache Partitioning"* (Ruisheng Wang and Lizhong
//! Chen, MICRO 2014): the Futility Scaling enforcement scheme, the
//! baselines it is compared against (Partitioning-First, CQVP, PriSM,
//! Vantage, the FullAssoc ideal), the cache-array and futility-ranking
//! substrate they all run on, synthetic SPEC-like workloads, and a
//! QoS-enabled CMP timing simulator.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `cachesim` | cache arrays, engine, trait definitions |
//! | [`rankings`] | `ranking` | LRU / coarse-LRU / LFU / OPT / random futility |
//! | [`fs`] | `futility-core` | analytic + feedback Futility Scaling |
//! | [`schemes`] | `baselines` | PF, CQVP, PriSM, Vantage, FullAssoc |
//! | [`spec_workloads`] | `workloads` | synthetic SPEC-like traces, drivers |
//! | [`qos`] | `simqos` | CMP timing model, allocation policies |
//! | [`tenants`] | `tenancy` | QoS builder, utility allocator, closed loop |
//! | [`reports`] | `analysis` | CDFs, summaries, tables |
//!
//! # Quickstart
//!
//! ```
//! use futility_scaling::prelude::*;
//!
//! // A 1MB, 16-way hashed cache split 3:1 between two partitions,
//! // enforced by feedback-based Futility Scaling over coarse LRU.
//! let mut cache = PartitionedCache::new(
//!     Box::new(SetAssociative::with_lines(16_384, 16, LineHash::new(1))),
//!     Box::new(CoarseLru::new()),
//!     Box::new(FsFeedback::default_config()),
//!     2,
//! );
//! cache.set_targets(&[12_288, 4_096]);
//! for i in 0..150_000u64 {
//!     let part = PartitionId((i % 2) as u16);
//!     let addr = (i * 37) % 40_000 + part.index() as u64 * 1_000_000;
//!     cache.access(part, addr, AccessMeta::default());
//! }
//! let s = cache.state();
//! assert!((s.actual[0] as f64 / 12_288.0 - 1.0).abs() < 0.08);
//! ```

pub use analysis as reports;
pub use baselines as schemes;
pub use cachesim as sim;
pub use futility_core as fs;
pub use ranking as rankings;
pub use simqos as qos;
pub use tenancy as tenants;
pub use workloads as spec_workloads;

/// The most common imports for working with the library.
pub mod prelude {
    pub use baselines::{Cqvp, FullAssocIdeal, Pf, Prism, Vantage, WayPartitioned};
    pub use cachesim::array::{
        FullyAssociative, RandomCandidates, SetAssociative, SkewAssociative, ZCache,
    };
    pub use cachesim::hashing::{H3Hash, LineHash, ModuloIndex, XorFold};
    pub use cachesim::{
        AccessBlock, AccessMeta, AccessOutcome, Candidate, Engine, EngineCore, FutilityRanking,
        PartitionId, PartitionScheme, PartitionState, PartitionedCache, ShardedEngine, Trace,
        VictimDecision,
    };
    pub use futility_core::{FeedbackConfig, FsAnalytic, FsFeedback};
    pub use ranking::{CoarseLru, ExactLru, Lfu, Opt, RandomRanking, Rrip};
    pub use simqos::{System, SystemConfig, Thread};
    pub use tenancy::{QosBuilder, TenancyDriver, TenantSpec, UmonConfig, UtilityAllocator};
    pub use workloads::{benchmark, BenchmarkProfile, InterleavedDriver, RateControlledDriver};
}
