#!/bin/bash
# Offline-safe CI gate: build, test, format, lint. The workspace has no
# external dependencies, so every step works with the network disabled.
set -eu
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
