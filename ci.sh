#!/bin/bash
# Offline-safe CI gate: build, test, format, lint. The workspace has no
# external dependencies, so every step works with the network disabled.
set -eu
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== unsafe-adjacent structure checks (miri or debug-assertions) =="
# The arena-backed treaps (ostree) use unchecked indexing in release,
# the fxmap hasher feeds every hot map, the swar bit-twiddled argmax
# drives byte-lane victim selection, and the bucketrank slab arena
# (intrusive doubly-linked bucket lists behind the coarse fast lane)
# splices raw u32 indices; run their unit tests under Miri when the
# component exists, otherwise under an optimized build with debug
# assertions re-enabled so the debug_assert! bounds and invariant
# checks fire in release-equivalent codegen.
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -q -p cachesim -- ostree:: fxmap:: swar:: bucketrank::
else
    RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on" \
        cargo test -q --release --offline -p cachesim -- ostree:: fxmap:: swar:: bucketrank::
fi

echo "== bench_engine --smoke =="
# Throughput trajectory: sweep the full array × ranking × scheme grid,
# check the emitted file has every cell and a sane geomean (the validate
# step prints it into the CI log), and gate on the committed baseline —
# a >10% geomean drop vs BENCH_engine.json fails CI. The fresh run then
# replaces the trajectory file.
cargo run --release --offline -q -p fs-bench --bin bench_engine -- --smoke --out BENCH_engine.new.json
cargo run --release --offline -q -p fs-bench --bin bench_engine -- --validate BENCH_engine.new.json --against BENCH_engine.json
mv BENCH_engine.new.json BENCH_engine.json

echo "== bench_sharded --smoke (oracle + jobs-invariance + throughput gates) =="
# Sharded scale-out smoke: the sweep itself exits non-zero if any
# fs-feedback cell's measured miss rate drifts from the Che/Fagin
# oracle beyond the documented tolerance. The two deterministic
# outputs (validation + merged time-series CSVs) must then be
# byte-identical under a different worker count, and the throughput
# trajectory is gated against the committed baseline like bench_engine.
cargo run --release --offline -q -p fs-bench --bin bench_sharded -- --smoke --jobs 1 --out BENCH_sharded.new.json
cp results/sharded_validation.csv results/sharded_validation.jobs1.csv
cp results/sharded_timeseries.csv results/sharded_timeseries.jobs1.csv
cargo run --release --offline -q -p fs-bench --bin bench_sharded -- --smoke --jobs 3 --out BENCH_sharded.jobs3.json
cmp results/sharded_validation.csv results/sharded_validation.jobs1.csv
cmp results/sharded_timeseries.csv results/sharded_timeseries.jobs1.csv
rm results/sharded_validation.jobs1.csv results/sharded_timeseries.jobs1.csv BENCH_sharded.jobs3.json
cargo run --release --offline -q -p fs-bench --bin bench_sharded -- --validate BENCH_sharded.new.json --against BENCH_sharded.json
mv BENCH_sharded.new.json BENCH_sharded.json

echo "== tenancy_storm --smoke (QoS storm + golden hash + jobs-invariance gates) =="
# Multi-tenant QoS smoke: the bin itself exits non-zero unless
# fs-feedback holds the utility-re-solved targets tighter (pooled
# storm-phase occupancy MAD) than both Vantage and PriSM, and unless
# all three schemes saw the identical re-solve trajectory. The two
# CSVs must then be byte-identical under a different worker count, and
# both are pinned by golden content hashes — the closed loop (traffic,
# re-solves, enforcement) is fully deterministic, so any diff is a
# behavior change to re-pin deliberately.
cargo run --release --offline -q -p fs-bench --bin tenancy_storm -- --smoke --jobs 1
cp results/tenancy_storm.csv results/tenancy_storm.jobs1.csv
cp results/tenancy_storm_resolves.csv results/tenancy_storm_resolves.jobs1.csv
cargo run --release --offline -q -p fs-bench --bin tenancy_storm -- --smoke --jobs 3
cmp results/tenancy_storm.csv results/tenancy_storm.jobs1.csv
cmp results/tenancy_storm_resolves.csv results/tenancy_storm_resolves.jobs1.csv
rm results/tenancy_storm.jobs1.csv results/tenancy_storm_resolves.jobs1.csv
sha256sum -c - <<'GOLDEN'
0a73f2d9009270fa8a3516ebe89648e754715bfa68d63910fb703ec1f6b087ab  results/tenancy_storm.csv
ddb36dcde06cf81e09ab7e056540fbad4b6802a87dbc5c416f88dc734a953456  results/tenancy_storm_resolves.csv
GOLDEN

echo "== trace_dynamics --smoke =="
# Flight-recorder smoke: the time-series observability path end to end
# (recorder, scheme telemetry, CSV emission, ASCII rendering).
cargo run --release --offline -q -p fs-bench --bin trace_dynamics -- --smoke

echo "== checkpoint/resume replay gate (fig5 --smoke) =="
# Byte-identical replay proof at the binary level. Three runs of the
# same experiment in a scratch directory:
#   1. golden        — uninterrupted;
#   2. checkpointed  — --checkpoint-every: chunked with snapshots after
#                      every chunk, must be a pure observer;
#   3. interrupted   — stopped mid-run (--stop-after), then resumed from
#                      its checkpoint files, must land on the same CSVs.
# Both the figure CSV and the flight-recorder time series are compared
# byte for byte against the golden run.
CKPT_TMP=$(mktemp -d)
trap 'rm -rf "$CKPT_TMP"' EXIT
FIG5="$PWD/target/release/fig5"
(
    cd "$CKPT_TMP"
    "$FIG5" --smoke >/dev/null
    cp results/fig5_size_deviation.csv golden.csv
    cp results/fig5_size_deviation_timeseries.csv golden_ts.csv

    "$FIG5" --smoke --checkpoint-every 500 >/dev/null
    cmp results/fig5_size_deviation.csv golden.csv
    cmp results/fig5_size_deviation_timeseries.csv golden_ts.csv

    rm -rf results/checkpoints
    "$FIG5" --smoke --checkpoint-every 500 --stop-after 1000 >/dev/null
    mv results/checkpoints interrupted
    "$FIG5" --smoke --resume interrupted >/dev/null
    cmp results/fig5_size_deviation.csv golden.csv
    cmp results/fig5_size_deviation_timeseries.csv golden_ts.csv
)

echo "CI OK"
