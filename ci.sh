#!/bin/bash
# Offline-safe CI gate: build, test, format, lint. The workspace has no
# external dependencies, so every step works with the network disabled.
set -eu
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== unsafe-adjacent structure checks (miri or debug-assertions) =="
# The arena-backed treaps (ostree) use unchecked indexing in release,
# and the fxmap hasher feeds every hot map; run their unit tests under
# Miri when the component exists, otherwise under an optimized build
# with debug assertions re-enabled so the debug_assert! bounds and
# invariant checks fire in release-equivalent codegen.
if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -q -p cachesim -- ostree:: fxmap::
else
    RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on" \
        cargo test -q --release --offline -p cachesim -- ostree:: fxmap::
fi

echo "== bench_engine --smoke =="
# Throughput trajectory: sweep the full array × ranking × scheme grid,
# check the emitted file has every cell and a sane geomean (the validate
# step prints it into the CI log), and gate on the committed baseline —
# a >10% geomean drop vs BENCH_engine.json fails CI. The fresh run then
# replaces the trajectory file.
cargo run --release --offline -q -p fs-bench --bin bench_engine -- --smoke --out BENCH_engine.new.json
cargo run --release --offline -q -p fs-bench --bin bench_engine -- --validate BENCH_engine.new.json --against BENCH_engine.json
mv BENCH_engine.new.json BENCH_engine.json

echo "== trace_dynamics --smoke =="
# Flight-recorder smoke: the time-series observability path end to end
# (recorder, scheme telemetry, CSV emission, ASCII rendering).
cargo run --release --offline -q -p fs-bench --bin trace_dynamics -- --smoke

echo "CI OK"
