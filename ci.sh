#!/bin/bash
# Offline-safe CI gate: build, test, format, lint. The workspace has no
# external dependencies, so every step works with the network disabled.
set -eu
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== bench_engine --smoke =="
# Throughput trajectory: sweep the full array × ranking × scheme grid,
# then check the emitted file has every cell and a sane geomean (the
# validate step prints it into the CI log).
cargo run --release --offline -q -p fs-bench --bin bench_engine -- --smoke --out BENCH_engine.json
cargo run --release --offline -q -p fs-bench --bin bench_engine -- --validate BENCH_engine.json

echo "CI OK"
