//! Built-in generators: integer ranges, vectors, hash sets.

use crate::Gen;
use cachesim::prng::{Prng, UniformInt};
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Uniform integer in `[lo, hi)`, shrinking toward `lo`.
#[derive(Clone, Debug)]
pub struct RangeGen<T> {
    lo: T,
    hi: T,
}

/// Generator for a half-open integer range, e.g. `int_range(0u64..200)`.
///
/// # Panics
/// Panics if the range is empty.
pub fn int_range<T: UniformInt + Ord>(range: Range<T>) -> RangeGen<T> {
    assert!(range.start < range.end, "int_range on empty range");
    RangeGen {
        lo: range.start,
        hi: range.end,
    }
}

impl<T> Gen for RangeGen<T>
where
    T: UniformInt + Ord + Clone + std::fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut Prng) -> T {
        let span = self.hi.to_u64() - self.lo.to_u64();
        self.lo.offset(rng.gen_range(0..span))
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let v = value.to_u64();
        let lo = self.lo.to_u64();
        let mut out = Vec::new();
        if v > lo {
            // Jump to the minimum, then bisect toward the value, then
            // try the immediate predecessor.
            out.push(self.lo);
            let mid = lo + (v - lo) / 2;
            if mid > lo && mid < v {
                out.push(self.lo.offset(mid - lo));
            }
            out.push(self.lo.offset(v - 1 - lo));
            out.dedup_by_key(|x| x.to_u64());
        }
        out
    }
}

/// Vector of values from an element generator, shrinking by removing
/// chunks/elements and by shrinking individual elements.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Generator for vectors with length in `len` (half-open), e.g.
/// `vec_of(int_range(0u8..4), 1..400)`.
///
/// # Panics
/// Panics if the length range is empty.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "vec_of on empty length range");
    VecGen {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Prng) -> Self::Value {
        let len = rng.gen_range(self.min_len..self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let n = value.len();
        // Structural shrinks first: halves, then single removals.
        if n / 2 >= self.min_len && n > 1 {
            out.push(value[..n / 2].to_vec());
            out.push(value[n - n / 2..].to_vec());
        }
        if n > self.min_len {
            let step = (n / 8).max(1);
            for i in (0..n).step_by(step) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element shrinks at a few positions.
        let step = (n / 4).max(1);
        for i in (0..n).step_by(step) {
            for e in self.elem.shrink(&value[i]).into_iter().take(3) {
                let mut v = value.clone();
                v[i] = e;
                out.push(v);
            }
        }
        out
    }
}

/// Hash set of values from an element generator.
#[derive(Clone, Debug)]
pub struct SetGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Generator for hash sets with size in `len` (half-open), e.g.
/// `set_of(int_range(0u64..500), 1..60)`. The element generator's
/// support must comfortably exceed `len.end`.
///
/// # Panics
/// Panics if the length range is empty.
pub fn set_of<G>(elem: G, len: Range<usize>) -> SetGen<G>
where
    G: Gen,
    G::Value: Eq + Hash,
{
    assert!(len.start < len.end, "set_of on empty length range");
    SetGen {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<G> Gen for SetGen<G>
where
    G: Gen,
    G::Value: Eq + Hash,
{
    type Value = HashSet<G::Value>;

    fn generate(&self, rng: &mut Prng) -> Self::Value {
        let target = rng.gen_range(self.min_len..self.max_len);
        let mut out = HashSet::with_capacity(target);
        // Collisions just retry; bail out (with whatever was collected)
        // if the support is too tight to ever reach the target.
        let mut attempts = 0;
        while out.len() < target && attempts < 20 * self.max_len {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        if value.len() > self.min_len {
            for drop in value.iter().take(8) {
                let mut v = value.clone();
                v.remove(&drop.clone());
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_respects_bounds_and_shrinks_down() {
        let g = int_range(10u64..20);
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
        let shrinks = g.shrink(&17);
        assert!(shrinks.contains(&10), "jump to min: {shrinks:?}");
        assert!(shrinks.iter().all(|&s| s < 17));
        assert!(g.shrink(&10).is_empty(), "minimum cannot shrink");
    }

    #[test]
    fn vec_lengths_and_shrinks_respect_min() {
        let g = vec_of(int_range(0u32..5), 2..6);
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..100 {
            let v = g.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let shrinks = g.shrink(&vec![4, 3, 2, 1, 0]);
        assert!(shrinks.iter().all(|s| s.len() >= 2));
        assert!(shrinks.iter().any(|s| s.len() < 5), "removal happens");
    }

    #[test]
    fn set_sizes_in_range() {
        let g = set_of(int_range(0u64..500), 1..60);
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 60);
        }
    }
}
