#![warn(missing_docs)]

//! A small in-tree property-testing harness: seeded case generation,
//! shrink-on-failure, explicit regression replay. Replaces `proptest`
//! so the workspace builds and tests with zero external dependencies.
//!
//! # Model
//!
//! A property is a function from a generated value to
//! `Result<(), Failure>`. [`check`] runs it over `cases` values drawn
//! from a [`Gen`]; every case has a deterministic seed derived from the
//! property name and case index ([`cachesim::prng::seed_for`]), so a
//! failure report identifies the case completely. On failure the input
//! is shrunk to a (locally) minimal counterexample before panicking.
//!
//! # Reproducing a failure
//!
//! The panic message prints the failing case seed. Re-run just that
//! case with the environment variable `TESTKIT_SEED`:
//!
//! ```text
//! TESTKIT_SEED=0x1b2e... cargo test -q failing_test_name
//! ```
//!
//! `TESTKIT_CASES=N` overrides the case count. Counterexamples worth
//! pinning forever should be converted into explicit unit tests that
//! call the property function with the literal shrunk value (see
//! `tests/property_invariants.rs` for examples).

use cachesim::prng::{seed_for, Prng};

mod gens;
pub use gens::{int_range, set_of, vec_of, RangeGen, SetGen, VecGen};

/// Why a property case did not pass.
#[derive(Clone, Debug)]
pub enum Failure {
    /// The case does not apply (precondition violated); draw another.
    Reject,
    /// The property is violated, with a human-readable reason.
    Fail(String),
}

impl Failure {
    /// Construct a [`Failure::Fail`].
    pub fn fail(msg: impl Into<String>) -> Self {
        Failure::Fail(msg.into())
    }
}

/// Outcome of one property case.
pub type CaseResult = Result<(), Failure>;

/// A value generator with optional shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut Prng) -> Self::Value;

    /// Propose smaller candidate values (each closer to minimal). An
    /// empty list means the value cannot shrink further.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Tuples generate component-wise and shrink one component at a time.
impl<A: Gen, B: Gen> Gen for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut Prng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&value.0) {
            out.push((a, value.1.clone()));
        }
        for b in self.1.shrink(&value.1) {
            out.push((value.0.clone(), b));
        }
        out
    }
}

/// Triples, for three-parameter properties.
impl<A: Gen, B: Gen, C: Gen> Gen for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut Prng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        for a in self.0.shrink(&value.0) {
            out.push((a, value.1.clone(), value.2.clone()));
        }
        for b in self.1.shrink(&value.1) {
            out.push((value.0.clone(), b, value.2.clone()));
        }
        for c in self.2.shrink(&value.2) {
            out.push((value.0.clone(), value.1.clone(), c));
        }
        out
    }
}

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Run `prop` over `DEFAULT_CASES` generated cases (or `TESTKIT_CASES`
/// from the environment). Panics with the shrunk counterexample and its
/// replay seed on the first failure.
///
/// Rejected cases ([`Failure::Reject`]) are replaced by fresh draws, up
/// to a 10× rejection budget.
pub fn check<G: Gen>(name: &str, gen: &G, prop: impl Fn(&G::Value) -> CaseResult) {
    if let Some(seed) = env_u64("TESTKIT_SEED") {
        // Replay mode: exactly one case at the given seed.
        run_case(name, gen, &prop, seed);
        return;
    }
    let cases = env_u64("TESTKIT_CASES")
        .map(|n| n as u32)
        .unwrap_or(DEFAULT_CASES);
    let mut rejected = 0u32;
    let mut index = 0u64;
    let mut passed = 0u32;
    while passed < cases {
        let seed = seed_for(name, index);
        index += 1;
        match run_case(name, gen, &prop, seed) {
            CaseOutcome::Passed => passed += 1,
            CaseOutcome::Rejected => {
                rejected += 1;
                assert!(
                    rejected <= cases * 10,
                    "{name}: too many rejected cases ({rejected}); \
                     loosen the generator or the precondition"
                );
            }
        }
    }
}

enum CaseOutcome {
    Passed,
    Rejected,
}

fn run_case<G: Gen>(
    name: &str,
    gen: &G,
    prop: &impl Fn(&G::Value) -> CaseResult,
    seed: u64,
) -> CaseOutcome {
    let mut rng = Prng::seed_from_u64(seed);
    let value = gen.generate(&mut rng);
    match prop(&value) {
        Ok(()) => CaseOutcome::Passed,
        Err(Failure::Reject) => CaseOutcome::Rejected,
        Err(Failure::Fail(msg)) => {
            let (min_value, min_msg) = shrink_failure(gen, prop, value, msg);
            panic!(
                "property `{name}` failed: {min_msg}\n\
                 minimal counterexample: {min_value:?}\n\
                 replay with: TESTKIT_SEED={seed:#x} cargo test -q {name}"
            );
        }
    }
}

/// Greedily walk shrink candidates while they keep failing.
fn shrink_failure<G: Gen>(
    gen: &G,
    prop: &impl Fn(&G::Value) -> CaseResult,
    mut value: G::Value,
    mut msg: String,
) -> (G::Value, String) {
    const MAX_STEPS: u32 = 2_000;
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for cand in gen.shrink(&value) {
            steps += 1;
            if let Err(Failure::Fail(m)) = prop(&cand) {
                value = cand;
                msg = m;
                continue 'outer;
            }
            if steps >= MAX_STEPS {
                break;
            }
        }
        break;
    }
    (value, msg)
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Assert a condition inside a property; formats like `assert!` but
/// returns a [`Failure`] instead of panicking, so the harness can
/// shrink the input.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::Failure::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err($crate::Failure::fail(format!($($arg)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! tk_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::Failure::fail(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discard the current case (precondition not met); the harness draws a
/// replacement.
#[macro_export]
macro_rules! tk_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::Failure::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        check("passing_property", &int_range(0u64..100), |&x| {
            tk_assert!(x < 100);
            Ok(())
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        // x >= 10 fails; the minimal counterexample is exactly 10.
        let result = std::panic::catch_unwind(|| {
            check("failing_property_shrinks", &int_range(0u64..1000), |&x| {
                tk_assert!(x < 10, "x = {x} too big");
                Ok(())
            });
        });
        let err = result.expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(
            msg.contains("minimal counterexample: 10"),
            "shrunk to 10: {msg}"
        );
        assert!(msg.contains("TESTKIT_SEED=0x"), "replay line: {msg}");
    }

    #[test]
    fn vec_shrinking_reaches_small_witness() {
        // Any vec containing a multiple of 7 fails; minimal witness is a
        // single-element vector.
        let result = std::panic::catch_unwind(|| {
            check(
                "vec_shrinks_small",
                &vec_of(int_range(1u64..100), 1..50),
                |v| {
                    tk_assert!(!v.iter().any(|x| x % 7 == 0), "found {v:?}");
                    Ok(())
                },
            );
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        // Extract the shrunk vec length from the debug print: "[x]".
        let witness = msg
            .split("minimal counterexample: ")
            .nth(1)
            .and_then(|s| s.split('\n').next())
            .unwrap();
        let elems = witness.trim_matches(['[', ']']).split(',').count();
        assert_eq!(elems, 1, "minimal witness is one element: {witness}");
    }

    #[test]
    fn rejection_draws_replacement_cases() {
        // Half the range is rejected; the property must still pass the
        // full quota on accepted draws.
        let mut accepted = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("rejection_replacement", &int_range(0u64..100), |&x| {
            tk_assume!(x % 2 == 0);
            counter.set(counter.get() + 1);
            tk_assert!(x % 2 == 0);
            Ok(())
        });
        accepted += counter.get();
        assert_eq!(accepted, DEFAULT_CASES);
    }

    #[test]
    fn tuple_generation_shrinks_componentwise() {
        let g = (int_range(0u32..50), int_range(0u32..50));
        let shrinks = g.shrink(&(10, 20));
        assert!(shrinks.iter().any(|&(a, b)| a < 10 && b == 20));
        assert!(shrinks.iter().any(|&(a, b)| a == 10 && b < 20));
    }

    #[test]
    fn case_seeds_are_order_independent() {
        use cachesim::prng::seed_for;
        assert_eq!(seed_for("p", 0), seed_for("p", 0));
        assert_ne!(seed_for("p", 0), seed_for("q", 0));
    }
}
