//! Coarse-grain timestamp-based LRU — the paper's practical hardware
//! futility ranking (Section V-A).
//!
//! Every partition has an 8-bit current-timestamp counter incremented
//! once per `K` accesses to that partition, with `K = size/16`. Each
//! line is tagged with its partition's timestamp at insert/hit time, and
//! its futility is the unsigned 8-bit distance
//! `f_ts = (CurrentTS − line_ts) mod 256`, normalized here to
//! `f = f_ts / 256` so schemes can treat all rankings uniformly (the
//! scaled comparison is identical because normalization is monotone).
//!
//! An optional *exact shadow* (on by default) maintains precise ranks so
//! that measured associativity CDFs use true futility, as the paper's
//! evaluation does; the shadow never influences replacement decisions.

use crate::pool::TreapPool;
use cachesim::fxmap::FxHashMap;
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, HitRunAgg, PartitionId, SnapshotError,
    SnapshotReader, SnapshotWriter,
};

/// Number of timestamp buckets per partition "generation" (`K = size/16`).
const BUCKETS_PER_SIZE: u64 = 16;

#[derive(Debug)]
struct CoarsePool {
    /// 8-bit current timestamp.
    current_ts: u8,
    /// Accesses since the last timestamp bump.
    accesses: u64,
    /// Per-line timestamp tags.
    tags: FxHashMap<u64, u8>,
    /// Exact shadow ranks (keyed by last-access time), if enabled.
    shadow: Option<TreapPool<false>>,
}

impl CoarsePool {
    fn new(seed: u64, exact_shadow: bool) -> Self {
        CoarsePool {
            current_ts: 0,
            accesses: 0,
            tags: FxHashMap::default(),
            shadow: exact_shadow.then(|| TreapPool::new(seed)),
        }
    }

    fn tick(&mut self) {
        self.accesses += 1;
        // K = 1/16 of this partition's (current) size, at least 1.
        let k = (self.tags.len() as u64 / BUCKETS_PER_SIZE).max(1);
        if self.accesses >= k {
            self.accesses = 0;
            self.current_ts = self.current_ts.wrapping_add(1);
        }
    }

    fn touch(&mut self, addr: u64, time: u64) {
        self.tags.insert(addr, self.current_ts);
        if let Some(s) = &mut self.shadow {
            s.upsert(addr, time);
        }
        self.tick();
    }
}

/// Coarse-grain timestamp-based LRU ranking.
#[derive(Debug)]
pub struct CoarseLru {
    pools: Vec<CoarsePool>,
    exact_shadow: bool,
    /// Only pools below this index carry the exact shadow.
    shadow_limit: usize,
    agg: HitRunAgg,
}

impl CoarseLru {
    /// With exact shadow ranks for measurement (the configuration used
    /// by all experiments).
    pub fn new() -> Self {
        CoarseLru {
            pools: Vec::new(),
            exact_shadow: true,
            shadow_limit: usize::MAX,
            agg: HitRunAgg::new(),
        }
    }

    /// Exact shadow ranks only for pools `0..k` (cheaper when only some
    /// partitions' associativity statistics are reported); the
    /// remaining pools fall back to the coarse estimate.
    pub fn with_shadow_pools(k: usize) -> Self {
        CoarseLru {
            pools: Vec::new(),
            exact_shadow: true,
            shadow_limit: k,
            agg: HitRunAgg::new(),
        }
    }

    /// Without the exact shadow: pure hardware behaviour, cheapest
    /// simulation. `true_futility` falls back to the coarse estimate.
    pub fn without_exact_shadow() -> Self {
        CoarseLru {
            pools: Vec::new(),
            exact_shadow: false,
            shadow_limit: 0,
            agg: HitRunAgg::new(),
        }
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut CoarsePool {
        let idx = part.index();
        if idx >= self.pools.len() {
            let n = self.pools.len();
            let shadow = self.exact_shadow;
            let limit = self.shadow_limit;
            self.pools
                .extend((n..=idx).map(|i| CoarsePool::new(0x2017 + i as u64, shadow && i < limit)));
        }
        &mut self.pools[idx]
    }

    /// The raw 8-bit timestamp distance of a line (what the hardware
    /// computes before scaling), or `None` if untracked.
    pub fn timestamp_distance(&self, part: PartitionId, addr: u64) -> Option<u8> {
        let pool = self.pools.get(part.index())?;
        let tag = *pool.tags.get(&addr)?;
        Some(pool.current_ts.wrapping_sub(tag))
    }
}

impl Default for CoarseLru {
    fn default() -> Self {
        CoarseLru::new()
    }
}

impl FutilityRanking for CoarseLru {
    fn name(&self) -> &'static str {
        "coarse-lru"
    }

    fn reset(&mut self, pools: usize) {
        let shadow = self.exact_shadow;
        let limit = self.shadow_limit;
        self.pools = (0..pools)
            .map(|i| CoarsePool::new(0x2017 + i as u64, shadow && i < limit))
            .collect();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        self.pool_mut(part).touch(addr, time);
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        self.pool_mut(part).touch(addr, time);
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        let CoarseLru { pools, agg, .. } = self;
        // The 8-bit timestamp tag + tick half is replicated per record,
        // exactly as the scalar path: `current_ts` can bump mid-run and
        // the tag must capture it at hit time.
        for h in hits {
            let pool = &mut pools[h.part.index()];
            pool.tags.insert(h.addr, pool.current_ts);
            pool.tick();
        }
        // The exact measurement shadow is a canonical treap keyed by
        // last-access time: one upsert per distinct line suffices, and
        // shadow state is independent of the tag/timestamp half.
        agg.for_each_line(hits, |h, _| {
            if let Some(s) = &mut pools[h.part.index()].shadow {
                s.upsert(h.addr, h.time);
            }
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        let pool = self.pool_mut(part);
        pool.tags.remove(&addr);
        if let Some(s) = &mut pool.shadow {
            s.remove(addr);
        }
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        // Preserve the line's age: re-tag it in the destination pool at
        // the same timestamp distance it had in the source pool.
        let (dist, key) = {
            let pool = self.pool_mut(from);
            let tag = match pool.tags.remove(&addr) {
                Some(t) => t,
                None => return,
            };
            let dist = pool.current_ts.wrapping_sub(tag);
            let key = pool.shadow.as_mut().and_then(|s| s.remove(addr));
            (dist, key)
        };
        let pool = self.pool_mut(to);
        let new_tag = pool.current_ts.wrapping_sub(dist);
        pool.tags.insert(addr, new_tag);
        if let (Some(s), Some(k)) = (&mut pool.shadow, key) {
            s.upsert(addr, k);
        }
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        match self.timestamp_distance(part, addr) {
            Some(d) => d as f64 / 256.0,
            None => 0.0,
        }
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        // The hardware estimate is a map probe plus one wrapping
        // subtraction per candidate; fusing the loop here skips the
        // per-candidate virtual call and `Option` plumbing of the
        // scalar path while computing the identical value.
        for c in cands {
            c.futility = match self.pools.get(c.part.index()) {
                Some(p) => match p.tags.get(&c.addr) {
                    Some(&tag) => p.current_ts.wrapping_sub(tag) as f64 / 256.0,
                    None => 0.0,
                },
                None => 0.0,
            };
        }
    }

    fn futility_bytes(&mut self, cands: &[Candidate], out: &mut Vec<u16>) -> bool {
        // The raw hardware numerator is the coarse timestamp distance
        // itself: futility = distance / 256 exactly, distance ≤ 255, so
        // the byte-lane contract holds with D = 256. Same lookup
        // structure as `futility_batch`, minus the f64 conversion.
        out.clear();
        for c in cands {
            out.push(match self.pools.get(c.part.index()) {
                Some(p) => match p.tags.get(&c.addr) {
                    Some(&tag) => p.current_ts.wrapping_sub(tag) as u16,
                    None => 0,
                },
                None => 0,
            });
        }
        true
    }

    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        let pool = match self.pools.get(part.index()) {
            Some(p) => p,
            None => return 0.0,
        };
        match &pool.shadow {
            Some(s) => s.futility(addr),
            None => self.futility(part, addr),
        }
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        // Only answerable exactly with the shadow; the hardware scheme
        // never needs this query (it is used by the FullAssoc ideal).
        self.pools
            .get(part.index())
            .and_then(|p| p.shadow.as_ref())
            .and_then(|s| s.most_futile())
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.tags.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("coarse-lru");
        w.usize(self.pools.len());
        for pool in &self.pools {
            w.u8(pool.current_ts);
            w.u64(pool.accesses);
            // Tags in sorted address order so identical states always
            // serialize to identical bytes.
            let mut tags: Vec<(u64, u8)> = pool.tags.iter().map(|(&a, &t)| (a, t)).collect();
            tags.sort_unstable();
            w.usize(tags.len());
            for (addr, tag) in tags {
                w.u64(addr);
                w.u8(tag);
            }
            w.bool(pool.shadow.is_some());
            if let Some(s) = &pool.shadow {
                s.save_state(w);
            }
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("coarse-lru")?;
        let n = r.usize()?;
        if n != self.pools.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} ranking pools, engine has {}",
                self.pools.len()
            )));
        }
        for pool in &mut self.pools {
            pool.current_ts = r.u8()?;
            pool.accesses = r.u64()?;
            let len = r.seq_len(9)?;
            pool.tags = FxHashMap::default();
            pool.tags.reserve(len);
            let mut prev: Option<u64> = None;
            for _ in 0..len {
                let addr = r.u64()?;
                if prev.is_some_and(|p| p >= addr) {
                    return Err(SnapshotError::corrupt(
                        "coarse-lru tags are not strictly sorted",
                    ));
                }
                prev = Some(addr);
                let tag = r.u8()?;
                pool.tags.insert(addr, tag);
            }
            let has_shadow = r.bool()?;
            match (&mut pool.shadow, has_shadow) {
                (Some(s), true) => {
                    s.load_state(r)?;
                    if s.len() != pool.tags.len() {
                        return Err(SnapshotError::corrupt(format!(
                            "coarse-lru shadow tracks {} lines but pool has {} tags",
                            s.len(),
                            pool.tags.len()
                        )));
                    }
                }
                (None, false) => {}
                _ => {
                    return Err(SnapshotError::mismatch(
                        "snapshot and engine disagree on the coarse-lru exact shadow",
                    ));
                }
            }
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);
    const META: AccessMeta = AccessMeta {
        next_use: cachesim::NO_NEXT_USE,
    };

    #[test]
    fn timestamp_advances_every_k_accesses() {
        let mut r = CoarseLru::new();
        r.reset(1);
        // Insert 32 lines: with size < 16, K = 1 so ts advances fast.
        for (t, a) in (0..32u64).map(|i| (i + 1, i + 100)) {
            r.on_insert(P, a, t, META);
        }
        // First line should have a larger distance than the last.
        let d_first = r.timestamp_distance(P, 100).unwrap();
        let d_last = r.timestamp_distance(P, 131).unwrap();
        assert!(d_first > d_last, "{d_first} vs {d_last}");
        assert!(r.futility(P, 100) > r.futility(P, 131));
    }

    #[test]
    fn hit_resets_distance() {
        let mut r = CoarseLru::new();
        r.reset(1);
        for (t, a) in (0..40u64).map(|i| (i + 1, i)) {
            r.on_insert(P, a, t, META);
        }
        let before = r.timestamp_distance(P, 0).unwrap();
        r.on_hit(P, 0, 100, META);
        // The hit tags the line with the current timestamp; the counter
        // may tick once immediately afterwards, so distance is 0 or 1.
        let after = r.timestamp_distance(P, 0).unwrap();
        assert!(after <= 1, "distance after hit was {after}");
        assert!(after < before);
    }

    #[test]
    fn shadow_gives_exact_true_futility() {
        let mut r = CoarseLru::new();
        r.reset(1);
        r.on_insert(P, 1, 1, META);
        r.on_insert(P, 2, 2, META);
        r.on_insert(P, 3, 3, META);
        assert!((r.true_futility(P, 1) - 1.0).abs() < 1e-12);
        assert!((r.true_futility(P, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_futility_line(P), Some(1));
    }

    #[test]
    fn without_shadow_true_equals_coarse() {
        let mut r = CoarseLru::without_exact_shadow();
        r.reset(1);
        r.on_insert(P, 1, 1, META);
        assert_eq!(r.true_futility(P, 1), r.futility(P, 1));
        assert_eq!(r.max_futility_line(P), None);
    }

    #[test]
    fn retag_preserves_distance() {
        let mut r = CoarseLru::new();
        r.reset(2);
        let q = PartitionId(1);
        for (t, a) in (0..64u64).map(|i| (i + 1, i)) {
            r.on_insert(P, a, t, META);
        }
        let d_before = r.timestamp_distance(P, 0).unwrap();
        r.on_retag(P, q, 0);
        let d_after = r.timestamp_distance(q, 0).unwrap();
        assert_eq!(d_before, d_after);
        assert_eq!(r.pool_len(q), 1);
    }

    #[test]
    fn eviction_forgets_line() {
        let mut r = CoarseLru::new();
        r.reset(1);
        r.on_insert(P, 9, 1, META);
        r.on_evict(P, 9);
        assert_eq!(r.timestamp_distance(P, 9), None);
        assert_eq!(r.futility(P, 9), 0.0);
        assert_eq!(r.pool_len(P), 0);
    }
}
