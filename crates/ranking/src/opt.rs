//! Belady's OPT futility ranking: lines are ranked by the time of their
//! next reference ("the time to their next references", §III-A); the
//! line re-referenced farthest in the future is the most futile. The
//! paper uses OPT to isolate partitioning-scheme effects from ranking
//! artifacts (Figures 2, 4–7) and to expose the performance headroom of
//! high associativity (Figure 6a).

use crate::pool::{batch_over_pools, load_pools, save_pools, TreapPool};
use cachesim::ostree::RankQuery;
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, HitRunAgg, PartitionId, SnapshotError,
    SnapshotReader, SnapshotWriter,
};

/// OPT (Belady) ranking. Requires accesses annotated with `next_use`
/// metadata (see [`Trace::annotate_next_use`](cachesim::trace::Trace::annotate_next_use));
/// lines never referenced again carry [`NO_NEXT_USE`](cachesim::NO_NEXT_USE)
/// and are the first to go.
#[derive(Debug, Default)]
pub struct Opt {
    pools: Vec<TreapPool<true>>,
    scratch: Vec<RankQuery<(u64, u64)>>,
    agg: HitRunAgg,
}

impl Opt {
    /// Create an empty ranking (pools sized on `reset`).
    pub fn new() -> Self {
        Opt::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut TreapPool<true> {
        let idx = part.index();
        if idx >= self.pools.len() {
            let n = self.pools.len();
            self.pools
                .extend((n..=idx).map(|i| TreapPool::new(0x0B75 + i as u64)));
        }
        &mut self.pools[idx]
    }
}

impl FutilityRanking for Opt {
    fn name(&self) -> &'static str {
        "opt"
    }

    fn reset(&mut self, pools: usize) {
        self.pools = (0..pools)
            .map(|i| TreapPool::new(0x0B75 + i as u64))
            .collect();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, _time: u64, meta: AccessMeta) {
        self.pool_mut(part).upsert(addr, meta.next_use);
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, _time: u64, meta: AccessMeta) {
        self.pool_mut(part).upsert(addr, meta.next_use);
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        // Only each line's final next-use annotation determines the
        // treap's key set; intermediate upserts of re-hit lines are
        // overwritten and can be skipped.
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        let Opt { pools, agg, .. } = self;
        agg.for_each_line(hits, |h, _| {
            pools[h.part.index()].upsert(h.addr, h.meta.next_use)
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        self.pool_mut(part).remove(addr);
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        if let Some(key) = self.pool_mut(from).remove(addr) {
            self.pool_mut(to).upsert(addr, key);
        }
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.pools
            .get(part.index())
            .map_or(0.0, |p| p.futility(addr))
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        batch_over_pools(&self.pools, &mut self.scratch, cands);
    }

    fn futility_is_exact(&self) -> bool {
        true
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools.get(part.index()).and_then(|p| p.most_futile())
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        save_pools("opt", &self.pools, w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        load_pools("opt", &mut self.pools, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::NO_NEXT_USE;

    const P: PartitionId = PartitionId(0);

    fn meta(next: u64) -> AccessMeta {
        AccessMeta::with_next_use(next)
    }

    #[test]
    fn farthest_next_use_is_most_futile() {
        let mut r = Opt::new();
        r.reset(1);
        r.on_insert(P, 1, 0, meta(10));
        r.on_insert(P, 2, 1, meta(5));
        r.on_insert(P, 3, 2, meta(100));
        assert_eq!(r.max_futility_line(P), Some(3));
        assert!((r.futility(P, 3) - 1.0).abs() < 1e-12);
        assert!((r.futility(P, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dead_lines_outrank_everything() {
        let mut r = Opt::new();
        r.reset(1);
        r.on_insert(P, 1, 0, meta(1_000_000));
        r.on_insert(P, 2, 1, meta(NO_NEXT_USE));
        assert_eq!(r.max_futility_line(P), Some(2));
    }

    #[test]
    fn hit_updates_next_use() {
        let mut r = Opt::new();
        r.reset(1);
        r.on_insert(P, 1, 0, meta(50));
        r.on_insert(P, 2, 1, meta(60));
        // Line 1 is re-referenced; its next use is now far away.
        r.on_hit(P, 1, 2, meta(500));
        assert_eq!(r.max_futility_line(P), Some(1));
    }

    #[test]
    fn matches_belady_on_tiny_trace() {
        // Cache of 2 lines, trace: A B A C B. Belady evicts B when C
        // arrives? No: at C's miss, A's next use is index 4? Let's
        // compute: accesses A(0) B(1) A(2) C(3) B(4). At time 3 the
        // cache holds A (next use: none after 2) and B (next use 4).
        // OPT evicts the line used farthest in future: A (never again).
        let mut r = Opt::new();
        r.reset(1);
        r.on_insert(P, 0xA, 0, meta(2));
        r.on_insert(P, 0xB, 1, meta(4));
        r.on_hit(P, 0xA, 2, meta(NO_NEXT_USE));
        assert_eq!(r.max_futility_line(P), Some(0xA));
    }
}
