//! Least-frequently-used futility ranking: lines are ranked by access
//! frequency ("their access frequencies", §III-A), with LRU as the
//! tiebreaker among equally-hot lines.

use crate::pool::{batch_over_pools, TreapPool};
use cachesim::fxmap::FxHashMap;
use cachesim::ostree::RankQuery;
use cachesim::snapshot::{read_u64_map, write_u64_map};
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, HitRunAgg, PartitionId, SnapshotError,
    SnapshotReader, SnapshotWriter,
};

/// Bits of the composite key reserved for the recency tiebreak.
const TIME_BITS: u32 = 44;
const TIME_MASK: u64 = (1 << TIME_BITS) - 1;
/// Saturation point for access counts so the packed key cannot overflow.
const MAX_COUNT: u64 = (1 << (64 - TIME_BITS)) - 1;

/// LFU ranking; the coldest (least-accessed, least-recent) line of a
/// partition has futility 1.
#[derive(Debug, Default)]
pub struct Lfu {
    pools: Vec<TreapPool<false>>,
    counts: Vec<FxHashMap<u64, u64>>,
    scratch: Vec<RankQuery<(u64, u64)>>,
    agg: HitRunAgg,
}

impl Lfu {
    /// Create an empty ranking (pools sized on `reset`).
    pub fn new() -> Self {
        Lfu::default()
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.pools.len() {
            let n = self.pools.len();
            self.pools
                .extend((n..=idx).map(|i| TreapPool::new(0x1F0 + i as u64)));
            self.counts.resize_with(idx + 1, FxHashMap::default);
        }
    }

    fn key(count: u64, time: u64) -> u64 {
        (count.min(MAX_COUNT) << TIME_BITS) | (time & TIME_MASK)
    }

    /// Current access count of a tracked line.
    pub fn count_of(&self, part: PartitionId, addr: u64) -> Option<u64> {
        self.counts.get(part.index())?.get(&addr).copied()
    }
}

impl FutilityRanking for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn reset(&mut self, pools: usize) {
        self.pools = (0..pools)
            .map(|i| TreapPool::new(0x1F0 + i as u64))
            .collect();
        self.counts = (0..pools).map(|_| FxHashMap::default()).collect();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        self.ensure(part.index());
        self.counts[part.index()].insert(addr, 1);
        self.pools[part.index()].upsert(addr, Self::key(1, time));
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        self.ensure(part.index());
        let count = self.counts[part.index()]
            .entry(addr)
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let key = Self::key(*count, time);
        self.pools[part.index()].upsert(addr, key);
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        // A line hit k times in the run ends with count += k and the
        // key built from its final count and last hit time; every
        // intermediate treap upsert is overwritten, so the count map
        // is bumped once and the treap updated once per distinct line.
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.ensure(max);
        }
        let Lfu {
            pools, counts, agg, ..
        } = self;
        agg.for_each_line(hits, |h, n| {
            let idx = h.part.index();
            let count = counts[idx]
                .entry(h.addr)
                .and_modify(|c| *c += n as u64)
                .or_insert(n as u64);
            pools[idx].upsert(h.addr, Self::key(*count, h.time));
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        self.ensure(part.index());
        self.counts[part.index()].remove(&addr);
        self.pools[part.index()].remove(addr);
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        self.ensure(from.index().max(to.index()));
        if let Some(key) = self.pools[from.index()].remove(addr) {
            let count = self.counts[from.index()].remove(&addr).unwrap_or(1);
            self.counts[to.index()].insert(addr, count);
            self.pools[to.index()].upsert(addr, key);
        }
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.pools
            .get(part.index())
            .map_or(0.0, |p| p.futility(addr))
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        batch_over_pools(&self.pools, &mut self.scratch, cands);
    }

    fn futility_is_exact(&self) -> bool {
        true
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools.get(part.index()).and_then(|p| p.most_futile())
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("lfu");
        w.usize(self.pools.len());
        for (pool, counts) in self.pools.iter().zip(&self.counts) {
            pool.save_state(w);
            write_u64_map(w, counts);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("lfu")?;
        let n = r.usize()?;
        if n != self.pools.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} ranking pools, engine has {}",
                self.pools.len()
            )));
        }
        self.counts.resize_with(n, FxHashMap::default);
        for (pool, counts) in self.pools.iter_mut().zip(&mut self.counts) {
            pool.load_state(r)?;
            *counts = read_u64_map(r)?;
            if counts.len() != pool.len() {
                return Err(SnapshotError::corrupt(format!(
                    "lfu pool tracks {} lines but has {} counts",
                    pool.len(),
                    counts.len()
                )));
            }
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);
    const META: AccessMeta = AccessMeta {
        next_use: cachesim::NO_NEXT_USE,
    };

    #[test]
    fn cold_line_is_most_futile() {
        let mut r = Lfu::new();
        r.reset(1);
        r.on_insert(P, 1, 1, META);
        r.on_insert(P, 2, 2, META);
        r.on_hit(P, 1, 3, META);
        r.on_hit(P, 1, 4, META);
        assert_eq!(r.max_futility_line(P), Some(2));
        assert!((r.futility(P, 2) - 1.0).abs() < 1e-12);
        assert_eq!(r.count_of(P, 1), Some(3));
    }

    #[test]
    fn recency_breaks_frequency_ties() {
        let mut r = Lfu::new();
        r.reset(1);
        r.on_insert(P, 1, 1, META);
        r.on_insert(P, 2, 2, META);
        // Both have count 1; line 1 is older, so more futile.
        assert_eq!(r.max_futility_line(P), Some(1));
    }

    #[test]
    fn eviction_clears_count() {
        let mut r = Lfu::new();
        r.reset(1);
        r.on_insert(P, 1, 1, META);
        r.on_hit(P, 1, 2, META);
        r.on_evict(P, 1);
        assert_eq!(r.count_of(P, 1), None);
        assert_eq!(r.pool_len(P), 0);
    }

    #[test]
    fn retag_carries_count_over() {
        let mut r = Lfu::new();
        r.reset(2);
        let q = PartitionId(1);
        r.on_insert(P, 1, 1, META);
        r.on_hit(P, 1, 2, META);
        r.on_retag(P, q, 1);
        assert_eq!(r.count_of(q, 1), Some(2));
        assert_eq!(r.pool_len(P), 0);
        assert_eq!(r.pool_len(q), 1);
    }
}
