//! Bucket-backed coarse rankings: the treap-free fast lane
//! (DESIGN.md §14).
//!
//! [`BucketCoarseLru`] and [`BucketRrip`] produce the *same futility
//! values* as their treap-shadowed counterparts [`CoarseLru`] and
//! [`Rrip`] — same 8-bit timestamp distances, same aged RRPVs, same
//! byte-lane numerators, bit for bit — but store lines in a
//! [`BucketPool`](cachesim::bucketrank::BucketPool) keyed by the coarse
//! value instead of carrying an order-statistic treap. Every miss-path
//! ranking operation (insert, evict, hit touch, retag) becomes an O(1)
//! counter-and-list move, and the per-eviction `true_futility` rank —
//! previously an O(log n) shadow-treap descent, the single hottest
//! block of the churn profile — becomes a two-level counting-prefix sum
//! over at most three 16-lane SWAR row sums.
//!
//! **Documented deviation (measurement only):** without the exact
//! shadow, `true_futility` is the *count-based* rank
//! `|{lines with coarse value ≤ mine}| / M` — lines sharing a bucket
//! share a rank, where the shadow broke ties by exact access time (and
//! `Rrip`'s shadow ranked by *recency*, not RRPV, an intentionally
//! different measurement). Victim selection never consults
//! `true_futility`, so replacement decisions, hit/miss outcomes,
//! occupancies and snapshot replay are bit-identical to the treap
//! backends; only the AEF-family statistics (eviction futility sums,
//! the recorder's `aef` series) read differently, exactly as
//! `CoarseLru::without_exact_shadow` already does. The pinning test is
//! `tests/bucket_vs_treap.rs`.
//!
//! Both rankings carry opt-in **op counters**
//! ([`FutilityRanking::set_op_probes`]): inserts, removes, hit touches,
//! retags, rank and byte-lane queries, surfaced per recorder interval
//! through [`FutilityRanking::telemetry`] so `trace_dynamics` can
//! attribute miss-path time to ranking operations. Disabled (the
//! default) they cost one predictable branch per operation.

use cachesim::bucketrank::BucketPool;
use cachesim::fxmap::FxHashMap;
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, HitRunAgg, PartitionId, Probe,
    SnapshotError, SnapshotReader, SnapshotWriter,
};
use std::cell::Cell;

#[cfg(doc)]
use crate::{CoarseLru, Rrip};

/// Timestamp buckets per partition "generation" (`K = size/16`),
/// mirroring `CoarseLru`.
const BUCKETS_PER_SIZE: u64 = 16;
/// Maximum RRPV of the 2-bit configuration, mirroring `Rrip`.
const MAX_RRPV: u32 = 3;
/// Bucket index holding RRIP's saturated (RRPV = 3) lines.
const SAT: usize = 4;

/// Probe series emitted by [`OpCounters::telemetry`], in order.
const OP_SERIES: [&str; 6] = [
    "rank_inserts",
    "rank_removes",
    "rank_hits",
    "rank_retags",
    "rank_queries",
    "rank_byte_queries",
];

/// Opt-in ranking op counters (interior-mutable so `&self` query paths
/// can count themselves). `prev` holds the last telemetry snapshot so
/// probes report per-interval deltas.
#[derive(Debug, Default)]
struct OpCounters {
    enabled: bool,
    counts: [Cell<u64>; 6],
    prev: Cell<[u64; 6]>,
}

/// Indices into [`OpCounters::counts`] / [`OP_SERIES`].
const OP_INSERT: usize = 0;
const OP_REMOVE: usize = 1;
const OP_HIT: usize = 2;
const OP_RETAG: usize = 3;
const OP_RANK: usize = 4;
const OP_BYTES: usize = 5;

impl OpCounters {
    #[inline]
    fn add(&self, op: usize, n: u64) {
        if self.enabled {
            let c = &self.counts[op];
            c.set(c.get() + n);
        }
    }

    fn snapshot(&self) -> [u64; 6] {
        [
            self.counts[0].get(),
            self.counts[1].get(),
            self.counts[2].get(),
            self.counts[3].get(),
            self.counts[4].get(),
            self.counts[5].get(),
        ]
    }

    fn reset(&mut self) {
        for c in &self.counts {
            c.set(0);
        }
        self.prev.set([0; 6]);
    }

    fn telemetry(&self, out: &mut Vec<Probe>) {
        if !self.enabled {
            return;
        }
        let cur = self.snapshot();
        let prev = self.prev.get();
        for (i, name) in OP_SERIES.into_iter().enumerate() {
            out.push(Probe::global(name, (cur[i] - prev[i]) as f64));
        }
        self.prev.set(cur);
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.bool(self.enabled);
        for v in self.snapshot() {
            w.u64(v);
        }
        for v in self.prev.get() {
            w.u64(v);
        }
    }

    fn load(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        let enabled = r.bool()?;
        if enabled != self.enabled {
            return Err(SnapshotError::mismatch(
                "snapshot and ranking disagree on op-probe configuration",
            ));
        }
        for c in &self.counts {
            c.set(r.u64()?);
        }
        let mut prev = [0u64; 6];
        for p in prev.iter_mut() {
            *p = r.u64()?;
        }
        self.prev.set(prev);
        Ok(())
    }
}

/// Serialize a pool's buckets as `(non-empty count, then per non-empty
/// bucket: index, length, addresses in list order)`. List order is part
/// of the contract: re-appending on load reproduces identical bytes on
/// re-save.
fn save_buckets(w: &mut SnapshotWriter, buckets: &BucketPool, nbuckets: usize) {
    let nonempty = (0..nbuckets).filter(|&b| buckets.count(b) > 0).count();
    w.usize(nonempty);
    for b in 0..nbuckets {
        let cnt = buckets.count(b);
        if cnt == 0 {
            continue;
        }
        w.u8(b as u8);
        w.usize(cnt as usize);
        buckets.for_each(b, |addr| w.u64(addr));
    }
}

/// Rebuild a pool's buckets and index map from [`save_buckets`] bytes;
/// `value` derives the map entry from the slab index and bucket.
fn load_buckets<V>(
    r: &mut SnapshotReader,
    buckets: &mut BucketPool,
    map: &mut FxHashMap<u64, V>,
    what: &str,
    mut value: impl FnMut(u32, u8) -> V,
) -> Result<(), SnapshotError> {
    let nonempty = r.seq_len(10)?;
    let mut prev_b: Option<u16> = None;
    for _ in 0..nonempty {
        let b = r.u8()?;
        if prev_b.is_some_and(|p| p >= b as u16) {
            return Err(SnapshotError::corrupt(format!(
                "{what} buckets are not strictly sorted"
            )));
        }
        prev_b = Some(b as u16);
        let cnt = r.seq_len(8)?;
        if cnt == 0 {
            return Err(SnapshotError::corrupt(format!(
                "{what} snapshot lists an empty bucket as non-empty"
            )));
        }
        for _ in 0..cnt {
            let addr = r.u64()?;
            let idx = buckets.insert(addr, b as usize);
            if map.insert(addr, value(idx, b)).is_some() {
                return Err(SnapshotError::corrupt(format!(
                    "{what} snapshot repeats line {addr:#x}"
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Coarse-grain timestamp LRU on buckets
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CoarseBucketPool {
    /// 8-bit current timestamp.
    current_ts: u8,
    /// Accesses since the last timestamp bump.
    accesses: u64,
    /// Per-line `(bucket node, timestamp tag)`; the tag *is* the bucket.
    map: FxHashMap<u64, (u32, u8)>,
    buckets: BucketPool,
}

impl CoarseBucketPool {
    fn tick(&mut self) {
        self.accesses += 1;
        // K = 1/16 of this partition's (current) size, at least 1 —
        // identical to `CoarseLru`.
        let k = (self.map.len() as u64 / BUCKETS_PER_SIZE).max(1);
        if self.accesses >= k {
            self.accesses = 0;
            self.current_ts = self.current_ts.wrapping_add(1);
        }
    }

    /// Tag `addr` with the current timestamp: a map write plus one O(1)
    /// bucket move (to the tail — touch order within a bucket is
    /// deterministic and observable, see the module docs).
    fn place(&mut self, addr: u64) {
        let ts = self.current_ts;
        match self.map.get_mut(&addr) {
            Some(slot) => {
                let (idx, old) = *slot;
                self.buckets.move_to_tail(idx, old as usize, ts as usize);
                *slot = (idx, ts);
            }
            None => {
                let idx = self.buckets.insert(addr, ts as usize);
                self.map.insert(addr, (idx, ts));
            }
        }
    }

    fn touch(&mut self, addr: u64) {
        self.place(addr);
        self.tick();
    }

    fn distance(&self, addr: u64) -> Option<u8> {
        let &(_, tag) = self.map.get(&addr)?;
        Some(self.current_ts.wrapping_sub(tag))
    }
}

/// Coarse-grain timestamp LRU on the two-level bucket structure:
/// futility values identical to [`CoarseLru`], every ranking op O(1),
/// `true_futility` a counting-prefix rank (no exact shadow — see the
/// module docs for the documented measurement deviation).
#[derive(Debug, Default)]
pub struct BucketCoarseLru {
    pools: Vec<CoarseBucketPool>,
    agg: HitRunAgg,
    ops: OpCounters,
}

impl BucketCoarseLru {
    /// An empty ranking; pools are sized on `reset` (no seeds — unlike
    /// the treap backends, bucket pools need no PRNG).
    pub fn new() -> Self {
        BucketCoarseLru::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut CoarseBucketPool {
        let idx = part.index();
        if idx >= self.pools.len() {
            self.pools.resize_with(idx + 1, CoarseBucketPool::default);
        }
        &mut self.pools[idx]
    }

    /// The raw 8-bit timestamp distance of a line (what the hardware
    /// computes before scaling), or `None` if untracked.
    pub fn timestamp_distance(&self, part: PartitionId, addr: u64) -> Option<u8> {
        self.pools.get(part.index())?.distance(addr)
    }
}

impl FutilityRanking for BucketCoarseLru {
    fn name(&self) -> &'static str {
        "coarse-lru-bucket"
    }

    fn reset(&mut self, pools: usize) {
        self.pools = (0..pools).map(|_| CoarseBucketPool::default()).collect();
        self.ops.reset();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, _time: u64, _meta: AccessMeta) {
        self.ops.add(OP_INSERT, 1);
        self.pool_mut(part).touch(addr);
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, _time: u64, _meta: AccessMeta) {
        self.ops.add(OP_HIT, 1);
        self.pool_mut(part).touch(addr);
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        self.ops.add(OP_HIT, hits.len() as u64);
        let BucketCoarseLru { pools, agg, .. } = self;
        // The tick half is replicated per record, exactly as the scalar
        // path: `current_ts` can bump mid-run and the tag must capture
        // it at hit time. The tag write + bucket move is last-writer-
        // wins, so it runs once per distinct line, at the position of
        // the line's final record — leaving map, counts and in-bucket
        // order bit-identical to the scalar replay.
        agg.for_each_record_tagged(hits, |h, is_last| {
            let pool = &mut pools[h.part.index()];
            if is_last {
                pool.place(h.addr);
            }
            pool.tick();
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        self.ops.add(OP_REMOVE, 1);
        let pool = self.pool_mut(part);
        if let Some((idx, tag)) = pool.map.remove(&addr) {
            pool.buckets.remove(idx, tag as usize);
        }
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        // Preserve the line's age: re-tag it in the destination pool at
        // the same timestamp distance it had in the source pool.
        let dist = {
            let pool = self.pool_mut(from);
            match pool.map.remove(&addr) {
                Some((idx, tag)) => {
                    pool.buckets.remove(idx, tag as usize);
                    pool.current_ts.wrapping_sub(tag)
                }
                None => return,
            }
        };
        self.ops.add(OP_RETAG, 1);
        let pool = self.pool_mut(to);
        let new_tag = pool.current_ts.wrapping_sub(dist);
        let idx = pool.buckets.insert(addr, new_tag as usize);
        pool.map.insert(addr, (idx, new_tag));
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        match self.timestamp_distance(part, addr) {
            Some(d) => d as f64 / 256.0,
            None => 0.0,
        }
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        // One map probe and a wrapping subtraction per candidate —
        // the same fused loop (and identical values) as `CoarseLru`.
        for c in cands {
            c.futility = match self.pools.get(c.part.index()) {
                Some(p) => match p.map.get(&c.addr) {
                    Some(&(_, tag)) => p.current_ts.wrapping_sub(tag) as f64 / 256.0,
                    None => 0.0,
                },
                None => 0.0,
            };
        }
    }

    fn futility_bytes(&mut self, cands: &[Candidate], out: &mut Vec<u16>) -> bool {
        // Identical numerators to `CoarseLru`: distance ≤ 255, D = 256.
        self.ops.add(OP_BYTES, cands.len() as u64);
        out.clear();
        for c in cands {
            out.push(match self.pools.get(c.part.index()) {
                Some(p) => match p.map.get(&c.addr) {
                    Some(&(_, tag)) => p.current_ts.wrapping_sub(tag) as u16,
                    None => 0,
                },
                None => 0,
            });
        }
        true
    }

    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        // Count-based rank: lines at distance ≤ d occupy the circular
        // tag range [ts − d, ts]; the two-level prefix sum answers in
        // O(16) with no pointer chasing (the treap shadow's descent was
        // the hottest block of the churn miss profile).
        self.ops.add(OP_RANK, 1);
        let pool = match self.pools.get(part.index()) {
            Some(p) => p,
            None => return 0.0,
        };
        let d = match pool.distance(addr) {
            Some(d) => d,
            None => return 0.0,
        };
        let m = pool.buckets.len();
        debug_assert!(m > 0);
        let le = pool
            .buckets
            .circular_sum(pool.current_ts.wrapping_sub(d), pool.current_ts);
        le as f64 / m as f64
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        // Most distant non-empty bucket, scanning tags circularly from
        // ts + 1 (distance 255) downward; within the bucket, the head
        // is the least recently touched line. Under 8-bit wrap aliasing
        // this is the hardware's notion of "oldest", which is the
        // documented tie-order deviation from the exact shadow.
        let pool = self.pools.get(part.index())?;
        let b = pool
            .buckets
            .first_occupied_from(pool.current_ts.wrapping_add(1))?;
        pool.buckets.head_addr(b as usize)
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.map.len())
    }

    fn set_op_probes(&mut self, enabled: bool) {
        self.ops.enabled = enabled;
    }

    fn telemetry(&self, out: &mut Vec<Probe>) {
        self.ops.telemetry(out);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("coarse-lru-bucket");
        self.ops.save(w);
        w.usize(self.pools.len());
        for pool in &self.pools {
            w.u8(pool.current_ts);
            w.u64(pool.accesses);
            save_buckets(w, &pool.buckets, cachesim::bucketrank::BUCKETS);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("coarse-lru-bucket")?;
        self.ops.load(r)?;
        let n = r.usize()?;
        if n != self.pools.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} ranking pools, engine has {}",
                self.pools.len()
            )));
        }
        for pool in &mut self.pools {
            *pool = CoarseBucketPool::default();
            pool.current_ts = r.u8()?;
            pool.accesses = r.u64()?;
            load_buckets(
                r,
                &mut pool.buckets,
                &mut pool.map,
                "coarse-lru-bucket",
                |idx, b| (idx, b),
            )?;
        }
        r.end()
    }
}

// ---------------------------------------------------------------------------
// RRIP on buckets
// ---------------------------------------------------------------------------

/// RRIP lines are keyed by *birth generation* `birth = tag generation −
/// tagged RRPV` (wrapping — a fresh insert at generation 0 has birth
/// `−2 (mod 2⁶⁴)`, which preserves all arithmetic below because
/// `2⁶⁴ ≡ 0 (mod 4)`). A line's effective RRPV is `min(g − birth, 3)`,
/// so aging needs no per-line work at all: unsaturated lines
/// (`g − birth ≤ 2`) live in the bucket of their birth residue mod 4 —
/// at most three residues are unsaturated at once — and everything
/// older lives in [`SAT`], fed by the generation bump's O(1) splice of
/// the residue class that just aged out. Storing `birth` (not the
/// bucket index) in the map is what keeps the splice free of per-line
/// map updates: the physical bucket is recomputed from `birth` on
/// every probe, and stays correct when a drained residue is later
/// reused for newborn lines.
#[inline]
fn rrip_eff(generation: u64, birth: u64) -> u32 {
    generation.wrapping_sub(birth).min(MAX_RRPV as u64) as u32
}

/// The physical bucket of a line with the given birth.
#[inline]
fn rrip_bucket(generation: u64, birth: u64) -> usize {
    if generation.wrapping_sub(birth) >= MAX_RRPV as u64 {
        SAT
    } else {
        (birth % 4) as usize
    }
}

/// The bucket holding effective-RRPV class `e` at generation `g`.
#[inline]
fn rrip_class_bucket(generation: u64, e: u32) -> usize {
    if e >= MAX_RRPV {
        SAT
    } else {
        (generation.wrapping_sub(e as u64) % 4) as usize
    }
}

#[derive(Debug, Default)]
struct RripBucketPool {
    /// Current generation; lines age one RRPV per elapsed generation.
    generation: u64,
    /// Accesses since the last generation bump.
    accesses: u64,
    /// Per-line `(bucket node, wrapping birth generation)`.
    map: FxHashMap<u64, (u32, u64)>,
    buckets: BucketPool,
}

impl RripBucketPool {
    fn tick(&mut self) {
        self.accesses += 1;
        if self.accesses >= self.map.len().max(1) as u64 {
            self.accesses = 0;
            self.generation += 1;
            // Births `generation − 3` just aged to RRPV 3: splice that
            // whole residue class into the saturated bucket in O(1).
            let stale = ((self.generation % 4) as usize + 1) % 4;
            self.buckets.merge_into(stale, SAT);
        }
    }

    fn place(&mut self, addr: u64, birth: u64) {
        let g = self.generation;
        match self.map.get_mut(&addr) {
            Some(slot) => {
                let (idx, old_birth) = *slot;
                self.buckets
                    .move_to_tail(idx, rrip_bucket(g, old_birth), rrip_bucket(g, birth));
                *slot = (idx, birth);
            }
            None => {
                let idx = self.buckets.insert(addr, rrip_bucket(g, birth));
                self.map.insert(addr, (idx, birth));
            }
        }
    }

    fn effective_rrpv(&self, addr: u64) -> Option<u32> {
        let &(_, birth) = self.map.get(&addr)?;
        Some(rrip_eff(self.generation, birth))
    }
}

/// RRIP (2-bit RRPV) on the bucket structure: aged-RRPV values
/// identical to [`Rrip`], generation aging an O(1) bucket splice,
/// `true_futility` a 4-counter rank over RRPV classes (no recency
/// shadow — the documented measurement deviation, see module docs).
#[derive(Debug, Default)]
pub struct BucketRrip {
    pools: Vec<RripBucketPool>,
    agg: HitRunAgg,
    ops: OpCounters,
}

impl BucketRrip {
    /// An empty ranking; pools are sized on `reset` (seedless).
    pub fn new() -> Self {
        BucketRrip::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut RripBucketPool {
        let idx = part.index();
        if idx >= self.pools.len() {
            self.pools.resize_with(idx + 1, RripBucketPool::default);
        }
        &mut self.pools[idx]
    }

    /// The effective (aged) RRPV of a line, for inspection and tests.
    pub fn rrpv(&self, part: PartitionId, addr: u64) -> Option<u32> {
        self.pools.get(part.index())?.effective_rrpv(addr)
    }
}

impl FutilityRanking for BucketRrip {
    fn name(&self) -> &'static str {
        "rrip-bucket"
    }

    fn reset(&mut self, pools: usize) {
        self.pools = (0..pools).map(|_| RripBucketPool::default()).collect();
        self.ops.reset();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, _time: u64, _meta: AccessMeta) {
        self.ops.add(OP_INSERT, 1);
        let pool = self.pool_mut(part);
        // Long re-reference prediction on insertion (SRRIP).
        let birth = pool.generation.wrapping_sub((MAX_RRPV - 1) as u64);
        pool.place(addr, birth);
        pool.tick();
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, _time: u64, _meta: AccessMeta) {
        self.ops.add(OP_HIT, 1);
        let pool = self.pool_mut(part);
        // Immediate re-reference prediction on a hit.
        let birth = pool.generation;
        pool.place(addr, birth);
        pool.tick();
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        self.ops.add(OP_HIT, hits.len() as u64);
        let BucketRrip { pools, agg, .. } = self;
        // Per-record ticks (generations can bump — and splice — mid
        // run), last-writer-wins placement per distinct line; see the
        // coarse variant for why this matches the scalar replay.
        agg.for_each_record_tagged(hits, |h, is_last| {
            let pool = &mut pools[h.part.index()];
            if is_last {
                let birth = pool.generation;
                pool.place(h.addr, birth);
            }
            pool.tick();
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        self.ops.add(OP_REMOVE, 1);
        let pool = self.pool_mut(part);
        if let Some((idx, birth)) = pool.map.remove(&addr) {
            pool.buckets
                .remove(idx, rrip_bucket(pool.generation, birth));
        }
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        // Preserve the line's aged RRPV across the pool move, exactly
        // as the reference implementation re-tags `(eff, dest gen)`.
        let eff = {
            let pool = self.pool_mut(from);
            match pool.map.remove(&addr) {
                Some((idx, birth)) => {
                    pool.buckets
                        .remove(idx, rrip_bucket(pool.generation, birth));
                    rrip_eff(pool.generation, birth)
                }
                None => return,
            }
        };
        self.ops.add(OP_RETAG, 1);
        let pool = self.pool_mut(to);
        // A saturated line stays saturated: birth `dest gen − 3` keeps
        // `g − birth ≥ 3` forever.
        let birth = pool.generation.wrapping_sub(eff as u64);
        pool.place(addr, birth);
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        match self
            .pools
            .get(part.index())
            .and_then(|p| p.effective_rrpv(addr))
        {
            Some(r) => (r as f64 + 1.0) / (MAX_RRPV as f64 + 1.0),
            None => 0.0,
        }
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        for c in cands {
            c.futility = match self
                .pools
                .get(c.part.index())
                .and_then(|p| p.effective_rrpv(c.addr))
            {
                Some(r) => (r as f64 + 1.0) / (MAX_RRPV as f64 + 1.0),
                None => 0.0,
            };
        }
    }

    fn futility_bytes(&mut self, cands: &[Candidate], out: &mut Vec<u16>) -> bool {
        // Identical numerators to `Rrip`: aged RRPV + 1 ≤ 4, D = 4.
        self.ops.add(OP_BYTES, cands.len() as u64);
        out.clear();
        for c in cands {
            out.push(
                match self
                    .pools
                    .get(c.part.index())
                    .and_then(|p| p.effective_rrpv(c.addr))
                {
                    Some(r) => (r + 1) as u16,
                    None => 0,
                },
            );
        }
        true
    }

    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        // Count-based rank over the four RRPV classes: futility =
        // (M − |lines with a strictly higher aged RRPV|) / M.
        self.ops.add(OP_RANK, 1);
        let pool = match self.pools.get(part.index()) {
            Some(p) => p,
            None => return 0.0,
        };
        let eff = match pool.effective_rrpv(addr) {
            Some(e) => e,
            None => return 0.0,
        };
        let m = pool.buckets.len();
        debug_assert!(m > 0);
        let mut gt = 0u64;
        for e in (eff + 1)..=MAX_RRPV {
            gt += pool.buckets.count(rrip_class_bucket(pool.generation, e)) as u64;
        }
        (m as u64 - gt) as f64 / m as f64
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        // Highest aged-RRPV class first; within a class, the head is
        // the line least recently placed there (saturated lines keep
        // splice order). This ranks by RRPV — the treap backend's
        // shadow ranked by recency — part of the documented deviation.
        let pool = self.pools.get(part.index())?;
        for e in (0..=MAX_RRPV).rev() {
            if let Some(addr) = pool
                .buckets
                .head_addr(rrip_class_bucket(pool.generation, e))
            {
                return Some(addr);
            }
        }
        None
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.map.len())
    }

    fn set_op_probes(&mut self, enabled: bool) {
        self.ops.enabled = enabled;
    }

    fn telemetry(&self, out: &mut Vec<Probe>) {
        self.ops.telemetry(out);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("rrip-bucket");
        self.ops.save(w);
        w.usize(self.pools.len());
        for pool in &self.pools {
            w.u64(pool.generation);
            w.u64(pool.accesses);
            save_buckets(w, &pool.buckets, SAT + 1);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("rrip-bucket")?;
        self.ops.load(r)?;
        let n = r.usize()?;
        if n != self.pools.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} ranking pools, engine has {}",
                self.pools.len()
            )));
        }
        for pool in &mut self.pools {
            *pool = RripBucketPool::default();
            pool.generation = r.u64()?;
            pool.accesses = r.u64()?;
            let g = pool.generation;
            // Births are recovered from the bucket: residue buckets
            // pin `g − birth` to their residue distance (≤ 2 in any
            // valid snapshot), saturated lines re-birth at `g − 3` —
            // behaviourally lossless, since only `min(g − birth, 3)`
            // is ever observable once a line saturates.
            load_buckets(
                r,
                &mut pool.buckets,
                &mut pool.map,
                "rrip-bucket",
                |idx, b| {
                    let birth = if b as usize == SAT {
                        g.wrapping_sub(MAX_RRPV as u64)
                    } else {
                        g.wrapping_sub((g % 4 + 4 - b as u64) % 4)
                    };
                    (idx, birth)
                },
            )?;
            // The residue class that aged out at the last bump must be
            // empty — anything there would silently never age.
            let stale = ((pool.generation % 4) as usize + 1) % 4;
            if pool.buckets.count(stale) != 0 {
                return Err(SnapshotError::corrupt(
                    "rrip-bucket snapshot populates the drained residue class",
                ));
            }
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoarseLru, Rrip};

    const META: AccessMeta = AccessMeta {
        next_use: cachesim::NO_NEXT_USE,
    };

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    /// Drive two rankings through an identical pseudorandom op
    /// sequence (inserts, hits, evicts, retags over 2 pools) and hand
    /// each op to `check` afterwards.
    fn drive(
        steps: usize,
        seed: u64,
        a: &mut dyn FutilityRanking,
        b: &mut dyn FutilityRanking,
        mut check: impl FnMut(&dyn FutilityRanking, &dyn FutilityRanking, &[Vec<u64>]),
    ) {
        a.reset(2);
        b.reset(2);
        let mut rng = Lcg(seed);
        let mut live: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut next_addr = 0u64;
        for t in 0..steps as u64 {
            let p = (rng.next() % 2) as usize;
            let part = PartitionId(p as u16);
            match rng.next() % 8 {
                0..=2 => {
                    next_addr += 1;
                    a.on_insert(part, next_addr, t, META);
                    b.on_insert(part, next_addr, t, META);
                    live[p].push(next_addr);
                }
                3..=5 if !live[p].is_empty() => {
                    let addr = live[p][(rng.next() as usize) % live[p].len()];
                    a.on_hit(part, addr, t, META);
                    b.on_hit(part, addr, t, META);
                }
                6 if !live[p].is_empty() => {
                    let i = (rng.next() as usize) % live[p].len();
                    let addr = live[p].swap_remove(i);
                    a.on_evict(part, addr);
                    b.on_evict(part, addr);
                }
                7 if !live[p].is_empty() => {
                    let i = (rng.next() as usize) % live[p].len();
                    let addr = live[p].swap_remove(i);
                    let q = 1 - p;
                    a.on_retag(part, PartitionId(q as u16), addr);
                    b.on_retag(part, PartitionId(q as u16), addr);
                    live[q].push(addr);
                }
                _ => {}
            }
            if t % 61 == 0 {
                check(a, b, &live);
            }
        }
        check(a, b, &live);
    }

    #[test]
    fn coarse_bucket_matches_treap_futility_values_exactly() {
        let mut treap = CoarseLru::new();
        let mut bucket = BucketCoarseLru::new();
        drive(4000, 0xC0A2, &mut treap, &mut bucket, |a, b, live| {
            for (p, addrs) in live.iter().enumerate() {
                let part = PartitionId(p as u16);
                assert_eq!(a.pool_len(part), b.pool_len(part));
                for &addr in addrs {
                    // The coarse estimate (and therefore every victim
                    // decision) must be bit-identical.
                    assert_eq!(a.futility(part, addr), b.futility(part, addr), "{addr}");
                }
            }
        });
        // Byte-lane numerators agree too.
        let cands: Vec<Candidate> = (1..=40)
            .map(|addr| Candidate {
                part: PartitionId(0),
                addr,
                slot: 0,
                futility: 0.0,
            })
            .collect();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        assert!(treap.futility_bytes(&cands, &mut out_a));
        assert!(bucket.futility_bytes(&cands, &mut out_b));
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn rrip_bucket_matches_treap_rrpv_values_exactly() {
        let mut treap = Rrip::new();
        let mut bucket = BucketRrip::new();
        drive(4000, 0x4219, &mut treap, &mut bucket, |a, b, live| {
            for (p, addrs) in live.iter().enumerate() {
                let part = PartitionId(p as u16);
                assert_eq!(a.pool_len(part), b.pool_len(part));
                for &addr in addrs {
                    assert_eq!(a.futility(part, addr), b.futility(part, addr), "{addr}");
                }
            }
        });
        let cands: Vec<Candidate> = (1..=40)
            .map(|addr| Candidate {
                part: PartitionId(1),
                addr,
                slot: 0,
                futility: 0.0,
            })
            .collect();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        assert!(treap.futility_bytes(&cands, &mut out_a));
        assert!(bucket.futility_bytes(&cands, &mut out_b));
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn rrip_helper_rrpv_tracks_reference() {
        // Focused aging check: the residue-class arithmetic must agree
        // with the reference implementation's per-line saturating math
        // across many generation bumps.
        let p = PartitionId(0);
        let mut treap = Rrip::new();
        let mut bucket = BucketRrip::new();
        treap.reset(1);
        bucket.reset(1);
        for a in 0..16u64 {
            treap.on_insert(p, a, a, META);
            bucket.on_insert(p, a, a, META);
        }
        for t in 0..500u64 {
            let addr = t % 5;
            treap.on_hit(p, addr, 100 + t, META);
            bucket.on_hit(p, addr, 100 + t, META);
            for a in 0..16u64 {
                assert_eq!(treap.rrpv(p, a), bucket.rrpv(p, a), "line {a} at t {t}");
            }
        }
    }

    #[test]
    fn coarse_true_futility_is_the_counting_rank() {
        let p = PartitionId(0);
        let mut r = BucketCoarseLru::new();
        r.reset(1);
        for (t, a) in (0..64u64).map(|i| (i, i + 100)) {
            r.on_insert(p, a, t, META);
        }
        // Oracle: rank by distance over all tracked lines.
        let dists: Vec<(u64, u8)> = (100..164)
            .map(|a| (a, r.timestamp_distance(p, a).unwrap()))
            .collect();
        let m = dists.len() as f64;
        for &(a, d) in &dists {
            let le = dists.iter().filter(|&&(_, d2)| d2 <= d).count() as f64;
            assert_eq!(r.true_futility(p, a), le / m, "line {a} distance {d}");
        }
        // The most futile line per the counting rank has futility 1.
        let top = r.max_futility_line(p).unwrap();
        assert_eq!(r.true_futility(p, top), 1.0);
        let dmax = dists.iter().map(|&(_, d)| d).max().unwrap();
        assert_eq!(r.timestamp_distance(p, top), Some(dmax));
    }

    #[test]
    fn rrip_true_futility_is_the_counting_rank() {
        let p = PartitionId(0);
        let mut r = BucketRrip::new();
        r.reset(1);
        for a in 0..64u64 {
            r.on_insert(p, a, a, META);
        }
        for t in 0..200u64 {
            r.on_hit(p, t % 8, 100 + t, META);
        }
        let effs: Vec<(u64, u32)> = (0..64).map(|a| (a, r.rrpv(p, a).unwrap())).collect();
        let m = effs.len() as f64;
        for &(a, e) in &effs {
            let gt = effs.iter().filter(|&&(_, e2)| e2 > e).count() as f64;
            assert_eq!(r.true_futility(p, a), (m - gt) / m, "line {a} rrpv {e}");
        }
        let top = r.max_futility_line(p).unwrap();
        let emax = effs.iter().map(|&(_, e)| e).max().unwrap();
        assert_eq!(r.rrpv(p, top), Some(emax));
    }

    #[test]
    fn hit_batch_state_is_byte_identical_to_scalar_replay() {
        for which in ["coarse", "rrip"] {
            let (mut scalar, mut batched): (Box<dyn FutilityRanking>, Box<dyn FutilityRanking>) =
                if which == "coarse" {
                    (
                        Box::new(BucketCoarseLru::new()),
                        Box::new(BucketCoarseLru::new()),
                    )
                } else {
                    (Box::new(BucketRrip::new()), Box::new(BucketRrip::new()))
                };
            scalar.reset(2);
            batched.reset(2);
            let mut hits = Vec::new();
            // 40 lines, then a run with heavy re-hits (slot ↔ addr
            // binding fixed, as the engine guarantees).
            for slot in 0..40u32 {
                let part = PartitionId((slot % 2) as u16);
                let addr = 500 + slot as u64;
                scalar.on_insert(part, addr, slot as u64, META);
                batched.on_insert(part, addr, slot as u64, META);
            }
            let mut rng = Lcg(0xBA7C4 + if which == "coarse" { 0 } else { 1 });
            for t in 0..300u64 {
                let slot = (rng.next() % 40) as u32;
                hits.push(HitRecord {
                    part: PartitionId((slot % 2) as u16),
                    addr: 500 + slot as u64,
                    slot,
                    time: 1000 + t,
                    meta: META,
                });
            }
            for h in &hits {
                scalar.on_hit(h.part, h.addr, h.time, h.meta);
            }
            batched.on_hit_batch(&hits);
            // Snapshot bytes capture maps, counts, and in-bucket list
            // order — the strongest equality there is.
            let (mut wa, mut wb) = (SnapshotWriter::new(), SnapshotWriter::new());
            scalar.save_state(&mut wa);
            batched.save_state(&mut wb);
            assert_eq!(wa.finish(), wb.finish(), "{which}");
        }
    }

    #[test]
    fn snapshot_round_trip_is_byte_stable_and_resumable() {
        for which in ["coarse", "rrip"] {
            let mut orig: Box<dyn FutilityRanking> = if which == "coarse" {
                Box::new(BucketCoarseLru::new())
            } else {
                Box::new(BucketRrip::new())
            };
            orig.reset(2);
            let mut rng = Lcg(0x5AFE + if which == "coarse" { 0 } else { 1 });
            for t in 0..600u64 {
                let part = PartitionId((rng.next() % 2) as u16);
                let addr = rng.next() % 90;
                match rng.next() % 3 {
                    0 => orig.on_insert(part, addr, t, META),
                    1 => orig.on_hit(part, addr, t, META),
                    _ => orig.on_evict(part, addr),
                }
            }
            let mut w = SnapshotWriter::new();
            orig.save_state(&mut w);
            let bytes = w.finish();

            let mut back: Box<dyn FutilityRanking> = if which == "coarse" {
                Box::new(BucketCoarseLru::new())
            } else {
                Box::new(BucketRrip::new())
            };
            back.reset(2);
            let mut r = SnapshotReader::open(&bytes).unwrap();
            back.load_state(&mut r).unwrap();
            r.finish().unwrap();

            // Byte-stable: an immediate re-save is identical.
            let mut w2 = SnapshotWriter::new();
            back.save_state(&mut w2);
            assert_eq!(bytes, w2.finish(), "{which} re-save");

            // Resumable: identical continuations stay identical.
            for t in 600..900u64 {
                let part = PartitionId((t % 2) as u16);
                let addr = t % 90;
                orig.on_hit(part, addr, t, META);
                back.on_hit(part, addr, t, META);
                assert_eq!(
                    orig.futility(part, addr),
                    back.futility(part, addr),
                    "{which}"
                );
                assert_eq!(
                    orig.max_futility_line(part),
                    back.max_futility_line(part),
                    "{which}"
                );
            }
        }
    }

    #[test]
    fn pool_count_mismatch_is_rejected() {
        let mut orig = BucketCoarseLru::new();
        orig.reset(3);
        let mut w = SnapshotWriter::new();
        orig.save_state(&mut w);
        let bytes = w.finish();
        let mut back = BucketCoarseLru::new();
        back.reset(2);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            back.load_state(&mut r),
            Err(SnapshotError::Mismatch { .. })
        ));
    }

    #[test]
    fn op_probes_report_interval_deltas() {
        let p = PartitionId(0);
        let mut r = BucketCoarseLru::new();
        r.reset(1);
        r.set_op_probes(true);
        for a in 0..10u64 {
            r.on_insert(p, a, a, META);
        }
        r.on_hit(p, 3, 20, META);
        r.on_evict(p, 4);
        let _ = r.true_futility(p, 3);
        let mut probes = Vec::new();
        r.telemetry(&mut probes);
        fn get(probes: &[Probe], name: &str) -> f64 {
            probes
                .iter()
                .find(|pr| pr.name == name)
                .map(|pr| pr.value)
                .unwrap()
        }
        assert_eq!(get(&probes, "rank_inserts"), 10.0);
        assert_eq!(get(&probes, "rank_hits"), 1.0);
        assert_eq!(get(&probes, "rank_removes"), 1.0);
        assert_eq!(get(&probes, "rank_queries"), 1.0);
        assert_eq!(get(&probes, "rank_retags"), 0.0);
        // The next interval reports only new work.
        probes.clear();
        r.telemetry(&mut probes);
        assert_eq!(get(&probes, "rank_inserts"), 0.0);

        // Disabled rankings emit nothing and count nothing.
        let mut quiet = BucketCoarseLru::new();
        quiet.reset(1);
        quiet.on_insert(p, 1, 1, META);
        let mut none = Vec::new();
        quiet.telemetry(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn retag_preserves_distance_and_rrpv() {
        let p = PartitionId(0);
        let q = PartitionId(1);
        let mut c = BucketCoarseLru::new();
        c.reset(2);
        for (t, a) in (0..64u64).map(|i| (i, i)) {
            c.on_insert(p, a, t, META);
        }
        let d_before = c.timestamp_distance(p, 0).unwrap();
        c.on_retag(p, q, 0);
        assert_eq!(c.timestamp_distance(q, 0), Some(d_before));
        assert_eq!(c.pool_len(q), 1);
        // Retagging an untracked line is a no-op.
        c.on_retag(p, q, 9999);
        assert_eq!(c.pool_len(q), 1);

        let mut r = BucketRrip::new();
        r.reset(2);
        for a in 0..16u64 {
            r.on_insert(p, 100 + a, a, META);
        }
        r.on_insert(p, 5, 20, META);
        r.on_retag(p, q, 5);
        assert_eq!(r.pool_len(p), 16);
        assert_eq!(r.rrpv(q, 5), Some(MAX_RRPV - 1));
        r.on_evict(q, 5);
        assert_eq!(r.pool_len(q), 0);
        assert_eq!(r.futility(q, 5), 0.0);
    }
}
