//! Shared per-partition order-statistic pool used by the exact rankings.

use cachesim::fxmap::FxHashMap;
use cachesim::ostree::{OsTreap, RankQuery};
use cachesim::snapshot::{read_u64_map, write_u64_map};
use cachesim::{Candidate, SnapshotError, SnapshotReader, SnapshotWriter};

/// One partition's worth of ranking state: an order-statistic treap over
/// `(key, addr)` pairs plus an address → key map.
///
/// `HIGH_IS_FUTILE` selects the futility orientation:
/// * `true` — the largest key is the most futile line (e.g. OPT, where
///   the key is the next-use time).
/// * `false` — the smallest key is the most futile line (e.g. LRU,
///   where the key is the last-access time).
#[derive(Debug)]
pub(crate) struct TreapPool<const HIGH_IS_FUTILE: bool> {
    treap: OsTreap<(u64, u64)>,
    keys: FxHashMap<u64, u64>,
}

impl<const HIGH_IS_FUTILE: bool> TreapPool<HIGH_IS_FUTILE> {
    pub(crate) fn new(seed: u64) -> Self {
        TreapPool {
            treap: OsTreap::new(seed),
            keys: FxHashMap::default(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.treap.len()
    }

    /// Insert or re-key a line.
    pub(crate) fn upsert(&mut self, addr: u64, key: u64) {
        if let Some(old) = self.keys.insert(addr, key) {
            self.treap.remove(&(old, addr));
        }
        self.treap.insert((key, addr));
    }

    /// Remove a line; returns its key if it was present.
    pub(crate) fn remove(&mut self, addr: u64) -> Option<u64> {
        let old = self.keys.remove(&addr)?;
        self.treap.remove(&(old, addr));
        Some(old)
    }

    /// The stored key for `addr`.
    pub(crate) fn key_of(&self, addr: u64) -> Option<u64> {
        self.keys.get(&addr).copied()
    }

    /// Normalized futility of `addr` in `(0, 1]`; 0.0 for untracked
    /// lines or empty pools.
    pub(crate) fn futility(&self, addr: u64) -> f64 {
        let key = match self.keys.get(&addr) {
            Some(&k) => k,
            None => return 0.0,
        };
        let m = self.treap.len();
        if m == 0 {
            return 0.0;
        }
        let rank = self.treap.rank(&(key, addr));
        if HIGH_IS_FUTILE {
            (rank + 1) as f64 / m as f64
        } else {
            (m - rank) as f64 / m as f64
        }
    }

    /// Serialize the pool (treap plus key map) into an open section.
    pub(crate) fn save_state(&self, w: &mut SnapshotWriter) {
        self.treap.save_state(w, |w, k| {
            w.u64(k.0);
            w.u64(k.1);
        });
        write_u64_map(w, &self.keys);
    }

    /// Restore a pool serialized by [`save_state`](Self::save_state).
    pub(crate) fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        self.treap.load_state(r, |r| Ok((r.u64()?, r.u64()?)))?;
        self.keys = read_u64_map(r)?;
        if self.keys.len() != self.treap.len() {
            return Err(SnapshotError::corrupt(format!(
                "treap pool has {} tracked keys but {} treap entries",
                self.keys.len(),
                self.treap.len()
            )));
        }
        Ok(())
    }

    /// The most futile line, if any.
    pub(crate) fn most_futile(&self) -> Option<u64> {
        let entry = if HIGH_IS_FUTILE {
            self.treap.max()
        } else {
            self.treap.min()
        };
        entry.map(|&(_, addr)| addr)
    }
}

/// Shared `save_state` for rankings whose whole state is one
/// [`TreapPool`] per pool: one named section holding the pool count and
/// each pool in order.
pub(crate) fn save_pools<const HIGH_IS_FUTILE: bool>(
    name: &str,
    pools: &[TreapPool<HIGH_IS_FUTILE>],
    w: &mut SnapshotWriter,
) {
    w.begin(name);
    w.usize(pools.len());
    for p in pools {
        p.save_state(w);
    }
    w.end();
}

/// Counterpart of [`save_pools`]: the engine composition fixes the pool
/// count, so a count mismatch is a composition mismatch, not corruption.
pub(crate) fn load_pools<const HIGH_IS_FUTILE: bool>(
    name: &str,
    pools: &mut [TreapPool<HIGH_IS_FUTILE>],
    r: &mut SnapshotReader,
) -> Result<(), SnapshotError> {
    r.begin(name)?;
    let n = r.usize()?;
    if n != pools.len() {
        return Err(SnapshotError::mismatch(format!(
            "snapshot has {n} ranking pools, engine has {}",
            pools.len()
        )));
    }
    for p in pools.iter_mut() {
        p.load_state(r)?;
    }
    r.end()
}

/// How many rank walks `batch_over_pools` keeps in flight at once.
/// Covers a full 16-way candidate list in one round; the lane arrays
/// live on the stack either way.
const LANES: usize = 16;

/// Shared `futility_batch` driver for rankings backed by one
/// [`TreapPool`] per pool: build one rank query per tracked candidate,
/// then resolve them with *interleaved* treap descents — every lane is
/// an independent root-to-leaf walk (often in a different pool's
/// treap), advanced one level per round via [`OsTreap::walk_step`]. A
/// rank descent is memory-latency-bound (one dependent node load per
/// level), so up to [`LANES`] interleaved walks keep that many loads
/// in flight instead of serializing one full descent per candidate.
/// Ranks only depend on (treap contents, key), so the futilities are
/// bitwise-identical to the scalar path. Untracked candidates get
/// futility 0.0, same as the scalar path.
///
/// `scratch` is caller-owned so the per-access hot path never
/// allocates once it has warmed up.
pub(crate) fn batch_over_pools<const HIGH_IS_FUTILE: bool>(
    pools: &[TreapPool<HIGH_IS_FUTILE>],
    scratch: &mut Vec<RankQuery<(u64, u64)>>,
    cands: &mut [Candidate],
) {
    scratch.clear();
    for (i, c) in cands.iter_mut().enumerate() {
        match pools.get(c.part.index()).and_then(|p| p.key_of(c.addr)) {
            Some(key) => scratch.push(RankQuery {
                pool: c.part.index() as u32,
                key: (key, c.addr),
                tag: i as u32,
                rank: 0,
            }),
            None => c.futility = 0.0,
        }
    }
    for chunk in scratch.chunks_mut(LANES) {
        let k = chunk.len();
        // Placeholder-init the lane arrays from lane 0, then overwrite
        // the `k` live lanes; lanes `k..LANES` are never read.
        let first = &pools[chunk[0].pool as usize].treap;
        let mut treaps = [first; LANES];
        let mut cur = [first.walk_start(); LANES];
        for (i, q) in chunk.iter().enumerate() {
            let tr = &pools[q.pool as usize].treap;
            treaps[i] = tr;
            cur[i] = tr.walk_start();
        }
        let mut live = true;
        while live {
            live = false;
            for ((tr, c), q) in treaps[..k].iter().zip(&mut cur[..k]).zip(chunk.iter()) {
                live |= tr.walk_step(c, &q.key);
            }
        }
        for (q, c) in chunk.iter_mut().zip(cur.iter()) {
            q.rank = c.rank();
        }
    }
    for q in scratch.iter() {
        // `key_of` hit above, so the pool's treap is non-empty.
        let m = pools[q.pool as usize].len();
        let rank = q.rank as usize;
        cands[q.tag as usize].futility = if HIGH_IS_FUTILE {
            (rank + 1) as f64 / m as f64
        } else {
            (m - rank) as f64 / m as f64
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_key_futile_orientation() {
        let mut p: TreapPool<false> = TreapPool::new(1);
        p.upsert(10, 100);
        p.upsert(11, 200);
        assert!((p.futility(10) - 1.0).abs() < 1e-12);
        assert!((p.futility(11) - 0.5).abs() < 1e-12);
        assert_eq!(p.most_futile(), Some(10));
    }

    #[test]
    fn high_key_futile_orientation() {
        let mut p: TreapPool<true> = TreapPool::new(2);
        p.upsert(10, 100);
        p.upsert(11, 200);
        assert!((p.futility(11) - 1.0).abs() < 1e-12);
        assert_eq!(p.most_futile(), Some(11));
    }

    #[test]
    fn upsert_rekeys_in_place() {
        let mut p: TreapPool<false> = TreapPool::new(3);
        p.upsert(10, 100);
        p.upsert(11, 200);
        p.upsert(10, 300); // refresh line 10
        assert_eq!(p.len(), 2);
        assert_eq!(p.most_futile(), Some(11));
        assert_eq!(p.key_of(10), Some(300));
    }

    #[test]
    fn remove_untracked_is_none() {
        let mut p: TreapPool<false> = TreapPool::new(4);
        assert_eq!(p.remove(77), None);
        p.upsert(77, 1);
        assert_eq!(p.remove(77), Some(1));
        assert_eq!(p.len(), 0);
    }
}
