//! Shared per-partition order-statistic pool used by the exact rankings.

use cachesim::fxmap::FxHashMap;
use cachesim::ostree::OsTreap;

/// One partition's worth of ranking state: an order-statistic treap over
/// `(key, addr)` pairs plus an address → key map.
///
/// `HIGH_IS_FUTILE` selects the futility orientation:
/// * `true` — the largest key is the most futile line (e.g. OPT, where
///   the key is the next-use time).
/// * `false` — the smallest key is the most futile line (e.g. LRU,
///   where the key is the last-access time).
#[derive(Debug)]
pub(crate) struct TreapPool<const HIGH_IS_FUTILE: bool> {
    treap: OsTreap<(u64, u64)>,
    keys: FxHashMap<u64, u64>,
}

impl<const HIGH_IS_FUTILE: bool> TreapPool<HIGH_IS_FUTILE> {
    pub(crate) fn new(seed: u64) -> Self {
        TreapPool {
            treap: OsTreap::new(seed),
            keys: FxHashMap::default(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.treap.len()
    }

    /// Insert or re-key a line.
    pub(crate) fn upsert(&mut self, addr: u64, key: u64) {
        if let Some(old) = self.keys.insert(addr, key) {
            self.treap.remove(&(old, addr));
        }
        self.treap.insert((key, addr));
    }

    /// Remove a line; returns its key if it was present.
    pub(crate) fn remove(&mut self, addr: u64) -> Option<u64> {
        let old = self.keys.remove(&addr)?;
        self.treap.remove(&(old, addr));
        Some(old)
    }

    /// The stored key for `addr`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn key_of(&self, addr: u64) -> Option<u64> {
        self.keys.get(&addr).copied()
    }

    /// Normalized futility of `addr` in `(0, 1]`; 0.0 for untracked
    /// lines or empty pools.
    pub(crate) fn futility(&self, addr: u64) -> f64 {
        let key = match self.keys.get(&addr) {
            Some(&k) => k,
            None => return 0.0,
        };
        let m = self.treap.len();
        if m == 0 {
            return 0.0;
        }
        let rank = self.treap.rank(&(key, addr));
        if HIGH_IS_FUTILE {
            (rank + 1) as f64 / m as f64
        } else {
            (m - rank) as f64 / m as f64
        }
    }

    /// The most futile line, if any.
    pub(crate) fn most_futile(&self) -> Option<u64> {
        let entry = if HIGH_IS_FUTILE {
            self.treap.max()
        } else {
            self.treap.min()
        };
        entry.map(|&(_, addr)| addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_key_futile_orientation() {
        let mut p: TreapPool<false> = TreapPool::new(1);
        p.upsert(10, 100);
        p.upsert(11, 200);
        assert!((p.futility(10) - 1.0).abs() < 1e-12);
        assert!((p.futility(11) - 0.5).abs() < 1e-12);
        assert_eq!(p.most_futile(), Some(10));
    }

    #[test]
    fn high_key_futile_orientation() {
        let mut p: TreapPool<true> = TreapPool::new(2);
        p.upsert(10, 100);
        p.upsert(11, 200);
        assert!((p.futility(11) - 1.0).abs() < 1e-12);
        assert_eq!(p.most_futile(), Some(11));
    }

    #[test]
    fn upsert_rekeys_in_place() {
        let mut p: TreapPool<false> = TreapPool::new(3);
        p.upsert(10, 100);
        p.upsert(11, 200);
        p.upsert(10, 300); // refresh line 10
        assert_eq!(p.len(), 2);
        assert_eq!(p.most_futile(), Some(11));
        assert_eq!(p.key_of(10), Some(300));
    }

    #[test]
    fn remove_untracked_is_none() {
        let mut p: TreapPool<false> = TreapPool::new(4);
        assert_eq!(p.remove(77), None);
        p.upsert(77, 1);
        assert_eq!(p.remove(77), Some(1));
        assert_eq!(p.len(), 0);
    }
}
