//! Exact least-recently-used futility ranking.

use crate::pool::{batch_over_pools, load_pools, save_pools, TreapPool};
use cachesim::ostree::RankQuery;
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, HitRunAgg, PartitionId, SnapshotError,
    SnapshotReader, SnapshotWriter,
};

/// Exact LRU: lines are ranked by last-access time; the least recently
/// used line of a partition has futility 1.
#[derive(Debug, Default)]
pub struct ExactLru {
    pools: Vec<TreapPool<false>>,
    scratch: Vec<RankQuery<(u64, u64)>>,
    agg: HitRunAgg,
}

impl ExactLru {
    /// Create an empty ranking (pools sized on `reset`).
    pub fn new() -> Self {
        ExactLru::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut TreapPool<false> {
        let idx = part.index();
        if idx >= self.pools.len() {
            let n = self.pools.len();
            self.pools
                .extend((n..=idx).map(|i| TreapPool::new(0x1009 + i as u64)));
        }
        &mut self.pools[idx]
    }
}

impl FutilityRanking for ExactLru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn reset(&mut self, pools: usize) {
        self.pools = (0..pools)
            .map(|i| TreapPool::new(0x1009 + i as u64))
            .collect();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        self.pool_mut(part).upsert(addr, time);
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        self.pool_mut(part).upsert(addr, time);
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        // The treap's observable state is a function of its key set, so
        // only each line's final last-access time matters: a line hit k
        // times in the run pays one remove + insert instead of k.
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        let ExactLru { pools, agg, .. } = self;
        agg.for_each_line(hits, |h, _| pools[h.part.index()].upsert(h.addr, h.time));
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        self.pool_mut(part).remove(addr);
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        if let Some(key) = self.pool_mut(from).remove(addr) {
            self.pool_mut(to).upsert(addr, key);
        }
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.pools
            .get(part.index())
            .map_or(0.0, |p| p.futility(addr))
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        batch_over_pools(&self.pools, &mut self.scratch, cands);
    }

    fn futility_is_exact(&self) -> bool {
        true
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools.get(part.index()).and_then(|p| p.most_futile())
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        save_pools("exact-lru", &self.pools, w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        load_pools("exact-lru", &mut self.pools, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);
    const META: AccessMeta = AccessMeta {
        next_use: cachesim::NO_NEXT_USE,
    };

    #[test]
    fn futility_orders_by_recency() {
        let mut r = ExactLru::new();
        r.reset(1);
        for (t, a) in [(1u64, 10u64), (2, 11), (3, 12), (4, 13)] {
            r.on_insert(P, a, t, META);
        }
        assert!((r.futility(P, 10) - 1.0).abs() < 1e-12);
        assert!((r.futility(P, 13) - 0.25).abs() < 1e-12);
        // Hit the oldest line; it becomes the freshest.
        r.on_hit(P, 10, 5, META);
        assert!((r.futility(P, 10) - 0.25).abs() < 1e-12);
        assert_eq!(r.max_futility_line(P), Some(11));
    }

    #[test]
    fn pools_are_independent() {
        let mut r = ExactLru::new();
        r.reset(2);
        r.on_insert(PartitionId(0), 1, 1, META);
        r.on_insert(PartitionId(1), 2, 2, META);
        assert!((r.futility(PartitionId(0), 1) - 1.0).abs() < 1e-12);
        assert!((r.futility(PartitionId(1), 2) - 1.0).abs() < 1e-12);
        assert_eq!(r.pool_len(PartitionId(0)), 1);
    }

    #[test]
    fn retag_preserves_global_age_ordering() {
        let mut r = ExactLru::new();
        r.reset(2);
        let (a, b) = (PartitionId(0), PartitionId(1));
        r.on_insert(a, 1, 1, META);
        r.on_insert(b, 2, 2, META);
        r.on_retag(a, b, 1);
        // Line 1 is older than line 2, so it is most futile in pool b.
        assert_eq!(r.max_futility_line(b), Some(1));
        assert_eq!(r.pool_len(a), 0);
    }
}
