//! Random futility ranking: every line gets a stable pseudo-random rank.
//!
//! This is the futility-blind floor — under it, "cache lines with
//! different futility have the same probability of being evicted" and
//! the associativity CDF degenerates to the diagonal `F(x) = x`
//! (AEF = 0.5), exactly the worst case the paper derives for PF with
//! `N ≥ R` (Section III-C).

use crate::pool::{batch_over_pools, TreapPool};
use cachesim::hashing::{IndexHash, LineHash};
use cachesim::ostree::RankQuery;
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, PartitionId, SnapshotError, SnapshotReader,
    SnapshotWriter,
};

/// Random ranking with a deterministic per-line hash.
#[derive(Debug)]
pub struct RandomRanking {
    pools: Vec<TreapPool<true>>,
    hash: LineHash,
    seed: u64,
    scratch: Vec<RankQuery<(u64, u64)>>,
}

impl RandomRanking {
    /// Create a ranking whose per-line ranks derive from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomRanking {
            pools: Vec::new(),
            hash: LineHash::new(seed),
            seed,
            scratch: Vec::new(),
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx >= self.pools.len() {
            let n = self.pools.len();
            let seed = self.seed;
            self.pools
                .extend((n..=idx).map(|i| TreapPool::new(seed ^ (0xABCD + i as u64))));
        }
    }
}

impl FutilityRanking for RandomRanking {
    fn name(&self) -> &'static str {
        "random"
    }

    fn reset(&mut self, pools: usize) {
        let seed = self.seed;
        self.pools = (0..pools)
            .map(|i| TreapPool::new(seed ^ (0xABCD + i as u64)))
            .collect();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, _time: u64, _meta: AccessMeta) {
        self.ensure(part.index());
        let key = self.hash.hash(addr);
        self.pools[part.index()].upsert(addr, key);
    }

    fn on_hit(&mut self, _part: PartitionId, _addr: u64, _time: u64, _meta: AccessMeta) {
        // Ranks are stable: hits do not change them.
    }

    fn on_hit_batch(&mut self, _hits: &[HitRecord]) {
        // Ranks are stable: a whole run of hits changes nothing.
    }

    fn wants_hit_records(&self) -> bool {
        false
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        self.ensure(part.index());
        self.pools[part.index()].remove(addr);
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        self.ensure(from.index().max(to.index()));
        if let Some(key) = self.pools[from.index()].remove(addr) {
            self.pools[to.index()].upsert(addr, key);
        }
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.pools
            .get(part.index())
            .map_or(0.0, |p| p.futility(addr))
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        batch_over_pools(&self.pools, &mut self.scratch, cands);
    }

    fn futility_is_exact(&self) -> bool {
        true
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools.get(part.index()).and_then(|p| p.most_futile())
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("random-ranking");
        w.u64(self.seed);
        w.usize(self.pools.len());
        for p in &self.pools {
            p.save_state(w);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("random-ranking")?;
        let seed = r.u64()?;
        if seed != self.seed {
            return Err(SnapshotError::mismatch(format!(
                "snapshot random ranking uses seed {seed:#x}, engine uses {:#x}",
                self.seed
            )));
        }
        let n = r.usize()?;
        if n != self.pools.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} ranking pools, engine has {}",
                self.pools.len()
            )));
        }
        for p in &mut self.pools {
            p.load_state(r)?;
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);
    const META: AccessMeta = AccessMeta {
        next_use: cachesim::NO_NEXT_USE,
    };

    #[test]
    fn ranks_are_stable_across_hits() {
        let mut r = RandomRanking::new(1);
        r.reset(1);
        r.on_insert(P, 1, 1, META);
        r.on_insert(P, 2, 2, META);
        let before = r.futility(P, 1);
        r.on_hit(P, 1, 3, META);
        assert_eq!(r.futility(P, 1), before);
    }

    #[test]
    fn ranks_are_deterministic_per_seed() {
        let mut a = RandomRanking::new(9);
        let mut b = RandomRanking::new(9);
        a.reset(1);
        b.reset(1);
        for addr in 0..10u64 {
            a.on_insert(P, addr, addr, META);
            b.on_insert(P, addr, addr, META);
        }
        for addr in 0..10u64 {
            assert_eq!(a.futility(P, addr), b.futility(P, addr));
        }
        assert_eq!(a.max_futility_line(P), b.max_futility_line(P));
    }

    #[test]
    fn normalized_ranks_span_unit_interval() {
        let mut r = RandomRanking::new(3);
        r.reset(1);
        for addr in 0..100u64 {
            r.on_insert(P, addr, addr, META);
        }
        let max = (0..100u64).map(|a| r.futility(P, a)).fold(0.0f64, f64::max);
        let min = (0..100u64).map(|a| r.futility(P, a)).fold(1.0f64, f64::min);
        assert!((max - 1.0).abs() < 1e-12);
        assert!((min - 0.01).abs() < 1e-12);
    }
}
