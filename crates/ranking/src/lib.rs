#![warn(missing_docs)]

//! Futility-ranking schemes for the Futility Scaling reproduction.
//!
//! A futility ranking assigns every cache line a normalized rank
//! `f ∈ (0, 1]` within its partition — "the uselessness of cache lines
//! within each partition is strictly ordered by a specific futility
//! ranking scheme" (paper, Section III-A). Provided rankings:
//!
//! * [`ExactLru`] — exact least-recently-used ranks (order-statistic
//!   queries over last-access times).
//! * [`CoarseLru`] — the paper's practical hardware ranking (§V-A):
//!   8-bit per-partition timestamps bumped every `size/16` accesses;
//!   futility is the modular timestamp distance. Optionally carries an
//!   exact shadow rank so measured associativity stays precise.
//! * [`Lfu`] — least-frequently-used (access counts, LRU tiebreak).
//! * [`Opt`] — Belady's OPT: ranks by time-to-next-reference, consuming
//!   the `next_use` annotations produced by
//!   [`Trace::annotate_next_use`](cachesim::trace::Trace::annotate_next_use).
//! * [`RandomRanking`] — futility is a stable per-line hash; the
//!   futility-blind floor every real ranking must beat.
//! * [`BucketCoarseLru`] / [`BucketRrip`] — treap-free bucket backends
//!   for the two coarse rankings: identical futility values, O(1)
//!   ranking ops, counting-prefix `true_futility` (see `bucketed`).
//!
//! # Example
//!
//! ```
//! use cachesim::{FutilityRanking, PartitionId, AccessMeta};
//! use ranking::ExactLru;
//!
//! let mut r = ExactLru::new();
//! r.reset(1);
//! let p = PartitionId(0);
//! r.on_insert(p, 0xA, 1, AccessMeta::default());
//! r.on_insert(p, 0xB, 2, AccessMeta::default());
//! assert_eq!(r.max_futility_line(p), Some(0xA)); // oldest line
//! ```

mod bucketed;
mod coarse_lru;
mod exact_lru;
mod lfu;
mod opt;
mod pool;
mod random;
mod rrip;

pub use bucketed::{BucketCoarseLru, BucketRrip};
pub use coarse_lru::CoarseLru;
pub use exact_lru::ExactLru;
pub use lfu::Lfu;
pub use opt::Opt;
pub use random::RandomRanking;
pub use rrip::Rrip;

use cachesim::FutilityRanking;

/// Names of the canonical rankings enumerated by experiment sweeps.
/// The bucket backends (`"coarse-lru-bucket"`, `"rrip-bucket"`) are
/// additionally constructible via [`by_name`] but are not listed here:
/// they produce the same futility values as their treap counterparts,
/// so sweeping them as separate schemes would double-count.
pub const ALL_RANKINGS: [&str; 6] = ["lru", "coarse-lru", "lfu", "opt", "random", "rrip"];

/// Construct a ranking by name (`"lru"`, `"coarse-lru"`, `"lfu"`,
/// `"opt"`, `"random"`, `"rrip"`, `"coarse-lru-bucket"`,
/// `"rrip-bucket"`). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn FutilityRanking>> {
    match name {
        "lru" => Some(Box::new(ExactLru::new())),
        "coarse-lru" => Some(Box::new(CoarseLru::new())),
        "coarse-lru-bucket" => Some(Box::new(BucketCoarseLru::new())),
        "lfu" => Some(Box::new(Lfu::new())),
        "opt" => Some(Box::new(Opt::new())),
        "random" => Some(Box::new(RandomRanking::new(0xFACE))),
        "rrip" => Some(Box::new(Rrip::new())),
        "rrip-bucket" => Some(Box::new(BucketRrip::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_all_rankings() {
        for name in ALL_RANKINGS {
            let r = by_name(name).unwrap_or_else(|| panic!("missing ranking {name}"));
            assert_eq!(r.name(), name);
        }
        for name in ["coarse-lru-bucket", "rrip-bucket"] {
            let r = by_name(name).unwrap_or_else(|| panic!("missing ranking {name}"));
            assert_eq!(r.name(), name);
        }
        assert!(by_name("belady9000").is_none());
    }
}
