//! RRIP-style futility ranking (an extension beyond the paper's three
//! rankings): lines carry an M-bit re-reference prediction value (RRPV).
//! Insertions predict a *long* re-reference interval (RRPV = max−1),
//! hits promote to *immediate* (RRPV = 0), and lines age by one RRPV
//! per pool "generation" (one generation = `size` accesses), which
//! approximates SRRIP's pressure-driven aging in a trace simulator.
//!
//! The futility a scheme sees is the coarse `RRPV / max` estimate —
//! like the paper's coarse timestamp LRU, RRIP is a cheap hardware
//! approximation, and Futility Scaling composes with it unchanged.

use crate::pool::TreapPool;
use cachesim::fxmap::FxHashMap;
use cachesim::{
    AccessMeta, Candidate, FutilityRanking, HitRecord, HitRunAgg, PartitionId, SnapshotError,
    SnapshotReader, SnapshotWriter,
};

/// Maximum RRPV for the default 2-bit configuration.
const MAX_RRPV: u32 = 3;

#[derive(Debug)]
struct RripPool {
    /// Per-line `(rrpv at tag time, generation at tag time)`.
    tags: FxHashMap<u64, (u32, u64)>,
    /// Current generation; lines age one RRPV per elapsed generation.
    generation: u64,
    /// Accesses since the last generation bump.
    accesses: u64,
    /// Exact shadow (keyed by last access time) for measurement.
    shadow: TreapPool<false>,
}

impl RripPool {
    fn new(seed: u64) -> Self {
        RripPool {
            tags: FxHashMap::default(),
            generation: 0,
            accesses: 0,
            shadow: TreapPool::new(seed),
        }
    }

    fn tick(&mut self) {
        self.accesses += 1;
        if self.accesses >= self.tags.len().max(1) as u64 {
            self.accesses = 0;
            self.generation += 1;
        }
    }

    fn effective_rrpv(&self, addr: u64) -> Option<u32> {
        let &(rrpv, gen) = self.tags.get(&addr)?;
        let aged = rrpv as u64 + (self.generation - gen);
        Some(aged.min(MAX_RRPV as u64) as u32)
    }
}

/// RRIP-style ranking with a 2-bit RRPV per line.
#[derive(Debug, Default)]
pub struct Rrip {
    pools: Vec<RripPool>,
    agg: HitRunAgg,
}

impl Rrip {
    /// Create an empty ranking (pools sized on `reset`).
    pub fn new() -> Self {
        Rrip::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut RripPool {
        let idx = part.index();
        if idx >= self.pools.len() {
            let n = self.pools.len();
            self.pools
                .extend((n..=idx).map(|i| RripPool::new(0x4219 + i as u64)));
        }
        &mut self.pools[idx]
    }

    /// The effective (aged) RRPV of a line, for inspection and tests.
    pub fn rrpv(&self, part: PartitionId, addr: u64) -> Option<u32> {
        self.pools.get(part.index())?.effective_rrpv(addr)
    }
}

impl FutilityRanking for Rrip {
    fn name(&self) -> &'static str {
        "rrip"
    }

    fn reset(&mut self, pools: usize) {
        self.pools = (0..pools)
            .map(|i| RripPool::new(0x4219 + i as u64))
            .collect();
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        let pool = self.pool_mut(part);
        let gen = pool.generation;
        // Long re-reference prediction on insertion (SRRIP).
        pool.tags.insert(addr, (MAX_RRPV - 1, gen));
        pool.shadow.upsert(addr, time);
        pool.tick();
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        let pool = self.pool_mut(part);
        let gen = pool.generation;
        // Immediate re-reference prediction on a hit.
        pool.tags.insert(addr, (0, gen));
        pool.shadow.upsert(addr, time);
        pool.tick();
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        let Rrip { pools, agg } = self;
        // The cheap tag + tick half is replicated per record, exactly
        // as the scalar path: `generation` can advance mid-run and the
        // tag must capture it at hit time.
        for h in hits {
            let pool = &mut pools[h.part.index()];
            let gen = pool.generation;
            pool.tags.insert(h.addr, (0, gen));
            pool.tick();
        }
        // The measurement shadow is a canonical treap keyed by
        // last-access time: only each line's final hit time matters,
        // and shadow state is independent of tags/generation, so the
        // deduplicated upserts commute with the loop above.
        agg.for_each_line(hits, |h, _| {
            pools[h.part.index()].shadow.upsert(h.addr, h.time)
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        let pool = self.pool_mut(part);
        pool.tags.remove(&addr);
        pool.shadow.remove(addr);
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        let (rrpv, key) = {
            let pool = self.pool_mut(from);
            let rrpv = match pool.effective_rrpv(addr) {
                Some(r) => r,
                None => return,
            };
            pool.tags.remove(&addr);
            let key = pool.shadow.remove(addr);
            (rrpv, key)
        };
        let pool = self.pool_mut(to);
        let gen = pool.generation;
        pool.tags.insert(addr, (rrpv, gen));
        if let Some(k) = key {
            pool.shadow.upsert(addr, k);
        }
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        match self
            .pools
            .get(part.index())
            .and_then(|p| p.effective_rrpv(addr))
        {
            Some(r) => (r as f64 + 1.0) / (MAX_RRPV as f64 + 1.0),
            None => 0.0,
        }
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        // Aged RRPV lookup fused into one loop: map probe, saturating
        // generation aging, one division — identical to the scalar
        // value without the per-candidate virtual call.
        for c in cands {
            c.futility = match self
                .pools
                .get(c.part.index())
                .and_then(|p| p.effective_rrpv(c.addr))
            {
                Some(r) => (r as f64 + 1.0) / (MAX_RRPV as f64 + 1.0),
                None => 0.0,
            };
        }
    }

    fn futility_bytes(&mut self, cands: &[Candidate], out: &mut Vec<u16>) -> bool {
        // futility = (rrpv + 1) / (MAX_RRPV + 1) exactly, so the aged
        // RRPV plus one is the raw numerator (≤ MAX_RRPV + 1 = 4) under
        // denominator D = 4; untracked lines report 0. Same lookup
        // structure as `futility_batch`, minus the f64 conversion.
        out.clear();
        for c in cands {
            out.push(
                match self
                    .pools
                    .get(c.part.index())
                    .and_then(|p| p.effective_rrpv(c.addr))
                {
                    Some(r) => (r + 1) as u16,
                    None => 0,
                },
            );
        }
        true
    }

    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.pools
            .get(part.index())
            .map_or(0.0, |p| p.shadow.futility(addr))
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools
            .get(part.index())
            .and_then(|p| p.shadow.most_futile())
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.tags.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("rrip");
        w.usize(self.pools.len());
        for pool in &self.pools {
            w.u64(pool.generation);
            w.u64(pool.accesses);
            let mut tags: Vec<(u64, u32, u64)> = pool
                .tags
                .iter()
                .map(|(&a, &(rrpv, gen))| (a, rrpv, gen))
                .collect();
            tags.sort_unstable();
            w.usize(tags.len());
            for (addr, rrpv, gen) in tags {
                w.u64(addr);
                w.u32(rrpv);
                w.u64(gen);
            }
            pool.shadow.save_state(w);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("rrip")?;
        let n = r.usize()?;
        if n != self.pools.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} ranking pools, engine has {}",
                self.pools.len()
            )));
        }
        for pool in &mut self.pools {
            pool.generation = r.u64()?;
            pool.accesses = r.u64()?;
            let len = r.seq_len(20)?;
            pool.tags = FxHashMap::default();
            pool.tags.reserve(len);
            let mut prev: Option<u64> = None;
            for _ in 0..len {
                let addr = r.u64()?;
                if prev.is_some_and(|p| p >= addr) {
                    return Err(SnapshotError::corrupt("rrip tags are not strictly sorted"));
                }
                prev = Some(addr);
                let rrpv = r.u32()?;
                let gen = r.u64()?;
                if rrpv > MAX_RRPV || gen > pool.generation {
                    return Err(SnapshotError::corrupt(format!(
                        "rrip tag out of range: rrpv {rrpv}, generation {gen}"
                    )));
                }
                pool.tags.insert(addr, (rrpv, gen));
            }
            pool.shadow.load_state(r)?;
            if pool.shadow.len() != pool.tags.len() {
                return Err(SnapshotError::corrupt(format!(
                    "rrip shadow tracks {} lines but pool has {} tags",
                    pool.shadow.len(),
                    pool.tags.len()
                )));
            }
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);
    const META: AccessMeta = AccessMeta {
        next_use: cachesim::NO_NEXT_USE,
    };

    #[test]
    fn insertion_predicts_long_hit_predicts_immediate() {
        let mut r = Rrip::new();
        r.reset(1);
        // A realistic pool so one access does not advance a generation.
        for a in 0..32u64 {
            r.on_insert(P, 100 + a, a, META);
        }
        r.on_insert(P, 1, 50, META);
        assert_eq!(r.rrpv(P, 1), Some(MAX_RRPV - 1));
        r.on_hit(P, 1, 51, META);
        // At most one generation can have elapsed during the hit.
        assert!(r.rrpv(P, 1) <= Some(1));
        assert!(r.futility(P, 1) <= 0.5);
    }

    #[test]
    fn lines_age_across_generations() {
        let mut r = Rrip::new();
        r.reset(1);
        // A fixed 16-line pool: generations advance every 16 accesses.
        for a in 0..16u64 {
            r.on_insert(P, a, a, META);
        }
        r.on_hit(P, 1, 20, META); // rrpv 0
        for t in 0..200u64 {
            r.on_hit(P, 2 + (t % 8), 30 + t, META); // churn other lines
        }
        // Line 1 aged back to the maximum RRPV.
        assert_eq!(r.rrpv(P, 1), Some(MAX_RRPV));
        assert!((r.futility(P, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_lines_outrank_cold_in_futility() {
        let mut r = Rrip::new();
        r.reset(1);
        for a in 0..64u64 {
            r.on_insert(P, a, a, META);
        }
        for t in 0..1000u64 {
            r.on_hit(P, t % 8, 100 + t, META); // lines 0..8 stay hot
        }
        assert!(r.futility(P, 3) < r.futility(P, 60));
        // The shadow still gives exact recency-based measurement ranks:
        // line 10 was inserted early and never touched again.
        assert!(r.true_futility(P, 10) > 0.5);
        assert_eq!(r.pool_len(P), 64);
    }

    #[test]
    fn evict_and_retag_bookkeeping() {
        let mut r = Rrip::new();
        r.reset(2);
        let q = PartitionId(1);
        for a in 0..16u64 {
            r.on_insert(P, 100 + a, a, META);
        }
        r.on_insert(P, 5, 20, META);
        r.on_retag(P, q, 5);
        assert_eq!(r.pool_len(P), 16);
        assert_eq!(r.rrpv(q, 5), Some(MAX_RRPV - 1));
        r.on_evict(q, 5);
        assert_eq!(r.pool_len(q), 0);
        assert_eq!(r.futility(q, 5), 0.0);
    }
}
