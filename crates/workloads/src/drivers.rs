//! Trace drivers: functional (non-timing) ways of replaying one or many
//! traces through any [`Engine`] (the boxed `PartitionedCache` or a
//! monomorphized `EngineCore`).
//!
//! * [`InterleavedDriver`] replays N traces round-robin, one access per
//!   thread per turn — the paper's setup for the homogeneous Figure 2
//!   workloads. It feeds the engine in struct-of-arrays blocks through
//!   [`Engine::access_batch`], which software-pipelines the hit-path
//!   lookups; replay order and results are identical to per-access
//!   feeding.
//! * [`RateControlledDriver`] reproduces Section IV's methodology: "the
//!   insertion rate of each partition is controlled by adjusting the
//!   speed of the trace feeding (i.e., the probability of next insertion
//!   that belongs to Partition i is equal to the pre-configured
//!   insertion rate I_i)."

use cachesim::prng::Prng;
use cachesim::{
    AccessBlock, AccessMeta, Engine, PartitionId, SnapshotError, SnapshotReader, SnapshotWriter,
    Trace,
};

/// One thread's replay cursor.
struct Cursor {
    trace: Trace,
    next_use: Vec<u64>,
    pos: usize,
}

impl Cursor {
    fn new(trace: Trace) -> Self {
        let next_use = trace.annotate_next_use();
        Cursor {
            trace,
            next_use,
            pos: 0,
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.trace.len()
    }

    fn step<E: Engine + ?Sized>(&mut self, part: PartitionId, cache: &mut E) -> bool {
        match self.next_access() {
            Some((addr, meta)) => cache.access(part, addr, meta).is_hit(),
            None => false,
        }
    }

    fn next_access(&mut self) -> Option<(u64, AccessMeta)> {
        if self.done() {
            return None;
        }
        let a = self.trace.accesses[self.pos];
        let meta = AccessMeta::with_next_use(self.next_use[self.pos]);
        self.pos += 1;
        Some((a.addr, meta))
    }
}

/// Round-robin replay of one trace per partition.
pub struct InterleavedDriver {
    cursors: Vec<Cursor>,
}

impl InterleavedDriver {
    /// Build a driver; trace `i` is replayed as partition `i`.
    pub fn new(traces: Vec<Trace>) -> Self {
        InterleavedDriver {
            cursors: traces.into_iter().map(Cursor::new).collect(),
        }
    }

    /// How many accesses the driver queues before handing the engine a
    /// block. Large enough to amortize the per-batch dispatch and keep
    /// the prefetch pipeline full, small enough that the block stays
    /// resident in L1/L2.
    const BLOCK: usize = 256;

    /// Replay all traces round-robin to completion, feeding the engine
    /// in blocks of [`Self::BLOCK`] accesses (the batched pipeline is
    /// observably identical to per-access feeding). If
    /// `warmup_fraction > 0`, statistics are reset once that fraction of
    /// the total accesses has been replayed; the reset lands on exactly
    /// the same round boundary as scalar feeding, so blocks straddling
    /// the warmup point are flushed early rather than split.
    pub fn run<E: Engine + ?Sized>(&mut self, cache: &mut E, warmup_fraction: f64) {
        let total: usize = self.cursors.iter().map(|c| c.trace.len()).sum();
        let warmup = (total as f64 * warmup_fraction.clamp(0.0, 1.0)) as usize;
        let mut fed = 0usize;
        let mut reset_done = warmup == 0;
        let mut block = AccessBlock::with_capacity(Self::BLOCK + self.cursors.len());
        while self.cursors.iter().any(|c| !c.done()) {
            for (i, cur) in self.cursors.iter_mut().enumerate() {
                if let Some((addr, meta)) = cur.next_access() {
                    block.push(PartitionId(i as u16), addr, meta);
                    fed += 1;
                }
            }
            // Only flush at round boundaries: when the block is full, or
            // when the warmup reset must observe the accesses fed so far.
            let reset_now = !reset_done && fed >= warmup;
            if block.len() >= Self::BLOCK || reset_now {
                cache.access_batch(&block);
                block.clear();
            }
            if reset_now {
                cache.stats_mut().reset();
                reset_done = true;
            }
        }
        cache.access_batch(&block);
    }
}

/// Insertion-rate-controlled replay (Section IV methodology).
pub struct RateControlledDriver {
    cursors: Vec<Cursor>,
    rates: Vec<f64>,
    rng: Prng,
}

impl RateControlledDriver {
    /// Build a driver with per-partition insertion-rate fractions
    /// `rates` (must sum to ~1).
    ///
    /// # Panics
    /// Panics if lengths differ or rates don't sum to 1 (±1e-6).
    pub fn new(traces: Vec<Trace>, rates: Vec<f64>, seed: u64) -> Self {
        assert_eq!(traces.len(), rates.len());
        let sum: f64 = rates.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "insertion rates must sum to 1, got {sum}"
        );
        RateControlledDriver {
            cursors: traces.into_iter().map(Cursor::new).collect(),
            rates,
            rng: Prng::seed_from_u64(seed),
        }
    }

    /// Serialize the driver's replay state — per-trace cursor positions
    /// and the sampling PRNG — into an open snapshot. The traces
    /// themselves are *not* serialized: they are part of the experiment
    /// configuration and must be rebuilt identically before a
    /// [`load_state`](Self::load_state).
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("rate-driver");
        w.usize(self.cursors.len());
        for c in &self.cursors {
            w.usize(c.pos);
        }
        for s in self.rng.state() {
            w.u64(s);
        }
        w.end();
    }

    /// Restore replay state saved by [`save_state`](Self::save_state)
    /// into a driver rebuilt with the same traces and rates.
    ///
    /// # Errors
    /// Fails with [`SnapshotError::Mismatch`] if the trace count
    /// differs, and [`SnapshotError::Corrupt`] if a cursor position
    /// lies beyond its trace.
    pub fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("rate-driver")?;
        let n = r.usize()?;
        if n != self.cursors.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot drives {n} traces, driver has {}",
                self.cursors.len()
            )));
        }
        for c in &mut self.cursors {
            let pos = r.usize()?;
            if pos > c.trace.len() {
                return Err(SnapshotError::corrupt(format!(
                    "cursor position {pos} beyond trace of {} accesses",
                    c.trace.len()
                )));
            }
            c.pos = pos;
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.u64()?;
        }
        self.rng = Prng::from_state(rng_state);
        r.end()
    }

    /// Drive the cache until `insertions` misses have been inserted (or
    /// some trace is exhausted). Each insertion belongs to partition `i`
    /// with probability `rates[i]`: the driver advances the chosen
    /// partition's trace until it produces a miss, processing any hits
    /// along the way. Returns the number of insertions actually driven.
    ///
    /// This driver is inherently scalar: whether the chosen trace keeps
    /// advancing depends on each access's hit/miss outcome, so accesses
    /// cannot be queued into blocks ahead of the engine's answers.
    pub fn run<E: Engine + ?Sized>(&mut self, cache: &mut E, insertions: u64) -> u64 {
        let mut driven = 0u64;
        'outer: while driven < insertions {
            // Sample the partition of the next insertion.
            let x = self.rng.next_f64();
            let mut acc = 0.0;
            let mut part = self.cursors.len() - 1;
            for (i, &r) in self.rates.iter().enumerate() {
                acc += r;
                if x < acc {
                    part = i;
                    break;
                }
            }
            // Feed that partition's trace until it misses.
            loop {
                if self.cursors[part].done() {
                    break 'outer;
                }
                let hit = self.cursors[part].step(PartitionId(part as u16), cache);
                if !hit {
                    driven += 1;
                    break;
                }
            }
        }
        driven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::array::RandomCandidates;
    use cachesim::PartitionedCache;

    fn cache(lines: usize, parts: usize) -> PartitionedCache {
        PartitionedCache::new(
            Box::new(RandomCandidates::new(lines, 8, 7)),
            cachesim::naive_lru(),
            cachesim::evict_max_futility(),
            parts,
        )
    }

    #[test]
    fn interleaved_driver_replays_everything() {
        let t0 = Trace::from_addrs(0..100u64, 1);
        let t1 = Trace::from_addrs(1000..1100u64, 1);
        let mut c = cache(64, 2);
        InterleavedDriver::new(vec![t0, t1]).run(&mut c, 0.0);
        let s = c.stats();
        assert_eq!(
            s.partition(PartitionId(0)).accesses() + s.partition(PartitionId(1)).accesses(),
            200
        );
    }

    #[test]
    fn warmup_resets_statistics() {
        let t0 = Trace::from_addrs((0..400u64).map(|i| i % 32), 1);
        let mut c = cache(64, 1);
        InterleavedDriver::new(vec![t0]).run(&mut c, 0.5);
        let s = c.stats().partition(PartitionId(0));
        // After warmup the 32-line working set is resident: all hits.
        assert!(s.accesses() <= 220, "stats were reset: {}", s.accesses());
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn rate_controlled_insertions_follow_rates() {
        // Two streaming traces (every access misses) with a 0.8/0.2
        // split: insertions should land roughly 4:1.
        let t0 = Trace::from_addrs(0..20_000u64, 1);
        let t1 = Trace::from_addrs(1_000_000..1_020_000u64, 1);
        let mut c = cache(256, 2);
        let mut d = RateControlledDriver::new(vec![t0, t1], vec![0.8, 0.2], 11);
        let driven = d.run(&mut c, 10_000);
        assert_eq!(driven, 10_000);
        let s = c.state();
        let frac0 = s.insertions[0] as f64 / (s.insertions[0] + s.insertions[1]) as f64;
        assert!((frac0 - 0.8).abs() < 0.02, "insertion fraction {frac0}");
    }

    #[test]
    fn rate_controlled_stops_on_exhaustion() {
        let t0 = Trace::from_addrs(0..50u64, 1);
        let t1 = Trace::from_addrs(1000..1050u64, 1);
        let mut c = cache(32, 2);
        let mut d = RateControlledDriver::new(vec![t0, t1], vec![0.5, 0.5], 3);
        let driven = d.run(&mut c, 1_000_000);
        assert!(driven <= 100);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_rates() {
        let _ = RateControlledDriver::new(vec![Trace::new(), Trace::new()], vec![0.5, 0.6], 1);
    }

    #[test]
    fn driver_checkpoint_resumes_bit_identically() {
        let traces = || {
            vec![
                Trace::from_addrs((0..50_000u64).map(|i| i % 700), 1),
                Trace::from_addrs((0..50_000u64).map(|i| 1_000_000 + i % 300), 1),
            ]
        };
        // Uninterrupted run: 3000 + 2000 insertions.
        let mut c_full = cache(512, 2);
        let mut d_full = RateControlledDriver::new(traces(), vec![0.7, 0.3], 42);
        assert_eq!(d_full.run(&mut c_full, 3_000), 3_000);
        // Checkpoint engine + driver at the 3000-insertion mark.
        let engine_snap = c_full.snapshot();
        let mut w = SnapshotWriter::new();
        d_full.save_state(&mut w);
        let driver_snap = w.finish();
        d_full.run(&mut c_full, 2_000);

        // Resume into freshly built equivalents.
        let mut c_res = cache(512, 2);
        let mut d_res = RateControlledDriver::new(traces(), vec![0.7, 0.3], 42);
        c_res.restore(&engine_snap).unwrap();
        let mut r = SnapshotReader::open(&driver_snap).unwrap();
        d_res.load_state(&mut r).unwrap();
        r.finish().unwrap();
        d_res.run(&mut c_res, 2_000);

        assert_eq!(c_full.snapshot(), c_res.snapshot());

        // A driver rebuilt with a different trace count must refuse.
        let mut d_bad =
            RateControlledDriver::new(vec![Trace::from_addrs(0..10u64, 1)], vec![1.0], 42);
        let mut r = SnapshotReader::open(&driver_snap).unwrap();
        assert!(d_bad.load_state(&mut r).is_err());
    }
}
