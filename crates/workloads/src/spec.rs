//! Synthetic profiles for the eight SPEC CPU2006 benchmarks the paper
//! evaluates. Each profile is a weighted mixture of access patterns
//! whose knobs are tuned to the behavioural anchors reported in the
//! paper (Figures 2 and 6); see DESIGN.md §3 for the per-benchmark
//! rationale. Absolute footprints and rates are stand-ins, but the
//! *relationships* the figures depend on hold: `mcf` is the most
//! associativity-sensitive at every size, `gromacs` only below ~1MB,
//! `lbm`/`libquantum` stream, `cactusADM` exhibits the LRU pathology
//! where extra associativity can hurt.

use crate::patterns::{Pattern, PatternSpec};
use cachesim::prng::Prng;
use cachesim::{Access, Trace};

/// A synthetic benchmark: a pattern mixture plus timing parameters.
#[derive(Clone, Debug)]
pub struct BenchmarkProfile {
    name: &'static str,
    /// `(weight, pattern)` mixture; weights need not sum to 1.
    mix: Vec<(f64, PatternSpec)>,
    /// Mean instructions between consecutive L2 accesses.
    mean_inst_gap: u32,
    /// Mean burst length: how many consecutive accesses stay within one
    /// pattern (preserves locality bursts).
    mean_burst: u32,
}

impl BenchmarkProfile {
    /// Create a profile from a mixture.
    ///
    /// # Panics
    /// Panics if the mixture is empty or has non-positive weights.
    pub fn new(
        name: &'static str,
        mix: Vec<(f64, PatternSpec)>,
        mean_inst_gap: u32,
        mean_burst: u32,
    ) -> Self {
        assert!(!mix.is_empty(), "mixture must not be empty");
        assert!(
            mix.iter().all(|(w, _)| *w > 0.0),
            "weights must be positive"
        );
        BenchmarkProfile {
            name,
            mix,
            mean_inst_gap: mean_inst_gap.max(1),
            mean_burst: mean_burst.max(1),
        }
    }

    /// Benchmark name, e.g. `"mcf"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Mean instructions per L2 access (drives the timing model).
    pub fn mean_inst_gap(&self) -> u32 {
        self.mean_inst_gap
    }

    /// Total footprint of the profile in lines.
    pub fn footprint_lines(&self) -> u64 {
        self.mix.iter().map(|(_, p)| p.lines()).sum()
    }

    /// Generate a trace of `len` accesses rooted at line address 0.
    pub fn generate(&self, len: usize, seed: u64) -> Trace {
        self.generate_with_base(len, seed, 0)
    }

    /// Generate a trace of `len` accesses whose addresses start at
    /// `base` (use distinct bases to keep threads' address spaces
    /// disjoint).
    pub fn generate_with_base(&self, len: usize, seed: u64, base: u64) -> Trace {
        let mut rng = Prng::seed_from_u64(seed ^ 0xC0FF_EE00);
        // Lay the pattern regions out back to back with a guard gap.
        let mut patterns: Vec<Pattern> = Vec::with_capacity(self.mix.len());
        let mut cursor = base;
        for (i, (_, spec)) in self.mix.iter().enumerate() {
            patterns.push(spec.instantiate(cursor, seed.wrapping_add(i as u64)));
            cursor += spec.lines() + 64;
        }
        let total_weight: f64 = self.mix.iter().map(|(w, _)| w).sum();

        let mut accesses = Vec::with_capacity(len);
        let mut current = 0usize;
        let mut remaining_burst = 0u32;
        while accesses.len() < len {
            if remaining_burst == 0 {
                // Pick the next pattern by weight.
                let mut x: f64 = rng.next_f64() * total_weight;
                current = self.mix.len() - 1;
                for (i, (w, _)) in self.mix.iter().enumerate() {
                    if x < *w {
                        current = i;
                        break;
                    }
                    x -= *w;
                }
                // Geometric-ish burst length around the mean.
                remaining_burst = rng.gen_range(1..=self.mean_burst * 2);
            }
            remaining_burst -= 1;
            let addr = patterns[current].next_addr(&mut rng);
            let gap = rng.gen_range(
                (self.mean_inst_gap / 2).max(1)..=self.mean_inst_gap + self.mean_inst_gap / 2,
            );
            accesses.push(Access::new(addr, gap));
        }
        Trace { accesses }
    }
}

/// Names of the eight modelled benchmarks, in the paper's Figure 2
/// order.
pub const ALL_BENCHMARKS: [&str; 8] = [
    "mcf",
    "omnetpp",
    "gromacs",
    "h264ref",
    "astar",
    "cactusadm",
    "libquantum",
    "lbm",
];

/// Look up a benchmark profile by (case-insensitive) name.
pub fn benchmark(name: &str) -> Option<BenchmarkProfile> {
    use PatternSpec::*;
    let profile = match name.to_ascii_lowercase().as_str() {
        // Pointer-heavy graph workload: skewed reuse over a 4MB region
        // plus pointer chasing. Associativity-sensitive at every size.
        "mcf" => BenchmarkProfile::new(
            "mcf",
            vec![
                (
                    0.65,
                    Zipf {
                        lines: 65_536,
                        exponent: 0.75,
                    },
                ),
                (0.25, PointerChase { lines: 16_384 }),
                (0.10, Stream { lines: 32_768 }),
            ],
            6,
            32,
        ),
        // Discrete-event simulator: moderately skewed reuse over 2MB.
        "omnetpp" => BenchmarkProfile::new(
            "omnetpp",
            vec![
                (
                    0.55,
                    Zipf {
                        lines: 32_768,
                        exponent: 0.60,
                    },
                ),
                (0.25, PointerChase { lines: 8_192 }),
                (0.20, Loop { lines: 2_048 }),
            ],
            10,
            32,
        ),
        // Molecular dynamics: a hot ~192KB loop plus skewed reuse over
        // 512KB. Sensitive below ~1MB, flat above (Figure 6); sized so
        // that squeezing its 256KB QoS guarantee (Figure 7) costs real
        // hits.
        "gromacs" => BenchmarkProfile::new(
            "gromacs",
            vec![
                (
                    0.60,
                    Zipf {
                        lines: 6_144,
                        exponent: 0.90,
                    },
                ),
                (0.25, Loop { lines: 1_024 }),
                (0.15, Stream { lines: 8_192 }),
            ],
            25,
            48,
        ),
        // Video encoder: small hot loops, compute-bound.
        "h264ref" => BenchmarkProfile::new(
            "h264ref",
            vec![
                (0.50, Loop { lines: 768 }),
                (
                    0.40,
                    Zipf {
                        lines: 8_192,
                        exponent: 0.80,
                    },
                ),
                (0.10, Stream { lines: 4_096 }),
            ],
            30,
            48,
        ),
        // Path-finding: medium reuse over ~1MB.
        "astar" => BenchmarkProfile::new(
            "astar",
            vec![
                (
                    0.50,
                    Zipf {
                        lines: 16_384,
                        exponent: 0.55,
                    },
                ),
                (0.30, PointerChase { lines: 8_192 }),
                (0.20, Loop { lines: 1_024 }),
            ],
            12,
            32,
        ),
        // Stencil solver: a cyclic sweep slightly exceeding mid-size
        // caches — the classic LRU pathology workload (Figure 6b shows
        // full associativity *hurting* cactusADM under LRU).
        "cactusadm" => BenchmarkProfile::new(
            "cactusadm",
            vec![
                (0.60, Loop { lines: 131_072 }),
                (
                    0.25,
                    Zipf {
                        lines: 8_192,
                        exponent: 0.60,
                    },
                ),
                (
                    0.15,
                    StridedSweep {
                        lines: 16_384,
                        stride: 64,
                    },
                ),
            ],
            9,
            64,
        ),
        // Quantum simulation: long streaming sweeps, little reuse.
        "libquantum" => BenchmarkProfile::new(
            "libquantum",
            vec![
                (0.90, Stream { lines: 131_072 }),
                (0.10, Loop { lines: 512 }),
            ],
            8,
            96,
        ),
        // Lattice-Boltzmann: a pure streaming memory hog. The paper's
        // background/bully thread in Figure 7.
        "lbm" => BenchmarkProfile::new(
            "lbm",
            vec![
                (0.95, Stream { lines: 524_288 }),
                (
                    0.05,
                    Zipf {
                        lines: 1_024,
                        exponent: 0.30,
                    },
                ),
            ],
            4,
            128,
        ),
        _ => return None,
    };
    Some(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_resolve() {
        for name in ALL_BENCHMARKS {
            let b = benchmark(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(b.name(), name);
            assert!(b.footprint_lines() > 0);
        }
        assert!(benchmark("perlbench").is_none());
        assert!(benchmark("MCF").is_some(), "case-insensitive lookup");
    }

    #[test]
    fn generation_is_deterministic() {
        let b = benchmark("mcf").unwrap();
        let t1 = b.generate(5_000, 99);
        let t2 = b.generate(5_000, 99);
        assert_eq!(t1, t2);
        let t3 = b.generate(5_000, 100);
        assert_ne!(t1, t3, "different seeds differ");
    }

    #[test]
    fn bases_keep_address_spaces_disjoint() {
        let b = benchmark("gromacs").unwrap();
        let t0 = b.generate_with_base(2_000, 1, 0);
        let t1 = b.generate_with_base(2_000, 1, 1 << 40);
        let max0 = t0.accesses.iter().map(|a| a.addr).max().unwrap();
        let min1 = t1.accesses.iter().map(|a| a.addr).min().unwrap();
        assert!(max0 < min1);
    }

    #[test]
    fn lbm_streams_and_gromacs_reuses() {
        // Reuse ratio proxy: fraction of accesses to already-seen lines
        // within a window. lbm should be far more streaming.
        let reuse = |name: &str| -> f64 {
            let t = benchmark(name).unwrap().generate(50_000, 3);
            let seen: std::collections::HashSet<u64> = t.accesses.iter().map(|a| a.addr).collect();
            1.0 - seen.len() as f64 / t.len() as f64
        };
        let lbm = reuse("lbm");
        let gromacs = reuse("gromacs");
        assert!(gromacs > 0.6, "gromacs reuse {gromacs}");
        assert!(lbm < 0.35, "lbm reuse {lbm}");
        assert!(gromacs > lbm + 0.3);
    }

    #[test]
    fn inst_gaps_reflect_memory_intensity() {
        let lbm = benchmark("lbm").unwrap();
        let h264 = benchmark("h264ref").unwrap();
        assert!(lbm.mean_inst_gap() < h264.mean_inst_gap());
        let t = lbm.generate(1_000, 5);
        let avg = t.instructions() as f64 / t.len() as f64;
        assert!((avg - lbm.mean_inst_gap() as f64).abs() < 1.0);
    }
}
