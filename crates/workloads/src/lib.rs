#![warn(missing_docs)]

//! Synthetic workload generators standing in for the paper's SPEC
//! CPU2006 traces (Section VII-C), plus the trace drivers used by the
//! analytical experiments of Section IV.
//!
//! The real evaluation replays 250M-instruction SimPoint regions through
//! Sniper; we cannot ship those traces, so each benchmark is modelled as
//! a deterministic mixture of access *patterns* (streams, loops,
//! Zipf-distributed reuse, pointer chases, strided sweeps) whose knobs
//! are tuned to the behavioural anchors the paper itself reports — e.g.
//! `mcf` is strongly associativity-sensitive at every cache size while
//! `lbm` is a streaming memory hog with negligible reuse. See DESIGN.md
//! §3 for the substitution argument.
//!
//! # Example
//!
//! ```
//! use workloads::spec;
//! let profile = spec::benchmark("mcf").unwrap();
//! let trace = profile.generate(10_000, 42);
//! assert_eq!(trace.len(), 10_000);
//! assert!(trace.footprint() > 1_000, "mcf touches a large footprint");
//! ```

pub mod drivers;
pub mod io;
pub mod mix;
pub mod patterns;
pub mod populations;
pub mod spec;
pub mod zipf;

pub use drivers::{InterleavedDriver, RateControlledDriver};
pub use io::{load_trace, parse_text_trace, save_trace};
pub use mix::{UnknownBenchmark, WorkloadMix};
pub use patterns::{Pattern, PatternSpec};
pub use populations::{MultiZipf, PartitionPopulation};
pub use spec::{benchmark, BenchmarkProfile, ALL_BENCHMARKS};
pub use zipf::Zipf;
