//! Multi-population Zipf traffic for partitioned caches: each
//! partition owns a disjoint item population (CDN / multi-tenant
//! territory), sampled with its own Zipf skew and traffic weight.
//!
//! This is the workload the sharded scale-out sweeps (`bench_sharded`)
//! drive: hundreds of partitions, millions of distinct lines, and a
//! closed-form expected miss rate per partition from the Che
//! approximation (`analysis::ZipfOracle`) — the validation layer at
//! scales where exact golden CSVs can't exist.
//!
//! Addresses are `partition_base + rank` with partition bases spaced
//! [`ADDR_STRIDE`] apart, so populations are disjoint by construction
//! and rank `r` of partition `p` always maps to the same line — the
//! independent-reference model the oracle assumes.

use crate::Zipf;
use cachesim::engine::AccessBlock;
use cachesim::ids::{AccessMeta, PartitionId};
use cachesim::prng::Prng;

/// Address-space stride between partition populations (one partition's
/// ranks never collide with another's below 2^40 items).
pub const ADDR_STRIDE: u64 = 1 << 40;

/// The line address of rank `rank` in partition `part`'s population.
#[inline]
pub fn addr_of(part: PartitionId, rank: usize) -> u64 {
    (part.0 as u64) * ADDR_STRIDE + rank as u64
}

/// One partition's population spec.
#[derive(Clone, Copy, Debug)]
pub struct PartitionPopulation {
    /// Number of distinct items (lines) the partition references.
    pub items: usize,
    /// Zipf exponent of the popularity distribution (0 = uniform).
    pub alpha: f64,
    /// Relative traffic weight (share of accesses; normalized).
    pub weight: f64,
}

/// A deterministic access generator over disjoint per-partition Zipf
/// populations: each access first draws a partition by traffic weight,
/// then a rank from that partition's Zipf table.
///
/// Identical `(items, alpha)` populations share one cumulative table —
/// a 512-partition uniform mix holds one table, not 512 copies.
pub struct MultiZipf {
    /// Table index per partition.
    table_of: Vec<usize>,
    tables: Vec<Zipf>,
    /// Raw (unnormalized) traffic weights, one entry per partition —
    /// kept so [`set_weight`](Self::set_weight) storms can rebuild the
    /// cumulative distribution.
    weights: Vec<f64>,
    /// Cumulative normalized traffic weights, one entry per partition.
    cum_weight: Vec<f64>,
    /// Per-partition popularity rotation: rank `r` is remapped to item
    /// `(r + rotation) % items`, modeling popularity drift (the hot
    /// head moves to previously-cold items) without changing the
    /// population's size or skew.
    rotation: Vec<usize>,
}

impl MultiZipf {
    /// Build a generator from per-partition population specs (partition
    /// `i` uses `pops[i]`).
    ///
    /// # Panics
    /// Panics if `pops` is empty, has more than `u16::MAX + 1` entries
    /// (the `PartitionId` space), a population exceeds [`ADDR_STRIDE`]
    /// items, or the total weight is not positive and finite.
    pub fn new(pops: &[PartitionPopulation]) -> Self {
        assert!(!pops.is_empty(), "need at least one population");
        assert!(
            pops.len() <= u16::MAX as usize + 1,
            "PartitionId space exceeded"
        );
        let mut tables: Vec<Zipf> = Vec::new();
        let mut keys: Vec<(usize, u64)> = Vec::new();
        let mut table_of = Vec::with_capacity(pops.len());
        let mut weights = Vec::with_capacity(pops.len());
        for p in pops {
            assert!(
                (p.items as u64) <= ADDR_STRIDE,
                "population exceeds the per-partition address stride"
            );
            assert!(
                p.weight >= 0.0 && p.weight.is_finite(),
                "bad traffic weight"
            );
            let key = (p.items, p.alpha.to_bits());
            let idx = match keys.iter().position(|&(n, a)| (n, a) == key) {
                Some(i) => i,
                None => {
                    keys.push(key);
                    tables.push(Zipf::new(p.items, p.alpha));
                    tables.len() - 1
                }
            };
            table_of.push(idx);
            weights.push(p.weight);
        }
        let n = pops.len();
        let mut m = MultiZipf {
            table_of,
            tables,
            weights,
            cum_weight: vec![0.0; n],
            rotation: vec![0; n],
        };
        m.rebuild_cum();
        m
    }

    /// Recompute the cumulative sampling distribution from the raw
    /// weights.
    ///
    /// # Panics
    /// Panics if the total weight is not positive and finite.
    fn rebuild_cum(&mut self) {
        let mut acc = 0.0;
        for (c, &w) in self.cum_weight.iter_mut().zip(&self.weights) {
            acc += w;
            *c = acc;
        }
        assert!(
            acc > 0.0 && acc.is_finite(),
            "total traffic weight must be positive"
        );
        for c in &mut self.cum_weight {
            *c /= acc;
        }
    }

    /// An equal-weight mix of `partitions` identical Zipf populations
    /// (`items` items each, exponent `alpha`) — the symmetric sweep
    /// configuration.
    pub fn uniform_mix(partitions: usize, items: usize, alpha: f64) -> Self {
        let pop = PartitionPopulation {
            items,
            alpha,
            weight: 1.0,
        };
        Self::new(&vec![pop; partitions])
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.table_of.len()
    }

    /// Number of distinct items partition `part` references.
    pub fn items(&self, part: PartitionId) -> usize {
        self.tables[self.table_of[part.index()]].len()
    }

    /// Total distinct lines across all partitions.
    pub fn footprint(&self) -> u64 {
        self.table_of
            .iter()
            .map(|&t| self.tables[t].len() as u64)
            .sum()
    }

    /// Partition `part`'s current raw traffic weight.
    pub fn weight(&self, part: PartitionId) -> f64 {
        self.weights[part.index()]
    }

    /// Re-weight partition `part`'s traffic — the allocation-storm
    /// primitive. Weight `0.0` models tenant *departure* (it stops
    /// producing accesses; its population stays addressable), a later
    /// positive weight models *arrival* or a step change in load. The
    /// change applies to the next [`sample`](Self::sample); sampling
    /// stays deterministic in the seed across any storm schedule.
    ///
    /// # Panics
    /// Panics if `weight` is negative or non-finite, or if every
    /// partition's weight would be zero.
    pub fn set_weight(&mut self, part: PartitionId, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite(), "bad traffic weight");
        self.weights[part.index()] = weight;
        self.rebuild_cum();
    }

    /// Drift partition `part`'s popularity by `offset` ranks: rank `r`
    /// now maps to item `(r + offset) % items`, so the Zipf head lands
    /// on previously-cold lines while size and skew are unchanged. The
    /// offset is absolute (not cumulative); `0` restores the original
    /// mapping.
    pub fn set_drift(&mut self, part: PartitionId, offset: usize) {
        let i = part.index();
        self.rotation[i] = offset % self.tables[self.table_of[i]].len();
    }

    /// Draw one access: a partition by traffic weight, then a line of
    /// its population by popularity.
    pub fn sample(&self, rng: &mut Prng) -> (PartitionId, u64) {
        let x = rng.next_f64();
        let i = match self
            .cum_weight
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cum_weight.len() - 1),
        };
        let part = PartitionId(i as u16);
        let table = &self.tables[self.table_of[i]];
        let rank = table.sample(rng);
        let rot = self.rotation[i];
        let item = if rot == 0 {
            rank
        } else {
            let r = rank + rot;
            if r >= table.len() {
                r - table.len()
            } else {
                r
            }
        };
        (part, addr_of(part, item))
    }

    /// Append `n` sampled accesses to `block`.
    pub fn fill(&self, block: &mut AccessBlock, n: usize, rng: &mut Prng) {
        for _ in 0..n {
            let (part, addr) = self.sample(rng);
            block.push(part, addr, AccessMeta::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_are_disjoint_and_in_range() {
        let m = MultiZipf::uniform_mix(8, 100, 0.8);
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..10_000 {
            let (part, addr) = m.sample(&mut rng);
            assert!(part.index() < 8);
            assert_eq!(addr / ADDR_STRIDE, part.0 as u64);
            assert!((addr % ADDR_STRIDE) < 100);
        }
        assert_eq!(m.partitions(), 8);
        assert_eq!(m.footprint(), 800);
        assert_eq!(m.items(PartitionId(5)), 100);
    }

    #[test]
    fn traffic_follows_weights() {
        let m = MultiZipf::new(&[
            PartitionPopulation {
                items: 10,
                alpha: 0.0,
                weight: 3.0,
            },
            PartitionPopulation {
                items: 10,
                alpha: 0.0,
                weight: 1.0,
            },
        ]);
        let mut rng = Prng::seed_from_u64(4);
        let mut counts = [0u32; 2];
        for _ in 0..100_000 {
            counts[m.sample(&mut rng).0.index()] += 1;
        }
        let share = counts[0] as f64 / 100_000.0;
        assert!((share - 0.75).abs() < 0.01, "{share}");
    }

    #[test]
    fn identical_populations_share_tables() {
        let m = MultiZipf::uniform_mix(512, 1000, 0.8);
        assert_eq!(m.tables.len(), 1);
        let mixed = MultiZipf::new(&[
            PartitionPopulation {
                items: 50,
                alpha: 0.8,
                weight: 1.0,
            },
            PartitionPopulation {
                items: 60,
                alpha: 0.8,
                weight: 1.0,
            },
            PartitionPopulation {
                items: 50,
                alpha: 0.8,
                weight: 2.0,
            },
        ]);
        assert_eq!(mixed.tables.len(), 2);
    }

    #[test]
    fn fill_is_deterministic_in_the_seed() {
        let m = MultiZipf::uniform_mix(4, 200, 1.0);
        let mut a = AccessBlock::new();
        let mut b = AccessBlock::new();
        m.fill(&mut a, 500, &mut Prng::seed_from_u64(11));
        m.fill(&mut b, 500, &mut Prng::seed_from_u64(11));
        assert_eq!(a.addrs(), b.addrs());
        assert_eq!(a.parts(), b.parts());
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn reweighting_models_departure_and_arrival() {
        let mut m = MultiZipf::uniform_mix(3, 50, 0.8);
        // Departure: partition 1 stops producing traffic entirely.
        m.set_weight(PartitionId(1), 0.0);
        let mut rng = Prng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[m.sample(&mut rng).0.index()] += 1;
        }
        assert_eq!(counts[1], 0, "departed tenant got traffic: {counts:?}");
        assert!(counts[0] > 0 && counts[2] > 0);
        // Arrival with a 2x step: it now carries ~half the traffic.
        m.set_weight(PartitionId(1), 2.0);
        assert_eq!(m.weight(PartitionId(1)), 2.0);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[m.sample(&mut rng).0.index()] += 1;
        }
        let share = counts[1] as f64 / 40_000.0;
        assert!((share - 0.5).abs() < 0.02, "{counts:?}");
    }

    #[test]
    fn drift_moves_the_hot_head_without_changing_the_footprint() {
        let mut m = MultiZipf::uniform_mix(1, 100, 1.2);
        let hot = |m: &MultiZipf, seed: u64| {
            let mut rng = Prng::seed_from_u64(seed);
            let mut counts = [0u32; 100];
            for _ in 0..50_000 {
                counts[(m.sample(&mut rng).1 % ADDR_STRIDE) as usize] += 1;
            }
            (0..100).max_by_key(|&k| counts[k]).unwrap()
        };
        assert_eq!(hot(&m, 2), 0, "undrifted head is rank 0");
        m.set_drift(PartitionId(0), 40);
        assert_eq!(hot(&m, 2), 40, "drift relocates the head");
        // Ranks stay in range and the offset is absolute, not cumulative.
        m.set_drift(PartitionId(0), 140);
        assert_eq!(hot(&m, 2), 40, "offset wraps modulo items");
        m.set_drift(PartitionId(0), 0);
        assert_eq!(hot(&m, 2), 0, "zero restores the original mapping");
    }

    #[test]
    fn storm_schedule_is_deterministic_in_the_seed() {
        let run = || {
            let mut m = MultiZipf::uniform_mix(4, 200, 1.0);
            let mut rng = Prng::seed_from_u64(11);
            let mut block = AccessBlock::new();
            m.fill(&mut block, 500, &mut rng);
            m.set_weight(PartitionId(2), 0.0);
            m.set_drift(PartitionId(0), 17);
            m.fill(&mut block, 500, &mut rng);
            m.set_weight(PartitionId(2), 3.0);
            m.fill(&mut block, 500, &mut rng);
            (block.parts().to_vec(), block.addrs().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empirical_frequencies_match_oracle_popularities() {
        // The generator and the analytic oracle must describe the same
        // distribution: empirical rank frequencies vs ZipfOracle
        // popularities. (Keeps workloads and analysis from drifting.)
        let m = MultiZipf::uniform_mix(1, 50, 1.0);
        let oracle = analysis::ZipfOracle::new(50, 1.0);
        let mut rng = Prng::seed_from_u64(5);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[(m.sample(&mut rng).1 % ADDR_STRIDE) as usize] += 1;
        }
        for k in [0usize, 1, 5, 20, 49] {
            let emp = counts[k] as f64 / n as f64;
            let q = oracle.popularity(k);
            assert!((emp - q).abs() < 0.01 + q * 0.1, "rank {k}: {emp} vs {q}");
        }
    }
}
