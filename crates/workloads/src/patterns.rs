//! Access-pattern building blocks. A benchmark profile is a weighted
//! mixture of these; each pattern owns a region of the thread's line
//! address space and emits line offsets within it.

use crate::zipf::Zipf;
use cachesim::prng::Prng;

/// Declarative description of one pattern (sizes in cache lines).
#[derive(Clone, Debug, PartialEq)]
pub enum PatternSpec {
    /// Sequential cyclic scan over `lines` lines: pure streaming, zero
    /// short-term reuse (e.g. `lbm`).
    Stream {
        /// Region size in lines.
        lines: u64,
    },
    /// Tight cyclic loop over a working set of `lines` lines: perfect
    /// reuse once resident (e.g. an inner solver loop).
    Loop {
        /// Working-set size in lines.
        lines: u64,
    },
    /// Zipf-distributed references over `lines` lines with the given
    /// exponent: skewed temporal reuse (hot data structures).
    Zipf {
        /// Region size in lines.
        lines: u64,
        /// Zipf exponent (0 = uniform, larger = more skew).
        exponent: f64,
    },
    /// A cyclic walk over a pseudo-random permutation of `lines` lines:
    /// maximal reuse distance (pointer chasing).
    PointerChase {
        /// Region size in lines.
        lines: u64,
    },
    /// Strided cyclic sweep: visits `lines` lines in steps of `stride`,
    /// wrapping with an offset so every line is eventually touched.
    /// Power-of-two strides conflict pathologically in modulo-indexed
    /// caches.
    StridedSweep {
        /// Region size in lines.
        lines: u64,
        /// Stride in lines.
        stride: u64,
    },
}

impl PatternSpec {
    /// Region size this pattern needs, in lines.
    pub fn lines(&self) -> u64 {
        match *self {
            PatternSpec::Stream { lines }
            | PatternSpec::Loop { lines }
            | PatternSpec::Zipf { lines, .. }
            | PatternSpec::PointerChase { lines }
            | PatternSpec::StridedSweep { lines, .. } => lines,
        }
    }

    /// Instantiate runtime state with the region based at `base`.
    pub fn instantiate(&self, base: u64, seed: u64) -> Pattern {
        let state = match *self {
            PatternSpec::Stream { lines } => State::Cursor {
                lines,
                pos: 0,
                step: 1,
            },
            PatternSpec::Loop { lines } => State::Cursor {
                lines,
                pos: 0,
                step: 1,
            },
            PatternSpec::Zipf { lines, exponent } => State::Zipf {
                dist: Zipf::new(lines as usize, exponent),
                perm_seed: seed,
                lines,
            },
            PatternSpec::PointerChase { lines } => State::Chase {
                lines,
                pos: seed % lines,
                // A fixed odd multiplier makes `pos → pos*a+c mod lines`
                // visit lines in a scrambled (but reproducible) order.
                mult: 0x9E3779B1 | 1,
            },
            PatternSpec::StridedSweep { lines, stride } => State::Cursor {
                lines,
                pos: 0,
                step: stride.max(1),
            },
        };
        Pattern { base, state }
    }
}

#[derive(Clone, Debug)]
enum State {
    Cursor {
        lines: u64,
        pos: u64,
        step: u64,
    },
    Zipf {
        dist: Zipf,
        perm_seed: u64,
        lines: u64,
    },
    Chase {
        lines: u64,
        pos: u64,
        mult: u64,
    },
}

/// Runtime state of an instantiated pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    base: u64,
    state: State,
}

impl Pattern {
    /// Emit the next line address.
    pub fn next_addr(&mut self, rng: &mut Prng) -> u64 {
        let off = match &mut self.state {
            State::Cursor { lines, pos, step } => {
                let cur = *pos;
                // Advance with the stride; add 1 on wrap so strided
                // sweeps cover all residues over time.
                *pos = (*pos + *step) % *lines;
                if *step > 1 && *pos == cur % *step {
                    *pos = (*pos + 1) % *lines;
                }
                cur
            }
            State::Zipf {
                dist,
                perm_seed,
                lines,
            } => {
                let rank = dist.sample(rng) as u64;
                // Scatter ranks across the region so hot lines are not
                // physically adjacent (defeats trivial spatial locality).
                // The multiplier must stay odd: an even multiplier is
                // non-injective modulo a power-of-two region size and
                // silently shrinks the footprint.
                let mult =
                    (0x9E37_79B9_7F4A_7C15u64 ^ perm_seed.wrapping_mul(0x9E37_79B9) << 1) | 1;
                rank.wrapping_mul(mult) % *lines
            }
            State::Chase { lines, pos, mult } => {
                let cur = *pos;
                *pos = (pos.wrapping_mul(*mult).wrapping_add(12345)) % *lines;
                cur
            }
        };
        self.base + off
    }

    /// Base address of the pattern's region.
    pub fn base(&self) -> u64 {
        self.base
    }
}

/// Convenience: generate `n` addresses from a single spec (tests and
/// examples).
pub fn sample_addresses(spec: &PatternSpec, n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut p = spec.instantiate(0, seed);
    (0..n).map(|_| p.next_addr(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_sequential_and_cyclic() {
        let addrs = sample_addresses(&PatternSpec::Stream { lines: 4 }, 10, 1);
        assert_eq!(addrs, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn loop_covers_exactly_its_working_set() {
        let addrs = sample_addresses(&PatternSpec::Loop { lines: 16 }, 1000, 2);
        let distinct: HashSet<u64> = addrs.iter().copied().collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn zipf_pattern_concentrates_on_hot_lines() {
        let addrs = sample_addresses(
            &PatternSpec::Zipf {
                lines: 1000,
                exponent: 1.0,
            },
            50_000,
            3,
        );
        let mut counts = std::collections::HashMap::new();
        for a in addrs {
            *counts.entry(a).or_insert(0u32) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max > 2_000, "hottest line count {max}");
        assert!(counts.len() > 300, "still covers a broad region");
    }

    #[test]
    fn pointer_chase_eventually_revisits() {
        let addrs = sample_addresses(&PatternSpec::PointerChase { lines: 64 }, 1000, 4);
        let distinct: HashSet<u64> = addrs.iter().copied().collect();
        assert!(distinct.len() > 16, "chase wanders: {}", distinct.len());
        assert!(distinct.iter().all(|&a| a < 64));
    }

    #[test]
    fn strided_sweep_touches_all_residues() {
        let addrs = sample_addresses(
            &PatternSpec::StridedSweep {
                lines: 64,
                stride: 8,
            },
            10_000,
            5,
        );
        let distinct: HashSet<u64> = addrs.iter().copied().collect();
        assert_eq!(distinct.len(), 64, "wrap offset covers every line");
    }

    #[test]
    fn zipf_scatter_is_injective_for_every_seed() {
        // Regression: an even scatter multiplier collapses a
        // power-of-two region to a fraction of its lines.
        for seed in 0..32u64 {
            let addrs = sample_addresses(
                &PatternSpec::Zipf {
                    lines: 4096,
                    exponent: 0.0,
                },
                40_000,
                seed,
            );
            let distinct: HashSet<u64> = addrs.into_iter().collect();
            assert!(
                distinct.len() > 3_000,
                "seed {seed} collapses the region to {} lines",
                distinct.len()
            );
        }
    }

    #[test]
    fn base_offsets_the_region() {
        let mut p = PatternSpec::Stream { lines: 4 }.instantiate(1000, 0);
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(p.next_addr(&mut rng), 1000);
        assert_eq!(p.base(), 1000);
    }
}
