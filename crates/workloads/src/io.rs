//! Trace import/export, so real L2 traces (e.g. collected from a
//! full-system simulator the way the paper used Sniper) can be replayed
//! through the library instead of the synthetic profiles.
//!
//! Two formats:
//! * **Binary** — magic `FSTR1\n`, a little-endian `u64` record count,
//!   then `(u64 line_address, u32 inst_gap)` records. Compact and
//!   lossless.
//! * **Text** — one access per line: `<address> [inst_gap]`, addresses
//!   in decimal or `0x…` hex, `#` comments and blank lines ignored,
//!   missing gaps default to 1. Convenient for hand-written fixtures
//!   and quick conversions.

use cachesim::{Access, Trace};
use std::io::{self, BufRead, Read, Write};

/// Magic bytes of the binary trace format.
pub const TRACE_MAGIC: &[u8; 6] = b"FSTR1\n";

/// Write a trace in the binary format.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn save_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(TRACE_MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in &trace.accesses {
        w.write_all(&a.addr.to_le_bytes())?;
        w.write_all(&a.inst_gap.to_le_bytes())?;
    }
    Ok(())
}

/// Read a binary trace written by [`save_trace`].
///
/// # Errors
/// Returns `InvalidData` on a bad magic or truncated stream, and
/// propagates underlying I/O errors.
pub fn load_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)
        .map_err(|_| bad("missing trace header"))?;
    if &magic != TRACE_MAGIC {
        return Err(bad("not an FSTR1 trace"));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)
        .map_err(|_| bad("truncated count"))?;
    let count = u64::from_le_bytes(count);
    let mut accesses = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut rec = [0u8; 12];
    for i in 0..count {
        r.read_exact(&mut rec)
            .map_err(|_| bad_at("truncated record", i))?;
        let addr = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let gap = u32::from_le_bytes(rec[8..].try_into().expect("4 bytes"));
        accesses.push(Access::new(addr, gap));
    }
    Ok(Trace { accesses })
}

/// Parse a text trace: `<address> [inst_gap]` per line.
///
/// # Errors
/// Returns `InvalidData` naming the offending line on parse failures.
pub fn parse_text_trace<R: BufRead>(r: R) -> io::Result<Trace> {
    let mut accesses = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let addr_tok = parts.next().expect("non-empty body");
        let addr = parse_u64(addr_tok).ok_or_else(|| bad_at("bad address", lineno as u64 + 1))?;
        let gap = match parts.next() {
            Some(tok) => tok
                .parse::<u32>()
                .map_err(|_| bad_at("bad inst_gap", lineno as u64 + 1))?,
            None => 1,
        };
        if parts.next().is_some() {
            return Err(bad_at("trailing tokens", lineno as u64 + 1));
        }
        accesses.push(Access::new(addr, gap));
    }
    Ok(Trace { accesses })
}

fn parse_u64(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn bad_at(msg: &str, pos: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{msg} (record/line {pos})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_roundtrip_is_lossless() {
        let trace = crate::benchmark("mcf").expect("profile").generate(5_000, 3);
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        let back = load_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = load_trace(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_truncation() {
        let trace = Trace::from_addrs(0..10u64, 2);
        let mut buf = Vec::new();
        save_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = load_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("truncated record"));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        save_trace(&Trace::new(), &mut buf).unwrap();
        assert!(load_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn text_format_parses_comments_hex_and_defaults() {
        let src = "# a fixture\n0x40 10\n64\n\n128 5 # trailing comment\n";
        let t = parse_text_trace(src.as_bytes()).unwrap();
        assert_eq!(
            t.accesses,
            vec![
                Access::new(0x40, 10),
                Access::new(64, 1),
                Access::new(128, 5)
            ]
        );
    }

    #[test]
    fn text_format_reports_line_numbers() {
        let err = parse_text_trace("64\nnot_an_addr\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_text_trace("64 1 extra\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
