//! A deterministic Zipf sampler over `{0, …, n−1}` with exponent `s`:
//! rank `k` is drawn with probability proportional to `1 / (k+1)^s`.
//! Used to model temporally skewed reuse (hot data structures).

use cachesim::prng::Prng;

/// Zipf distribution sampler with a precomputed cumulative table
/// (`O(n)` memory, `O(log n)` per sample).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `s ≥ 0` (`s = 0` is
    /// uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is over a single item.
    pub fn is_empty(&self) -> bool {
        false // n > 0 is enforced at construction
    }

    /// Draw one rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let x = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("cumulative is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipf::new(1000, 0.8);
        let mut rng = Prng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Prng::seed_from_u64(8);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "{counts:?}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
