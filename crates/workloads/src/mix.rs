//! Declarative multiprogrammed workload mixes: the "N_subject copies of
//! X plus background copies of Y" constructions the paper's evaluation
//! uses, with automatic per-thread address-space separation and seeding.

use crate::spec::{benchmark, BenchmarkProfile};
use cachesim::Trace;

/// Address-space stride between threads (2^40 lines ≫ any footprint).
const THREAD_STRIDE: u64 = 1 << 40;

#[derive(Clone, Debug)]
struct MixEntry {
    profile: BenchmarkProfile,
    count: usize,
}

/// Builder for a multiprogrammed workload mix.
///
/// # Example
/// ```
/// use workloads::WorkloadMix;
/// let traces = WorkloadMix::new(10_000, 42)
///     .threads("gromacs", 2)
///     .threads("lbm", 2)
///     .build()
///     .unwrap();
/// assert_eq!(traces.len(), 4);
/// assert_eq!(traces[0].len(), 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    entries: Vec<MixEntry>,
    unknown: Vec<String>,
    trace_len: usize,
    seed: u64,
}

/// Error for unknown benchmark names in a mix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBenchmark(pub String);

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark '{}'", self.0)
    }
}

impl std::error::Error for UnknownBenchmark {}

impl WorkloadMix {
    /// Start a mix; every thread gets a `trace_len`-access trace and a
    /// seed derived from `seed`.
    pub fn new(trace_len: usize, seed: u64) -> Self {
        WorkloadMix {
            entries: Vec::new(),
            unknown: Vec::new(),
            trace_len,
            seed,
        }
    }

    /// Append `count` threads of `name`. Unknown names surface at
    /// [`build`](Self::build).
    pub fn threads(mut self, name: &str, count: usize) -> Self {
        match benchmark(name) {
            Some(profile) => self.entries.push(MixEntry { profile, count }),
            None => self.unknown.push(name.to_string()),
        }
        self
    }

    /// Total thread count configured so far (unknown names excluded).
    pub fn thread_count(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Generate all traces, one per thread, in declaration order, with
    /// disjoint address spaces and distinct seeds.
    ///
    /// # Errors
    /// Returns [`UnknownBenchmark`] if any requested name was unknown.
    pub fn build(self) -> Result<Vec<Trace>, UnknownBenchmark> {
        if let Some(name) = self.unknown.into_iter().next() {
            return Err(UnknownBenchmark(name));
        }
        let mut traces = Vec::with_capacity(self.entries.iter().map(|e| e.count).sum());
        let mut thread = 0u64;
        for entry in &self.entries {
            for _ in 0..entry.count {
                traces.push(entry.profile.generate_with_base(
                    self.trace_len,
                    self.seed.wrapping_add(thread * 7 + 1),
                    thread * THREAD_STRIDE,
                ));
                thread += 1;
            }
        }
        Ok(traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_declared_thread_count() {
        let mix = WorkloadMix::new(1_000, 1)
            .threads("mcf", 3)
            .threads("lbm", 2);
        assert_eq!(mix.thread_count(), 5);
        let traces = mix.build().unwrap();
        assert_eq!(traces.len(), 5);
        assert!(traces.iter().all(|t| t.len() == 1_000));
    }

    #[test]
    fn address_spaces_are_disjoint() {
        let traces = WorkloadMix::new(2_000, 9)
            .threads("gromacs", 2)
            .build()
            .unwrap();
        let max0 = traces[0].accesses.iter().map(|a| a.addr).max().unwrap();
        let min1 = traces[1].accesses.iter().map(|a| a.addr).min().unwrap();
        assert!(max0 < min1);
    }

    #[test]
    fn unknown_benchmark_is_reported() {
        let err = WorkloadMix::new(100, 1)
            .threads("mcf", 1)
            .threads("povray", 1)
            .build()
            .unwrap_err();
        assert_eq!(err, UnknownBenchmark("povray".into()));
        assert!(err.to_string().contains("povray"));
    }

    #[test]
    fn seeds_differ_between_threads() {
        let traces = WorkloadMix::new(2_000, 5)
            .threads("mcf", 2)
            .build()
            .unwrap();
        // Same profile, same base pattern layout — but different seeds
        // must give different access orders (compare base-relative).
        let rel: Vec<Vec<u64>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.accesses
                    .iter()
                    .map(|a| a.addr - i as u64 * (1 << 40))
                    .collect()
            })
            .collect();
        assert_ne!(rel[0], rel[1]);
    }
}
