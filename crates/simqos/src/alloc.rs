//! Allocation policies: the software component that translates QoS
//! objectives into per-partition line targets (Section II-A). The
//! enforcement schemes under study receive these targets via
//! [`PartitionedCache::set_targets`](cachesim::PartitionedCache::set_targets).
//!
//! * [`equal_share`] — Communist: divide the cache evenly.
//! * [`static_qos`] — Elitist: guarantee each *subject* thread a fixed
//!   number of lines, split the remainder among background threads
//!   (Figure 7's policy).
//! * [`ucp_allocate`] + [`lru_miss_curve`] — Utilitarian: utility-based
//!   cache partitioning driven by Mattson stack-distance miss curves
//!   (an extension beyond the paper's static policy).

use cachesim::fxmap::FxHashMap;
use cachesim::ostree::OsTreap;
use cachesim::umon::Umon;
use cachesim::Trace;
use std::collections::HashMap;

/// Divide `total` lines evenly among `n` partitions; the first
/// `total % n` partitions get one extra line.
///
/// # Panics
/// Panics if `n == 0`.
pub fn equal_share(total: usize, n: usize) -> Vec<usize> {
    assert!(n > 0);
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// Figure 7's allocation: `subjects` threads each get
/// `lines_per_subject`; the remaining lines are divided equally among
/// `backgrounds` threads. Subject targets come first in the returned
/// vector.
///
/// # Panics
/// Panics if the subject guarantees exceed the cache or if
/// `backgrounds == 0` while lines remain.
pub fn static_qos(
    total: usize,
    subjects: usize,
    lines_per_subject: usize,
    backgrounds: usize,
) -> Vec<usize> {
    let guaranteed = subjects * lines_per_subject;
    assert!(guaranteed <= total, "subject guarantees exceed the cache");
    let mut targets = vec![lines_per_subject; subjects];
    if backgrounds > 0 {
        targets.extend(equal_share(total - guaranteed, backgrounds));
    } else {
        assert_eq!(
            guaranteed, total,
            "leftover lines with no background threads"
        );
    }
    targets
}

/// Mattson stack-distance profiling: compute the LRU miss *ratio* of a
/// trace at each capacity in `capacities` (lines), in one pass.
///
/// A reuse at stack distance `d` hits in any LRU cache with at least
/// `d + 1` lines; cold references miss everywhere.
pub fn lru_miss_curve(trace: &Trace, capacities: &[usize]) -> Vec<f64> {
    // Order-statistic set of resident lines keyed by last access time:
    // the stack distance of a reuse is the number of lines accessed
    // more recently, i.e. len − rank − 1.
    let mut stack: OsTreap<(u64, u64)> = OsTreap::new(0x3A77);
    let mut last: FxHashMap<u64, u64> = FxHashMap::default();
    let mut dist_hist: HashMap<usize, u64> = HashMap::new();
    let mut cold = 0u64;
    for (time, a) in trace.accesses.iter().enumerate() {
        let time = time as u64;
        match last.insert(a.addr, time) {
            Some(prev) => {
                let rank = stack.rank(&(prev, a.addr));
                let d = stack.len() - rank - 1;
                *dist_hist.entry(d).or_insert(0) += 1;
                stack.remove(&(prev, a.addr));
            }
            None => cold += 1,
        }
        stack.insert((time, a.addr));
    }
    let total = trace.len() as u64;
    capacities
        .iter()
        .map(|&c| {
            if total == 0 {
                return 0.0;
            }
            // Misses: cold + reuses at distance >= capacity.
            let far: u64 = dist_hist
                .iter()
                .filter(|(&d, _)| d >= c)
                .map(|(_, &n)| n)
                .sum();
            (cold + far) as f64 / total as f64
        })
        .collect()
}

/// Utility-based cache partitioning (UCP-style greedy): given each
/// thread's hit counts at multiples of `granularity` lines, assign
/// `blocks` blocks of `granularity` lines to maximize total marginal
/// hits. `hits[i][k]` is thread `i`'s hit count with `k` blocks
/// (`hits[i][0] == 0` blocks). Returns per-thread block counts.
///
/// # Panics
/// Panics if `hits` is empty or the curves are shorter than
/// `blocks + 1` entries.
pub fn ucp_allocate(hits: &[Vec<f64>], blocks: usize) -> Vec<usize> {
    assert!(!hits.is_empty());
    for h in hits {
        assert!(
            h.len() > blocks,
            "each hit curve needs blocks+1 entries (got {} for {blocks} blocks)",
            h.len()
        );
    }
    let n = hits.len();
    let mut alloc = vec![0usize; n];
    for _ in 0..blocks {
        // Give the next block to the thread with the best marginal gain
        // (first thread wins ties, for deterministic allocations).
        let mut best = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for i in 0..n {
            let gain = hits[i][alloc[i] + 1] - hits[i][alloc[i]];
            if gain > best_gain {
                best_gain = gain;
                best = i;
            }
        }
        alloc[best] += 1;
    }
    alloc
}

/// Resample a monitor's shadow-way hit curve onto allocation blocks of
/// `granularity` lines: `out[k]` is the (linearly interpolated) hit
/// count the monitored thread would capture with `k` blocks of cache,
/// for `k` in `0..=total_lines / granularity`.
///
/// `ways_scratch` receives the raw way-indexed curve
/// ([`Umon::hit_curve_into`]); both buffers are cleared and refilled,
/// so a caller that reuses them keeps the whole resample off the heap
/// — the contract the per-epoch re-solve loops of online allocators
/// rely on (`tests/no_alloc_hot_path.rs`, re-solve arm).
///
/// # Panics
/// Panics if `granularity` is zero or larger than the cache.
pub fn resample_umon_curve_into(
    m: &Umon,
    total_lines: usize,
    granularity: usize,
    ways_scratch: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    assert!(granularity > 0 && granularity <= total_lines);
    let blocks = total_lines / granularity;
    m.hit_curve_into(ways_scratch);
    let ways = m.ways() as f64;
    out.clear();
    out.reserve(blocks + 1);
    for k in 0..=blocks {
        // Block k corresponds to this fraction of the cache, i.e. this
        // (fractional) shadow-way depth.
        let depth = k as f64 * granularity as f64 / total_lines as f64 * ways;
        let lo = depth.floor() as usize;
        let frac = depth - lo as f64;
        out.push(if lo + 1 >= ways_scratch.len() {
            *ways_scratch.last().expect("curve is non-empty")
        } else {
            ways_scratch[lo] * (1.0 - frac) + ways_scratch[lo + 1] * frac
        });
    }
}

/// Weighted, bounded UCP hill-climb: assign `blocks` blocks starting
/// from each thread's `min_blocks`, giving one block at a time to the
/// thread with the best *priority-weighted* marginal hit gain
/// (`weights[i] * (hits[i][k+1] - hits[i][k])`), never exceeding
/// `max_blocks`. The plain [`ucp_allocate`] is the special case of
/// unit weights and `0..=blocks` bounds. First thread wins ties, for
/// deterministic allocations. Writes the per-thread block counts into
/// `alloc_out` (cleared first; allocation-free once it has capacity).
///
/// If every thread is capped before `blocks` are placed, the leftover
/// blocks stay unassigned — the returned counts then sum to less than
/// `blocks`. Callers that need full coverage must validate
/// `sum(max_blocks) >= blocks` up front (the QoS compiler does).
///
/// # Panics
/// Panics if the slice lengths disagree, a curve is shorter than
/// `blocks + 1` entries, a weight is not positive and finite, or
/// `min_blocks` exceeds `max_blocks` / oversubscribes `blocks`.
pub fn ucp_allocate_bounded_into(
    hits: &[Vec<f64>],
    weights: &[f64],
    min_blocks: &[usize],
    max_blocks: &[usize],
    blocks: usize,
    alloc_out: &mut Vec<usize>,
) {
    let n = hits.len();
    assert!(n > 0, "need at least one thread");
    assert!(weights.len() == n && min_blocks.len() == n && max_blocks.len() == n);
    for i in 0..n {
        assert!(
            hits[i].len() > blocks,
            "each hit curve needs blocks+1 entries (got {} for {blocks} blocks)",
            hits[i].len()
        );
        assert!(
            weights[i] > 0.0 && weights[i].is_finite(),
            "weights must be positive and finite"
        );
        assert!(min_blocks[i] <= max_blocks[i], "min exceeds max");
    }
    let floor: usize = min_blocks.iter().sum();
    assert!(
        floor <= blocks,
        "minimum guarantees oversubscribe the cache"
    );
    alloc_out.clear();
    alloc_out.extend_from_slice(min_blocks);
    for _ in 0..blocks - floor {
        let mut best = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for i in 0..n {
            if alloc_out[i] >= max_blocks[i] {
                continue;
            }
            let gain = weights[i] * (hits[i][alloc_out[i] + 1] - hits[i][alloc_out[i]]);
            if gain > best_gain {
                best_gain = gain;
                best = i;
            }
        }
        if best == usize::MAX {
            break; // everyone capped: leave the rest unassigned
        }
        alloc_out[best] += 1;
    }
}

/// Convert online UMON measurements into UCP line targets: each
/// monitor's hit curve (indexed by shadow ways) is resampled onto
/// `total_lines / granularity` allocation blocks
/// ([`resample_umon_curve_into`]) and handed to the greedy
/// [`ucp_allocate`]; the result is per-thread line targets summing to
/// `total_lines`.
///
/// # Panics
/// Panics if `umons` is empty or `granularity` is zero or larger than
/// the cache.
pub fn ucp_from_umons(umons: &[Umon], total_lines: usize, granularity: usize) -> Vec<usize> {
    assert!(!umons.is_empty());
    let blocks = total_lines / granularity;
    let mut scratch = Vec::new();
    let curves: Vec<Vec<f64>> = umons
        .iter()
        .map(|m| {
            let mut c = Vec::with_capacity(blocks + 1);
            resample_umon_curve_into(m, total_lines, granularity, &mut scratch, &mut c);
            c
        })
        .collect();
    let alloc = ucp_allocate(&curves, blocks);
    let mut targets: Vec<usize> = alloc.iter().map(|&b| b * granularity).collect();
    // Hand any rounding remainder to the first thread.
    let spare = total_lines - targets.iter().sum::<usize>();
    targets[0] += spare;
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_share_distributes_remainder() {
        assert_eq!(equal_share(10, 3), vec![4, 3, 3]);
        assert_eq!(equal_share(9, 3), vec![3, 3, 3]);
    }

    #[test]
    fn static_qos_matches_figure7_shape() {
        // 8MB / 64B = 131072 lines, 4 subjects at 4096 lines each.
        let t = static_qos(131_072, 4, 4_096, 28);
        assert_eq!(t.len(), 32);
        assert!(t[..4].iter().all(|&x| x == 4_096));
        let back: usize = t[4..].iter().sum();
        assert_eq!(back, 131_072 - 4 * 4_096);
        assert!(t[4..].iter().all(|&x| x == back / 28 || x == back / 28 + 1));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn static_qos_rejects_oversubscription() {
        let _ = static_qos(100, 10, 50, 2);
    }

    #[test]
    fn miss_curve_of_cyclic_sweep_is_a_cliff() {
        // Cyclic sweep over 32 lines: LRU gets zero hits below 32 lines
        // and (after the cold pass) full hits at >= 32.
        let addrs: Vec<u64> = (0..3200u64).map(|i| i % 32).collect();
        let t = Trace::from_addrs(addrs, 1);
        let curve = lru_miss_curve(&t, &[16, 31, 32, 64]);
        assert!((curve[0] - 1.0).abs() < 1e-9, "thrash below WSS: {curve:?}");
        assert!((curve[1] - 1.0).abs() < 1e-9);
        assert!(curve[2] < 0.02, "fits at 32: {curve:?}");
        assert!(curve[3] < 0.02);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let t = workloads_like_trace();
        let caps: Vec<usize> = (0..10).map(|k| k * 8).collect();
        let curve = lru_miss_curve(&t, &caps);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{curve:?}");
        }
    }

    fn workloads_like_trace() -> Trace {
        // Mixture of a hot loop and a stream.
        let mut addrs = Vec::new();
        for i in 0..2000u64 {
            addrs.push(i % 16);
            addrs.push(1000 + i); // stream
        }
        Trace::from_addrs(addrs, 1)
    }

    #[test]
    fn ucp_gives_blocks_to_the_thread_that_uses_them() {
        // Thread 0 gains 10 hits per block up to 3 blocks; thread 1
        // gains 1 per block.
        let h0 = vec![0.0, 10.0, 20.0, 30.0, 30.0, 30.0];
        let h1 = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let alloc = ucp_allocate(&[h0, h1], 5);
        assert_eq!(alloc, vec![3, 2]);
    }

    #[test]
    fn umon_driven_targets_track_utility() {
        use cachesim::umon::Umon;
        // Thread 0 reuses a small hot set; thread 1 streams.
        let mut m0 = Umon::new(32, 16, 1);
        let mut m1 = Umon::new(32, 16, 1);
        for r in 0..20_000u64 {
            m0.observe(r % 64); // ~2 hot lines per sampled set
            m1.observe(1_000_000 + r);
        }
        let targets = ucp_from_umons(&[m0, m1], 8_192, 512);
        assert_eq!(targets.iter().sum::<usize>(), 8_192);
        assert!(
            targets[0] > targets[1],
            "the reuser earns the capacity: {targets:?}"
        );
    }

    #[test]
    fn umon_targets_cover_whole_cache_with_rounding() {
        use cachesim::umon::Umon;
        let mut m = Umon::new(8, 16, 1);
        for r in 0..1_000u64 {
            m.observe(r % 64);
        }
        let targets = ucp_from_umons(&[m.clone(), m], 10_000, 333);
        assert_eq!(targets.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn ucp_total_allocation_matches_budget() {
        let flat = vec![vec![0.0; 9]; 4];
        let alloc = ucp_allocate(&flat, 8);
        assert_eq!(alloc.iter().sum::<usize>(), 8);
    }

    #[test]
    fn bounded_ucp_matches_plain_ucp_without_bounds() {
        let h0 = vec![0.0, 10.0, 20.0, 30.0, 30.0, 30.0];
        let h1 = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let mut out = Vec::new();
        ucp_allocate_bounded_into(
            &[h0.clone(), h1.clone()],
            &[1.0, 1.0],
            &[0, 0],
            &[5, 5],
            5,
            &mut out,
        );
        assert_eq!(out, ucp_allocate(&[h0, h1], 5));
    }

    #[test]
    fn bounded_ucp_respects_floors_caps_and_weights() {
        // Thread 2's weight of 100 makes its tiny gains (100 × 1) beat
        // everyone's raw gains, but its cap stops it at 3 blocks; the
        // rest flows to thread 0 (gain 10) until its cap of 2, thread 1
        // keeps its guaranteed floor and takes the final block.
        let h0 = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0];
        let h1 = vec![0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0];
        let h2 = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = Vec::new();
        ucp_allocate_bounded_into(
            &[h0, h1, h2],
            &[1.0, 1.0, 100.0],
            &[0, 1, 0],
            &[2, 6, 3],
            6,
            &mut out,
        );
        assert_eq!(out, vec![2, 1, 3]);
        assert_eq!(out.iter().sum::<usize>(), 6);
    }

    #[test]
    fn bounded_ucp_leaves_blocks_unassigned_when_everyone_caps() {
        let flat = vec![vec![0.0; 9]; 2];
        let mut out = Vec::new();
        ucp_allocate_bounded_into(&flat, &[1.0, 1.0], &[0, 0], &[2, 3], 8, &mut out);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn resample_into_is_reusable_and_matches_ucp_from_umons_path() {
        use cachesim::umon::Umon;
        let mut m = Umon::new(8, 16, 1);
        for r in 0..5_000u64 {
            m.observe(r % 40);
        }
        let mut scratch = Vec::with_capacity(17);
        let mut out = Vec::with_capacity(17);
        resample_umon_curve_into(&m, 8_192, 512, &mut scratch, &mut out);
        assert_eq!(out.len(), 17);
        assert!((out[0] - 0.0).abs() < 1e-12);
        // Monotone non-decreasing, like any cumulative hit curve.
        for w in out.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{out:?}");
        }
        // Refill reuses the buffers.
        let (p1, p2) = (scratch.as_ptr(), out.as_ptr());
        resample_umon_curve_into(&m, 8_192, 512, &mut scratch, &mut out);
        assert_eq!((p1, p2), (scratch.as_ptr(), out.as_ptr()));
    }
}

#[cfg(test)]
mod workload_behaviour_tests {
    use super::*;
    use workloads::benchmark;

    /// Cross-check the synthetic profiles against their published
    /// capacity behaviour using Mattson miss curves (the anchors the
    /// Figure 6/7 substitutions rely on).
    #[test]
    fn profiles_have_expected_capacity_behaviour() {
        let curve = |name: &str| {
            let t = benchmark(name).expect("profile").generate(150_000, 9);
            // 128KB, 256KB, 1MB, 4MB in lines.
            lru_miss_curve(&t, &[2_048, 4_096, 16_384, 65_536])
        };
        let gromacs = curve("gromacs");
        let lbm = curve("lbm");
        let mcf = curve("mcf");
        // gromacs: real pressure at 128-256KB, comfortable at 1MB+.
        assert!(gromacs[1] > 0.02, "gromacs must miss at 256KB: {gromacs:?}");
        assert!(
            gromacs[2] < gromacs[0] * 0.8,
            "gromacs eases by 1MB: {gromacs:?}"
        );
        // lbm streams: high miss ratio at every size.
        assert!(lbm[3] > 0.5, "lbm misses everywhere: {lbm:?}");
        // mcf keeps missing even at 4MB (its region exceeds it).
        assert!(mcf[3] > 0.05, "mcf pressures 4MB: {mcf:?}");
        // And every curve is monotone non-increasing.
        for c in [&gromacs, &lbm, &mcf] {
            for w in c.windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
        }
    }

    /// The Figure 7 premise: lbm inserts far more aggressively than
    /// gromacs (it is the bully), yet gromacs is the one that benefits
    /// from capacity.
    #[test]
    fn lbm_is_the_bully() {
        let miss_at_256kb = |name: &str| {
            let t = benchmark(name).expect("profile").generate(100_000, 3);
            lru_miss_curve(&t, &[4_096])[0]
        };
        let lbm = miss_at_256kb("lbm");
        let gromacs = miss_at_256kb("gromacs");
        assert!(
            lbm > gromacs * 3.0,
            "lbm miss {lbm:.3} should dwarf gromacs {gromacs:.3}"
        );
    }
}
