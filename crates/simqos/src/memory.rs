//! Shared memory-channel model: fixed zero-load latency plus an M/D/1
//! style queueing delay when concurrent misses exceed the channel's
//! 32 GB/s drain rate. This is what turns `lbm`'s miss storm into
//! visible interference in Figure 7.

use crate::timing::SystemConfig;

/// A single shared memory channel. All times are core cycles.
#[derive(Clone, Debug)]
pub struct MemoryChannel {
    zero_load: u64,
    transfer: u64,
    next_free: u64,
    served: u64,
    queue_cycles_total: u64,
}

impl MemoryChannel {
    /// Build a channel from the system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        MemoryChannel {
            zero_load: cfg.mem_zero_load_cycles,
            transfer: cfg.transfer_cycles().max(1),
            next_free: 0,
            served: 0,
            queue_cycles_total: 0,
        }
    }

    /// Service a miss issued at cycle `now`; returns the total latency
    /// (queueing + zero-load + transfer) the requesting core observes.
    pub fn access(&mut self, now: u64) -> u64 {
        let start = self.next_free.max(now);
        let queue = start - now;
        self.next_free = start + self.transfer;
        self.served += 1;
        self.queue_cycles_total += queue;
        queue + self.zero_load + self.transfer
    }

    /// Number of misses served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Average queueing delay per request, in cycles.
    pub fn avg_queue_cycles(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.queue_cycles_total as f64 / self.served as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> MemoryChannel {
        MemoryChannel::new(&SystemConfig::micro2014())
    }

    #[test]
    fn unloaded_requests_see_zero_load_latency() {
        let mut m = channel();
        // 204 = 200 zero-load + 4 transfer.
        assert_eq!(m.access(0), 204);
        assert_eq!(m.access(1_000), 204);
        assert_eq!(m.avg_queue_cycles(), 0.0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut m = channel();
        assert_eq!(m.access(0), 204);
        // Channel busy until cycle 4: a request at cycle 0 queues 4.
        assert_eq!(m.access(0), 208);
        assert_eq!(m.access(0), 212);
        assert_eq!(m.served(), 3);
        assert!(m.avg_queue_cycles() > 0.0);
    }

    #[test]
    fn saturation_grows_queue_linearly() {
        let mut m = channel();
        let mut last = 0;
        for _ in 0..100 {
            last = m.access(0);
        }
        // 100th request waits ~99 transfer slots.
        assert_eq!(last, 204 + 99 * 4);
    }
}
