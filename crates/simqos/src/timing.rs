//! Timing parameters (Table II of the paper).

/// System timing configuration. All latencies are in core cycles.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Core frequency in GHz (Table II: 2 GHz in-order x86-64).
    pub freq_ghz: f64,
    /// Base CPI of the in-order core for non-L2 instructions.
    pub base_cpi: f64,
    /// Shared L2 access latency (Table II: 8-cycle access latency plus
    /// the 4-cycle average L1-to-L2 NUCA hop).
    pub l2_hit_cycles: u64,
    /// Zero-load memory latency (Table II: 200 cycles).
    pub mem_zero_load_cycles: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Peak shared memory bandwidth in GB/s (Table II: 32 GB/s).
    pub mem_bw_gbps: f64,
}

impl SystemConfig {
    /// The paper's Table II configuration.
    pub fn micro2014() -> Self {
        SystemConfig {
            freq_ghz: 2.0,
            base_cpi: 1.0,
            l2_hit_cycles: 12,
            mem_zero_load_cycles: 200,
            line_bytes: 64,
            mem_bw_gbps: 32.0,
        }
    }

    /// Memory bytes transferred per core cycle at peak bandwidth.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.mem_bw_gbps / self.freq_ghz
    }

    /// Cycles the memory channel is busy per line transfer.
    pub fn transfer_cycles(&self) -> u64 {
        (self.line_bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Render the configuration as the paper's Table II rows.
    pub fn describe(&self) -> String {
        format!(
            "Cores   {:.0} GHz in-order, base CPI {:.1}\n\
             L2 $    shared, partitioned; {}-cycle hit latency, {}B lines\n\
             MCU     {} cycles zero-load latency, {:.0} GB/s peak BW \
             ({} cycles per line transfer)",
            self.freq_ghz,
            self.base_cpi,
            self.l2_hit_cycles,
            self.line_bytes,
            self.mem_zero_load_cycles,
            self.mem_bw_gbps,
            self.transfer_cycles(),
        )
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::micro2014()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_derived_quantities() {
        let c = SystemConfig::micro2014();
        assert_eq!(c.bytes_per_cycle(), 16.0);
        assert_eq!(c.transfer_cycles(), 4);
        let d = c.describe();
        assert!(d.contains("2 GHz"));
        assert!(d.contains("32 GB/s"));
    }

    #[test]
    fn default_is_micro2014() {
        assert_eq!(SystemConfig::default(), SystemConfig::micro2014());
    }
}
