//! The multicore event loop: one thread per partition, each replaying
//! its trace; cache hit/miss latencies delay that thread's future
//! accesses.

use crate::memory::MemoryChannel;
use crate::timing::SystemConfig;
use cachesim::{AccessMeta, PartitionId, PartitionedCache, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One simulated thread: a name and the L2-access trace it replays.
#[derive(Clone, Debug)]
pub struct Thread {
    /// Display name (benchmark name).
    pub name: String,
    /// The trace to replay.
    pub trace: Trace,
}

impl Thread {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, trace: Trace) -> Self {
        Thread {
            name: name.into(),
            trace,
        }
    }
}

struct ThreadState {
    name: String,
    trace: Trace,
    next_use: Vec<u64>,
    pos: usize,
    /// Core-local clock, in cycles.
    now: u64,
    insts: u64,
    hits: u64,
    misses: u64,
    /// Snapshot taken when warmup ends: (instructions, cycles).
    measure_from: (u64, u64),
}

/// Per-thread results after a run.
#[derive(Clone, Debug)]
pub struct ThreadResult {
    /// Thread name.
    pub name: String,
    /// Instructions executed after warmup.
    pub insts: u64,
    /// Cycles elapsed after warmup.
    pub cycles: u64,
    /// Post-warmup L2 hits.
    pub hits: u64,
    /// Post-warmup L2 misses.
    pub misses: u64,
}

impl ThreadResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / self.insts as f64
        }
    }
}

/// Whole-system results.
#[derive(Clone, Debug)]
pub struct SystemResult {
    /// One entry per thread, in partition order.
    pub threads: Vec<ThreadResult>,
    /// Average memory queueing delay observed, in cycles.
    pub avg_mem_queue_cycles: f64,
}

/// The simulated CMP: a shared partitioned cache plus N trace-replaying
/// cores.
pub struct System {
    config: SystemConfig,
    cache: PartitionedCache,
    threads: Vec<ThreadState>,
}

impl System {
    /// Build a system. The cache must have been created with
    /// `threads.len()` partitions (thread `i` issues as partition `i`).
    ///
    /// # Panics
    /// Panics if the partition count does not match the thread count.
    pub fn new(config: SystemConfig, cache: PartitionedCache, threads: Vec<Thread>) -> Self {
        assert_eq!(
            cache.partitions(),
            threads.len(),
            "cache partitions must match thread count"
        );
        let threads = threads
            .into_iter()
            .map(|t| {
                let next_use = t.trace.annotate_next_use();
                ThreadState {
                    name: t.name,
                    next_use,
                    trace: t.trace,
                    pos: 0,
                    now: 0,
                    insts: 0,
                    hits: 0,
                    misses: 0,
                    measure_from: (0, 0),
                }
            })
            .collect();
        System {
            config,
            cache,
            threads,
        }
    }

    /// Access the shared cache (e.g. to set targets before running).
    pub fn cache_mut(&mut self) -> &mut PartitionedCache {
        &mut self.cache
    }

    /// The shared cache (for stats inspection after a run).
    pub fn cache(&self) -> &PartitionedCache {
        &self.cache
    }

    /// Attach a flight recorder sampling the shared cache every
    /// `cadence` accesses into a ring of at most `capacity` samples.
    /// Recording spans [`run`](Self::run)'s warmup cut — the recorder
    /// rebaselines its interval counters at the stats reset, and the
    /// ring keeps the newest samples.
    pub fn attach_timeseries(&mut self, cadence: u64, capacity: usize) {
        self.cache.attach_timeseries(cadence, capacity);
    }

    /// The attached time-series recorder, if any.
    pub fn timeseries(&self) -> Option<&cachesim::TimeSeriesRecorder> {
        self.cache.timeseries()
    }

    /// Run every thread to the end of its trace. `warmup_fraction` of
    /// the total accesses is excluded from the reported statistics (the
    /// cache stats are reset at the same point).
    pub fn run(&mut self, warmup_fraction: f64) -> SystemResult {
        let mut memory = MemoryChannel::new(&self.config);
        let total: usize = self.threads.iter().map(|t| t.trace.len()).sum();
        let warmup = (total as f64 * warmup_fraction.clamp(0.0, 1.0)) as usize;
        let mut processed = 0usize;
        let mut warm = warmup == 0;

        // Min-heap of (next access issue time, thread index).
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, t) in self.threads.iter_mut().enumerate() {
            if !t.trace.is_empty() {
                let gap = t.trace.accesses[0].inst_gap as u64;
                let issue = (gap as f64 * self.config.base_cpi) as u64;
                heap.push(Reverse((issue, i)));
            }
        }

        while let Some(Reverse((issue_at, idx))) = heap.pop() {
            let (addr, meta, gap) = {
                let t = &self.threads[idx];
                let a = t.trace.accesses[t.pos];
                (
                    a.addr,
                    AccessMeta::with_next_use(t.next_use[t.pos]),
                    a.inst_gap as u64,
                )
            };
            let outcome = self.cache.access(PartitionId(idx as u16), addr, meta);
            let latency = if outcome.is_hit() {
                self.config.l2_hit_cycles
            } else {
                self.config.l2_hit_cycles + memory.access(issue_at)
            };
            {
                let t = &mut self.threads[idx];
                t.insts += gap;
                t.now = issue_at + latency;
                if outcome.is_hit() {
                    t.hits += 1;
                } else {
                    t.misses += 1;
                }
                t.pos += 1;
            }
            processed += 1;
            if !warm && processed >= warmup {
                warm = true;
                self.cache.stats_mut().reset();
                for th in &mut self.threads {
                    th.measure_from = (th.insts, th.now);
                    th.hits = 0;
                    th.misses = 0;
                }
            }
            if self.threads[idx].pos < self.threads[idx].trace.len() {
                let t = &self.threads[idx];
                let next_gap = t.trace.accesses[t.pos].inst_gap as u64;
                let issue = t.now + (next_gap as f64 * self.config.base_cpi) as u64;
                heap.push(Reverse((issue, idx)));
            }
        }

        SystemResult {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadResult {
                    name: t.name.clone(),
                    insts: t.insts - t.measure_from.0,
                    cycles: t.now.saturating_sub(t.measure_from.1),
                    hits: t.hits,
                    misses: t.misses,
                })
                .collect(),
            avg_mem_queue_cycles: memory.avg_queue_cycles(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::array::SetAssociative;
    use cachesim::hashing::LineHash;

    fn one_thread_system(trace: Trace, lines: usize) -> System {
        let cache = PartitionedCache::new(
            Box::new(SetAssociative::with_lines(lines, 16, LineHash::new(1))),
            cachesim::naive_lru(),
            cachesim::evict_max_futility(),
            1,
        );
        System::new(
            SystemConfig::micro2014(),
            cache,
            vec![Thread::new("t0", trace)],
        )
    }

    #[test]
    fn all_hit_workload_reaches_near_base_ipc_bound() {
        // A tiny working set: after the first sweep everything hits.
        let addrs: Vec<u64> = (0..10_000u64).map(|i| i % 16).collect();
        let trace = Trace::from_addrs(addrs, 100);
        let mut sys = one_thread_system(trace, 1024);
        let r = sys.run(0.1);
        let t = &r.threads[0];
        // 100 insts per access at CPI 1 plus a 12-cycle hit: IPC ≈ 0.89.
        assert!(t.ipc() > 0.85 && t.ipc() <= 1.0, "ipc {}", t.ipc());
        assert_eq!(t.misses, 0);
    }

    #[test]
    fn streaming_workload_is_memory_bound() {
        let trace = Trace::from_addrs(0..10_000u64, 10);
        let mut sys = one_thread_system(trace, 1024);
        let r = sys.run(0.0);
        let t = &r.threads[0];
        // Every access misses: 10 insts per ~216 cycles ≈ 0.046 IPC.
        assert!(t.ipc() < 0.06, "ipc {}", t.ipc());
        assert_eq!(t.hits, 0);
    }

    #[test]
    fn bandwidth_contention_slows_co_runners() {
        // Two streaming threads share the channel; each must be slower
        // than it would be alone.
        let mk = |base: u64| Trace::from_addrs(base..base + 20_000u64, 4);
        let solo_ipc = {
            let mut sys = one_thread_system(mk(0), 1024);
            sys.run(0.0).threads[0].ipc()
        };
        let cache = PartitionedCache::new(
            Box::new(SetAssociative::with_lines(1024, 16, LineHash::new(1))),
            cachesim::naive_lru(),
            cachesim::evict_max_futility(),
            2,
        );
        let mut sys = System::new(
            SystemConfig::micro2014(),
            cache,
            vec![Thread::new("a", mk(0)), Thread::new("b", mk(1 << 30))],
        );
        let r = sys.run(0.0);
        assert!(r.threads[0].ipc() <= solo_ipc);
        assert!(r.avg_mem_queue_cycles > 0.0);
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        let addrs: Vec<u64> = (0..20_000u64).map(|i| i % 64).collect();
        let trace = Trace::from_addrs(addrs, 10);
        let mut sys = one_thread_system(trace, 1024);
        let r = sys.run(0.5);
        let t = &r.threads[0];
        assert_eq!(t.misses, 0, "cold misses happened before the cut");
        assert!(t.insts <= 110_000);
    }

    #[test]
    fn timeseries_recording_spans_the_warmup_reset() {
        let trace = Trace::from_addrs((0..20_000u64).map(|i| i % 4096), 10);
        let mut sys = one_thread_system(trace, 1024);
        let cadence = 100;
        sys.attach_timeseries(cadence, 1 << 14);
        sys.run(0.5);
        let ts = sys.timeseries().expect("recorder attached");
        assert!(!ts.is_empty());
        // Interval miss counts must never exceed the cadence: a
        // baseline not rebased across the warmup stats reset would
        // underflow and show up as a gigantic value here.
        for s in ts.samples().filter(|s| s.series == "misses") {
            assert!(
                s.value >= 0.0 && s.value <= cadence as f64,
                "interval misses {} out of range at t={}",
                s.value,
                s.time
            );
        }
        // Samples exist on both sides of the warmup cut (10k accesses).
        assert!(ts.samples().next().unwrap().time <= 10_000);
        assert!(ts.samples().next_back().unwrap().time > 10_000);
    }

    #[test]
    fn mpki_accounts_post_warmup_misses() {
        let trace = Trace::from_addrs(0..1_000u64, 10);
        let mut sys = one_thread_system(trace, 8192);
        let r = sys.run(0.0);
        let t = &r.threads[0];
        assert!(
            (t.mpki() - 100.0).abs() < 1.0,
            "all miss at 10 ipa: {}",
            t.mpki()
        );
    }
}
