#![warn(missing_docs)]

//! QoS-enabled CMP timing simulator (the paper's Table II system):
//! in-order 2 GHz cores replaying L2-access traces against a shared
//! partitioned L2, an L2 hit latency, and a 200-cycle zero-load memory
//! with a 32 GB/s shared-bandwidth queueing model. Network and memory
//! latency feed back into trace timing, delaying each core's future
//! accesses — the same first-order model as the paper's own trace-driven
//! simulator.
//!
//! # Example
//!
//! ```
//! use simqos::{System, SystemConfig, Thread};
//! use cachesim::array::SetAssociative;
//! use cachesim::hashing::LineHash;
//! use cachesim::PartitionedCache;
//! use workloads::benchmark;
//!
//! let cfg = SystemConfig::micro2014();
//! let cache = PartitionedCache::new(
//!     Box::new(SetAssociative::with_lines(4096, 16, LineHash::new(1))),
//!     ranking::by_name("lru").unwrap(),
//!     cachesim::evict_max_futility(),
//!     1,
//! );
//! let trace = workloads::benchmark("gromacs").unwrap().generate(20_000, 7);
//! let mut sys = System::new(cfg, cache, vec![Thread::new("gromacs", trace)]);
//! let result = sys.run(0.2);
//! assert!(result.threads[0].ipc() > 0.0);
//! ```

pub mod alloc;
pub mod memory;
pub mod metrics;
pub mod system;
pub mod timing;

pub use alloc::{
    equal_share, lru_miss_curve, resample_umon_curve_into, static_qos, ucp_allocate,
    ucp_allocate_bounded_into,
};
pub use memory::MemoryChannel;
pub use metrics::{throughput, weighted_speedup};
pub use system::{System, SystemResult, Thread, ThreadResult};
pub use timing::SystemConfig;
