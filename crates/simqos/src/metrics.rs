//! Multiprogram performance metrics.

/// Weighted speedup: `Σ_i IPC_shared_i / IPC_alone_i`. Equal-length
/// slices; alone IPCs of 0 contribute 0 (dead thread).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len());
    shared
        .iter()
        .zip(alone)
        .map(|(&s, &a)| if a > 0.0 { s / a } else { 0.0 })
        .sum()
}

/// Raw throughput: sum of IPCs.
pub fn throughput(ipcs: &[f64]) -> f64 {
    ipcs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_is_n_when_undisturbed() {
        let ipcs = [0.5, 0.8, 0.2];
        assert!((weighted_speedup(&ipcs, &ipcs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_handles_dead_threads() {
        assert_eq!(weighted_speedup(&[0.5], &[0.0]), 0.0);
    }

    #[test]
    fn throughput_sums() {
        assert!((throughput(&[0.25, 0.25, 0.5]) - 1.0).abs() < 1e-12);
    }
}
