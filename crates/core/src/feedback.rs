//! Feedback-based Futility Scaling — the practical hardware design of
//! Section V.
//!
//! Per-partition registers (§V-B): 16-bit `ActualSize`/`TargetSize`
//! (kept in [`PartitionState`] by the engine), a 4-bit
//! `InsertionCounter`, a 4-bit `EvictionCounter` and a 3-bit saturating
//! `ScalingShiftWidth`. Algorithm 2: whenever either counter reaches the
//! interval length `l` (default 16), the shift width is incremented if
//! the partition is oversized *and* growing (`N_I ≥ N_E` and
//! `N_A > N_T`), decremented if undersized *and* shrinking, and both
//! counters reset. The scaled futility of a candidate is
//! `futility × ratio^shift_width` (with the default `ratio = 2` this is
//! the paper's left-shift by `ScalingShiftWidth` bits).

use cachesim::{
    Candidate, PartitionId, PartitionScheme, PartitionState, Probe, SnapshotError, SnapshotReader,
    SnapshotWriter, VictimDecision,
};

/// Maximum value of the 3-bit saturating shift-width register.
pub const MAX_SHIFT_WIDTH: u8 = 7;

/// Tunables of the feedback controller (Figure 8 sweeps these).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FeedbackConfig {
    /// Interval length `l`: counters trigger an adjustment when either
    /// reaches this many events. Paper default: 16.
    pub interval: u32,
    /// Changing ratio `Δα` applied per adjustment. Paper default: 2
    /// (a bit shift in hardware).
    pub ratio: f64,
    /// Saturation level of the shift-width register. Paper default: 7
    /// (3-bit register, max scale `2^7 = 128`).
    pub max_shift: u8,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            interval: 16,
            ratio: 2.0,
            max_shift: MAX_SHIFT_WIDTH,
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Registers {
    insertion_counter: u32,
    eviction_counter: u32,
    shift_width: u8,
}

/// The feedback-based FS scheme.
///
/// # Example
/// ```
/// use futility_core::{FsFeedback, FeedbackConfig};
/// let fs = FsFeedback::new(FeedbackConfig { interval: 32, ..Default::default() });
/// assert_eq!(fs.config().interval, 32);
/// ```
#[derive(Clone, Debug)]
pub struct FsFeedback {
    config: FeedbackConfig,
    regs: Vec<Registers>,
    /// Byte-lane scratch: shifted raw futilities, one per candidate.
    /// Never part of the observable state (not snapshotted).
    scaled: Vec<u16>,
}

impl FsFeedback {
    /// Create a controller with the given tunables.
    ///
    /// # Panics
    /// Panics if `interval == 0` or `ratio <= 1.0`.
    pub fn new(config: FeedbackConfig) -> Self {
        assert!(config.interval > 0, "interval must be positive");
        assert!(config.ratio > 1.0, "changing ratio must exceed 1");
        FsFeedback {
            config,
            regs: Vec::new(),
            scaled: Vec::new(),
        }
    }

    /// The paper's default configuration (`l = 16`, `Δα = 2`, 3-bit
    /// shift register).
    pub fn default_config() -> Self {
        FsFeedback::new(FeedbackConfig::default())
    }

    /// The controller tunables.
    pub fn config(&self) -> &FeedbackConfig {
        &self.config
    }

    /// Current shift width of a partition (register inspection).
    pub fn shift_width(&self, part: PartitionId) -> u8 {
        self.regs.get(part.index()).map_or(0, |r| r.shift_width)
    }

    /// Current scaling factor `ratio^shift_width` of a partition.
    pub fn alpha(&self, part: PartitionId) -> f64 {
        self.config.ratio.powi(self.shift_width(part) as i32)
    }

    fn ensure(&mut self, pools: usize) {
        if self.regs.len() < pools {
            self.regs.resize_with(pools, Registers::default);
        }
    }

    /// Algorithm 2's adjustment step, run when either counter reaches
    /// the interval length.
    fn maybe_adjust(&mut self, part: PartitionId, state: &PartitionState) {
        let idx = part.index();
        let l = self.config.interval;
        let r = &self.regs[idx];
        if r.insertion_counter < l && r.eviction_counter < l {
            return;
        }
        let growing = r.insertion_counter >= r.eviction_counter;
        let shrinking = r.insertion_counter <= r.eviction_counter;
        let oversized = state.actual[idx] > state.targets[idx];
        let undersized = state.actual[idx] < state.targets[idx];
        let r = &mut self.regs[idx];
        if growing && oversized {
            r.shift_width = (r.shift_width + 1).min(self.config.max_shift);
        } else if shrinking && undersized {
            r.shift_width = r.shift_width.saturating_sub(1);
        }
        r.insertion_counter = 0;
        r.eviction_counter = 0;
    }
}

impl PartitionScheme for FsFeedback {
    fn name(&self) -> &'static str {
        "fs-feedback"
    }

    fn configure(&mut self, state: &PartitionState) {
        self.ensure(state.pools());
    }

    fn victim(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        _state: &PartitionState,
    ) -> VictimDecision {
        let mut best = 0usize;
        let mut best_scaled = f64::NEG_INFINITY;
        for (i, c) in cands.iter().enumerate() {
            let shift = self.regs.get(c.part.index()).map_or(0, |r| r.shift_width);
            let scaled = c.futility * self.config.ratio.powi(shift as i32);
            if scaled > best_scaled {
                best_scaled = scaled;
                best = i;
            }
        }
        VictimDecision::evict(best)
    }

    fn wants_futility_bytes(&self) -> bool {
        // The byte lane is exact only when scaling is the paper's
        // hardware left shift: ratio bit-equal to 2 and the shift
        // register small enough that `raw << shift ≤ 255 × 2^7` stays
        // within the 15-bit SWAR lanes. Other ratios keep the f64 path.
        self.config.ratio.to_bits() == 2.0f64.to_bits() && self.config.max_shift <= MAX_SHIFT_WIDTH
    }

    fn victim_from_bytes(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        raw: &[u16],
        _state: &PartitionState,
    ) -> usize {
        // Integer form of `victim`: futility × 2^shift over a common
        // power-of-two denominator is `raw << shift`, exactly
        // representable on both sides, so the comparison (and the
        // first-index tie-break) coincides with the scalar f64 loop.
        let FsFeedback { regs, scaled, .. } = self;
        scaled.clear();
        for (c, &r) in cands.iter().zip(raw) {
            let shift = regs.get(c.part.index()).map_or(0, |reg| reg.shift_width);
            scaled.push(r << shift);
        }
        cachesim::swar::argmax_u15(scaled)
    }

    fn notify_insert(&mut self, part: PartitionId, state: &PartitionState) {
        self.ensure(state.pools());
        self.regs[part.index()].insertion_counter += 1;
        self.maybe_adjust(part, state);
    }

    fn notify_evict(&mut self, part: PartitionId, state: &PartitionState) {
        self.ensure(state.pools());
        self.regs[part.index()].eviction_counter += 1;
        self.maybe_adjust(part, state);
    }

    fn telemetry(&self, state: &PartitionState, out: &mut Vec<Probe>) {
        for i in 0..state.pools().min(self.regs.len()) {
            let part = PartitionId(i as u16);
            out.push(Probe::per_part(
                "shift_width",
                part,
                self.shift_width(part) as f64,
            ));
            out.push(Probe::per_part("alpha", part, self.alpha(part)));
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("fs-feedback");
        w.u32(self.config.interval);
        w.f64(self.config.ratio);
        w.u8(self.config.max_shift);
        w.usize(self.regs.len());
        for r in &self.regs {
            w.u32(r.insertion_counter);
            w.u32(r.eviction_counter);
            w.u8(r.shift_width);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("fs-feedback")?;
        let interval = r.u32()?;
        let ratio = r.f64()?;
        let max_shift = r.u8()?;
        if interval != self.config.interval
            || ratio.to_bits() != self.config.ratio.to_bits()
            || max_shift != self.config.max_shift
        {
            return Err(SnapshotError::mismatch(format!(
                "snapshot feedback config (l={interval}, ratio={ratio}, max_shift={max_shift}) \
                 differs from engine config (l={}, ratio={}, max_shift={})",
                self.config.interval, self.config.ratio, self.config.max_shift
            )));
        }
        let n = r.usize()?;
        if n != self.regs.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} feedback registers, engine has {}",
                self.regs.len()
            )));
        }
        for reg in &mut self.regs {
            reg.insertion_counter = r.u32()?;
            reg.eviction_counter = r.u32()?;
            reg.shift_width = r.u8()?;
            if reg.shift_width > self.config.max_shift {
                return Err(SnapshotError::corrupt(format!(
                    "shift width {} exceeds the {}-level register",
                    reg.shift_width, self.config.max_shift
                )));
            }
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64,
            part: PartitionId(part),
            futility: fut,
        }
    }

    fn state_with(actual: Vec<usize>, targets: Vec<usize>) -> PartitionState {
        let mut s = PartitionState::new(actual.len(), actual.iter().sum());
        s.actual = actual;
        s.targets = targets;
        s
    }

    #[test]
    fn oversized_growing_partition_gets_scaled_up() {
        let mut fs = FsFeedback::default_config();
        let state = state_with(vec![120, 80], vec![100, 100]);
        fs.configure(&state);
        // 16 insertions to partition 0, no evictions: oversize + growth.
        for _ in 0..16 {
            fs.notify_insert(PartitionId(0), &state);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 1);
        assert!((fs.alpha(PartitionId(0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn undersized_shrinking_partition_gets_scaled_down() {
        let mut fs = FsFeedback::default_config();
        let over = state_with(vec![120, 80], vec![100, 100]);
        fs.configure(&over);
        for _ in 0..32 {
            fs.notify_insert(PartitionId(0), &over);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 2);
        // Now the partition is undersized and shrinking: unwind.
        let under = state_with(vec![90, 110], vec![100, 100]);
        for _ in 0..16 {
            fs.notify_evict(PartitionId(0), &under);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 1);
    }

    #[test]
    fn transient_resizing_does_not_overscale() {
        // §V-A: "if a partition has a tendency to shrink its size, FS
        // stops increasing the scaling factor even if its current actual
        // size is still above its target".
        let mut fs = FsFeedback::default_config();
        let state = state_with(vec![120, 80], vec![100, 100]);
        fs.configure(&state);
        // 16 evictions, 0 insertions: oversized but clearly shrinking.
        for _ in 0..16 {
            fs.notify_evict(PartitionId(0), &state);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 0);
    }

    #[test]
    fn shift_width_saturates_at_max() {
        let mut fs = FsFeedback::default_config();
        let state = state_with(vec![200, 0], vec![100, 100]);
        fs.configure(&state);
        for _ in 0..(16 * 20) {
            fs.notify_insert(PartitionId(0), &state);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), MAX_SHIFT_WIDTH);
        assert!((fs.alpha(PartitionId(0)) - 128.0).abs() < 1e-9);
    }

    #[test]
    fn victim_uses_shifted_futility() {
        let mut fs = FsFeedback::default_config();
        let state = state_with(vec![120, 80], vec![100, 100]);
        fs.configure(&state);
        for _ in 0..32 {
            fs.notify_insert(PartitionId(1), &state); // P1 undersized? no: actual 80 < 100 target, no adjust
        }
        // Manually scale P0 up by driving its counters.
        for _ in 0..32 {
            fs.notify_insert(PartitionId(0), &state);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 2); // α = 4
        let cands = [cand(0, 0, 0.3), cand(1, 1, 0.9)];
        // P0's 0.3 × 4 = 1.2 beats P1's 0.9.
        assert_eq!(fs.victim(PartitionId(1), &cands, &state).victim, 0);
    }

    #[test]
    fn counters_reset_after_adjustment() {
        let mut fs = FsFeedback::default_config();
        let state = state_with(vec![120], vec![100]);
        fs.configure(&state);
        for _ in 0..15 {
            fs.notify_insert(PartitionId(0), &state);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 0, "not yet at interval");
        fs.notify_insert(PartitionId(0), &state);
        assert_eq!(fs.shift_width(PartitionId(0)), 1, "adjusted at l = 16");
        // A fresh interval begins: 15 more events change nothing.
        for _ in 0..15 {
            fs.notify_insert(PartitionId(0), &state);
        }
        assert_eq!(fs.shift_width(PartitionId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn rejects_ratio_of_one() {
        let _ = FsFeedback::new(FeedbackConfig {
            ratio: 1.0,
            ..Default::default()
        });
    }

    #[test]
    fn custom_ratio_scales_geometrically() {
        let mut fs = FsFeedback::new(FeedbackConfig {
            ratio: 4.0,
            ..Default::default()
        });
        let state = state_with(vec![120], vec![100]);
        fs.configure(&state);
        for _ in 0..16 {
            fs.notify_insert(PartitionId(0), &state);
        }
        assert!((fs.alpha(PartitionId(0)) - 4.0).abs() < 1e-12);
    }
}
