//! Futility Scaling with fixed (analytically derived) scaling factors —
//! the scheme analyzed in Section IV, used for Figures 4 and 5.

use crate::scaling::{solve_scaling_factors, ScalingError};
use cachesim::{
    Candidate, PartitionId, PartitionScheme, PartitionState, Probe, SnapshotError, SnapshotReader,
    SnapshotWriter, VictimDecision,
};

/// FS with fixed per-partition scaling factors: on every eviction the
/// candidate with the largest `α_p · futility` is evicted.
///
/// # Example
/// ```
/// use futility_core::FsAnalytic;
/// // Two partitions with equal insertion rates; hold partition 1 at 10%
/// // of the cache (Figure 4's 9/1 configuration).
/// let fs = FsAnalytic::from_rates(&[0.5, 0.5], &[0.9, 0.1], 16).unwrap();
/// assert!((fs.alphas()[0] - 1.0).abs() < 1e-6);
/// assert!(fs.alphas()[1] > 1.5);
/// ```
#[derive(Clone, Debug)]
pub struct FsAnalytic {
    alphas: Vec<f64>,
}

impl FsAnalytic {
    /// Use the given scaling factors directly (one per partition).
    ///
    /// # Panics
    /// Panics if `alphas` is empty or contains a non-positive factor.
    pub fn with_alphas(alphas: Vec<f64>) -> Self {
        assert!(!alphas.is_empty(), "need at least one partition");
        assert!(
            alphas.iter().all(|&a| a > 0.0),
            "scaling factors must be positive"
        );
        FsAnalytic { alphas }
    }

    /// Derive scaling factors from insertion fractions and target size
    /// fractions with the Section IV-B analytical model (`R` replacement
    /// candidates).
    ///
    /// # Errors
    /// Propagates [`ScalingError`] for infeasible or malformed inputs.
    pub fn from_rates(insertions: &[f64], sizes: &[f64], r: usize) -> Result<Self, ScalingError> {
        Ok(FsAnalytic {
            alphas: solve_scaling_factors(insertions, sizes, r)?,
        })
    }

    /// The configured scaling factors.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    #[inline]
    fn alpha_of(&self, part: PartitionId) -> f64 {
        self.alphas.get(part.index()).copied().unwrap_or(1.0)
    }
}

impl PartitionScheme for FsAnalytic {
    fn name(&self) -> &'static str {
        "fs"
    }

    fn victim(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        _state: &PartitionState,
    ) -> VictimDecision {
        let mut best = 0usize;
        let mut best_scaled = f64::NEG_INFINITY;
        for (i, c) in cands.iter().enumerate() {
            let scaled = c.futility * self.alpha_of(c.part);
            if scaled > best_scaled {
                best_scaled = scaled;
                best = i;
            }
        }
        VictimDecision::evict(best)
    }

    fn telemetry(&self, _state: &PartitionState, out: &mut Vec<Probe>) {
        for (i, &a) in self.alphas.iter().enumerate() {
            out.push(Probe::per_part("alpha", PartitionId(i as u16), a));
        }
    }

    // The scheme is stateless between accesses, but the fixed scaling
    // factors are part of the composition: serialize them so a restore
    // into a differently configured scheme fails instead of silently
    // replaying with the wrong alphas.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("fs-analytic");
        w.usize(self.alphas.len());
        for &a in &self.alphas {
            w.f64(a);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("fs-analytic")?;
        let n = r.usize()?;
        if n != self.alphas.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {n} scaling factors, engine has {}",
                self.alphas.len()
            )));
        }
        for &a in &self.alphas {
            if r.f64()?.to_bits() != a.to_bits() {
                return Err(SnapshotError::mismatch(
                    "snapshot scaling factors differ from the engine's",
                ));
            }
        }
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64,
            part: PartitionId(part),
            futility: fut,
        }
    }

    #[test]
    fn scaled_futility_prefers_scaled_partition() {
        let mut fs = FsAnalytic::with_alphas(vec![1.0, 3.0]);
        let state = PartitionState::new(2, 100);
        // P1's line at futility 0.4 scales to 1.2 > P0's 1.0.
        let cands = [cand(0, 0, 1.0), cand(1, 1, 0.4)];
        assert_eq!(fs.victim(PartitionId(0), &cands, &state).victim, 1);
        // But a very useful P1 line (0.2 → 0.6) survives.
        let cands = [cand(0, 0, 1.0), cand(1, 1, 0.2)];
        assert_eq!(fs.victim(PartitionId(0), &cands, &state).victim, 0);
    }

    #[test]
    fn unit_alphas_degenerate_to_max_futility() {
        let mut fs = FsAnalytic::with_alphas(vec![1.0, 1.0]);
        let state = PartitionState::new(2, 100);
        let cands = [cand(0, 0, 0.3), cand(1, 1, 0.8), cand(2, 0, 0.5)];
        assert_eq!(fs.victim(PartitionId(1), &cands, &state).victim, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_alpha() {
        let _ = FsAnalytic::with_alphas(vec![1.0, 0.0]);
    }

    #[test]
    fn from_rates_round_trips_the_solver() {
        let fs = FsAnalytic::from_rates(&[0.5, 0.5], &[0.6, 0.4], 16).unwrap();
        assert_eq!(fs.alphas().len(), 2);
        assert!(fs.alphas()[1] > fs.alphas()[0]);
    }
}
