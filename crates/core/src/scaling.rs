//! The analytical framework of Section IV-B: closed-form scaling factors
//! for two partitions (Equation 1), a numerical solver for N partitions,
//! and the feasibility bound `I_i > S_i^R` shared by *all*
//! replacement-based partitioning schemes.
//!
//! Model (uniformity assumption): each of the `R` replacement candidates
//! is independently from partition `j` with probability `S_j` and has
//! futility `U ~ Uniform[0,1]`, hence scaled futility `α_j · U`. The
//! victim is the candidate with the largest scaled futility, so the
//! eviction fraction of partition `i` is
//!
//! ```text
//! E_i(α) = R · (S_i / α_i) · ∫₀^{α_i} F(x)^{R-1} dx,
//! F(x)   = Σ_j S_j · min(x / α_j, 1)
//! ```
//!
//! Stable partitioning requires `E_i = I_i` for all `i`. With two
//! partitions and `α_1 = 1` this yields Equation (1):
//!
//! ```text
//! α₂ = S₂ / ((I₁/S₁)^{1/(R−1)} − S₁)
//! ```

/// Error for infeasible partitioning requests.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingError {
    /// A partition's insertion rate is below its minimum possible
    /// eviction rate `S_i^R`, so no replacement-based scheme can hold
    /// its size (Section IV-B).
    Infeasible {
        /// The offending partition.
        partition: usize,
        /// Its insertion fraction.
        insertion: f64,
        /// The bound `S_i^R` it violates.
        bound: f64,
    },
    /// Inputs are malformed (non-positive, or do not sum to 1).
    BadInput(String),
    /// The N-partition fixed-point iteration did not converge.
    NoConvergence {
        /// Residual `max_i |E_i − I_i|` at the iteration cap.
        residual: f64,
    },
}

impl std::fmt::Display for ScalingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingError::Infeasible {
                partition,
                insertion,
                bound,
            } => write!(
                f,
                "partition {partition} has insertion rate {insertion:.4} below the \
                 feasibility bound S^R = {bound:.2e}; no replacement-based scheme can enforce it"
            ),
            ScalingError::BadInput(msg) => write!(f, "bad scaling input: {msg}"),
            ScalingError::NoConvergence { residual } => {
                write!(
                    f,
                    "scaling solver did not converge (residual {residual:.2e})"
                )
            }
        }
    }
}

impl std::error::Error for ScalingError {}

/// Equation (1): the scaling factor `α₂` of the oversubscribed partition
/// when `α₁ = 1`, for target fractions `s1 + s2 = 1`, insertion fraction
/// `i1` of partition 1, and `r` replacement candidates.
///
/// # Errors
/// Returns [`ScalingError::Infeasible`] when `i1 ≤ s1^r` (the paper's
/// partitioning bound) and [`ScalingError::BadInput`] for malformed
/// fractions or `r < 2`.
///
/// # Example
/// ```
/// // Figure 3's top-left point: I₂ = 0.9, S₂ = 0.2, R = 16.
/// let a2 = futility_core::scaling::alpha_two_partitions(0.1, 0.8, 16).unwrap();
/// assert!((a2 - 2.83).abs() < 0.01);
/// ```
pub fn alpha_two_partitions(i1: f64, s1: f64, r: usize) -> Result<f64, ScalingError> {
    if !((0.0..=1.0).contains(&i1) && s1 > 0.0 && s1 < 1.0) {
        return Err(ScalingError::BadInput(format!(
            "need 0 <= I1 <= 1 and 0 < S1 < 1, got I1={i1}, S1={s1}"
        )));
    }
    if r < 2 {
        return Err(ScalingError::BadInput("need R >= 2".into()));
    }
    let s2 = 1.0 - s1;
    let bound = s1.powi(r as i32);
    if i1 <= bound {
        return Err(ScalingError::Infeasible {
            partition: 0,
            insertion: i1,
            bound,
        });
    }
    let root = (i1 / s1).powf(1.0 / (r as f64 - 1.0));
    Ok(s2 / (root - s1))
}

/// The eviction fractions `E_i(α)` under the uniformity assumption, for
/// arbitrary scaling factors. Exposed for tests and for the Figure 3
/// harness; computed by piecewise Simpson integration between the
/// breakpoints `{α_j}` where `F` changes form.
pub fn eviction_fractions(sizes: &[f64], alphas: &[f64], r: usize) -> Vec<f64> {
    assert_eq!(sizes.len(), alphas.len());
    let n = sizes.len();
    let f = |x: f64| -> f64 {
        let mut acc = 0.0;
        for j in 0..n {
            acc += sizes[j] * (x / alphas[j]).min(1.0);
        }
        acc
    };
    // integrate F(x)^(r-1) from 0 to a_i, piecewise between breakpoints.
    let mut bps: Vec<f64> = alphas.to_vec();
    bps.push(0.0);
    bps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    bps.dedup();
    let integral_to = |upper: f64| -> f64 {
        let mut total = 0.0;
        let mut lo = 0.0;
        for &bp in &bps {
            let hi = bp.min(upper);
            if hi > lo {
                total += simpson(&f, lo, hi, r as i32 - 1, 256);
                lo = hi;
            }
        }
        if upper > lo {
            total += simpson(&f, lo, upper, r as i32 - 1, 256);
        }
        total
    };
    (0..n)
        .map(|i| r as f64 * sizes[i] / alphas[i] * integral_to(alphas[i]))
        .collect()
}

fn simpson(f: &dyn Fn(f64) -> f64, lo: f64, hi: f64, pow: i32, steps: usize) -> f64 {
    let g = |x: f64| f(x).powi(pow);
    let h = (hi - lo) / steps as f64;
    let mut acc = g(lo) + g(hi);
    for k in 1..steps {
        let x = lo + k as f64 * h;
        acc += if k % 2 == 1 { 4.0 } else { 2.0 } * g(x);
    }
    acc * h / 3.0
}

/// Solve for the N-partition scaling factors `α` such that the eviction
/// fraction of every partition matches its insertion fraction
/// (`E_i = I_i`), normalized so `min α_i = 1`. Generalizes Equation (1)
/// per the technical-report derivation the paper cites.
///
/// # Errors
/// * [`ScalingError::BadInput`] — fractions malformed or not summing to 1.
/// * [`ScalingError::Infeasible`] — some `I_i ≤ S_i^R`.
/// * [`ScalingError::NoConvergence`] — fixed point not reached.
///
/// # Example
/// ```
/// # use futility_core::scaling::solve_scaling_factors;
/// // Balanced partitions need no scaling at all.
/// let a = solve_scaling_factors(&[0.5, 0.5], &[0.5, 0.5], 16).unwrap();
/// assert!((a[0] - 1.0).abs() < 1e-3 && (a[1] - 1.0).abs() < 1e-3);
/// ```
pub fn solve_scaling_factors(
    insertions: &[f64],
    sizes: &[f64],
    r: usize,
) -> Result<Vec<f64>, ScalingError> {
    let n = sizes.len();
    if n == 0 || insertions.len() != n {
        return Err(ScalingError::BadInput("length mismatch or empty".into()));
    }
    let sum_i: f64 = insertions.iter().sum();
    let sum_s: f64 = sizes.iter().sum();
    if (sum_i - 1.0).abs() > 1e-6 || (sum_s - 1.0).abs() > 1e-6 {
        return Err(ScalingError::BadInput(format!(
            "fractions must sum to 1 (got I: {sum_i}, S: {sum_s})"
        )));
    }
    for (idx, (&i, &s)) in insertions.iter().zip(sizes).enumerate() {
        if i <= 0.0 || s <= 0.0 {
            return Err(ScalingError::BadInput(format!(
                "partition {idx} has non-positive fraction"
            )));
        }
        let bound = s.powi(r as i32);
        if i <= bound {
            return Err(ScalingError::Infeasible {
                partition: idx,
                insertion: i,
                bound,
            });
        }
    }
    // The paper's bound generalizes to groups: every subset G of
    // partitions jointly evicts at least (S_G)^R of the time (all R
    // candidates inside G), so it needs I_G > (S_G)^R or its size
    // cannot be held no matter how the complement is scaled.
    if n <= 16 {
        for mask in 1u32..(1 << n) - 1 {
            let mut ig = 0.0;
            let mut sg = 0.0;
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    ig += insertions[i];
                    sg += sizes[i];
                }
            }
            let bound = sg.powi(r as i32);
            if ig <= bound {
                return Err(ScalingError::Infeasible {
                    partition: mask.trailing_zeros() as usize,
                    insertion: ig,
                    bound,
                });
            }
        }
    }

    let mut alphas = vec![1.0f64; n];
    // E_i scales roughly like α_i^(R-1) through F(x)^(R-1), so a damped
    // multiplicative update with exponent 1/(R-1) is approximately a
    // Newton step in log space; the per-step clamp guards the far field.
    let eta = 1.0 / (r as f64 - 1.0);
    let mut best_alphas = alphas.clone();
    let mut best_residual = f64::INFINITY;
    for _ in 0..5000 {
        let e = eviction_fractions(sizes, &alphas, r);
        let residual = insertions
            .iter()
            .zip(&e)
            .map(|(i, e)| (i - e).abs())
            .fold(0.0, f64::max);
        if residual < best_residual {
            best_residual = residual;
            best_alphas.clone_from(&alphas);
        }
        if residual < 1e-6 {
            break;
        }
        for i in 0..n {
            let step = (insertions[i] / e[i].max(1e-12)).powf(eta);
            alphas[i] *= step.clamp(0.8, 1.25);
        }
        let min = alphas.iter().copied().fold(f64::INFINITY, f64::min);
        for a in &mut alphas {
            *a /= min;
        }
    }
    // Extreme I/S ratios stall at the integration accuracy floor; a
    // residual of 1e-4 in eviction fractions is far below anything the
    // simulations can resolve, so accept the best iterate there.
    if best_residual < 1e-4 {
        let min = best_alphas.iter().copied().fold(f64::INFINITY, f64::min);
        for a in &mut best_alphas {
            *a /= min;
        }
        return Ok(best_alphas);
    }
    Err(ScalingError::NoConvergence {
        residual: best_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_one_matches_section_four_anecdote() {
        // §IV-C: I1 = I2 = 0.5, S2 shrinking 0.4 → 0.1 raises α2 from
        // ~1.03 to ~1.62 (re-derived; the OCR of the paper garbles it).
        let a_04 = alpha_two_partitions(0.5, 0.6, 16).unwrap();
        let a_01 = alpha_two_partitions(0.5, 0.9, 16).unwrap();
        assert!((a_04 - 1.031).abs() < 0.01, "{a_04}");
        assert!((a_01 - 1.62).abs() < 0.01, "{a_01}");
        assert!(a_01 > a_04);
    }

    #[test]
    fn balanced_partitions_need_no_scaling() {
        let a = alpha_two_partitions(0.5, 0.5, 16).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_below_s_pow_r() {
        // I1 < S1^R = 0.9^4 ≈ 0.656 is unenforceable at R = 4.
        let err = alpha_two_partitions(0.5, 0.9, 4).unwrap_err();
        assert!(matches!(err, ScalingError::Infeasible { .. }));
        // Just above the bound it works and is huge.
        let a = alpha_two_partitions(0.66, 0.9, 4).unwrap();
        assert!(a > 5.0);
    }

    #[test]
    fn eviction_fractions_sum_to_one() {
        for alphas in [vec![1.0, 1.0], vec![1.0, 2.5], vec![1.0, 3.0, 7.0]] {
            let n = alphas.len();
            let sizes = vec![1.0 / n as f64; n];
            let e = eviction_fractions(&sizes, &alphas, 16);
            let sum: f64 = e.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "sum {sum} for {alphas:?}");
        }
    }

    #[test]
    fn unscaled_eviction_matches_insertion_only_when_balanced() {
        // With all α = 1, E_i == S_i: sizes drift unless I == S.
        let e = eviction_fractions(&[0.3, 0.7], &[1.0, 1.0], 16);
        assert!((e[0] - 0.3).abs() < 1e-6);
        assert!((e[1] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn solver_agrees_with_closed_form_two_partitions() {
        for (i1, s1) in [(0.1, 0.8), (0.3, 0.6), (0.4, 0.65), (0.45, 0.5)] {
            let closed = alpha_two_partitions(i1, s1, 16).unwrap();
            let solved = solve_scaling_factors(&[i1, 1.0 - i1], &[s1, 1.0 - s1], 16).unwrap();
            assert!((solved[0] - 1.0).abs() < 1e-3, "{solved:?}");
            assert!(
                (solved[1] - closed).abs() / closed < 0.02,
                "closed {closed} vs solved {}",
                solved[1]
            );
        }
    }

    #[test]
    fn solver_handles_four_partitions() {
        let insertions = [0.4, 0.3, 0.2, 0.1];
        let sizes = [0.25, 0.25, 0.25, 0.25];
        let alphas = solve_scaling_factors(&insertions, &sizes, 16).unwrap();
        // Hotter partitions need larger scaling factors.
        assert!(alphas[0] > alphas[1]);
        assert!(alphas[1] > alphas[2]);
        assert!(alphas[2] > alphas[3]);
        assert!((alphas[3] - 1.0).abs() < 1e-6, "coldest is the reference");
        // And the solution actually balances eviction with insertion.
        let e = eviction_fractions(&sizes, &alphas, 16);
        for (ei, ii) in e.iter().zip(&insertions) {
            assert!((ei - ii).abs() < 1e-5);
        }
    }

    #[test]
    fn solver_rejects_bad_fractions() {
        assert!(matches!(
            solve_scaling_factors(&[0.5, 0.4], &[0.5, 0.5], 16),
            Err(ScalingError::BadInput(_))
        ));
        assert!(matches!(
            solve_scaling_factors(&[], &[], 16),
            Err(ScalingError::BadInput(_))
        ));
    }

    #[test]
    fn scaling_factor_grows_with_pressure() {
        // Figure 3's qualitative shape: higher I2 (lower I1) and smaller
        // S2 both push α2 up.
        let base = alpha_two_partitions(0.3, 0.7, 16).unwrap();
        let hotter = alpha_two_partitions(0.2, 0.7, 16).unwrap();
        let smaller = alpha_two_partitions(0.3, 0.75, 16).unwrap();
        assert!(hotter > base);
        assert!(smaller > base);
    }
}
