#![warn(missing_docs)]

//! **Futility Scaling** — the primary contribution of *"Futility
//! Scaling: High-Associativity Cache Partitioning"* (Wang & Chen,
//! MICRO 2014).
//!
//! Futility Scaling (FS) controls the size of each cache partition by
//! scaling the futility of its lines: partition `i` has a scaling factor
//! `α_i`, and on each eviction the replacement candidate with the
//! largest *scaled* futility `α_p · f` is evicted. Because the victim is
//! always chosen from the full candidate list, associativity is
//! independent of the number of partitions (Section IV-C); because
//! raising `α_i` raises partition `i`'s eviction rate, sizes converge to
//! their targets (Section IV-D).
//!
//! Two implementations are provided:
//!
//! * [`FsAnalytic`] — fixed scaling factors, either supplied directly or
//!   derived from insertion rates and target sizes with the analytical
//!   framework of Section IV-B (see [`scaling`]).
//! * [`FsFeedback`] — the practical hardware design of Section V:
//!   coarse futility from the ranking, per-partition saturating
//!   shift-width registers, and the Algorithm 2 feedback loop that
//!   doubles/halves `α_i` every `l = 16` insertions-or-evictions
//!   depending on the partition's size error and growth tendency.
//!
//! # Example
//!
//! ```
//! use cachesim::{PartitionedCache, PartitionId, AccessMeta};
//! use cachesim::array::RandomCandidates;
//! use futility_core::FsFeedback;
//!
//! let mut cache = PartitionedCache::new(
//!     Box::new(RandomCandidates::new(1024, 16, 1)),
//!     cachesim::naive_lru(),
//!     Box::new(FsFeedback::default_config()),
//!     2,
//! );
//! cache.set_targets(&[768, 256]); // a 3:1 split
//! for i in 0..20_000u64 {
//!     let part = PartitionId((i % 2) as u16);
//!     let addr = (i * 7919) % 4096 + part.index() as u64 * 100_000;
//!     cache.access(part, addr, AccessMeta::default());
//! }
//! let s = cache.state();
//! assert!((s.actual[0] as f64 - 768.0).abs() < 150.0);
//! ```

mod analytic;
mod feedback;
pub mod scaling;

pub use analytic::FsAnalytic;
pub use feedback::{FeedbackConfig, FsFeedback};
