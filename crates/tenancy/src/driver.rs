//! The closed loop: a [`TenancyDriver`] feeds tenant traffic into a
//! [`ShardedEngine`] while a [`UtilityAllocator`] re-solves the
//! partition targets on a deterministic cadence.
//!
//! # Determinism and jobs-invariance
//!
//! Re-solves are keyed to the *access count*, never to wall-clock or
//! worker identity: the driver counts accesses as it feeds them and,
//! when an incoming block straddles an epoch boundary, splits it so
//! the re-solve lands exactly between engine batches. Every shadow
//! observation, every solve and every `set_targets` push therefore
//! happens at the same access index regardless of the engine's job
//! count — targets, merged statistics, recorder rows and snapshot
//! bytes are byte-identical for `--jobs 1` and `--jobs N`
//! (`tests/tenancy_determinism.rs`).
//!
//! Tenant arrival and departure are traffic phenomena, not structural
//! ones: the partition space is fixed at compile time and a "departed"
//! tenant simply stops producing accesses, which makes its monitor run
//! cold and pins its target (see [`crate::allocator`]) until the QoS
//! floor/fallback reclaim path redistributes it.

use crate::allocator::UtilityAllocator;
use cachesim::{AccessBlock, ShardedEngine};

/// One re-solve, as recorded by the driver's event log: which epoch,
/// at which global access index, and the target vector that was pushed
/// into the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveEvent {
    /// 1-based epoch counter.
    pub epoch: u64,
    /// Global access count at which the re-solve fired (a multiple of
    /// the cadence).
    pub at_access: u64,
    /// The targets pushed into the engine.
    pub targets: Vec<usize>,
}

/// Closed-loop driver: traffic in, measured-utility re-allocations out.
///
/// ```
/// use cachesim::{AccessBlock, AccessMeta, PartitionId, ShardedEngine};
/// use tenancy::{QosBuilder, TenancyDriver, TenantSpec, UmonConfig, UtilityAllocator};
///
/// let qos = QosBuilder::new()
///     .tenant(TenantSpec::named("a"))
///     .tenant(TenantSpec::named("b"))
///     .compile(1024)
///     .unwrap();
/// let alloc = UtilityAllocator::new(qos, 64, UmonConfig::default());
/// let engine = ShardedEngine::new(2, 2, |i| {
///     Box::new(cachesim::PartitionedCache::new(
///         Box::new(cachesim::array::RandomCandidates::new(64, 8, i as u64)),
///         cachesim::naive_lru(),
///         cachesim::evict_max_futility(),
///         2,
///     ))
/// });
/// let mut driver = TenancyDriver::new(engine, alloc, 500);
/// let mut block = AccessBlock::new();
/// for r in 0..1_200u64 {
///     block.push(PartitionId((r % 2) as u16), r % 97, AccessMeta::default());
/// }
/// driver.feed(&block);
/// assert_eq!(driver.epochs(), 2); // re-solved at accesses 500 and 1000
/// ```
pub struct TenancyDriver {
    engine: ShardedEngine,
    alloc: UtilityAllocator,
    /// Re-solve every `cadence` accesses.
    cadence: u64,
    fed_in_epoch: u64,
    total_fed: u64,
    epochs: u64,
    /// Scratch for the sub-range of a block that straddles an epoch
    /// boundary; reused across feeds.
    staging: AccessBlock,
    log: Vec<ResolveEvent>,
    log_enabled: bool,
}

impl TenancyDriver {
    /// Couple `engine` and `alloc` into a loop re-solving every
    /// `cadence` accesses. The allocator's initial targets are pushed
    /// into the engine immediately.
    ///
    /// # Panics
    /// Panics if `cadence` is zero or the engine has fewer partitions
    /// than the QoS has tenants.
    pub fn new(mut engine: ShardedEngine, alloc: UtilityAllocator, cadence: u64) -> Self {
        assert!(cadence > 0, "cadence must be positive");
        assert!(
            engine.partitions() >= alloc.tenants(),
            "engine has {} partitions for {} tenants",
            engine.partitions(),
            alloc.tenants()
        );
        engine.set_targets(alloc.targets());
        TenancyDriver {
            engine,
            alloc,
            cadence,
            fed_in_epoch: 0,
            total_fed: 0,
            epochs: 0,
            staging: AccessBlock::new(),
            log: Vec::new(),
            log_enabled: false,
        }
    }

    /// Record a [`ResolveEvent`] per re-solve (off by default: the log
    /// allocates, so the no-alloc hot path keeps it off).
    pub fn record_events(&mut self, on: bool) {
        self.log_enabled = on;
    }

    /// Feed one block of tenant traffic, re-solving at every epoch
    /// boundary it crosses. Returns the total hit count.
    ///
    /// The common case (block entirely inside the current epoch) feeds
    /// the caller's block to the engine untouched; a block straddling a
    /// boundary is split through the reusable staging buffer so the
    /// re-solve lands exactly between engine batches.
    pub fn feed(&mut self, block: &AccessBlock) -> u64 {
        let (parts, addrs, metas) = (block.parts(), block.addrs(), block.metas());
        let mut off = 0usize;
        let mut hits = 0u64;
        while off < block.len() {
            let room = (self.cadence - self.fed_in_epoch) as usize;
            let take = room.min(block.len() - off);
            for i in off..off + take {
                self.alloc.observe(parts[i].0 as usize, addrs[i]);
            }
            if off == 0 && take == block.len() {
                hits += self.engine.access_batch(block);
            } else {
                self.staging.clear();
                for i in off..off + take {
                    self.staging.push(parts[i], addrs[i], metas[i]);
                }
                hits += self.engine.access_batch(&self.staging);
            }
            off += take;
            self.fed_in_epoch += take as u64;
            self.total_fed += take as u64;
            if self.fed_in_epoch == self.cadence {
                self.resolve_now();
                self.fed_in_epoch = 0;
            }
        }
        hits
    }

    fn resolve_now(&mut self) {
        self.epochs += 1;
        let targets = self.alloc.resolve();
        self.engine.set_targets(targets);
        if self.log_enabled {
            self.log.push(ResolveEvent {
                epoch: self.epochs,
                at_access: self.total_fed,
                targets: targets.to_vec(),
            });
        }
    }

    /// The engine under management.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Mutable engine access (set jobs, attach recorders, reset stats).
    /// Structural mutations are outside the determinism contract — do
    /// them identically on every replica you intend to compare.
    pub fn engine_mut(&mut self) -> &mut ShardedEngine {
        &mut self.engine
    }

    /// The allocator driving the loop.
    pub fn allocator(&self) -> &UtilityAllocator {
        &self.alloc
    }

    /// The targets currently enforced by the engine.
    pub fn targets(&self) -> &[usize] {
        self.alloc.targets()
    }

    /// Completed re-solve epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total accesses fed.
    pub fn accesses(&self) -> u64 {
        self.total_fed
    }

    /// Recorded re-solve events (empty unless
    /// [`record_events`](Self::record_events) is on).
    pub fn events(&self) -> &[ResolveEvent] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{QosBuilder, TenantSpec};
    use crate::UmonConfig;
    use cachesim::array::RandomCandidates;
    use cachesim::{AccessMeta, PartitionId, PartitionedCache};

    fn engine(shards: usize, parts: usize) -> ShardedEngine {
        ShardedEngine::new(shards, parts, |i| {
            Box::new(PartitionedCache::new(
                Box::new(RandomCandidates::new(128, 8, 7 + i as u64)),
                cachesim::naive_lru(),
                cachesim::evict_max_futility(),
                parts,
            ))
        })
    }

    fn allocator(tenants: usize, total: usize) -> UtilityAllocator {
        let mut b = QosBuilder::new();
        for t in 0..tenants {
            b = b.tenant(TenantSpec::named(format!("t{t}")));
        }
        UtilityAllocator::new(b.compile(total).unwrap(), 64, UmonConfig::default())
    }

    fn traffic(n: usize, tenants: u16, seed: u64) -> AccessBlock {
        let mut b = AccessBlock::with_capacity(n);
        let mut x = seed | 1;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (x % tenants as u64) as u16;
            // Tenant 0 reuses a tiny set; others roam wider.
            let addr = ((t as u64) << 40) | ((x >> 32) % (40 + 800 * t as u64));
            b.push(PartitionId(t), addr, AccessMeta::default());
        }
        b
    }

    #[test]
    fn epoch_boundaries_land_on_exact_access_counts() {
        let mut d = TenancyDriver::new(engine(2, 2), allocator(2, 2048), 1_000);
        d.record_events(true);
        // 7 blocks of 300: boundaries at 1000 and 2000 fall mid-block.
        for r in 0..7u64 {
            d.feed(&traffic(300, 2, r * 31 + 1));
        }
        assert_eq!(d.accesses(), 2_100);
        assert_eq!(d.epochs(), 2);
        let at: Vec<u64> = d.events().iter().map(|e| e.at_access).collect();
        assert_eq!(at, vec![1_000, 2_000]);
        for e in d.events() {
            assert_eq!(e.targets.iter().sum::<usize>(), 2_048);
        }
    }

    #[test]
    fn one_block_can_cross_many_epochs() {
        let mut d = TenancyDriver::new(engine(2, 2), allocator(2, 2048), 250);
        d.feed(&traffic(1_100, 2, 5));
        assert_eq!(d.epochs(), 4);
    }

    #[test]
    fn job_count_does_not_change_the_closed_loop() {
        let run = |jobs: usize| {
            let mut d = TenancyDriver::new(engine(4, 3), allocator(3, 4096), 800);
            d.record_events(true);
            d.engine_mut().set_jobs(jobs);
            let mut hits = 0u64;
            for r in 0..9u64 {
                hits += d.feed(&traffic(500, 3, r * 17 + 3));
            }
            (
                hits,
                d.targets().to_vec(),
                d.events().to_vec(),
                d.engine().snapshot(),
            )
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn targets_track_utility_through_the_loop() {
        // Tenant 0 reuses a tiny set, tenant 2 roams the widest: the
        // re-solved split must reflect measured utility, not the equal
        // initial shares.
        let mut d = TenancyDriver::new(engine(2, 3), allocator(3, 4096), 2_000);
        let initial = d.targets().to_vec();
        for r in 0..20u64 {
            d.feed(&traffic(1_000, 3, r * 13 + 1));
        }
        assert!(d.epochs() >= 9);
        let now = d.targets();
        assert_eq!(now.iter().sum::<usize>(), 4_096);
        assert!(now[0] > 0, "the reuser earns capacity: {now:?}");
        assert!(
            now[2] < initial[2],
            "the widest roamer loses its equal share: {initial:?} -> {now:?}"
        );
    }
}
