#![warn(missing_docs)]

//! Multi-tenant QoS layer over the partitioned-cache engines: declare
//! per-tenant service expectations fluently, compile them into a
//! validated partition-target vector, and let a utility-driven
//! allocator re-solve the targets online from measured miss-rate
//! curves while a closed-loop driver feeds traffic.
//!
//! The paper frames cache QoS as *allocation policy* (decide targets)
//! vs *enforcement scheme* (hold partitions at their targets — its
//! contribution, Futility Scaling). The repo's enforcement schemes and
//! sharded engines supply the latter; this crate supplies a practical
//! allocation layer on top:
//!
//! * [`TenantSpec`] / [`QosBuilder`] — fluent per-tenant QoS specs
//!   (share, min/max lines, priority weight, optional SLO miss-ratio
//!   ceiling) compiled, with full cross-tenant validation, into a
//!   [`CompiledQos`].
//! * [`UtilityAllocator`] — per-tenant UMON shadow monitors feeding a
//!   priority-weighted, bounded UCP hill-climb that re-solves targets
//!   each epoch; cold tenants are pinned rather than starved.
//! * [`TenancyDriver`] — the closed loop: traffic in, re-solved
//!   targets pushed into a live [`ShardedEngine`](cachesim::ShardedEngine)
//!   between access blocks, on a deterministic access-count cadence
//!   that is byte-identical for any `--jobs` count.
//!
//! The invariant → pinning-test contract table is DESIGN.md §13; the
//! allocation-storm experiment (`--bin tenancy_storm`) exercises the
//! whole stack against Vantage and PriSM.
//!
//! # Quick start
//!
//! ```
//! use tenancy::{QosBuilder, TenantSpec, UmonConfig, UtilityAllocator};
//!
//! let qos = QosBuilder::new()
//!     .tenant(TenantSpec::named("latency-critical")
//!         .share(0.5)
//!         .min_lines(1024)
//!         .priority(4.0)
//!         .slo_miss_ratio(0.2))
//!     .tenant(TenantSpec::named("batch").max_lines(2048))
//!     .tenant(TenantSpec::named("best-effort"))
//!     .compile(8192)
//!     .unwrap();
//! assert_eq!(qos.initial_targets().iter().sum::<usize>(), 8192);
//!
//! let mut alloc = UtilityAllocator::new(qos, 512, UmonConfig::default());
//! for r in 0..10_000u64 {
//!     alloc.observe(0, r % 32);           // tight reuse
//!     alloc.observe(1, 1 << 41 | r);      // stream
//!     alloc.observe(2, 1 << 42 | r % 4_000);
//! }
//! let targets = alloc.resolve();
//! assert_eq!(targets.iter().sum::<usize>(), 8192);
//! assert!(targets[0] >= 1024);            // floor held
//! assert!(targets[1] <= 2048);            // cap held
//! ```

pub mod allocator;
pub mod driver;
pub mod spec;

pub use allocator::{UmonConfig, UtilityAllocator};
pub use driver::{ResolveEvent, TenancyDriver};
pub use spec::{rebalance_targets, CompiledQos, QosBuilder, QosError, TenantSpec};
