//! Per-tenant QoS specification: a fluent builder ([`TenantSpec`] /
//! [`QosBuilder`]) that validates and compiles into a partition-target
//! vector plus the bounds the online allocator enforces every epoch.
//!
//! A *tenant* is an application partition with service expectations: a
//! target share of the cache, hard min/max line bounds, a priority
//! weight for the utility solver, and an optional SLO miss-ratio
//! ceiling used for reporting. Compilation ([`QosBuilder::compile`])
//! checks every cross-tenant invariant once, up front, so the
//! allocator and driver can run the closed loop panic-free; the
//! resulting [`CompiledQos`] is immutable for the lifetime of the
//! tenancy (tenant arrival/departure is modeled by traffic weights
//! going to/from zero, not by resizing the partition space — see the
//! module docs of [`crate::driver`]).

use std::fmt;

/// One tenant's QoS spec, built fluently:
///
/// ```
/// use tenancy::TenantSpec;
/// let spec = TenantSpec::named("frontend")
///     .share(0.25)
///     .min_lines(1024)
///     .max_lines(65_536)
///     .priority(2.0)
///     .slo_miss_ratio(0.35);
/// ```
///
/// Every method consumes and returns `self` (the HDDS-style fluent
/// builder pattern); unset fields take documented defaults at
/// [`QosBuilder::compile`] time.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    pub(crate) name: String,
    pub(crate) priority: f64,
    pub(crate) share: Option<f64>,
    pub(crate) min_lines: usize,
    pub(crate) max_lines: Option<usize>,
    pub(crate) slo_miss_ratio: Option<f64>,
}

impl TenantSpec {
    /// Start a spec for the tenant called `name` (must be unique and
    /// non-empty within one [`QosBuilder`]).
    pub fn named(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            priority: 1.0,
            share: None,
            min_lines: 0,
            max_lines: None,
            slo_miss_ratio: None,
        }
    }

    /// Priority weight for the utility solver: marginal hit gains are
    /// multiplied by this before tenants compete for blocks. Default
    /// 1.0; must be positive and finite.
    pub fn priority(mut self, weight: f64) -> Self {
        self.priority = weight;
        self
    }

    /// Target share of the cache in `[0, 1]`, used for the initial
    /// target vector and as the cold-start fallback. Tenants without
    /// an explicit share split whatever the explicit shares leave.
    pub fn share(mut self, share: f64) -> Self {
        self.share = Some(share);
        self
    }

    /// Guaranteed minimum allocation in lines (default 0). The
    /// allocator never re-solves below this.
    pub fn min_lines(mut self, lines: usize) -> Self {
        self.min_lines = lines;
        self
    }

    /// Hard allocation ceiling in lines (default: the whole cache).
    /// The allocator never re-solves above this.
    pub fn max_lines(mut self, lines: usize) -> Self {
        self.max_lines = Some(lines);
        self
    }

    /// SLO miss-ratio ceiling in `(0, 1]`: the serving objective this
    /// tenant is held to. Purely observational — the experiment layer
    /// reports violations; the solver does not read it.
    pub fn slo_miss_ratio(mut self, ceiling: f64) -> Self {
        self.slo_miss_ratio = Some(ceiling);
        self
    }
}

/// A QoS compilation error, naming the offending tenant where there is
/// one.
#[derive(Clone, Debug, PartialEq)]
pub enum QosError {
    /// The builder holds no tenants.
    NoTenants,
    /// More tenants than the `PartitionId` space (`u16`) can address.
    TooManyTenants(usize),
    /// A tenant-level validation failed (empty/duplicate name, bad
    /// priority/share/SLO value, `min_lines > max_lines`, …).
    BadTenant {
        /// The offending tenant's name (possibly empty).
        name: String,
        /// What was wrong with it.
        reason: String,
    },
    /// Cross-tenant invariant failed (shares sum over 1, minimum
    /// guarantees oversubscribe the cache, maxima undersubscribe it).
    Infeasible(String),
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::NoTenants => write!(f, "no tenants specified"),
            QosError::TooManyTenants(n) => {
                write!(f, "{n} tenants exceed the PartitionId space (65536)")
            }
            QosError::BadTenant { name, reason } => write!(f, "tenant {name:?}: {reason}"),
            QosError::Infeasible(why) => write!(f, "infeasible QoS set: {why}"),
        }
    }
}

impl std::error::Error for QosError {}

/// Collects [`TenantSpec`]s and compiles them against a cache size.
///
/// ```
/// use tenancy::{QosBuilder, TenantSpec};
/// let qos = QosBuilder::new()
///     .tenant(TenantSpec::named("a").share(0.5).priority(2.0))
///     .tenant(TenantSpec::named("b").min_lines(64))
///     .tenant(TenantSpec::named("c").max_lines(512).slo_miss_ratio(0.5))
///     .compile(1024)
///     .unwrap();
/// assert_eq!(qos.tenants(), 3);
/// assert_eq!(qos.initial_targets().iter().sum::<usize>(), 1024);
/// assert_eq!(qos.initial_targets()[0], 512);
/// ```
#[derive(Clone, Debug, Default)]
pub struct QosBuilder {
    tenants: Vec<TenantSpec>,
}

impl QosBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        QosBuilder::default()
    }

    /// Add one tenant (tenant index = insertion order = partition id).
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Validate every spec and cross-tenant invariant, then compile
    /// the set against a cache of `total_lines` lines.
    ///
    /// # Errors
    /// See [`QosError`]; nothing is partially applied on failure.
    pub fn compile(self, total_lines: usize) -> Result<CompiledQos, QosError> {
        if self.tenants.is_empty() {
            return Err(QosError::NoTenants);
        }
        if self.tenants.len() > u16::MAX as usize + 1 {
            return Err(QosError::TooManyTenants(self.tenants.len()));
        }
        if total_lines == 0 {
            return Err(QosError::Infeasible("cache has zero lines".into()));
        }
        let bad = |t: &TenantSpec, reason: String| QosError::BadTenant {
            name: t.name.clone(),
            reason,
        };
        let n = self.tenants.len();
        let mut share_sum = 0.0f64;
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() {
                return Err(bad(t, "empty name".into()));
            }
            if self.tenants[..i].iter().any(|o| o.name == t.name) {
                return Err(bad(t, "duplicate name".into()));
            }
            if !(t.priority > 0.0 && t.priority.is_finite()) {
                return Err(bad(
                    t,
                    format!("priority {} not positive finite", t.priority),
                ));
            }
            if let Some(s) = t.share {
                if !(s.is_finite() && (0.0..=1.0).contains(&s)) {
                    return Err(bad(t, format!("share {s} outside [0, 1]")));
                }
                share_sum += s;
            }
            let max = t.max_lines.unwrap_or(total_lines);
            if t.min_lines > max {
                return Err(bad(
                    t,
                    format!("min_lines {} exceeds max_lines {max}", t.min_lines),
                ));
            }
            if let Some(slo) = t.slo_miss_ratio {
                if !(slo.is_finite() && 0.0 < slo && slo <= 1.0) {
                    return Err(bad(t, format!("SLO miss ratio {slo} outside (0, 1]")));
                }
            }
        }
        if share_sum > 1.0 + 1e-9 {
            return Err(QosError::Infeasible(format!(
                "explicit shares sum to {share_sum:.6} > 1"
            )));
        }
        let min: Vec<usize> = self.tenants.iter().map(|t| t.min_lines).collect();
        let max: Vec<usize> = self
            .tenants
            .iter()
            .map(|t| t.max_lines.unwrap_or(total_lines))
            .collect();
        let min_sum: usize = min.iter().sum();
        if min_sum > total_lines {
            return Err(QosError::Infeasible(format!(
                "minimum guarantees sum to {min_sum} lines > cache of {total_lines}"
            )));
        }
        // Saturating: per-tenant maxima are each <= total_lines but 64k
        // tenants' worth can overflow a 32-bit usize in theory.
        let max_sum = max.iter().fold(0usize, |a, &m| a.saturating_add(m));
        if max_sum < total_lines {
            return Err(QosError::Infeasible(format!(
                "maximum ceilings sum to {max_sum} lines < cache of {total_lines}; \
                 the target vector could not cover the cache"
            )));
        }
        // Fallback (= initial) targets: explicit shares first, the
        // implicit tenants split the remainder equally, then everything
        // is clamped into [min, max] and rebalanced to cover the cache
        // exactly.
        let explicit_lines: usize = self
            .tenants
            .iter()
            .filter_map(|t| t.share)
            .map(|s| (s * total_lines as f64).round() as usize)
            .sum();
        let implicit = self.tenants.iter().filter(|t| t.share.is_none()).count();
        let leftover = total_lines.saturating_sub(explicit_lines);
        let mut fallback: Vec<usize> = Vec::with_capacity(n);
        let mut implicit_seen = 0usize;
        for t in &self.tenants {
            fallback.push(match t.share {
                Some(s) => (s * total_lines as f64).round() as usize,
                None => {
                    implicit_seen += 1;
                    leftover / implicit + usize::from(implicit_seen <= leftover % implicit)
                }
            });
        }
        for i in 0..n {
            fallback[i] = fallback[i].clamp(min[i], max[i]);
        }
        rebalance_targets(&mut fallback, &min, &max, total_lines);
        debug_assert_eq!(fallback.iter().sum::<usize>(), total_lines);
        Ok(CompiledQos {
            total_lines,
            names: self.tenants.iter().map(|t| t.name.clone()).collect(),
            priorities: self.tenants.iter().map(|t| t.priority).collect(),
            min_lines: min,
            max_lines: max,
            slo_miss_ratio: self.tenants.iter().map(|t| t.slo_miss_ratio).collect(),
            fallback,
        })
    }
}

/// Adjust `targets` in place until it sums to exactly `total`, never
/// moving any entry outside its `[min, max]` bound. Surplus is taken
/// from (and deficit handed to) tenants in index order, spread evenly
/// across the tenants with slack each pass — deterministic, and
/// allocation-free so the per-epoch re-solve can call it
/// (`tests/no_alloc_hot_path.rs`, re-solve arm).
///
/// # Panics
/// Panics (in debug builds) if no feasible vector exists, i.e.
/// `sum(min) > total` or `sum(max) < total` — [`QosBuilder::compile`]
/// rejects both up front.
pub fn rebalance_targets(targets: &mut [usize], min: &[usize], max: &[usize], total: usize) {
    debug_assert!(min.iter().sum::<usize>() <= total);
    debug_assert!(max.iter().fold(0usize, |a, &m| a.saturating_add(m)) >= total);
    loop {
        let sum: usize = targets.iter().sum();
        if sum == total {
            return;
        }
        if sum < total {
            let mut deficit = total - sum;
            let slack = targets
                .iter()
                .zip(max)
                .filter(|&(t, m)| t < m)
                .count()
                .max(1);
            let each = (deficit / slack).max(1);
            for (t, &m) in targets.iter_mut().zip(max) {
                if deficit == 0 {
                    break;
                }
                let add = each.min(m - *t).min(deficit);
                *t += add;
                deficit -= add;
            }
        } else {
            let mut surplus = sum - total;
            let slack = targets
                .iter()
                .zip(min)
                .filter(|&(t, m)| t > m)
                .count()
                .max(1);
            let each = (surplus / slack).max(1);
            for (t, &m) in targets.iter_mut().zip(min) {
                if surplus == 0 {
                    break;
                }
                let take = each.min(*t - m).min(surplus);
                *t -= take;
                surplus -= take;
            }
        }
    }
}

/// The validated, immutable output of [`QosBuilder::compile`]: bounds,
/// priorities and SLOs in struct-of-arrays form (tenant index =
/// partition id), plus the share-derived fallback target vector that
/// doubles as the initial allocation and the cold-tenant pin.
#[derive(Clone, Debug)]
pub struct CompiledQos {
    total_lines: usize,
    names: Vec<String>,
    priorities: Vec<f64>,
    min_lines: Vec<usize>,
    max_lines: Vec<usize>,
    slo_miss_ratio: Vec<Option<f64>>,
    fallback: Vec<usize>,
}

impl CompiledQos {
    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.names.len()
    }

    /// The cache size everything was compiled against, in lines.
    pub fn total_lines(&self) -> usize {
        self.total_lines
    }

    /// Tenant `i`'s name.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Per-tenant priority weights (solver multipliers).
    pub fn priorities(&self) -> &[f64] {
        &self.priorities
    }

    /// Per-tenant guaranteed minima, in lines.
    pub fn min_lines(&self) -> &[usize] {
        &self.min_lines
    }

    /// Per-tenant ceilings, in lines.
    pub fn max_lines(&self) -> &[usize] {
        &self.max_lines
    }

    /// Tenant `i`'s SLO miss-ratio ceiling, if one was declared.
    pub fn slo_miss_ratio(&self, i: usize) -> Option<f64> {
        self.slo_miss_ratio[i]
    }

    /// The share-derived target vector: initial targets at driver
    /// start, and the per-tenant fallback the allocator pins a tenant
    /// to while its monitor is cold. Sums to exactly
    /// [`total_lines`](Self::total_lines).
    pub fn initial_targets(&self) -> &[usize] {
        &self.fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_minima_and_remainders_compile_to_full_coverage() {
        let qos = QosBuilder::new()
            .tenant(TenantSpec::named("hot").share(0.5))
            .tenant(TenantSpec::named("warm").min_lines(100))
            .tenant(TenantSpec::named("cold"))
            .compile(1000)
            .unwrap();
        assert_eq!(qos.initial_targets(), &[500, 250, 250]);
        assert_eq!(qos.min_lines(), &[0, 100, 0]);
        assert_eq!(qos.max_lines(), &[1000, 1000, 1000]);
    }

    #[test]
    fn clamped_shares_rebalance_to_exact_total() {
        // "hot" asks for 90% but is capped at 200 lines: the surplus
        // must flow to the others without violating any bound.
        let qos = QosBuilder::new()
            .tenant(TenantSpec::named("hot").share(0.9).max_lines(200))
            .tenant(TenantSpec::named("a"))
            .tenant(TenantSpec::named("b").max_lines(300))
            .compile(1000)
            .unwrap();
        let t = qos.initial_targets();
        assert_eq!(t.iter().sum::<usize>(), 1000);
        assert_eq!(t[0], 200);
        assert!(t[2] <= 300);
    }

    #[test]
    fn validation_rejects_each_bad_spec() {
        let compile = |b: QosBuilder| b.compile(1000);
        assert_eq!(
            compile(QosBuilder::new()).map(|_| ()),
            Err(QosError::NoTenants)
        );
        let cases: Vec<(QosBuilder, &str)> = vec![
            (
                QosBuilder::new().tenant(TenantSpec::named("")),
                "empty name",
            ),
            (
                QosBuilder::new()
                    .tenant(TenantSpec::named("x"))
                    .tenant(TenantSpec::named("x")),
                "duplicate",
            ),
            (
                QosBuilder::new().tenant(TenantSpec::named("x").priority(0.0)),
                "priority",
            ),
            (
                QosBuilder::new().tenant(TenantSpec::named("x").share(1.5)),
                "share",
            ),
            (
                QosBuilder::new().tenant(TenantSpec::named("x").min_lines(10).max_lines(5)),
                "min_lines",
            ),
            (
                QosBuilder::new().tenant(TenantSpec::named("x").slo_miss_ratio(0.0)),
                "SLO",
            ),
        ];
        for (b, what) in cases {
            let err = compile(b).map(|_| ()).unwrap_err();
            assert!(
                matches!(err, QosError::BadTenant { .. }),
                "{what}: got {err}"
            );
            assert!(err.to_string().contains(what), "{what}: got {err}");
        }
    }

    #[test]
    fn validation_rejects_infeasible_sets() {
        let over = QosBuilder::new()
            .tenant(TenantSpec::named("a").share(0.7))
            .tenant(TenantSpec::named("b").share(0.7))
            .compile(1000)
            .unwrap_err();
        assert!(matches!(over, QosError::Infeasible(_)), "{over}");
        let mins = QosBuilder::new()
            .tenant(TenantSpec::named("a").min_lines(700))
            .tenant(TenantSpec::named("b").min_lines(700))
            .compile(1000)
            .unwrap_err();
        assert!(matches!(mins, QosError::Infeasible(_)), "{mins}");
        let maxs = QosBuilder::new()
            .tenant(TenantSpec::named("a").max_lines(300))
            .tenant(TenantSpec::named("b").max_lines(300))
            .compile(1000)
            .unwrap_err();
        assert!(matches!(maxs, QosError::Infeasible(_)), "{maxs}");
    }

    #[test]
    fn rebalance_converges_from_both_sides() {
        let min = [0usize, 10, 0];
        let max = [50usize, 100, 100];
        let mut under = [0usize, 10, 0];
        rebalance_targets(&mut under, &min, &max, 200);
        assert_eq!(under.iter().sum::<usize>(), 200);
        assert!(under.iter().zip(&max).all(|(t, m)| t <= m));
        let mut over = [50usize, 100, 100];
        rebalance_targets(&mut over, &min, &max, 60);
        assert_eq!(over.iter().sum::<usize>(), 60);
        assert!(over.iter().zip(&min).all(|(t, m)| t >= m));
    }
}
