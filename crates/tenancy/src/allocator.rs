//! Utility-driven target allocation: per-tenant [`Umon`] shadow
//! monitors feed marginal-utility curves into a priority-weighted,
//! bounded UCP hill-climb ([`simqos::alloc::ucp_allocate_bounded_into`])
//! that re-solves the partition-target vector each epoch under the
//! compiled QoS constraints.
//!
//! The allocator is built once from a [`CompiledQos`] and then runs
//! allocation-free: every curve, scratch buffer and the target vector
//! itself is pre-sized at construction, so the per-epoch
//! [`resolve`](UtilityAllocator::resolve) can sit on the engine's hot
//! path (`tests/no_alloc_hot_path.rs`, re-solve arm).
//!
//! # The cold-tenant contract
//!
//! [`Umon::miss_ratio_curve`] returns `None` while a monitor is cold —
//! a cold monitor has no information, and treating 0/0 as "misses
//! everywhere" made utility allocators starve tenants before their
//! first sampled access (the regression pinned by
//! `cachesim::umon::tests::cold_monitor_has_no_miss_ratio_curve`).
//! This allocator honours the explicit contract: a tenant whose
//! monitor [is cold](Umon::is_cold) for the epoch is *pinned* at its
//! current target (both solver bounds collapse onto it), so it keeps
//! its allocation until it produces evidence either way.

use crate::spec::{rebalance_targets, CompiledQos};
use cachesim::umon::Umon;
use simqos::alloc::{resample_umon_curve_into, ucp_allocate_bounded_into};

/// Shadow-monitor geometry for each tenant's [`Umon`].
#[derive(Clone, Copy, Debug)]
pub struct UmonConfig {
    /// Sampled shadow sets per monitor.
    pub sets: usize,
    /// Shadow ways per set (the utility curve's resolution).
    pub ways: usize,
    /// Observe one in `sampling` lines (1 = observe everything).
    pub sampling: u64,
}

impl Default for UmonConfig {
    fn default() -> Self {
        UmonConfig {
            sets: 32,
            ways: 16,
            sampling: 1,
        }
    }
}

/// Periodically re-solves per-tenant line targets from measured
/// utility, within the bounds of a [`CompiledQos`].
///
/// ```
/// use tenancy::{QosBuilder, TenantSpec, UmonConfig, UtilityAllocator};
/// let qos = QosBuilder::new()
///     .tenant(TenantSpec::named("reuser"))
///     .tenant(TenantSpec::named("streamer"))
///     .compile(4096)
///     .unwrap();
/// let mut alloc = UtilityAllocator::new(qos, 256, UmonConfig::default());
/// for r in 0..20_000u64 {
///     alloc.observe(0, r % 48);            // small hot set
///     alloc.observe(1, 1_000_000 + r);     // pure stream
/// }
/// let targets = alloc.resolve();
/// assert_eq!(targets.iter().sum::<usize>(), 4096);
/// assert!(targets[0] > targets[1]);
/// ```
#[derive(Clone, Debug)]
pub struct UtilityAllocator {
    qos: CompiledQos,
    granularity: usize,
    blocks: usize,
    umons: Vec<Umon>,
    /// QoS bounds in blocks: `min_b` floors (never oversubscribe),
    /// `max_b` ceilings (never deny a tenant its compiled maximum).
    min_b: Vec<usize>,
    max_b: Vec<usize>,
    /// Per-epoch effective bounds; cold tenants collapse both onto
    /// their current target.
    eff_min: Vec<usize>,
    eff_max: Vec<usize>,
    curves: Vec<Vec<f64>>,
    ways_scratch: Vec<f64>,
    alloc_b: Vec<usize>,
    targets: Vec<usize>,
}

impl UtilityAllocator {
    /// Build an allocator over `qos` re-solving at block `granularity`
    /// lines, with one shadow monitor per tenant.
    ///
    /// # Panics
    /// Panics if `granularity` is zero or larger than the cache.
    pub fn new(qos: CompiledQos, granularity: usize, umon: UmonConfig) -> Self {
        let total = qos.total_lines();
        assert!(
            granularity > 0 && granularity <= total,
            "granularity {granularity} outside 1..={total}"
        );
        let blocks = total / granularity;
        let n = qos.tenants();
        // Floors round down (a fractional-block guarantee must not
        // oversubscribe the solver); ceilings round up and saturate at
        // the cache. The exact line bounds are re-imposed after the
        // solve, so nothing is lost to block rounding.
        let min_b: Vec<usize> = qos.min_lines().iter().map(|&m| m / granularity).collect();
        let max_b: Vec<usize> = qos
            .max_lines()
            .iter()
            .map(|&m| m.div_ceil(granularity).min(blocks))
            .collect();
        let targets = qos.initial_targets().to_vec();
        UtilityAllocator {
            granularity,
            blocks,
            umons: (0..n)
                .map(|_| Umon::new(umon.sets, umon.ways, umon.sampling))
                .collect(),
            min_b,
            max_b,
            eff_min: vec![0; n],
            eff_max: vec![0; n],
            curves: vec![Vec::with_capacity(blocks + 1); n],
            ways_scratch: Vec::with_capacity(umon.ways + 1),
            alloc_b: Vec::with_capacity(n),
            targets,
            qos,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.umons.len()
    }

    /// The compiled QoS this allocator solves under.
    pub fn qos(&self) -> &CompiledQos {
        &self.qos
    }

    /// The most recently solved target vector (initially the QoS
    /// fallback targets). Always sums to the cache size.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// Whether tenant `i`'s monitor is cold for the current epoch.
    pub fn is_cold(&self, i: usize) -> bool {
        self.umons[i].is_cold()
    }

    /// Feed one access of tenant `tenant` to its shadow monitor.
    #[inline]
    pub fn observe(&mut self, tenant: usize, addr: u64) {
        self.umons[tenant].observe(addr);
    }

    /// Re-solve the target vector from the epoch's measured utility and
    /// start a new measurement epoch. Returns the new targets (also
    /// readable via [`targets`](Self::targets)).
    ///
    /// Warm tenants compete for blocks by priority-weighted marginal
    /// hit gain within their `[min, max]` bounds; cold tenants are
    /// pinned at their current target (see the module docs). The
    /// result is converted back to lines, clamped to the exact QoS
    /// line bounds, and rebalanced to cover the cache exactly.
    /// Allocation-free after construction; deterministic given the
    /// same observation history.
    pub fn resolve(&mut self) -> &[usize] {
        let g = self.granularity;
        for i in 0..self.umons.len() {
            if self.umons[i].is_cold() {
                // No data: pin at the current target. The curve content
                // is irrelevant (both bounds coincide) but the solver
                // requires blocks+1 entries.
                let cur = (self.targets[i] + g / 2) / g;
                let pin = cur.clamp(self.min_b[i], self.max_b[i]);
                self.eff_min[i] = pin;
                self.eff_max[i] = pin;
                self.curves[i].clear();
                self.curves[i].resize(self.blocks + 1, 0.0);
            } else {
                self.eff_min[i] = self.min_b[i];
                self.eff_max[i] = self.max_b[i];
                resample_umon_curve_into(
                    &self.umons[i],
                    self.qos.total_lines(),
                    g,
                    &mut self.ways_scratch,
                    &mut self.curves[i],
                );
            }
        }
        // Pinning can oversubscribe the floor sum (e.g. every tenant
        // cold with rounded-up pins). Walk pinned tenants from the back
        // and release their floors toward the compiled minimum until
        // the solver is feasible again.
        let mut floor: usize = self.eff_min.iter().sum();
        for i in (0..self.eff_min.len()).rev() {
            if floor <= self.blocks {
                break;
            }
            let give = (self.eff_min[i] - self.min_b[i]).min(floor - self.blocks);
            self.eff_min[i] -= give;
            floor -= give;
        }
        ucp_allocate_bounded_into(
            &self.curves,
            self.qos.priorities(),
            &self.eff_min,
            &self.eff_max,
            self.blocks,
            &mut self.alloc_b,
        );
        for i in 0..self.targets.len() {
            self.targets[i] =
                (self.alloc_b[i] * g).clamp(self.qos.min_lines()[i], self.qos.max_lines()[i]);
        }
        rebalance_targets(
            &mut self.targets,
            self.qos.min_lines(),
            self.qos.max_lines(),
            self.qos.total_lines(),
        );
        for m in &mut self.umons {
            m.reset_counters();
        }
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{QosBuilder, TenantSpec};

    fn qos3(total: usize) -> CompiledQos {
        QosBuilder::new()
            .tenant(TenantSpec::named("a"))
            .tenant(TenantSpec::named("b"))
            .tenant(TenantSpec::named("c"))
            .compile(total)
            .unwrap()
    }

    #[test]
    fn utility_flows_to_the_reuser() {
        let mut alloc = UtilityAllocator::new(qos3(6_144), 256, UmonConfig::default());
        for r in 0..30_000u64 {
            alloc.observe(0, r % 40); // hot set
            alloc.observe(1, 1 << 41 | (r % 3_000)); // large working set
            alloc.observe(2, 1 << 42 | r); // stream
        }
        let t = alloc.resolve().to_vec();
        assert_eq!(t.iter().sum::<usize>(), 6_144);
        assert!(t[0] > t[2], "reuser beats streamer: {t:?}");
    }

    #[test]
    fn cold_tenant_keeps_its_current_target() {
        // Tenant 1 never produces a sampled access: it must hold its
        // initial (fallback) target through re-solves while the warm
        // tenants shuffle the rest.
        let qos = QosBuilder::new()
            .tenant(TenantSpec::named("warm-a"))
            .tenant(TenantSpec::named("silent").share(0.25))
            .tenant(TenantSpec::named("warm-b"))
            .compile(8_192)
            .unwrap();
        let pinned = qos.initial_targets()[1];
        let mut alloc = UtilityAllocator::new(qos, 256, UmonConfig::default());
        for round in 0..3 {
            for r in 0..20_000u64 {
                alloc.observe(0, r % 50);
                alloc.observe(2, 1 << 42 | r);
            }
            let t = alloc.resolve().to_vec();
            assert_eq!(t[1], pinned);
            assert_eq!(
                alloc.targets()[1],
                pinned,
                "round {round}: cold tenant moved: {:?}",
                alloc.targets()
            );
            assert_eq!(alloc.targets().iter().sum::<usize>(), 8_192);
        }
        // Once it warms up, it competes normally: against two warm
        // streamers its tight reuse out-earns them.
        for r in 0..40_000u64 {
            alloc.observe(0, 1 << 40 | r);
            alloc.observe(1, 1 << 41 | (r % 30));
            alloc.observe(2, 1 << 42 | r);
        }
        assert!(!alloc.is_cold(1));
        let t = alloc.resolve();
        assert_eq!(t.iter().sum::<usize>(), 8_192);
        assert!(t[1] > t[2], "warm reuser out-earns the streamer: {t:?}");
    }

    #[test]
    fn bounds_and_priorities_are_enforced() {
        let qos = QosBuilder::new()
            .tenant(TenantSpec::named("capped").max_lines(1_024))
            .tenant(TenantSpec::named("floored").min_lines(2_048))
            .tenant(TenantSpec::named("weighted").priority(50.0))
            .compile(8_192)
            .unwrap();
        let mut alloc = UtilityAllocator::new(qos, 256, UmonConfig::default());
        for _ in 0..3 {
            for r in 0..30_000u64 {
                // Identical reuse behaviour (hot sets shallow enough
                // for the shadow ways): only QoS separates them.
                alloc.observe(0, r % 40);
                alloc.observe(1, 1 << 41 | (r % 40));
                alloc.observe(2, 1 << 42 | (r % 40));
            }
            let t = alloc.resolve().to_vec();
            assert_eq!(t.iter().sum::<usize>(), 8_192);
            assert!(t[0] <= 1_024, "cap holds: {t:?}");
            assert!(t[1] >= 2_048, "floor holds: {t:?}");
            assert!(t[2] >= t[0], "the weighted tenant wins first: {t:?}");
        }
    }

    #[test]
    fn all_cold_resolve_is_the_identity() {
        let mut alloc = UtilityAllocator::new(qos3(6_144), 256, UmonConfig::default());
        let before = alloc.targets().to_vec();
        let after = alloc.resolve().to_vec();
        assert_eq!(before, after, "no data, no movement");
    }

    #[test]
    fn resolve_is_deterministic_for_identical_histories() {
        let run = || {
            let mut alloc = UtilityAllocator::new(qos3(6_144), 128, UmonConfig::default());
            let mut all = Vec::new();
            for round in 0..4u64 {
                for r in 0..10_000u64 {
                    alloc.observe(0, (r * 7 + round) % 300);
                    alloc.observe(1, 1 << 41 | (r % (500 + 200 * round)));
                    alloc.observe(2, 1 << 42 | (r * 3));
                }
                all.extend_from_slice(alloc.resolve());
            }
            all
        };
        assert_eq!(run(), run());
    }
}
