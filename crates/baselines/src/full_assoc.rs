//! The FullAssoc ideal: "the PF scheme on a fully-associative cache. It
//! always evicts the least useful cache line from the partition that
//! exceeds its target size most. FullAssoc is an ideal partitioning
//! scheme that provides exact partitioning and full associativity for
//! each partition" (Section VII-B).

use crate::pf::pf_victim;
use cachesim::{Candidate, PartitionId, PartitionScheme, PartitionState, VictimDecision};

/// The idealized FullAssoc scheme. On a
/// [`FullyAssociative`](cachesim::array::FullyAssociative) array the
/// engine asks for a victim *partition* (the most oversized one — the
/// trait default) and evicts its globally most futile line via the
/// ranking. On finite-candidate arrays it degrades gracefully to PF.
#[derive(Copy, Clone, Debug, Default)]
pub struct FullAssocIdeal;

impl PartitionScheme for FullAssocIdeal {
    fn name(&self) -> &'static str {
        "full-assoc"
    }

    fn victim(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision {
        VictimDecision::evict(pf_victim(cands, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::array::FullyAssociative;
    use cachesim::{AccessMeta, PartitionedCache};

    /// End-to-end: FullAssoc holds two partitions exactly at target and
    /// always evicts each partition's most futile line (AEF = 1).
    #[test]
    fn exact_sizing_and_full_associativity() {
        let mut cache = PartitionedCache::new(
            Box::new(FullyAssociative::new(128)),
            cachesim::naive_lru(),
            Box::new(FullAssocIdeal),
            2,
        );
        cache.set_targets(&[96, 32]);
        // Both partitions stream over footprints larger than their
        // shares, with partition 1 inserting twice as fast.
        let mut t = 0u64;
        for i in 0..20_000u64 {
            let (part, addr) = if i % 3 == 0 {
                (PartitionId(0), i % 500)
            } else {
                (PartitionId(1), 10_000 + i % 500)
            };
            cache.access(part, addr, AccessMeta::default());
            t += 1;
        }
        assert!(t > 0);
        let st = cache.state();
        assert_eq!(st.actual[0] + st.actual[1], 128);
        assert!(
            (st.actual[0] as i64 - 96).abs() <= 1,
            "actual {} vs target 96",
            st.actual[0]
        );
        // Full associativity: every eviction takes the pool's most
        // futile line, so AEF = 1 exactly.
        for p in [PartitionId(0), PartitionId(1)] {
            let aef = cache.stats().partition(p).aef();
            assert!((aef - 1.0).abs() < 1e-9, "AEF of {p} is {aef}");
        }
    }
}
