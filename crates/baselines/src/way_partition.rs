//! Way-partitioning (column caching) — the canonical *placement-based*
//! scheme from the paper's background section (§II-B): each partition
//! owns a subset of the physical ways, victims always come from the
//! inserting partition's own ways, and resizing means reassigning ways
//! (lines stranded in reassigned ways become dead weight until evicted,
//! which is exactly the resizing penalty the paper contrasts with
//! replacement-based schemes' smooth resizing).
//!
//! This scheme only makes sense on a [`SetAssociative`]
//! (cachesim::array::SetAssociative) array whose slot layout is
//! `set * ways + way`.

use cachesim::{
    Candidate, PartitionId, PartitionScheme, PartitionState, SnapshotError, SnapshotReader,
    SnapshotWriter, VictimDecision,
};

/// Way-partitioned placement scheme for a W-way set-associative cache.
#[derive(Clone, Debug)]
pub struct WayPartitioned {
    ways: usize,
    /// `owner[w]` = partition owning way `w`.
    owner: Vec<u16>,
    /// Number of way reassignments performed across reconfigurations.
    reassignments: u64,
}

impl WayPartitioned {
    /// Create a scheme for a cache with `ways` ways. Way ownership is
    /// derived from the targets at [`configure`](PartitionScheme::configure)
    /// time by largest remainder, at least one way per partition.
    ///
    /// # Panics
    /// Panics if `ways == 0`.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0);
        WayPartitioned {
            ways,
            owner: vec![0; ways],
            reassignments: 0,
        }
    }

    /// Current way ownership (`owner[way] = partition index`).
    pub fn owners(&self) -> &[u16] {
        &self.owner
    }

    /// Ways owned by a partition.
    pub fn ways_of(&self, part: PartitionId) -> usize {
        self.owner.iter().filter(|&&o| o == part.0).count()
    }

    /// Total way reassignments over the scheme's lifetime (each one
    /// strands a column of lines — the resizing penalty).
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    fn assign(&mut self, state: &PartitionState) {
        let parts = state.targets.len();
        let total: usize = state.targets.iter().sum();
        let mut shares: Vec<(usize, f64)> = (0..parts)
            .map(|i| {
                let exact = if total == 0 {
                    self.ways as f64 / parts as f64
                } else {
                    state.targets[i] as f64 / total as f64 * self.ways as f64
                };
                (i, exact)
            })
            .collect();
        let mut ways_of = vec![0usize; parts];
        let mut assigned = 0usize;
        for (i, exact) in &shares {
            // Guarantee one way each, floor the rest.
            ways_of[*i] = (exact.floor() as usize).max(1);
            assigned += ways_of[*i];
        }
        // Largest remainder for the leftovers (or steal from the
        // biggest holders when the minimum-1 rule oversubscribed).
        shares.sort_by(|a, b| {
            (b.1 - b.1.floor())
                .partial_cmp(&(a.1 - a.1.floor()))
                .expect("finite")
        });
        let mut k = 0;
        while assigned < self.ways {
            ways_of[shares[k % shares.len()].0] += 1;
            assigned += 1;
            k += 1;
        }
        while assigned > self.ways {
            let (imax, _) = ways_of
                .iter()
                .enumerate()
                .max_by_key(|(_, &w)| w)
                .expect("non-empty");
            ways_of[imax] -= 1;
            assigned -= 1;
        }
        let mut new_owner = Vec::with_capacity(self.ways);
        for (i, &w) in ways_of.iter().enumerate() {
            new_owner.extend(std::iter::repeat_n(i as u16, w));
        }
        debug_assert_eq!(new_owner.len(), self.ways);
        self.reassignments += self
            .owner
            .iter()
            .zip(&new_owner)
            .filter(|(a, b)| a != b)
            .count() as u64;
        self.owner = new_owner;
    }

    #[inline]
    fn way_of_slot(&self, slot: u32) -> usize {
        slot as usize % self.ways
    }
}

impl PartitionScheme for WayPartitioned {
    fn name(&self) -> &'static str {
        "way-partition"
    }

    fn configure(&mut self, state: &PartitionState) {
        self.assign(state);
    }

    fn victim(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        _state: &PartitionState,
    ) -> VictimDecision {
        // Victims come only from the inserting partition's own ways.
        let mut best = None;
        let mut best_fut = f64::NEG_INFINITY;
        for (i, c) in cands.iter().enumerate() {
            if self.owner[self.way_of_slot(c.slot)] == incoming.0 && c.futility > best_fut {
                best_fut = c.futility;
                best = Some(i);
            }
        }
        // A partition always owns at least one way of every set.
        VictimDecision::evict(best.expect("own way present in every set"))
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("way-partition");
        w.usize(self.ways);
        for &o in &self.owner {
            w.u16(o);
        }
        w.u64(self.reassignments);
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("way-partition")?;
        let ways = r.usize()?;
        if ways != self.ways {
            return Err(SnapshotError::mismatch(format!(
                "snapshot partitions {ways} ways, engine has {}",
                self.ways
            )));
        }
        for o in &mut self.owner {
            *o = r.u16()?;
        }
        self.reassignments = r.u64()?;
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn state(targets: Vec<usize>) -> PartitionState {
        let total = targets.iter().sum();
        let mut s = PartitionState::new(targets.len(), total);
        s.targets = targets;
        s
    }

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64,
            part: PartitionId(part),
            futility: fut,
        }
    }

    #[test]
    fn ways_split_proportionally_to_targets() {
        let mut wp = WayPartitioned::new(16);
        wp.configure(&state(vec![3_072, 1_024])); // 3:1
        assert_eq!(wp.ways_of(PartitionId(0)), 12);
        assert_eq!(wp.ways_of(PartitionId(1)), 4);
    }

    #[test]
    fn every_partition_gets_at_least_one_way() {
        let mut wp = WayPartitioned::new(8);
        wp.configure(&state(vec![10_000, 1, 1, 1]));
        for p in 0..4 {
            assert!(wp.ways_of(PartitionId(p)) >= 1, "partition {p} starved");
        }
        assert_eq!(wp.owners().len(), 8);
    }

    #[test]
    fn victims_come_from_own_ways_only() {
        let mut wp = WayPartitioned::new(4);
        wp.configure(&state(vec![100, 100])); // 2 ways each: owner [0,0,1,1]
                                              // Slots: way = slot % 4. Candidate slots 0..4 of one set.
        let cands = [
            cand(0, 0, 0.1),
            cand(1, 0, 0.9),
            cand(2, 1, 0.95),
            cand(3, 1, 0.2),
        ];
        let st = state(vec![100, 100]);
        // Partition 0 must ignore the higher-futility line in way 2.
        assert_eq!(wp.victim(PartitionId(0), &cands, &st).victim, 1);
        assert_eq!(wp.victim(PartitionId(1), &cands, &st).victim, 2);
    }

    #[test]
    fn resizing_counts_reassigned_ways() {
        let mut wp = WayPartitioned::new(16);
        wp.configure(&state(vec![1_000, 1_000]));
        assert_eq!(wp.reassignments(), 8, "initial assignment from all-0");
        wp.configure(&state(vec![3_000, 1_000]));
        assert!(wp.reassignments() > 8, "shrinking P1 reassigns ways");
        assert_eq!(wp.ways_of(PartitionId(0)), 12);
    }
}
