#![warn(missing_docs)]

//! Baseline cache-partitioning enforcement schemes the paper compares
//! Futility Scaling against (Sections III-C and VII-B):
//!
//! * [`Pf`] — **Partitioning-First** (Algorithm 1): first select the
//!   most oversized partition among the candidates' partitions, then
//!   evict its most futile candidate. Near-ideal sizing, but its
//!   associativity collapses toward the random floor as the number of
//!   partitions approaches R (Section III-C).
//! * [`Cqvp`] — **Cache Quota Violation Prohibition**: only partitions
//!   exceeding their quota may lose lines.
//! * [`Prism`] — **Probabilistic Shared-cache Management**: picks the
//!   evicting partition by sampling a per-window eviction-probability
//!   distribution built from insertion rates and size errors; suffers
//!   the "abnormality" failure mode when the sampled partition has no
//!   line among the R candidates.
//! * [`Vantage`] — managed/unmanaged regions, per-partition apertures,
//!   demotion instead of eviction; strong isolation only while forced
//!   evictions from the managed region are rare.
//! * [`FullAssocIdeal`] — the PF policy on a fully-associative cache:
//!   exact sizing *and* full associativity. The upper bound every
//!   realizable scheme is measured against.
//!
//! All schemes implement [`cachesim::PartitionScheme`] and plug into
//! [`cachesim::PartitionedCache`].

mod cqvp;
mod full_assoc;
mod pf;
mod prism;
mod vantage;
mod way_partition;

pub use cqvp::Cqvp;
pub use full_assoc::FullAssocIdeal;
pub use pf::Pf;
pub use prism::Prism;
pub use vantage::{Vantage, VantageConfig};
pub use way_partition::WayPartitioned;

use cachesim::PartitionScheme;

/// Names of all baseline schemes constructible via [`by_name`].
pub const ALL_BASELINES: [&str; 6] = [
    "pf",
    "cqvp",
    "prism",
    "vantage",
    "full-assoc",
    "unpartitioned",
];

/// Construct a baseline scheme by name with default parameters.
/// Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<Box<dyn PartitionScheme>> {
    match name {
        "pf" => Some(Box::new(Pf)),
        "cqvp" => Some(Box::new(Cqvp)),
        "prism" => Some(Box::new(Prism::default_config())),
        "vantage" => Some(Box::new(Vantage::default_config())),
        "full-assoc" => Some(Box::new(FullAssocIdeal)),
        "unpartitioned" => Some(cachesim::evict_max_futility()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_all_baselines() {
        for name in ALL_BASELINES {
            let s = by_name(name).unwrap_or_else(|| panic!("missing scheme {name}"));
            assert_eq!(s.name(), name);
        }
        assert!(by_name("no-such-scheme").is_none());
    }
}
