//! PriSM — Probabilistic Shared-cache Management (Manikantan et al.,
//! ISCA 2012), as characterized in Sections II-B and VIII of the FS
//! paper: "first selects a partition in accordance to the pre-computed
//! eviction probability distribution and then evicts the least useful
//! replacement candidate belonging to the selected partition."
//!
//! Every window of `W` misses the controller recomputes the eviction
//! probabilities `E_i = I_i + (N^A_i − N^T_i) / W` (insertion fraction
//! measured over the previous window plus the size error amortized over
//! the window), clamped to `[0, 1]` and normalized. When the sampled
//! partition has no line among the R candidates (the *abnormality*), the
//! scheme falls back to the globally most futile candidate — with N = 32
//! partitions and R = 16 candidates this happens on most evictions and
//! PriSM loses sizing control, which is exactly the failure mode the FS
//! paper measures (>70% abnormality, 10–21% under target).

use cachesim::prng::Prng;
use cachesim::{
    Candidate, PartitionId, PartitionScheme, PartitionState, Probe, SnapshotError, SnapshotReader,
    SnapshotWriter, VictimDecision,
};

/// PriSM controller.
#[derive(Clone, Debug)]
pub struct Prism {
    /// Window length in misses.
    window: u64,
    /// Eviction probability distribution (recomputed per window).
    evict_prob: Vec<f64>,
    /// Insertions per partition within the current window.
    window_insertions: Vec<u64>,
    /// Misses elapsed in the current window.
    window_misses: u64,
    /// Abnormality counter: sampled partition absent from candidates.
    abnormalities: u64,
    /// Total victim selections.
    selections: u64,
    rng: Prng,
}

impl Prism {
    /// Create a PriSM controller with the given window length (misses)
    /// and sampling seed.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: u64, seed: u64) -> Self {
        assert!(window > 0);
        Prism {
            window,
            evict_prob: Vec::new(),
            window_insertions: Vec::new(),
            window_misses: 0,
            abnormalities: 0,
            selections: 0,
            rng: Prng::seed_from_u64(seed),
        }
    }

    /// Default configuration: 4096-miss windows, fixed seed.
    pub fn default_config() -> Self {
        Prism::new(4096, 0x9215)
    }

    /// Fraction of victim selections that hit the abnormality (sampled
    /// partition absent from the candidate list).
    pub fn abnormality_rate(&self) -> f64 {
        if self.selections == 0 {
            0.0
        } else {
            self.abnormalities as f64 / self.selections as f64
        }
    }

    /// The current eviction-probability distribution.
    pub fn eviction_probabilities(&self) -> &[f64] {
        &self.evict_prob
    }

    fn recompute(&mut self, state: &PartitionState) {
        let n = state.targets.len();
        let total_ins: u64 = self.window_insertions.iter().sum();
        // In place: recompute runs every window, so it must not allocate.
        self.evict_prob.resize(n, 0.0);
        for i in 0..n {
            let ins_frac = if total_ins == 0 {
                1.0 / n as f64
            } else {
                self.window_insertions[i] as f64 / total_ins as f64
            };
            let size_err = state.oversize(i) as f64 / self.window as f64;
            self.evict_prob[i] = (ins_frac + size_err).max(0.0);
        }
        let sum: f64 = self.evict_prob.iter().sum();
        if sum <= 0.0 {
            self.evict_prob.fill(1.0 / n as f64);
        } else {
            for p in &mut self.evict_prob {
                *p /= sum;
            }
        }
        self.window_insertions.fill(0);
        self.window_misses = 0;
    }

    fn sample_partition(&mut self) -> usize {
        let x = self.rng.next_f64();
        let mut acc = 0.0;
        for (i, &p) in self.evict_prob.iter().enumerate() {
            acc += p;
            if x < acc {
                return i;
            }
        }
        self.evict_prob.len().saturating_sub(1)
    }
}

impl PartitionScheme for Prism {
    fn name(&self) -> &'static str {
        "prism"
    }

    fn configure(&mut self, state: &PartitionState) {
        let n = state.pools();
        if self.window_insertions.len() != n {
            self.window_insertions = vec![0; n];
            self.evict_prob = vec![1.0 / n.max(1) as f64; n];
        }
    }

    fn victim(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        _state: &PartitionState,
    ) -> VictimDecision {
        self.selections += 1;
        let chosen = self.sample_partition();
        let mut best = None;
        let mut best_fut = f64::NEG_INFINITY;
        for (i, c) in cands.iter().enumerate() {
            if c.part.index() == chosen && c.futility > best_fut {
                best_fut = c.futility;
                best = Some(i);
            }
        }
        let victim = match best {
            Some(i) => i,
            None => {
                // Abnormality: no candidate from the selected partition.
                // PriSM falls back to the least useful candidate overall
                // (partition-blind). This is the documented failure mode
                // the FS paper measures: with N = 32 and R = 16 the
                // abnormality dominates, quiet partitions leak lines
                // through the fallback, and subject occupancy lands
                // 10-20% below target (Figure 7a). An E-weighted
                // fallback would fix the sizing — and no longer
                // reproduce published PriSM.
                self.abnormalities += 1;
                cachesim::scheme_api::argmax_futility(cands)
            }
        };
        VictimDecision::evict(victim)
    }

    fn notify_insert(&mut self, part: PartitionId, state: &PartitionState) {
        if self.window_insertions.len() != state.pools() {
            self.configure(state);
        }
        self.window_insertions[part.index()] += 1;
        self.window_misses += 1;
        if self.window_misses >= self.window {
            self.recompute(state);
        }
    }

    fn telemetry(&self, _state: &PartitionState, out: &mut Vec<Probe>) {
        for (i, &p) in self.evict_prob.iter().enumerate() {
            out.push(Probe::per_part("evict_prob", PartitionId(i as u16), p));
        }
        out.push(Probe::global("abnormality_rate", self.abnormality_rate()));
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("prism");
        w.u64(self.window);
        w.usize(self.evict_prob.len());
        for &p in &self.evict_prob {
            w.f64(p);
        }
        w.usize(self.window_insertions.len());
        for &i in &self.window_insertions {
            w.u64(i);
        }
        w.u64(self.window_misses);
        w.u64(self.abnormalities);
        w.u64(self.selections);
        for s in self.rng.state() {
            w.u64(s);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("prism")?;
        let window = r.u64()?;
        if window != self.window {
            return Err(SnapshotError::mismatch(format!(
                "snapshot PriSM window is {window}, engine uses {}",
                self.window
            )));
        }
        let n = r.seq_len(8)?;
        if n != self.evict_prob.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot tracks {n} pools, engine has {}",
                self.evict_prob.len()
            )));
        }
        for p in &mut self.evict_prob {
            *p = r.f64()?;
        }
        let n = r.seq_len(8)?;
        if n != self.window_insertions.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot tracks {n} pools, engine has {}",
                self.window_insertions.len()
            )));
        }
        for i in &mut self.window_insertions {
            *i = r.u64()?;
        }
        self.window_misses = r.u64()?;
        if self.window_misses >= self.window {
            return Err(SnapshotError::corrupt(
                "window miss counter at or beyond the window length",
            ));
        }
        self.abnormalities = r.u64()?;
        self.selections = r.u64()?;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = r.u64()?;
        }
        self.rng = Prng::from_state(rng_state);
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64,
            part: PartitionId(part),
            futility: fut,
        }
    }

    fn state(actual: Vec<usize>, targets: Vec<usize>) -> PartitionState {
        let mut s = PartitionState::new(actual.len(), actual.iter().sum());
        s.actual = actual;
        s.targets = targets;
        s
    }

    #[test]
    fn probabilities_reflect_insertions_and_size_error() {
        let mut p = Prism::new(100, 1);
        let st = state(vec![80, 20], vec![50, 50]);
        p.configure(&st);
        // 90% of insertions from partition 0, which is also oversized.
        for _ in 0..90 {
            p.notify_insert(PartitionId(0), &st);
        }
        for _ in 0..10 {
            p.notify_insert(PartitionId(1), &st);
        }
        let probs = p.eviction_probabilities();
        assert!(probs[0] > 0.9, "p0 = {}", probs[0]);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn abnormality_counted_and_falls_back() {
        let mut p = Prism::new(8, 2);
        let st = state(vec![10, 10, 10], vec![10, 10, 10]);
        p.configure(&st);
        // Force the distribution toward partition 2 ...
        for _ in 0..8 {
            p.notify_insert(PartitionId(2), &st);
        }
        // ... then offer candidates only from partitions 0 and 1.
        let cands = [cand(0, 0, 0.4), cand(1, 1, 0.9)];
        let mut fallback_victims = 0;
        for _ in 0..50 {
            let v = p.victim(PartitionId(2), &cands, &st);
            if v.victim == 1 {
                fallback_victims += 1;
            }
        }
        assert!(p.abnormality_rate() > 0.9);
        assert_eq!(fallback_victims, 50, "fallback is global max futility");
    }

    #[test]
    fn negative_probabilities_are_clamped() {
        let mut p = Prism::new(10, 3);
        // Partition 0 severely undersized: raw E_0 would be negative.
        let st = state(vec![0, 40], vec![20, 20]);
        p.configure(&st);
        for _ in 0..10 {
            p.notify_insert(PartitionId(0), &st);
        }
        let probs = p.eviction_probabilities();
        assert!(probs[0] >= 0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut p = Prism::new(10, 4);
        let st = state(vec![10, 10], vec![10, 10]);
        p.configure(&st);
        for _ in 0..9 {
            p.notify_insert(PartitionId(0), &st);
        }
        p.notify_insert(PartitionId(1), &st);
        // E ≈ (0.9, 0.1): over many draws partition 0 dominates.
        let mut zero = 0;
        for _ in 0..1000 {
            if p.sample_partition() == 0 {
                zero += 1;
            }
        }
        assert!(zero > 800, "{zero}");
    }
}
