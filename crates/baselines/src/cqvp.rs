//! Cache Quota Violation Prohibition (CQVP): partitions have quotas, and
//! victims always come from a partition that exceeds its quota ("always
//! chooses the cache lines from the partition that exceeds its quota to
//! evict", Section II-B).

use cachesim::{Candidate, PartitionId, PartitionScheme, PartitionState, VictimDecision};

/// CQVP scheme. Victim preference order:
/// 1. the most futile candidate among partitions *over* their quota;
/// 2. failing that, the most futile candidate of the inserting partition
///    (its size stays constant: one of its own lines is replaced);
/// 3. failing that, the most futile candidate overall.
#[derive(Copy, Clone, Debug, Default)]
pub struct Cqvp;

fn argmax_where<F: Fn(&Candidate) -> bool>(cands: &[Candidate], pred: F) -> Option<usize> {
    let mut best = None;
    let mut best_fut = f64::NEG_INFINITY;
    for (i, c) in cands.iter().enumerate() {
        if pred(c) && c.futility > best_fut {
            best_fut = c.futility;
            best = Some(i);
        }
    }
    best
}

impl PartitionScheme for Cqvp {
    fn name(&self) -> &'static str {
        "cqvp"
    }

    fn victim(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision {
        let over_quota = argmax_where(cands, |c| state.oversize(c.part.index()) > 0);
        let own = || argmax_where(cands, |c| c.part == incoming);
        let any = || argmax_where(cands, |_| true).expect("non-empty candidates");
        VictimDecision::evict(over_quota.or_else(own).unwrap_or_else(any))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64,
            part: PartitionId(part),
            futility: fut,
        }
    }

    fn state(actual: Vec<usize>, targets: Vec<usize>) -> PartitionState {
        let mut s = PartitionState::new(actual.len(), actual.iter().sum());
        s.actual = actual;
        s.targets = targets;
        s
    }

    #[test]
    fn evicts_from_quota_violator() {
        let mut s = Cqvp;
        let st = state(vec![60, 40], vec![50, 50]);
        let cands = [cand(0, 1, 0.9), cand(1, 0, 0.2), cand(2, 0, 0.6)];
        // P0 violates its quota; its best candidate is index 2.
        assert_eq!(s.victim(PartitionId(1), &cands, &st).victim, 2);
    }

    #[test]
    fn falls_back_to_own_partition() {
        let mut s = Cqvp;
        let st = state(vec![40, 40], vec![50, 50]);
        let cands = [cand(0, 1, 0.9), cand(1, 0, 0.2)];
        // No violators; inserting partition 0 replaces its own line.
        assert_eq!(s.victim(PartitionId(0), &cands, &st).victim, 1);
    }

    #[test]
    fn falls_back_to_global_max_when_absent() {
        let mut s = Cqvp;
        let st = state(vec![40, 40, 40], vec![50, 50, 50]);
        let cands = [cand(0, 1, 0.3), cand(1, 1, 0.8)];
        // No violators and no candidate of partition 2.
        assert_eq!(s.victim(PartitionId(2), &cands, &st).victim, 1);
    }
}
