//! Vantage (Sanchez & Kozyrakis, ISCA 2011), re-implemented from the
//! published mechanism at the fidelity the FS paper's comparison needs
//! (Section VIII-A):
//!
//! * The cache is split into a **managed region** (fraction `1 − u`) and
//!   an **unmanaged region** (fraction `u`, default 10%), realized here
//!   as one extra pool.
//! * Each partition has an **aperture** `A_i ∈ [0, Amax]`: on a
//!   replacement, managed candidates whose futility falls within the
//!   aperture (`f ≥ 1 − A_i`) are **demoted** to the unmanaged region
//!   instead of being evicted outright.
//! * The actual victim is the most futile candidate in the unmanaged
//!   region (demoted lines included). When *no* candidate is unmanaged —
//!   probability `(1 − u)^R ≈ 18.5%` at `u = 0.1, R = 16` — a **forced
//!   eviction** takes the most futile candidate overall, which is why
//!   Vantage on a 16-way cache cannot strictly hold sizes (the ≤3%
//!   under-target occupancy in Figure 7a).
//! * Apertures follow a linear feedback on the size error with slack
//!   `slack` (default 0.1) and cap `Amax` (default 0.5), the
//!   configuration the FS paper evaluates.
//! * A hit on an unmanaged line promotes it back to the accessor's
//!   partition.

use cachesim::{
    Candidate, PartitionId, PartitionScheme, PartitionState, Probe, SnapshotError, SnapshotReader,
    SnapshotWriter, VictimDecision,
};

/// Vantage tuning parameters (defaults are the FS paper's: `u = 10%`,
/// `Amax = 0.5`, `slack = 0.1`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VantageConfig {
    /// Unmanaged-region fraction `u`.
    pub unmanaged_fraction: f64,
    /// Maximum aperture `Amax`.
    pub max_aperture: f64,
    /// Sizing slack: the aperture reaches `Amax` when a partition
    /// exceeds its target by `slack × target` lines.
    pub slack: f64,
}

impl Default for VantageConfig {
    fn default() -> Self {
        VantageConfig {
            unmanaged_fraction: 0.10,
            max_aperture: 0.5,
            slack: 0.1,
        }
    }
}

/// The Vantage enforcement scheme.
#[derive(Clone, Debug)]
pub struct Vantage {
    config: VantageConfig,
    unmanaged_pool: PartitionId,
    /// Forced managed-region evictions (isolation failures).
    forced_evictions: u64,
    /// Total victim selections.
    selections: u64,
    /// Total demotions performed.
    demotions: u64,
    /// Decayed per-pool maximum candidate futility. Real Vantage
    /// calibrates aperture thresholds against the observed timestamp
    /// distribution; this adapts the `f ≥ (1−A)` cut to rankings (like
    /// coarse timestamps) whose futility does not span the full [0,1].
    fmax: Vec<f64>,
    /// Reused per-selection scratch: candidate indices currently in (or
    /// just demoted to) the unmanaged region. Keeps `victim_into`
    /// allocation-free.
    in_unmanaged: Vec<usize>,
}

impl Vantage {
    /// Create a Vantage scheme with the given parameters.
    ///
    /// # Panics
    /// Panics if fractions are outside `(0, 1)`.
    pub fn new(config: VantageConfig) -> Self {
        assert!(
            config.unmanaged_fraction > 0.0 && config.unmanaged_fraction < 1.0,
            "unmanaged fraction must be in (0,1)"
        );
        assert!(
            config.max_aperture > 0.0 && config.max_aperture <= 1.0,
            "max aperture must be in (0,1]"
        );
        assert!(config.slack > 0.0, "slack must be positive");
        Vantage {
            config,
            unmanaged_pool: PartitionId(0),
            forced_evictions: 0,
            selections: 0,
            demotions: 0,
            fmax: Vec::new(),
            in_unmanaged: Vec::new(),
        }
    }

    /// The FS paper's configuration.
    pub fn default_config() -> Self {
        Vantage::new(VantageConfig::default())
    }

    /// The tuning parameters.
    pub fn config(&self) -> &VantageConfig {
        &self.config
    }

    /// Fraction of evictions that were forced out of the managed region
    /// (the `(1−u)^R` isolation failures).
    pub fn forced_eviction_rate(&self) -> f64 {
        if self.selections == 0 {
            0.0
        } else {
            self.forced_evictions as f64 / self.selections as f64
        }
    }

    /// Total demotions into the unmanaged region.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Current aperture of a partition: 0 when at/below target, growing
    /// linearly to `Amax` at `slack × target` lines of excess.
    pub fn aperture(&self, part: PartitionId, state: &PartitionState) -> f64 {
        let idx = part.index();
        let target = state.targets[idx];
        if target == 0 {
            return self.config.max_aperture;
        }
        let over = state.oversize(idx);
        if over <= 0 {
            return 0.0;
        }
        let frac = over as f64 / (self.config.slack * target as f64);
        (frac * self.config.max_aperture).min(self.config.max_aperture)
    }
}

impl PartitionScheme for Vantage {
    fn name(&self) -> &'static str {
        "vantage"
    }

    fn extra_pools(&self) -> usize {
        1
    }

    fn configure(&mut self, state: &PartitionState) {
        self.unmanaged_pool = PartitionId((state.pools() - 1) as u16);
        if self.fmax.len() != state.pools() {
            self.fmax = vec![1e-6; state.pools()];
        }
    }

    fn victim(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision {
        let mut out = VictimDecision::default();
        self.victim_into(incoming, cands, state, &mut out);
        out
    }

    fn victim_into(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
        out: &mut VictimDecision,
    ) {
        self.selections += 1;
        let unmanaged = self.unmanaged_pool;

        // Calibration decay: every pool's observed futility maximum
        // decays once per victim *selection*. Decaying per candidate
        // examined would tie the calibration half-life to R and to how
        // many candidates happen to belong to the pool, making the
        // aperture cut drift with the candidate mix rather than with
        // time.
        for f in &mut self.fmax {
            *f = (*f * 0.9995).max(1e-6);
        }

        // Demote managed candidates within their partition's aperture.
        // The aperture cut is taken against the pool's observed futility
        // range (the decaying max above), so it works for both exact
        // ranks (range [0,1]) and coarse timestamp distances.
        out.retags.clear();
        let mut in_unmanaged = std::mem::take(&mut self.in_unmanaged);
        in_unmanaged.clear();
        for (i, c) in cands.iter().enumerate() {
            if c.part == unmanaged {
                in_unmanaged.push(i);
                continue;
            }
            let idx = c.part.index();
            if idx >= self.fmax.len() {
                self.fmax.resize(state.pools().max(idx + 1), 1e-6);
            }
            self.fmax[idx] = self.fmax[idx].max(c.futility);
            let aperture = self.aperture(c.part, state);
            if aperture > 0.0 && c.futility >= (1.0 - aperture) * self.fmax[idx] {
                out.retags.push((i, unmanaged));
                in_unmanaged.push(i);
                self.demotions += 1;
            }
        }

        // Victim: most futile line in (or just demoted to) the
        // unmanaged region; forced eviction otherwise. Forced evictions
        // pick the candidate *closest to its own demotion threshold*
        // (Vantage evicts what it would have demoted next), which keeps
        // at-target partitions protected even on a forced eviction —
        // this is what bounds Vantage's under-target occupancy at a few
        // percent instead of letting quiet partitions bleed.
        let victim = in_unmanaged
            .iter()
            .copied()
            .max_by(|&a, &b| {
                cands[a]
                    .futility
                    .partial_cmp(&cands[b].futility)
                    .expect("futility is never NaN")
            })
            .unwrap_or_else(|| {
                self.forced_evictions += 1;
                let score = |c: &Candidate| {
                    let idx = c.part.index();
                    let fmax = self.fmax.get(idx).copied().unwrap_or(1.0).max(1e-6);
                    let aperture = self.aperture(c.part, state);
                    c.futility / fmax - (1.0 - aperture)
                };
                cands
                    .iter()
                    .enumerate()
                    .max_by(|a, b| score(a.1).partial_cmp(&score(b.1)).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty candidates")
            });
        self.in_unmanaged = in_unmanaged;
        out.victim = victim;
    }

    fn on_foreign_hit(
        &mut self,
        line_pool: PartitionId,
        accessor: PartitionId,
    ) -> Option<PartitionId> {
        (line_pool == self.unmanaged_pool).then_some(accessor)
    }

    fn telemetry(&self, state: &PartitionState, out: &mut Vec<Probe>) {
        // Application partitions: all pools but the trailing unmanaged
        // region.
        for i in 0..state.pools().saturating_sub(1) {
            let part = PartitionId(i as u16);
            out.push(Probe::per_part(
                "aperture",
                part,
                self.aperture(part, state),
            ));
            if let Some(&f) = self.fmax.get(i) {
                out.push(Probe::per_part("fmax", part, f));
            }
        }
        out.push(Probe::global(
            "forced_eviction_rate",
            self.forced_eviction_rate(),
        ));
        out.push(Probe::global("demotions", self.demotions as f64));
        out.push(Probe::global(
            "unmanaged_occupancy",
            state.actual[self.unmanaged_pool.index()] as f64,
        ));
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("vantage");
        w.f64(self.config.unmanaged_fraction);
        w.f64(self.config.max_aperture);
        w.f64(self.config.slack);
        w.u16(self.unmanaged_pool.0);
        w.u64(self.forced_evictions);
        w.u64(self.selections);
        w.u64(self.demotions);
        w.usize(self.fmax.len());
        for &f in &self.fmax {
            w.f64(f);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("vantage")?;
        let u = r.f64()?;
        let amax = r.f64()?;
        let slack = r.f64()?;
        if u.to_bits() != self.config.unmanaged_fraction.to_bits()
            || amax.to_bits() != self.config.max_aperture.to_bits()
            || slack.to_bits() != self.config.slack.to_bits()
        {
            return Err(SnapshotError::mismatch(
                "snapshot Vantage config differs from the engine's",
            ));
        }
        let pool = r.u16()?;
        if pool != self.unmanaged_pool.0 {
            return Err(SnapshotError::mismatch(format!(
                "snapshot unmanaged pool is {pool}, engine uses {}",
                self.unmanaged_pool.0
            )));
        }
        self.forced_evictions = r.u64()?;
        self.selections = r.u64()?;
        self.demotions = r.u64()?;
        let n = r.seq_len(8)?;
        if n != self.fmax.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot calibrates {n} pools, engine has {}",
                self.fmax.len()
            )));
        }
        for f in &mut self.fmax {
            *f = r.f64()?;
        }
        // Per-selection scratch, never live between accesses.
        self.in_unmanaged.clear();
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64 + 1000,
            part: PartitionId(part),
            futility: fut,
        }
    }

    /// State with 2 partitions + the unmanaged pool (index 2).
    fn state(actual: Vec<usize>, targets: Vec<usize>) -> PartitionState {
        let mut s = PartitionState::new(actual.len(), actual.iter().sum());
        s.actual = actual;
        s.targets = targets;
        s
    }

    fn configured(st: &PartitionState) -> Vantage {
        let mut v = Vantage::default_config();
        v.configure(st);
        v
    }

    #[test]
    fn aperture_grows_with_oversize() {
        let st = state(vec![100, 100, 20], vec![100, 100, 0]);
        let v = configured(&st);
        assert_eq!(v.aperture(PartitionId(0), &st), 0.0);
        let st2 = state(vec![105, 95, 20], vec![100, 100, 0]);
        let a = v.aperture(PartitionId(0), &st2);
        assert!((a - 0.25).abs() < 1e-9, "half of slack → Amax/2, got {a}");
        let st3 = state(vec![120, 80, 20], vec![100, 100, 0]);
        assert_eq!(v.aperture(PartitionId(0), &st3), 0.5, "capped at Amax");
    }

    #[test]
    fn demotes_oversized_partitions_high_futility_lines() {
        let st = state(vec![120, 80, 0], vec![100, 100, 0]);
        let mut v = configured(&st);
        // P0 aperture is Amax = 0.5: futility ≥ 0.5 demotes.
        let cands = [cand(0, 0, 0.9), cand(1, 0, 0.3), cand(2, 1, 0.4)];
        let d = v.victim(PartitionId(1), &cands, &st);
        assert_eq!(d.retags, vec![(0, PartitionId(2))]);
        assert_eq!(d.victim, 0, "the demoted line is also the victim here");
        assert_eq!(v.demotions(), 1);
    }

    #[test]
    fn prefers_unmanaged_victims() {
        let st = state(vec![100, 100, 20], vec![100, 100, 0]);
        let mut v = configured(&st);
        // Nothing oversized → no demotions; candidate 1 is unmanaged.
        let cands = [cand(0, 0, 0.99), cand(1, 2, 0.2)];
        let d = v.victim(PartitionId(0), &cands, &st);
        assert!(d.retags.is_empty());
        assert_eq!(d.victim, 1, "evict from unmanaged despite low futility");
        assert_eq!(v.forced_eviction_rate(), 0.0);
    }

    #[test]
    fn forced_eviction_when_no_unmanaged_candidate() {
        // Everyone at target (apertures 0): every eviction is forced.
        let st = state(vec![100, 100, 20], vec![100, 100, 0]);
        let mut v = configured(&st);
        // Prime the per-pool futility calibration with one eviction.
        let _ = v.victim(PartitionId(0), &[cand(0, 0, 0.9), cand(1, 1, 0.9)], &st);
        // Forced eviction is threshold-relative: P0's 0.7 is closer to
        // its (calibrated) demotion point than P1's 0.4.
        let d = v.victim(PartitionId(0), &[cand(0, 0, 0.7), cand(1, 1, 0.4)], &st);
        assert_eq!(d.victim, 0, "threshold-relative forced eviction");
        assert!(v.forced_eviction_rate() > 0.99);
    }

    #[test]
    fn fmax_decay_is_per_selection_not_per_candidate() {
        // k selections must decay a pool's calibrated fmax by exactly
        // 0.9995^k regardless of how many candidates are examined or
        // how many of them belong to the pool. Zero-futility candidates
        // make the max-update a no-op, isolating the decay.
        let st = state(vec![100, 100, 20], vec![100, 100, 0]);
        let mut narrow = configured(&st);
        let mut wide = configured(&st);
        let prime = [cand(0, 0, 0.8), cand(1, 2, 0.1)];
        let _ = narrow.victim(PartitionId(0), &prime, &st);
        let _ = wide.victim(PartitionId(0), &prime, &st);
        assert_eq!(narrow.fmax[0], 0.8);

        let k = 10;
        let wide_cands: Vec<Candidate> = (0..16u32)
            .map(|i| cand(i, if i < 8 { 0 } else { 2 }, 0.0))
            .collect();
        for _ in 0..k {
            // R = 2, one P0 candidate...
            let _ = narrow.victim(PartitionId(0), &[cand(0, 0, 0.0), cand(1, 2, 0.0)], &st);
            // ...vs R = 16 with eight P0 candidates.
            let _ = wide.victim(PartitionId(0), &wide_cands, &st);
        }
        assert_eq!(
            narrow.fmax[0].to_bits(),
            wide.fmax[0].to_bits(),
            "fmax calibration half-life must be independent of R"
        );
        let expected = 0.8 * 0.9995f64.powi(k);
        assert!((narrow.fmax[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn telemetry_reports_apertures_and_global_rates() {
        let st = state(vec![120, 80, 20], vec![100, 100, 0]);
        let mut v = configured(&st);
        let _ = v.victim(PartitionId(0), &[cand(0, 0, 0.9), cand(1, 1, 0.9)], &st);
        let mut probes = Vec::new();
        v.telemetry(&st, &mut probes);
        let get = |name: &str, part: Option<PartitionId>| {
            probes
                .iter()
                .find(|p| p.name == name && p.part == part)
                .map(|p| p.value)
        };
        assert_eq!(get("aperture", Some(PartitionId(0))), Some(0.5));
        assert_eq!(get("aperture", Some(PartitionId(1))), Some(0.0));
        assert!(get("fmax", Some(PartitionId(0))).unwrap() > 0.0);
        assert_eq!(get("unmanaged_occupancy", None), Some(20.0));
        assert!(get("forced_eviction_rate", None).is_some());
        assert!(
            get("aperture", Some(PartitionId(2))).is_none(),
            "no per-part probes for the unmanaged pool"
        );
    }

    #[test]
    fn promotes_unmanaged_lines_on_hit() {
        let st = state(vec![100, 100, 20], vec![100, 100, 0]);
        let mut v = configured(&st);
        assert_eq!(
            v.on_foreign_hit(PartitionId(2), PartitionId(1)),
            Some(PartitionId(1))
        );
        assert_eq!(v.on_foreign_hit(PartitionId(0), PartitionId(1)), None);
    }

    #[test]
    fn demotion_candidates_count_as_unmanaged_victims() {
        // A demoted line with the highest futility becomes the victim
        // even when a real unmanaged candidate exists with lower one.
        let st = state(vec![120, 80, 20], vec![100, 100, 0]);
        let mut v = configured(&st);
        let cands = [cand(0, 0, 0.95), cand(1, 2, 0.5)];
        let d = v.victim(PartitionId(1), &cands, &st);
        assert_eq!(d.retags, vec![(0, PartitionId(2))]);
        assert_eq!(d.victim, 0);
    }
}
