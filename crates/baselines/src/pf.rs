//! Partitioning-First — Algorithm 1 of the paper.

use cachesim::{Candidate, PartitionId, PartitionScheme, PartitionState, VictimDecision};

/// The Partitioning-First (PF) scheme: **Partition Selection** picks the
/// candidate partition whose actual size most exceeds its target;
/// **Victim Identification** evicts that partition's most futile
/// candidate. Sizing is near-ideal (MAD < 1 line), but with N partitions
/// the VI step sees only ~R/N candidates, so associativity degrades to
/// the futility-blind floor as N → R (Figure 2).
#[derive(Copy, Clone, Debug, Default)]
pub struct Pf;

/// Shared PF victim logic (also used by [`FullAssocIdeal`](crate::FullAssocIdeal)).
pub(crate) fn pf_victim(cands: &[Candidate], state: &PartitionState) -> usize {
    // Step 1: Partition Selection — most oversized candidate partition.
    let chosen = state
        .most_oversized_of(cands.iter().map(|c| &c.part))
        .expect("non-empty candidate list");
    // Step 2: Victim Identification — largest futility within it.
    let mut best = usize::MAX;
    let mut best_fut = f64::NEG_INFINITY;
    for (i, c) in cands.iter().enumerate() {
        if c.part == chosen && c.futility > best_fut {
            best_fut = c.futility;
            best = i;
        }
    }
    best
}

impl PartitionScheme for Pf {
    fn name(&self) -> &'static str {
        "pf"
    }

    fn victim(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision {
        VictimDecision::evict(pf_victim(cands, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::SlotId;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64,
            part: PartitionId(part),
            futility: fut,
        }
    }

    fn state(actual: Vec<usize>, targets: Vec<usize>) -> PartitionState {
        let mut s = PartitionState::new(actual.len(), actual.iter().sum());
        s.actual = actual;
        s.targets = targets;
        s
    }

    #[test]
    fn picks_most_oversized_partition_first() {
        let mut pf = Pf;
        let st = state(vec![60, 40], vec![50, 50]);
        // P0 is oversized; its low-futility candidate is chosen over
        // P1's high-futility one — the paper's associativity dilemma.
        let cands = [cand(0, 1, 0.99), cand(1, 0, 0.10)];
        assert_eq!(pf.victim(PartitionId(1), &cands, &st).victim, 1);
    }

    #[test]
    fn picks_max_futility_within_chosen_partition() {
        let mut pf = Pf;
        let st = state(vec![60, 40], vec![50, 50]);
        let cands = [cand(0, 0, 0.3), cand(1, 0, 0.8), cand(2, 1, 0.9)];
        assert_eq!(pf.victim(PartitionId(1), &cands, &st).victim, 1);
    }

    #[test]
    fn single_partition_degenerates_to_max_futility() {
        let mut pf = Pf;
        let st = state(vec![100], vec![100]);
        let cands = [cand(0, 0, 0.2), cand(1, 0, 0.7), cand(2, 0, 0.4)];
        assert_eq!(pf.victim(PartitionId(0), &cands, &st).victim, 1);
    }

    #[test]
    fn undersized_partitions_can_still_be_chosen_when_all_are() {
        // If every candidate partition is undersized, PF picks the least
        // undersized one (max of actual − target).
        let mut pf = Pf;
        let st = state(vec![40, 30], vec![50, 50]);
        let cands = [cand(0, 0, 0.5), cand(1, 1, 0.5)];
        assert_eq!(pf.victim(PartitionId(0), &cands, &st).victim, 0);
    }
}
