//! Criterion micro-benchmarks of the futility rankings: update cost
//! (insert/hit/evict) and rank-query cost at realistic pool sizes.
//! The coarse-grain timestamp LRU is the paper's O(1) hardware design;
//! the exact rankings pay an O(log n) order-statistic query.

use cachesim::{AccessMeta, FutilityRanking, PartitionId};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const POOL: u64 = 16_384;
const P: PartitionId = PartitionId(0);

fn filled(name: &str) -> Box<dyn FutilityRanking> {
    let mut r = fs_bench::futility_ranking(name);
    r.reset(1);
    for i in 0..POOL {
        r.on_insert(P, i, i, AccessMeta::with_next_use(i * 3));
    }
    r
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_hit_update");
    for name in ["coarse-lru", "lru", "lfu", "opt", "random"] {
        group.bench_function(name, |b| {
            let mut r = filled(name);
            let mut rng = SmallRng::seed_from_u64(1);
            let mut t = POOL;
            b.iter(|| {
                t += 1;
                let addr = rng.gen_range(0..POOL);
                r.on_hit(P, addr, t, AccessMeta::with_next_use(t * 3));
            });
        });
    }
    group.finish();
}

fn bench_futility_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking_futility_query");
    for name in ["coarse-lru", "lru", "lfu", "opt", "random"] {
        group.bench_function(name, |b| {
            let r = filled(name);
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| {
                let addr = rng.gen_range(0..POOL);
                black_box(r.futility(P, addr))
            });
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    // Insert+evict pairs: the miss-path bookkeeping.
    let mut group = c.benchmark_group("ranking_insert_evict");
    for name in ["coarse-lru", "lru", "opt"] {
        group.bench_function(name, |b| {
            let mut r = filled(name);
            let mut t = POOL;
            let mut victim = 0u64;
            b.iter(|| {
                t += 1;
                r.on_evict(P, victim);
                r.on_insert(P, POOL + t, t, AccessMeta::with_next_use(t * 3));
                victim += 1;
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_updates, bench_futility_query, bench_churn
}
criterion_main!(benches);
