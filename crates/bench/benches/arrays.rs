//! Criterion micro-benchmarks of candidate generation and the full
//! evict+install cycle per cache-array organization (set-associative,
//! skew-associative, zcache with relocation, random-candidates).

use cachesim::array::{CacheArray, RandomCandidates, SetAssociative, SkewAssociative, ZCache};
use cachesim::hashing::LineHash;
use cachesim::PartitionId;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const LINES: usize = 16_384;

fn fill(array: &mut dyn CacheArray, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..LINES * 8 {
        let addr: u64 = rng.gen_range(0..1 << 24);
        if array.lookup(addr).is_some() {
            continue;
        }
        out.clear();
        array.candidate_slots(addr, &mut out);
        if let Some(&slot) = out.iter().find(|&&s| array.occupant(s).is_none()) {
            array.install(slot, addr, PartitionId(0));
        }
    }
}

fn arrays() -> Vec<(&'static str, Box<dyn CacheArray>)> {
    vec![
        (
            "set_assoc_16w",
            Box::new(SetAssociative::with_lines(LINES, 16, LineHash::new(1))),
        ),
        (
            "skew_assoc_16w",
            Box::new(SkewAssociative::new(LINES / 16, 16, 2)),
        ),
        ("zcache_4w_r16", Box::new(ZCache::new(LINES / 4, 4, 16, 3))),
        ("random_r16", Box::new(RandomCandidates::new(LINES, 16, 4))),
    ]
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_generation");
    for (name, mut array) in arrays() {
        fill(array.as_mut(), 9);
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(5);
            let mut out = Vec::with_capacity(32);
            b.iter(|| {
                let addr: u64 = rng.gen_range(0..1 << 24);
                out.clear();
                array.candidate_slots(addr, &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn bench_replace_cycle(c: &mut Criterion) {
    // Full evict+install cycle, including zcache relocation chains.
    let mut group = c.benchmark_group("evict_install_cycle");
    for (name, mut array) in arrays() {
        fill(array.as_mut(), 11);
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(6);
            let mut out = Vec::with_capacity(32);
            b.iter(|| {
                let addr: u64 = rng.gen_range(0..1 << 24);
                if array.lookup(addr).is_some() {
                    return;
                }
                out.clear();
                array.candidate_slots(addr, &mut out);
                // Evict the deepest candidate to exercise relocation.
                let victim = *out.last().expect("candidates");
                if array.occupant(victim).is_some() {
                    array.evict(victim);
                }
                array.install(victim, addr, PartitionId(0));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_candidates, bench_replace_cycle
}
criterion_main!(benches);
