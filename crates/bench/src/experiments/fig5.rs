//! Figure 5: cumulative distributions of Partition 1's size deviation
//! from its target under FS and PF, for insertion splits I1/I2 = 9/1
//! and 5/5, equal targets (S1/S2 = 1), on the 2MB random-candidates
//! cache with R = 16. Samples are taken at every eviction.
//!
//! Paper anchors: PF is near-ideal (MAD < 1 line). FS deviates
//! temporally but stays statistically on target; the worst case is
//! I1 = 0.5 (maximum random-walk variance I1(1−I1)), with MAD ≈ 67
//! lines ≈ 0.4% of a 16K-line partition. MAD(I1=0.1) < MAD(I1=0.5).

use super::{concat_rows, Experiment, Point};
use crate::checkpoint::Checkpointing;
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::Table;
use cachesim::prng::SplitMix64;
use cachesim::{PartitionId, PartitionedCache};
use futility_core::scaling::alpha_two_partitions;
use futility_core::FsAnalytic;
use std::fmt::Write;
use workloads::{benchmark, RateControlledDriver};

const R: usize = 16;
const CONFIGS: [(&str, f64); 4] = [("fs", 0.1), ("fs", 0.5), ("pf", 0.1), ("pf", 0.5)];

/// Figure 5 experiment definition.
pub static FIG5: Experiment = Experiment {
    name: "fig5",
    csv: "fig5_size_deviation",
    header: &["config", "deviation", "cdf"],
    points,
    finish: concat_rows,
    report,
};

fn points(scale: Scale) -> Vec<Point> {
    let lines = scale.lines(crate::lines_of_kb(2048));
    let insertions = scale.accesses(150_000) as u64;
    // `--horizon N` extends the measured window (the synthetic traces
    // are prefix-stable in their seed, so a checkpoint taken at the
    // default horizon resumes into the longer one); the recorder
    // cadence stays pinned to the scale's default so the images remain
    // compatible.
    let horizon = crate::checkpoint::horizon_override()
        .unwrap_or(insertions)
        .max(insertions);
    CONFIGS
        .iter()
        .map(|&(scheme, i1)| Point {
            label: format!("{scheme}(I1={i1})"),
            run: Box::new(move |seed| run_one(scheme, i1, lines, insertions, horizon, seed)),
        })
        .collect()
}

fn run_one(
    scheme_name: &str,
    i1: f64,
    lines: usize,
    insertions: u64,
    horizon: u64,
    seed: u64,
) -> JobOutput {
    let mut sm = SplitMix64::new(seed);
    let mcf = benchmark("mcf").unwrap();
    let warmup = (lines * 22) as u64;
    let trace_len = ((warmup + horizon) as usize) * 5;
    let traces = vec![
        mcf.generate_with_base(trace_len, sm.next_u64(), 0),
        mcf.generate_with_base(trace_len, sm.next_u64(), 1 << 40),
    ];
    let scheme: Box<dyn cachesim::PartitionScheme> = match scheme_name {
        "fs" => {
            let a2 = alpha_two_partitions(i1, 0.5, R).expect("feasible");
            Box::new(FsAnalytic::with_alphas(vec![1.0, a2]))
        }
        other => crate::scheme(other),
    };
    let mut cache = PartitionedCache::new(
        crate::random_array(lines, R, sm.next_u64()),
        crate::futility_ranking("lru"),
        scheme,
        2,
    );
    cache.set_targets(&[lines / 2, lines / 2]);
    cache.stats_mut().deviation_histogram = true;

    let label = format!("{scheme_name}(I1={i1})");
    let mut driver = RateControlledDriver::new(traces, vec![i1, 1.0 - i1], sm.next_u64());
    let cp = Checkpointing::from_args();
    let done = if cp.resuming() {
        // A checkpoint image includes the measurement recorder, so the
        // resume path attaches one (same cadence/capacity) before
        // restoring; warmup is skipped — the image carries its effects.
        cache.attach_timeseries((insertions / 64).max(1), 1 << 15);
        cp.try_resume("fig5", &label, &mut driver, &mut cache)
    } else {
        driver.run(&mut cache, warmup);
        cache.stats_mut().reset();
        // Record the measurement window: the deviation walk this figure
        // summarizes as a CDF becomes visible in fig5_*_timeseries.csv.
        cache.attach_timeseries((insertions / 64).max(1), 1 << 15);
        0
    };
    cp.run("fig5", &label, &mut driver, &mut cache, done, horizon);

    let stats = cache.stats();
    let p0 = stats.partition(PartitionId(0));
    let cdf = p0.size_deviation_cdf();
    let mean_dev = {
        let total: u64 = p0.size_dev_hist.values().sum();
        let sum: i64 = p0.size_dev_hist.iter().map(|(&d, &n)| d * n as i64).sum();
        if total == 0 {
            f64::NAN
        } else {
            sum as f64 / total as f64
        }
    };
    let rows: Vec<Row> = cdf
        .iter()
        .map(|&(d, p)| vec![label.clone(), d.to_string(), format!("{p:.5}")])
        .collect();
    let timeseries = cache.timeseries().expect("recorder attached").rows();
    JobOutput::rows(rows)
        .with_stat("mad", stats.size_mad(PartitionId(0)))
        .with_stat("mean_dev", mean_dev)
        .with_stat("p_within_64", prob_within(&cdf, 64))
        .with_timeseries(timeseries)
}

fn report(results: &[JobResult], _rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "config".into(),
        "MAD (lines)".into(),
        "mean dev (lines)".into(),
        "P(|dev| <= 64)".into(),
    ])
    .with_title("Figure 5 — Partition 1 size deviation from target (S1/S2 = 1, 32K-line cache)");
    for r in results {
        let stat = |name: &str| {
            r.output
                .stats
                .iter()
                .find(|(n, _)| n == name)
                .map_or(f64::NAN, |(_, v)| *v)
        };
        table.row(vec![
            r.label.clone(),
            format!("{:.1}", stat("mad")),
            format!("{:.1}", stat("mean_dev")),
            format!("{:.3}", stat("p_within_64")),
        ]);
    }
    let mut out = String::new();
    let _ = writeln!(out, "{table}");
    let _ = write!(
        out,
        "Paper anchors: PF MAD < 1 line for both splits. FS mean deviation ~0\n\
         (statistically on target); MAD(I1=0.1) < MAD(I1=0.5) ~ 60-70 lines,\n\
         i.e. < 0.5% of the 16K-line partition even in the worst case."
    );
    out
}

/// P(|dev| <= w) from a deviation CDF.
fn prob_within(cdf: &[(i64, f64)], w: i64) -> f64 {
    let mut below = 0.0; // P(dev < -w)
    let mut upto = 0.0; // P(dev <= w)
    for &(d, p) in cdf {
        if d < -w {
            below = p;
        }
        if d <= w {
            upto = p;
        }
    }
    upto - below
}
