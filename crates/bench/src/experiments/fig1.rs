//! Figure 1: the associativity-and-sizing dilemma of replacement-based
//! partitioning, reconstructed as a runnable demonstration.
//!
//! A 10-line cache is split equally between two partitions, but their
//! current sizes are 4 and 6. An insertion for Partition 2 draws two
//! replacement candidates: the *least* useful line of Partition 1 and
//! the *most* useful line of Partition 2. PF must pick the oversized
//! partition's most-useful line (hurting associativity); a pure
//! max-futility policy must pick Partition 1's line (hurting sizing);
//! FS weighs the scaled futilities and resolves the dilemma smoothly.

use super::{concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use cachesim::{Candidate, PartitionId, PartitionScheme, PartitionState};
use futility_core::FsAnalytic;
use std::fmt::Write;

/// Figure 1 experiment definition.
pub static FIG1: Experiment = Experiment {
    name: "fig1",
    csv: "fig1_dilemma",
    header: &["scenario", "scheme", "evicted", "evicted_line"],
    points,
    finish: concat_rows,
    report,
};

fn victim_name(v: usize) -> &'static str {
    if v == 0 {
        "P1's least useful"
    } else {
        "P2's most useful"
    }
}

fn points(_scale: Scale) -> Vec<Point> {
    vec![Point {
        label: "dilemma".into(),
        run: Box::new(|_seed| {
            let mut state = PartitionState::new(2, 10);
            state.targets = vec![5, 5];
            state.actual = vec![4, 6];

            // Candidate 0: partition 1's least useful line (futility 1.0).
            // Candidate 1: partition 2's most useful line (futility 1/6).
            let cands = [
                Candidate {
                    slot: 0,
                    addr: 0xA,
                    part: PartitionId(0),
                    futility: 1.0,
                },
                Candidate {
                    slot: 1,
                    addr: 0xB,
                    part: PartitionId(1),
                    futility: 1.0 / 6.0,
                },
            ];

            let mut rows: Vec<Row> = Vec::new();
            let mut record = |scenario: &str, scheme: &str, v: usize| {
                rows.push(vec![
                    scenario.into(),
                    scheme.into(),
                    v.to_string(),
                    victim_name(v).into(),
                ]);
            };

            let mut pf = crate::scheme("pf");
            let v = pf.victim(PartitionId(1), &cands, &state).victim;
            assert_eq!(v, 1, "PF must take the oversized partition's line");
            record("extreme", "pf", v);

            let mut unpart = crate::scheme("unpartitioned");
            let v = unpart.victim(PartitionId(1), &cands, &state).victim;
            assert_eq!(v, 0);
            record("extreme", "max-futility", v);

            // FS with a modest scaling factor on the oversized partition:
            // the dilemma dissolves — P1's genuinely useless line still
            // loses...
            let mut fs = FsAnalytic::with_alphas(vec![1.0, 2.0]);
            let v = fs.victim(PartitionId(1), &cands, &state).victim;
            assert_eq!(v, 0);
            record("extreme", "fs(a2=2)", v);

            // ...but once P2's candidate is merely mediocre, the scaling
            // tips the decision toward restoring the sizes.
            let cands2 = [
                Candidate {
                    futility: 0.45,
                    ..cands[0]
                },
                Candidate {
                    futility: 0.50,
                    ..cands[1]
                },
            ];
            let v = fs.victim(PartitionId(1), &cands2, &state).victim;
            assert_eq!(v, 1);
            record("mediocre", "fs(a2=2)", v);

            JobOutput::rows(rows)
        }),
    }]
}

fn report(_results: &[JobResult], rows: &[Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — the associativity/sizing dilemma");
    let _ = writeln!(
        out,
        "cache: 10 lines, equal targets (5/5), actual sizes 4/6"
    );
    let _ = writeln!(
        out,
        "candidates: P1's least useful line (f=1.00) vs P2's most useful (f=0.17)\n"
    );
    for row in rows {
        let note = match (row[0].as_str(), row[1].as_str()) {
            ("extreme", "pf") => "sizing first, associativity sacrificed",
            ("extreme", "max-futility") => "associativity first, sizes drift",
            ("extreme", _) => "scaled futility 1.00 vs 0.33",
            _ => "f = 0.45 vs 0.50, scaled 0.45 vs 1.00 — sizes restored",
        };
        let _ = writeln!(
            out,
            "{} evicts candidate {} ({}) — {note}",
            row[1], row[2], row[3]
        );
    }
    let _ = write!(
        out,
        "\nFS trades a small temporal size deviation for preserved associativity (§IV-E)."
    );
    out
}
