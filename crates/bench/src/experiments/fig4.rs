//! Figure 4: associativity CDFs of FS vs PF for size ratios
//! S1/S2 = 9/1 and 6/4 at equal insertion rates (I1 = I2 = 0.5), on the
//! Section IV substrate: two mcf threads on a 2MB random-candidates
//! cache with R = 16, insertion rates enforced by the rate-controlled
//! driver.
//!
//! Paper anchors: PF's small partition degrades badly (AEF 0.86 → 0.63
//! as its share shrinks 0.4 → 0.1); FS keeps Partition 1 (α = 1) at its
//! full associativity and only mildly degrades the scaled partition
//! (AEF 0.94 → 0.89).

use super::{concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::{downsample_cdf, Table};
use cachesim::prng::SplitMix64;
use cachesim::{PartitionId, PartitionedCache};
use futility_core::scaling::alpha_two_partitions;
use futility_core::FsAnalytic;
use std::fmt::Write;
use workloads::{benchmark, RateControlledDriver};

const R: usize = 16;
const CONFIGS: [(f64, &str); 4] = [(0.9, "fs"), (0.9, "pf"), (0.6, "fs"), (0.6, "pf")];

/// Figure 4 experiment definition.
pub static FIG4: Experiment = Experiment {
    name: "fig4",
    csv: "fig4_assoc_cdf",
    header: &["config", "partition", "futility", "cdf"],
    points,
    finish: concat_rows,
    report,
};

fn points(scale: Scale) -> Vec<Point> {
    let lines = scale.lines(crate::lines_of_kb(2048)); // 2MB
    let insertions = scale.accesses(150_000) as u64;
    CONFIGS
        .iter()
        .map(|&(s1, scheme)| Point {
            label: format!("{scheme}(S1={s1})"),
            run: Box::new(move |seed| run_one(scheme, s1, lines, insertions, seed)),
        })
        .collect()
}

fn run_one(scheme_name: &str, s1: f64, lines: usize, insertions: u64, seed: u64) -> JobOutput {
    let mut sm = SplitMix64::new(seed);
    let mcf = benchmark("mcf").unwrap();
    let warmup = (lines * 6) as u64;
    let trace_len = ((warmup + insertions) as usize) * 5;
    let traces = vec![
        mcf.generate_with_base(trace_len, sm.next_u64(), 0),
        mcf.generate_with_base(trace_len, sm.next_u64(), 1 << 40),
    ];
    let scheme: Box<dyn cachesim::PartitionScheme> = match scheme_name {
        "fs" => {
            let a2 = alpha_two_partitions(0.5, s1, R).expect("feasible");
            Box::new(FsAnalytic::with_alphas(vec![1.0, a2]))
        }
        other => crate::scheme(other),
    };
    let mut cache = PartitionedCache::new(
        crate::random_array(lines, R, sm.next_u64()),
        crate::futility_ranking("lru"),
        scheme,
        2,
    );
    let t0 = (lines as f64 * s1) as usize;
    cache.set_targets(&[t0, lines - t0]);
    // This figure reads the associativity CDF, which needs the opt-in
    // per-eviction futility histogram.
    cache.stats_mut().futility_histogram = true;

    let mut driver = RateControlledDriver::new(traces, vec![0.5, 0.5], sm.next_u64());
    // Warm up (fill the cache and let sizes converge), then measure.
    driver.run(&mut cache, warmup);
    cache.stats_mut().reset();
    driver.run(&mut cache, insertions);

    let label = format!("{scheme_name}(S1={s1})");
    let p0 = cache.stats().partition(PartitionId(0));
    let p1 = cache.stats().partition(PartitionId(1));
    let mut rows: Vec<Row> = Vec::new();
    for (part, stats) in [("P1", &p0), ("P2", &p1)] {
        for (x, y) in downsample_cdf(&stats.associativity_cdf(), 20) {
            rows.push(vec![
                label.clone(),
                part.into(),
                format!("{x:.3}"),
                format!("{y:.4}"),
            ]);
        }
    }
    JobOutput::rows(rows)
        .with_stat("aef_p1", p0.aef())
        .with_stat("aef_p2", p1.aef())
}

fn report(results: &[JobResult], _rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "config".into(),
        "AEF P1 (large)".into(),
        "AEF P2 (small)".into(),
    ])
    .with_title("Figure 4 — average eviction futility, FS vs PF (I1/I2 = 1)");
    for r in results {
        let stat = |name: &str| {
            r.output
                .stats
                .iter()
                .find(|(n, _)| n == name)
                .map_or(f64::NAN, |(_, v)| *v)
        };
        table.row(vec![
            r.label.clone(),
            crate::fmt3(stat("aef_p1")),
            crate::fmt3(stat("aef_p2")),
        ]);
    }

    let mut out = String::new();
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "Paper anchors: FS P1 stays ~constant and high for both splits; FS P2\n\
         degrades only mildly as S2 shrinks (0.94 -> 0.89). PF degrades with\n\
         partition size (P2: 0.86 -> 0.63). FS > PF everywhere.\n"
    );
    let _ = writeln!(
        out,
        "## Associativity CDFs (eviction futility -> cumulative probability)"
    );
    for r in results {
        for part in ["P1", "P2"] {
            let series: Vec<String> = r
                .output
                .rows
                .iter()
                .filter(|row| row[1] == part)
                .map(|row| format!("{}:{}", row[2], row[3]))
                .collect();
            let _ = writeln!(out, "{} {part}: {}", r.label, series.join(" "));
        }
    }
    out.pop();
    out
}
