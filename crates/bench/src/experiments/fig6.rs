//! Figure 6: associativity sensitivity of applications — speedup of a
//! fully-associative cache over a direct-mapped cache of the same size,
//! for sizes 128KB–8MB, under (a) OPT and (b) LRU futility ranking.
//!
//! Paper anchors: under OPT, mcf speeds up ≥25% at every size while lbm
//! is flat; gromacs is sensitive only below ~1MB. Under LRU the
//! sensitivities shrink dramatically, and cactusADM *loses* performance
//! with full associativity around 4MB (LRU evicts exactly the wrong
//! lines on a cyclic sweep).

use super::{cell_f64, concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::Table;
use cachesim::array::SetAssociative;
use cachesim::hashing::ModuloIndex;
use cachesim::prng::SplitMix64;
use cachesim::PartitionedCache;
use simqos::{System, SystemConfig, Thread};
use std::fmt::Write;
use workloads::benchmark;

const BENCHES: [&str; 6] = ["mcf", "omnetpp", "gromacs", "astar", "cactusadm", "lbm"];
const SIZES_KB: [usize; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];
const RANKINGS: [&str; 2] = ["opt", "lru"];

/// Figure 6 experiment definition.
pub static FIG6: Experiment = Experiment {
    name: "fig6",
    csv: "fig6_assoc_sensitivity",
    header: &["ranking", "benchmark", "size_kb", "fa_over_dm_speedup"],
    points,
    finish: concat_rows,
    report,
};

fn points(scale: Scale) -> Vec<Point> {
    let trace_len = scale.accesses(150_000);
    let mut points = Vec::new();
    for &rank in RANKINGS.iter() {
        for &bench in BENCHES.iter() {
            for &kb in SIZES_KB.iter() {
                let lines = scale.lines(crate::lines_of_kb(kb));
                points.push(Point {
                    label: format!("{bench} {kb}KB {rank}"),
                    run: Box::new(move |seed| {
                        let mut sm = SplitMix64::new(seed);
                        let trace_seed = sm.next_u64();
                        let fa = ipc(bench, lines, rank, true, trace_len, trace_seed);
                        let dm = ipc(bench, lines, rank, false, trace_len, trace_seed);
                        JobOutput::rows(vec![vec![
                            rank.to_string(),
                            bench.to_string(),
                            kb.to_string(),
                            format!("{:.4}", fa / dm),
                        ]])
                    }),
                });
            }
        }
    }
    points
}

fn ipc(
    bench: &str,
    lines: usize,
    ranking: &str,
    fully_assoc: bool,
    trace_len: usize,
    trace_seed: u64,
) -> f64 {
    let array: Box<dyn cachesim::array::CacheArray> = if fully_assoc {
        crate::fa_array(lines)
    } else {
        // Conventional direct-mapped cache: low address bits index.
        Box::new(SetAssociative::new(lines, 1, ModuloIndex))
    };
    let cache = PartitionedCache::new(
        array,
        crate::futility_ranking(ranking),
        crate::scheme("unpartitioned"),
        1,
    );
    let trace = benchmark(bench)
        .expect("known benchmark")
        .generate(trace_len, trace_seed);
    let mut sys = System::new(
        SystemConfig::micro2014(),
        cache,
        vec![Thread::new(bench, trace)],
    );
    sys.run(0.3).threads[0].ipc()
}

fn report(_results: &[JobResult], rows: &[Row]) -> String {
    let mut out = String::new();
    for rank in RANKINGS {
        let sub = if rank == "opt" { "6a" } else { "6b" };
        let mut t = Table::new(
            std::iter::once("benchmark".to_string())
                .chain(SIZES_KB.iter().map(|kb| format!("{kb}KB")))
                .collect(),
        )
        .with_title(format!(
            "Figure {sub} — fully-associative vs direct-mapped speedup ({} ranking)",
            rank.to_uppercase()
        ));
        for bench in BENCHES {
            let speedups: Vec<f64> = rows
                .iter()
                .filter(|r| r[0] == rank && r[1] == bench)
                .map(|r| cell_f64(&r[3]))
                .collect();
            t.row_mixed(bench, &speedups, 3);
        }
        let _ = writeln!(out, "{t}");
    }
    let _ = write!(
        out,
        "Paper anchors: OPT — mcf >= 1.25x everywhere; gromacs ~1.35x at 128KB but\n\
         ~1.0x above 1MB; lbm ~1.0x flat. LRU — all sensitivities shrink (mcf\n\
         <= ~1.10x) and cactusADM dips below 1.0 near 4MB."
    );
    out
}
