//! Figure 2: partitioning-induced associativity loss under the
//! Partitioning-First scheme. Workloads duplicate one benchmark N times
//! (N = 1, 2, 4, 8, 16, 32) on a 16-way set-associative cache with
//! 512KB per partition, OPT futility ranking; PF enforcement.
//!
//! * Fig. 2a — associativity CDF / AEF of the first partition (mcf):
//!   AEF decays from ~0.95 at N=1 toward the 0.5 random floor by N=32.
//! * Fig. 2b — misses of the first partition (normalized to N=1):
//!   grows with N; mcf worst (~+37% at N=32), lbm flat.
//! * Fig. 2c — IPC of the first partition (normalized to N=1): drops
//!   with N; mcf worst (~−24%), lbm flat.

use super::{cell_f64, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::Table;
use cachesim::prng::SplitMix64;
use cachesim::{PartitionId, PartitionedCache};
use simqos::{System, SystemConfig, Thread};
use std::fmt::Write;
use workloads::{benchmark, ALL_BENCHMARKS};

const PARTITION_LINES: usize = 8192; // 512KB
const NS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Figure 2 experiment definition.
pub static FIG2: Experiment = Experiment {
    name: "fig2",
    csv: "fig2_pf_degradation",
    header: &["benchmark", "N", "aef_p0", "misses_norm", "ipc_norm"],
    points,
    finish,
    report,
};

fn points(scale: Scale) -> Vec<Point> {
    let trace_len = scale.accesses(40_000);
    let part_lines = scale.lines(PARTITION_LINES);
    let mut points = Vec::with_capacity(ALL_BENCHMARKS.len() * NS.len());
    for &bench in ALL_BENCHMARKS.iter() {
        for &n in &NS {
            points.push(Point {
                label: format!("{bench} N={n}"),
                run: Box::new(move |seed| run_one(bench, n, part_lines, trace_len, seed)),
            });
        }
    }
    points
}

/// Raw point row: benchmark, N, AEF, raw misses, raw IPC, CDF string.
/// `finish` turns the raw misses/IPC into N=1-normalized columns.
fn run_one(bench: &str, n: usize, part_lines: usize, trace_len: usize, seed: u64) -> JobOutput {
    let mut sm = SplitMix64::new(seed);
    let array_seed = sm.next_u64();
    let profile = benchmark(bench).expect("known benchmark");
    let lines = part_lines * n;
    let mut cache = PartitionedCache::new(
        crate::l2_array(lines, array_seed),
        crate::futility_ranking("opt"),
        crate::scheme("pf"),
        n,
    );
    // This figure reads the associativity CDF, which needs the opt-in
    // per-eviction futility histogram.
    cache.stats_mut().futility_histogram = true;
    let threads: Vec<Thread> = (0..n)
        .map(|i| {
            Thread::new(
                format!("{bench}#{i}"),
                profile.generate_with_base(trace_len, sm.next_u64(), (i as u64) << 40),
            )
        })
        .collect();
    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    // Targets default to the equal share (512KB each).
    let result = sys.run(0.3);
    let p0 = sys.cache().stats().partition(PartitionId(0));
    let accesses = p0.hits + p0.misses;
    let cdf: Vec<String> = analysis::downsample_cdf(&p0.associativity_cdf(), 10)
        .iter()
        .map(|(x, y)| format!("{x:.1}:{y:.2}"))
        .collect();
    JobOutput::rows(vec![vec![
        bench.to_string(),
        n.to_string(),
        format!("{:.4}", p0.aef()),
        p0.misses.to_string(),
        format!("{:.6}", result.threads[0].ipc()),
        cdf.join(" "),
    ]])
    .with_miss_rate(if accesses == 0 {
        0.0
    } else {
        p0.misses as f64 / accesses as f64
    })
}

/// Normalize each benchmark's misses/IPC to its own N=1 point and drop
/// the report-only raw/CDF columns.
fn finish(results: &[JobResult]) -> Vec<Row> {
    let mut out = Vec::with_capacity(results.len());
    for group in results.chunks(NS.len()) {
        let first = &group[0].output.rows[0];
        let m1 = cell_f64(&first[3]).max(1.0);
        let i1 = cell_f64(&first[4]);
        for r in group {
            let raw = &r.output.rows[0];
            out.push(vec![
                raw[0].clone(),
                raw[1].clone(),
                raw[2].clone(),
                format!("{:.4}", cell_f64(&raw[3]) / m1),
                format!("{:.4}", cell_f64(&raw[4]) / i1),
            ]);
        }
    }
    out
}

fn report(results: &[JobResult], rows: &[Row]) -> String {
    let mut out = String::new();

    // Fig 2a: associativity CDF of the first partition for mcf.
    let _ = writeln!(
        out,
        "## Figure 2a — associativity CDF of partition 0 (mcf, PF, OPT ranking)"
    );
    for r in results {
        let raw = &r.output.rows[0];
        if raw[0] == "mcf" {
            let _ = writeln!(out, "N={:>2}  AEF={}  CDF {}", raw[1], raw[2], raw[5]);
        }
    }
    let _ = writeln!(
        out,
        "Paper anchors: AEF 0.95 (N=1) -> 0.82 -> 0.74 -> 0.66 -> 0.60 -> 0.56 (N=32),\n\
         approaching the futility-blind diagonal F(x) = x.\n"
    );

    // Fig 2b/2c: misses and IPC of the first partition, normalized.
    let header: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(NS.iter().map(|n| format!("N={n}")))
        .collect();
    let mut tb = Table::new(header.clone())
        .with_title("Figure 2b — misses of partition 0 (normalized to N=1)");
    let mut tc =
        Table::new(header).with_title("Figure 2c — IPC of partition 0 (normalized to N=1)");
    for group in rows.chunks(NS.len()) {
        let miss_norm: Vec<f64> = group.iter().map(|r| cell_f64(&r[3])).collect();
        let ipc_norm: Vec<f64> = group.iter().map(|r| cell_f64(&r[4])).collect();
        tb.row_mixed(group[0][0].clone(), &miss_norm, 3);
        tc.row_mixed(group[0][0].clone(), &ipc_norm, 3);
    }
    let _ = writeln!(out, "{tb}");
    let _ = writeln!(
        out,
        "Paper anchors: misses grow with N for reuse-heavy benchmarks (mcf ~1.37x\n\
         at N=32) and stay ~flat for streaming lbm.\n"
    );
    let _ = writeln!(out, "{tc}");
    let _ = write!(
        out,
        "Paper anchors: IPC decays with N for associativity-sensitive benchmarks\n\
         (mcf ~0.76x at N=32); lbm is insensitive. PF does not scale with N."
    );
    out
}
