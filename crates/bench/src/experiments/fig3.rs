//! Figure 3: analytically calculated scaling factors of Partition 2
//! (α₂) for insertion rates I₂ ∈ {0.6, 0.7, 0.8, 0.9} and size
//! fractions S₂ ∈ [0.2, 0.4], with R = 16 candidates (Equation 1).
//! Also demonstrates the `I₁ < S₁^R` partitioning bound shared by all
//! replacement-based schemes (Section IV-B).

use super::{cell_f64, concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::Table;
use futility_core::scaling::{alpha_two_partitions, ScalingError};
use std::fmt::Write;

const R: usize = 16;
const I2_VALUES: [f64; 4] = [0.6, 0.7, 0.8, 0.9];

/// Figure 3 experiment definition.
pub static FIG3: Experiment = Experiment {
    name: "fig3",
    csv: "fig3_scaling_factors",
    header: &["s2", "a2_i2_0.6", "a2_i2_0.7", "a2_i2_0.8", "a2_i2_0.9"],
    points,
    finish: concat_rows,
    report,
};

fn points(_scale: Scale) -> Vec<Point> {
    (0..=8)
        .map(|k| {
            let s2 = 0.20 + 0.025 * k as f64;
            Point {
                label: format!("S2={s2:.3}"),
                run: Box::new(move |_seed| {
                    let mut row = vec![format!("{s2:.3}")];
                    for &i2 in &I2_VALUES {
                        let a = alpha_two_partitions(1.0 - i2, 1.0 - s2, R)
                            .expect("all Figure 3 points are feasible");
                        row.push(format!("{a:.4}"));
                    }
                    JobOutput::rows(vec![row])
                }),
            }
        })
        .collect()
}

fn report(_results: &[JobResult], rows: &[Row]) -> String {
    let mut header = vec!["S2".to_string()];
    header.extend(I2_VALUES.iter().map(|i2| format!("a2 @ I2={i2}")));
    let mut table = Table::new(header)
        .with_title("Figure 3 — scaling factor of Partition 2 vs its size fraction (R = 16)");
    for row in rows {
        let alphas: Vec<f64> = row[1..].iter().map(|c| cell_f64(c)).collect();
        table.row_mixed(row[0].clone(), &alphas, 3);
    }

    let mut out = String::new();
    let _ = writeln!(out, "{table}");
    let _ = writeln!(
        out,
        "Paper anchors: the I2=0.9 curve starts near 2.8–3.0 at S2=0.2 and all\n\
         curves decay toward 1.0 as S2 grows; larger I2 ⇒ larger α2 throughout.\n"
    );

    // The partitioning bound: I1 <= S1^R is unenforceable.
    let s1 = 0.8f64;
    let bound = s1.powi(R as i32);
    let _ = writeln!(out, "## Partitioning bound (Section IV-B)");
    let _ = writeln!(out, "S1 = {s1}, R = {R}: bound S1^R = {bound:.3e}");
    for i1 in [bound * 0.5, bound * 1.5, 0.01] {
        match alpha_two_partitions(i1, s1, R) {
            Ok(a) => {
                let _ = writeln!(out, "  I1 = {i1:.3e} -> feasible, alpha2 = {a:.3}");
            }
            Err(ScalingError::Infeasible { .. }) => {
                let _ = writeln!(out, "  I1 = {i1:.3e} -> INFEASIBLE (below the bound)");
            }
            Err(e) => {
                let _ = writeln!(out, "  I1 = {i1:.3e} -> error: {e}");
            }
        }
    }
    let _ = write!(
        out,
        "\nPaper anchor: with R = 16, a partition with I = 0.01 can still occupy\n\
         ~75% of the cache; 0.01 > 0.75^16 = {:.2e} confirms feasibility.",
        0.75f64.powi(16)
    );
    out
}
