//! Table II: the evaluated system configuration, as encoded by
//! `SystemConfig::micro2014()` and the experiment defaults, plus the
//! inventory of schemes and rankings the harness can drive.

use super::{concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use simqos::SystemConfig;
use std::fmt::Write;

/// Table II experiment definition.
pub static TABLE2: Experiment = Experiment {
    name: "table2",
    csv: "table2_config",
    header: &["parameter", "value"],
    points,
    finish: concat_rows,
    report,
};

fn points(_scale: Scale) -> Vec<Point> {
    vec![Point {
        label: "config".into(),
        run: Box::new(|_seed| {
            let cfg = SystemConfig::micro2014();
            let rows: Vec<Row> = vec![
                vec!["core_freq_ghz".into(), format!("{}", cfg.freq_ghz)],
                vec!["base_cpi".into(), format!("{}", cfg.base_cpi)],
                vec!["l2_hit_cycles".into(), cfg.l2_hit_cycles.to_string()],
                vec![
                    "mem_zero_load_cycles".into(),
                    cfg.mem_zero_load_cycles.to_string(),
                ],
                vec!["line_bytes".into(), cfg.line_bytes.to_string()],
                vec!["mem_bw_gbps".into(), format!("{}", cfg.mem_bw_gbps)],
                vec![
                    "transfer_cycles_per_line".into(),
                    cfg.transfer_cycles().to_string(),
                ],
                vec!["l2_lines".into(), crate::lines_of_kb(8192).to_string()],
                vec!["l2_ways".into(), "16".into()],
                vec!["cores".into(), "32".into()],
                // Semicolon-joined so the list stays a single CSV cell.
                vec!["rankings".into(), ranking::ALL_RANKINGS.join("; ")],
                vec![
                    "schemes".into(),
                    format!("fs; fs-feedback; {}", baselines::ALL_BASELINES.join("; ")),
                ],
            ];
            JobOutput::rows(rows)
        }),
    }]
}

fn report(_results: &[JobResult], _rows: &[Row]) -> String {
    let cfg = SystemConfig::micro2014();
    let mut out = String::new();
    let _ = writeln!(out, "## Table II — system configuration");
    let _ = writeln!(out, "{}", cfg.describe());
    let _ = writeln!(
        out,
        "L2 $    8MB shared ({} lines), 16-way set associative, hashed (XOR-style) indexing",
        crate::lines_of_kb(8192)
    );
    let _ = writeln!(out, "Cores   32 (Figure 7 runs 32 concurrent threads)\n");
    let _ = writeln!(
        out,
        "Futility rankings: {}",
        ranking::ALL_RANKINGS.join(", ")
    );
    let _ = writeln!(
        out,
        "Enforcement schemes: fs (analytic), fs-feedback, {}",
        baselines::ALL_BASELINES.join(", ")
    );
    let _ = write!(
        out,
        "\nFeedback-FS hardware budget (Section V-B): coarse timestamp LRU\n\
         (~1.5% state overhead) + five registers per partition\n\
         (ActualSize, TargetSize, 4-bit insertion/eviction counters,\n\
         3-bit ScalingShiftWidth); replacement path = 3R-1 narrow ops."
    );
    out
}
