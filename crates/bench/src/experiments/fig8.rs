//! Figure 8 (sensitivity study, §VIII — the source text truncates here;
//! reconstructed as the advertised "sensitivity to two configuration
//! parameters"): how the feedback-FS controller's interval length `l`
//! and changing ratio `Δα` affect sizing precision (MAD) and
//! associativity (AEF), on the Section IV substrate (two mcf threads,
//! 2MB random-candidates cache, R = 16, coarse timestamp LRU — the
//! ranking the hardware design actually uses).
//!
//! Expected shape: small `l` or large `Δα` reacts faster (smaller size
//! deviations) but over-scales futility and costs associativity; the
//! paper's defaults (l = 16, Δα = 2) sit at the knee.

use super::{cell_f64, concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::Table;
use cachesim::prng::SplitMix64;
use cachesim::{PartitionId, PartitionedCache};
use futility_core::{FeedbackConfig, FsFeedback};
use std::fmt::Write;
use workloads::{benchmark, RateControlledDriver};

const R: usize = 16;
const INTERVALS: [u32; 6] = [4, 8, 16, 32, 64, 128];
const RATIOS: [f64; 5] = [1.25, 1.5, 2.0, 4.0, 8.0];

/// Figure 8 experiment definition.
pub static FIG8: Experiment = Experiment {
    name: "fig8",
    csv: "fig8_sensitivity",
    header: &["knob", "value", "mad_p2", "aef_p1", "aef_p2"],
    points,
    finish: concat_rows,
    report,
};

fn points(scale: Scale) -> Vec<Point> {
    let lines = scale.lines(crate::lines_of_kb(2048));
    let insertions = scale.accesses(100_000) as u64;
    let mut points = Vec::new();
    for &l in INTERVALS.iter() {
        points.push(Point {
            label: format!("interval l={l}"),
            run: Box::new(move |seed| {
                let config = FeedbackConfig {
                    interval: l,
                    ..Default::default()
                };
                run_one("interval", &l.to_string(), config, lines, insertions, seed)
            }),
        });
    }
    for &r in RATIOS.iter() {
        points.push(Point {
            label: format!("ratio da={r}"),
            run: Box::new(move |seed| {
                let config = FeedbackConfig {
                    ratio: r,
                    ..Default::default()
                };
                run_one("ratio", &format!("{r}"), config, lines, insertions, seed)
            }),
        });
    }
    points
}

fn run_one(
    knob: &str,
    value: &str,
    config: FeedbackConfig,
    lines: usize,
    insertions: u64,
    seed: u64,
) -> JobOutput {
    let mut sm = SplitMix64::new(seed);
    let warmup = (lines * 8) as u64;
    let mcf = benchmark("mcf").expect("profile");
    let trace_len = ((warmup + insertions) as usize) * 5;
    let traces = vec![
        mcf.generate_with_base(trace_len, sm.next_u64(), 0),
        mcf.generate_with_base(trace_len, sm.next_u64(), 1 << 40),
    ];
    let mut cache = PartitionedCache::new(
        crate::random_array(lines, R, sm.next_u64()),
        crate::futility_ranking("coarse-lru"),
        Box::new(FsFeedback::new(config)),
        2,
    );
    // An asymmetric split keeps the controller working: 70/30 targets
    // under equal insertion rates.
    let t0 = lines * 7 / 10;
    cache.set_targets(&[t0, lines - t0]);
    let mut driver = RateControlledDriver::new(traces, vec![0.5, 0.5], sm.next_u64());
    driver.run(&mut cache, warmup);
    cache.stats_mut().reset();
    // Record the measurement window: shift-width/α trajectories of the
    // feedback controller land in fig8_*_timeseries.csv.
    cache.attach_timeseries((insertions / 64).max(1), 1 << 15);
    driver.run(&mut cache, insertions);
    let stats = cache.stats();
    let p0 = stats.partition(PartitionId(0));
    let p1 = stats.partition(PartitionId(1));
    let timeseries = cache.timeseries().expect("recorder attached").rows();
    JobOutput::rows(vec![vec![
        knob.into(),
        value.into(),
        format!("{:.2}", stats.size_mad(PartitionId(1))),
        format!("{:.4}", p0.aef()),
        format!("{:.4}", p1.aef()),
    ]])
    .with_timeseries(timeseries)
}

fn report(_results: &[JobResult], rows: &[Row]) -> String {
    let mut out = String::new();
    for (knob, label_col, title) in [
        (
            "interval",
            "interval l",
            "Figure 8a — feedback-FS sensitivity to interval length (Δα = 2)",
        ),
        (
            "ratio",
            "ratio Δα",
            "Figure 8b — feedback-FS sensitivity to changing ratio (l = 16)",
        ),
    ] {
        let mut t = Table::new(vec![
            label_col.into(),
            "MAD P2 (lines)".into(),
            "AEF P1".into(),
            "AEF P2".into(),
        ])
        .with_title(title);
        for row in rows.iter().filter(|r| r[0] == knob) {
            t.row(vec![
                row[1].clone(),
                format!("{:.1}", cell_f64(&row[2])),
                crate::fmt3(cell_f64(&row[3])),
                crate::fmt3(cell_f64(&row[4])),
            ]);
        }
        let _ = writeln!(out, "{t}");
    }
    let _ = write!(
        out,
        "Measured shape: the interval l governs sizing precision (MAD grows\n\
         roughly linearly with l) at negligible associativity cost, while the\n\
         changing ratio governs associativity (larger steps over-scale the\n\
         shrunk partition and erode its AEF) at flat MAD. The paper's default\n\
         (l = 16, ratio = 2) buys hardware simplicity (bit shifts, 4-bit\n\
         counters) at a modest corner of both costs."
    );
    out
}
