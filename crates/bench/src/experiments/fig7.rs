//! Figure 7: QoS comparison of the five enforcement schemes on a
//! 32-core CMP with an 8MB shared L2. Each mix has N_subject threads of
//! the associativity-sensitive `gromacs` (guaranteed 256KB each) and
//! 32 − N_subject threads of the memory-intensive bully `lbm` (which
//! split the rest). N_subject sweeps six points across 1..31 (the
//! paper sweeps eleven; the extra points do not change the curves).
//!
//! * Fig. 7a — average occupancy of subject threads vs their 256KB
//!   target: FullAssoc/PF/FS hold it exactly; Vantage can fall ≤~3%
//!   below; PriSM collapses 10–21% below (the abnormality).
//! * Fig. 7b — AEF of subject threads: FullAssoc 1.0; FS ~0.85;
//!   Vantage ~0.80; PF degrades toward 0.5; PriSM in between.
//! * Fig. 7c — subject-thread performance: FS ≈ FullAssoc, better than
//!   Vantage (up to ~6%) and PriSM (up to ~13.7%).

use super::{cell_f64, concat_rows, Experiment, Point};
use crate::runner::{JobOutput, JobResult, Row};
use crate::Scale;
use analysis::Table;
use cachesim::prng::SplitMix64;
use cachesim::{PartitionId, PartitionedCache};
use simqos::{static_qos, System, SystemConfig, Thread};
use std::fmt::Write;
use workloads::benchmark;

const TOTAL_LINES: usize = 131_072; // 8MB
const SUBJECT_LINES: usize = 4_096; // 256KB
const CORES: usize = 32;
const SUBJECT_COUNTS: [usize; 6] = [1, 7, 13, 19, 25, 31];
const SCHEMES: [&str; 5] = ["full-assoc", "fs-feedback", "vantage", "pf", "prism"];
const RANKINGS: [&str; 2] = ["coarse-lru", "opt"];

/// Figure 7 experiment definition.
pub static FIG7: Experiment = Experiment {
    name: "fig7",
    csv: "fig7_qos",
    header: &[
        "ranking",
        "scheme",
        "n_subject",
        "occupancy_frac",
        "aef",
        "subject_ipc",
    ],
    points,
    finish: concat_rows,
    report,
};

fn points(scale: Scale) -> Vec<Point> {
    let trace_len = scale.accesses(32_000);
    let total_lines = scale.lines(TOTAL_LINES);
    let subject_lines = (scale.lines(SUBJECT_LINES)).min(total_lines / CORES);
    let mut points = Vec::new();
    for &rank in RANKINGS.iter() {
        for &scheme in SCHEMES.iter() {
            for &n in SUBJECT_COUNTS.iter() {
                points.push(Point {
                    label: format!("{scheme} N={n} ({rank})"),
                    run: Box::new(move |seed| {
                        run_one(scheme, rank, n, total_lines, subject_lines, trace_len, seed)
                    }),
                });
            }
        }
    }
    points
}

/// Infeasible configurations (Vantage at N=31) return no rows, exactly
/// like the paper skips that point.
#[allow(clippy::too_many_arguments)]
fn run_one(
    scheme: &str,
    rank: &str,
    subjects: usize,
    total_lines: usize,
    subject_lines: usize,
    trace_len: usize,
    seed: u64,
) -> JobOutput {
    let mut sm = SplitMix64::new(seed);
    let array_seed = sm.next_u64();
    let backgrounds = CORES - subjects;
    // Vantage manages only 90% of the cache: its background targets are
    // scaled so the managed total stays within (1-u) of the array.
    let targets = if scheme == "vantage" {
        let managed = (total_lines as f64 * 0.9) as usize;
        if managed < subjects * subject_lines {
            return JobOutput::rows(Vec::new()); // the paper skips N=31 for Vantage
        }
        static_qos(managed, subjects, subject_lines, backgrounds)
    } else {
        static_qos(total_lines, subjects, subject_lines, backgrounds)
    };
    let array = if scheme == "full-assoc" {
        crate::fa_array(total_lines)
    } else {
        crate::l2_array(total_lines, array_seed)
    };
    // Subject partitions are the only ones whose associativity is
    // reported, so the coarse ranking carries its exact measurement
    // shadow only for them (a large simulation-speed win). The ideal
    // FullAssoc scheme is the exception: it asks the ranking for the
    // most futile line of *any* pool, which needs the full shadow.
    let ranking: Box<dyn cachesim::FutilityRanking> =
        if rank == "coarse-lru" && scheme != "full-assoc" {
            Box::new(ranking::CoarseLru::with_shadow_pools(subjects.max(1)))
        } else {
            crate::futility_ranking(rank)
        };
    let mut cache = PartitionedCache::new(array, ranking, crate::scheme(scheme), CORES);
    cache.set_targets(&targets);

    let gromacs = benchmark("gromacs").expect("profile");
    let lbm = benchmark("lbm").expect("profile");
    let threads: Vec<Thread> = (0..CORES)
        .map(|i| {
            let (profile, name) = if i < subjects {
                (&gromacs, "gromacs")
            } else {
                (&lbm, "lbm")
            };
            Thread::new(
                format!("{name}#{i}"),
                profile.generate_with_base(trace_len, sm.next_u64(), (i as u64) << 40),
            )
        })
        .collect();
    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    let result = sys.run(0.3);

    let mut occ = 0.0;
    let mut aef = 0.0;
    let mut ipc = 0.0;
    for i in 0..subjects {
        let stats = sys.cache().stats();
        occ += stats.avg_occupancy(PartitionId(i as u16)) / subject_lines as f64;
        aef += stats.partition(PartitionId(i as u16)).aef();
        ipc += result.threads[i].ipc();
    }
    let n = subjects as f64;
    JobOutput::rows(vec![vec![
        rank.to_string(),
        scheme.to_string(),
        subjects.to_string(),
        format!("{:.4}", occ / n),
        format!("{:.4}", aef / n),
        format!("{:.4}", ipc / n),
    ]])
}

fn report(results: &[JobResult], _rows: &[Row]) -> String {
    let mut out = String::new();
    // field: 3 = occupancy fraction, 4 = AEF, 5 = subject IPC.
    let value_of = |rank: &str, scheme: &str, n: usize, field: usize| -> f64 {
        results
            .iter()
            .flat_map(|r| r.output.rows.iter())
            .find(|row| row[0] == rank && row[1] == scheme && row[2] == n.to_string())
            .map_or(f64::NAN, |row| cell_f64(&row[field]))
    };
    for rank in RANKINGS {
        for (title, field) in [
            ("Figure 7a — avg subject occupancy / 256KB target", 3usize),
            ("Figure 7b — avg subject AEF", 4),
            ("Figure 7c — avg subject IPC", 5),
        ] {
            let mut t = Table::new(
                std::iter::once("scheme".to_string())
                    .chain(SUBJECT_COUNTS.iter().map(|n| format!("{n}")))
                    .collect(),
            )
            .with_title(format!("{title} ({rank} ranking)"));
            for scheme in SCHEMES {
                let cells: Vec<String> = std::iter::once(scheme.to_string())
                    .chain(
                        SUBJECT_COUNTS
                            .iter()
                            .map(|&n| crate::fmt3(value_of(rank, scheme, n, field))),
                    )
                    .collect();
                t.row(cells);
            }
            let _ = writeln!(out, "{t}");
        }
        // Headline comparison: FS vs Vantage and PriSM subject IPC.
        let improvement = |other: &str| -> f64 {
            SUBJECT_COUNTS
                .iter()
                .map(|&n| {
                    (
                        value_of(rank, "fs-feedback", n, 5),
                        value_of(rank, other, n, 5),
                    )
                })
                .filter(|(a, b)| a.is_finite() && b.is_finite())
                .map(|(a, b)| (a / b - 1.0) * 100.0)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let _ = writeln!(
            out,
            "[{rank}] FS vs Vantage: up to {:+.1}% subject IPC; FS vs PriSM: up to {:+.1}%\n\
             (paper anchors: up to +6.0% and +13.7%)\n",
            improvement("vantage"),
            improvement("prism"),
        );
    }
    out.pop();
    out
}
