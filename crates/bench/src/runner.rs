//! Multi-threaded, deterministic sweep runner.
//!
//! Every experiment is a list of independent sweep points (jobs). The
//! runner executes them on a `std::thread` worker pool and guarantees
//! that the *results* are independent of the worker count and of
//! scheduling order:
//!
//! * each job's RNG seed is derived from its experiment name and point
//!   index ([`cachesim::prng::seed_for`]) — never from which thread ran
//!   it or when;
//! * results are collected into the original job order before anything
//!   consumes them, so CSV output is byte-identical for `--jobs 1` and
//!   `--jobs N`.
//!
//! Per-job wall time and an optional summary metric (typically a miss
//! rate) are recorded for the live progress line and the final summary.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One CSV row.
pub type Row = Vec<String>;

/// What a sweep point produces.
pub struct JobOutput {
    /// Raw result rows (the experiment's `finish` step turns these into
    /// final CSV rows; for most experiments they pass through).
    pub rows: Vec<Row>,
    /// Headline miss rate of the point, when meaningful.
    pub miss_rate: Option<f64>,
    /// Named scalar statistics for the human-readable report.
    pub stats: Vec<(String, f64)>,
    /// Optional flight-recorder rows (`time,series,part,value`, see
    /// [`cachesim::TimeSeriesRecorder::rows`]). When any point of an
    /// experiment emits some, the experiment writes a sibling
    /// `<csv>_timeseries.csv` with the point label prepended.
    pub timeseries: Vec<Row>,
}

impl JobOutput {
    /// Output with rows only.
    pub fn rows(rows: Vec<Row>) -> Self {
        JobOutput {
            rows,
            miss_rate: None,
            stats: Vec::new(),
            timeseries: Vec::new(),
        }
    }

    /// Attach a miss rate.
    pub fn with_miss_rate(mut self, rate: f64) -> Self {
        self.miss_rate = Some(rate);
        self
    }

    /// Attach a named statistic.
    pub fn with_stat(mut self, name: impl Into<String>, value: f64) -> Self {
        self.stats.push((name.into(), value));
        self
    }

    /// Attach flight-recorder time-series rows.
    pub fn with_timeseries(mut self, rows: Vec<Row>) -> Self {
        self.timeseries = rows;
        self
    }
}

/// An independent sweep point.
pub struct Job {
    /// Experiment this point belongs to (seeds derive from it).
    pub experiment: &'static str,
    /// Point label for progress/reporting, e.g. `"mcf N=8"`.
    pub label: String,
    /// Point index within the experiment (seeds derive from it).
    pub index: u64,
    /// The computation; receives the derived deterministic seed.
    pub run: Box<dyn FnOnce(u64) -> JobOutput + Send>,
}

/// A completed sweep point.
pub struct JobResult {
    /// Experiment the point belongs to.
    pub experiment: &'static str,
    /// Point label.
    pub label: String,
    /// Point index within the experiment.
    pub index: u64,
    /// The point's output.
    pub output: JobOutput,
    /// Wall-clock execution time of this job.
    pub wall: Duration,
}

/// Run `jobs` on `threads` workers; results come back in the original
/// job order regardless of completion order. With `progress`, a live
/// `[done/total]` line is maintained on stderr.
///
/// # Panics
/// Propagates the first job panic (after letting in-flight jobs drain).
pub fn run_jobs(jobs: Vec<Job>, threads: usize, progress: bool) -> Vec<JobResult> {
    let total = jobs.len();
    let threads = threads.clamp(1, total.max(1));
    let queue: Mutex<VecDeque<(usize, Job)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<JobResult>>> = Mutex::new((0..total).map(|_| None).collect());
    let done = AtomicUsize::new(0);
    let started = Instant::now();

    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let Some((slot, job)) = queue.lock().expect("queue").pop_front() else {
                        return;
                    };
                    let seed = cachesim::prng::seed_for(job.experiment, job.index);
                    let t0 = Instant::now();
                    let output = (job.run)(seed);
                    let wall = t0.elapsed();
                    let result = JobResult {
                        experiment: job.experiment,
                        label: job.label,
                        index: job.index,
                        output,
                        wall,
                    };
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        eprint!(
                            "\r[{finished:>3}/{total}] {:>6.1}s  {} {}\x1b[K",
                            started.elapsed().as_secs_f64(),
                            result.experiment,
                            result.label,
                        );
                    }
                    results.lock().expect("results")[slot] = Some(result);
                })
            })
            .collect();
        for w in workers {
            // Join before unwrapping results so a panicking job surfaces
            // as the test/binary failure, not a poisoned-lock mess.
            if let Err(p) = w.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    if progress {
        eprintln!();
    }

    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(i: u64) -> Job {
        Job {
            experiment: "runner_test",
            label: format!("p{i}"),
            index: i,
            run: Box::new(move |seed| {
                // Derive a value from the seed so determinism is visible.
                JobOutput::rows(vec![vec![i.to_string(), format!("{seed:#x}")]])
                    .with_miss_rate(seed as f64 / u64::MAX as f64)
            }),
        }
    }

    fn collect(threads: usize) -> Vec<Row> {
        run_jobs((0..32).map(job).collect(), threads, false)
            .into_iter()
            .flat_map(|r| r.output.rows)
            .collect()
    }

    #[test]
    fn results_are_ordered_and_thread_count_invariant() {
        let serial = collect(1);
        let parallel = collect(8);
        assert_eq!(serial, parallel);
        for (i, row) in serial.iter().enumerate() {
            assert_eq!(row[0], i.to_string(), "job order preserved");
        }
    }

    #[test]
    fn seeds_differ_across_points_but_not_across_runs() {
        let a = collect(3);
        let b = collect(5);
        assert_eq!(a, b);
        let seeds: std::collections::HashSet<&String> = a.iter().map(|r| &r[1]).collect();
        assert_eq!(seeds.len(), a.len(), "each point has a distinct seed");
    }

    #[test]
    fn wall_time_and_metrics_are_recorded() {
        let results = run_jobs((0..4).map(job).collect(), 2, false);
        for r in &results {
            assert!(r.output.miss_rate.is_some());
            assert!(r.wall <= Duration::from_secs(5));
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_jobs(vec![job(0)], 64, false).len(), 1);
        assert!(run_jobs(Vec::new(), 4, false).is_empty());
    }

    #[test]
    fn job_panic_propagates() {
        let boom = Job {
            experiment: "runner_test",
            label: "boom".into(),
            index: 0,
            run: Box::new(|_| panic!("job exploded")),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs(vec![boom], 2, false)
        }));
        assert!(result.is_err());
    }
}
