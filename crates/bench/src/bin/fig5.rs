//! Figure 5: cumulative distributions of Partition 1's size deviation
//! from its target under FS and PF, for insertion splits I1/I2 = 9/1
//! and 5/5, equal targets (S1/S2 = 1), on the 2MB random-candidates
//! cache with R = 16. Samples are taken at every eviction.
//!
//! Paper anchors: PF is near-ideal (MAD < 1 line). FS deviates
//! temporally but stays statistically on target; the worst case is
//! I1 = 0.5 (maximum random-walk variance I1(1−I1)), with MAD ≈ 67
//! lines ≈ 0.4% of a 16K-line partition. MAD(I1=0.1) < MAD(I1=0.5).

use analysis::Table;
use cachesim::{PartitionId, PartitionedCache};
use futility_core::scaling::alpha_two_partitions;
use futility_core::FsAnalytic;
use workloads::{benchmark, RateControlledDriver};

struct Outcome {
    label: String,
    mad: f64,
    mean_dev: f64,
    cdf: Vec<(i64, f64)>,
}

fn run(scheme_name: &str, i1: f64, insertions: u64, seed: u64) -> Outcome {
    const R: usize = 16;
    let lines = fs_bench::lines_of_kb(2048);
    let mcf = benchmark("mcf").unwrap();
    let warmup = (lines * 22) as u64;
    let trace_len = ((warmup + insertions) as usize) * 5;
    let traces = vec![
        mcf.generate_with_base(trace_len, seed, 0),
        mcf.generate_with_base(trace_len, seed + 1, 1 << 40),
    ];
    let scheme: Box<dyn cachesim::PartitionScheme> = match scheme_name {
        "fs" => {
            let a2 = alpha_two_partitions(i1, 0.5, R).expect("feasible");
            Box::new(FsAnalytic::with_alphas(vec![1.0, a2]))
        }
        other => fs_bench::scheme(other),
    };
    let mut cache = PartitionedCache::new(
        fs_bench::random_array(lines, R, seed),
        fs_bench::futility_ranking("lru"),
        scheme,
        2,
    );
    cache.set_targets(&[lines / 2, lines / 2]);
    cache.stats_mut().deviation_histogram = true;

    let mut driver = RateControlledDriver::new(traces, vec![i1, 1.0 - i1], seed ^ 0xF5);
    driver.run(&mut cache, warmup);
    cache.stats_mut().reset();
    driver.run(&mut cache, insertions);

    let p0 = cache.stats().partition(PartitionId(0));
    Outcome {
        label: format!("{scheme_name}(I1={i1})"),
        mad: p0.size_mad(),
        mean_dev: {
            let total: u64 = p0.size_dev_hist.values().sum();
            let sum: i64 = p0
                .size_dev_hist
                .iter()
                .map(|(&d, &n)| d * n as i64)
                .sum();
            if total == 0 {
                f64::NAN
            } else {
                sum as f64 / total as f64
            }
        },
        cdf: p0.size_deviation_cdf(),
    }
}

fn main() {
    let insertions = fs_bench::scaled(150_000) as u64;
    let mut outcomes = Vec::new();
    for scheme in ["fs", "pf"] {
        for &i1 in &[0.1, 0.5] {
            outcomes.push(run(scheme, i1, insertions, 7));
        }
    }

    let mut table = Table::new(vec![
        "config".into(),
        "MAD (lines)".into(),
        "mean dev (lines)".into(),
        "P(|dev| <= 64)".into(),
    ])
    .with_title("Figure 5 — Partition 1 size deviation from target (S1/S2 = 1, 32K-line cache)");
    let mut csv = Vec::new();
    for o in &outcomes {
        let within = prob_within(&o.cdf, 64);
        table.row(vec![
            o.label.clone(),
            format!("{:.1}", o.mad),
            format!("{:.1}", o.mean_dev),
            format!("{within:.3}"),
        ]);
        for &(d, p) in &o.cdf {
            csv.push(vec![o.label.clone(), d.to_string(), format!("{p:.5}")]);
        }
    }
    println!("{table}");
    println!(
        "Paper anchors: PF MAD < 1 line for both splits. FS mean deviation ~0\n\
         (statistically on target); MAD(I1=0.1) < MAD(I1=0.5) ~ 60-70 lines,\n\
         i.e. < 0.5% of the 16K-line partition even in the worst case."
    );
    fs_bench::save_csv("fig5_size_deviation", &["config", "deviation", "cdf"], &csv);
}

/// P(|dev| <= w) from a deviation CDF.
fn prob_within(cdf: &[(i64, f64)], w: i64) -> f64 {
    let mut below = 0.0; // P(dev < -w)
    let mut upto = 0.0; // P(dev <= w)
    for &(d, p) in cdf {
        if d < -w {
            below = p;
        }
        if d <= w {
            upto = p;
        }
    }
    upto - below
}
