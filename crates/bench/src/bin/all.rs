//! Regenerate every figure and table of the paper in one parallel run:
//!
//! ```text
//! cargo run --release -p fs-bench --bin all -- [--quick|--smoke] [--jobs N] [--no-report]
//! ```
//!
//! All sweep points from all nine experiments are thrown into one
//! worker pool, so wide experiments (Figure 6's 84 points) overlap with
//! narrow ones. Per-point seeds derive from the experiment name and
//! point index — the CSVs under `results/` are byte-identical for any
//! `--jobs` value.

use fs_bench::experiments;
use fs_bench::Scale;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let jobs = fs_bench::cli_jobs();
    let report = !std::env::args().any(|a| a == "--no-report");
    let exps = experiments::all();
    let t0 = Instant::now();
    let summaries =
        experiments::run_experiments(&exps, scale, jobs, &fs_bench::results_dir(), true, report);
    let elapsed = t0.elapsed();

    println!("## Sweep summary ({scale:?} scale, {jobs} jobs)");
    let mut total_jobs = 0;
    let mut total_work = std::time::Duration::ZERO;
    for s in &summaries {
        total_jobs += s.jobs;
        total_work += s.work;
        let miss = s
            .mean_miss_rate
            .map_or(String::new(), |m| format!("  mean miss rate {m:.3}"));
        println!(
            "{:>7}  {:>3} points  {:>6.1}s work  {} rows -> {}{miss}",
            s.name,
            s.jobs,
            s.work.as_secs_f64(),
            s.rows,
            s.csv_path.display(),
        );
    }
    println!(
        "{total_jobs} points, {:.1}s of work in {:.1}s wall ({:.1}x speedup)",
        total_work.as_secs_f64(),
        elapsed.as_secs_f64(),
        total_work.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
    );
}
