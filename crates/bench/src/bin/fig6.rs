//! Figure 6: associativity sensitivity of applications — speedup of a
//! fully-associative cache over a direct-mapped cache of the same size,
//! for sizes 128KB–8MB, under (a) OPT and (b) LRU futility ranking.
//!
//! Paper anchors: under OPT, mcf speeds up ≥25% at every size while lbm
//! is flat; gromacs is sensitive only below ~1MB. Under LRU the
//! sensitivities shrink dramatically, and cactusADM *loses* performance
//! with full associativity around 4MB (LRU evicts exactly the wrong
//! lines on a cyclic sweep).

use analysis::Table;
use cachesim::array::SetAssociative;
use cachesim::hashing::ModuloIndex;
use cachesim::PartitionedCache;
use simqos::{System, SystemConfig, Thread};
use workloads::benchmark;

const BENCHES: [&str; 6] = ["mcf", "omnetpp", "gromacs", "astar", "cactusadm", "lbm"];
const SIZES_KB: [usize; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

fn ipc(bench: &str, lines: usize, ranking: &str, fully_assoc: bool, trace_len: usize) -> f64 {
    let array: Box<dyn cachesim::array::CacheArray> = if fully_assoc {
        fs_bench::fa_array(lines)
    } else {
        // Conventional direct-mapped cache: low address bits index.
        Box::new(SetAssociative::new(lines, 1, ModuloIndex))
    };
    let cache = PartitionedCache::new(
        array,
        fs_bench::futility_ranking(ranking),
        fs_bench::scheme("unpartitioned"),
        1,
    );
    let trace = benchmark(bench)
        .expect("known benchmark")
        .generate(trace_len, 0xF16_6);
    let mut sys = System::new(
        SystemConfig::micro2014(),
        cache,
        vec![Thread::new(bench, trace)],
    );
    sys.run(0.3).threads[0].ipc()
}

fn main() {
    let trace_len = fs_bench::scaled(150_000);
    // (bench, ranking) -> speedups per size.
    let results: Vec<(String, String, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = BENCHES
            .iter()
            .flat_map(|&bench| {
                ["opt", "lru"].into_iter().map(move |rank| (bench, rank))
            })
            .map(|(bench, rank)| {
                s.spawn(move || {
                    let speedups = SIZES_KB
                        .iter()
                        .map(|&kb| {
                            let lines = fs_bench::lines_of_kb(kb);
                            let fa = ipc(bench, lines, rank, true, trace_len);
                            let dm = ipc(bench, lines, rank, false, trace_len);
                            fa / dm
                        })
                        .collect();
                    (bench.to_string(), rank.to_string(), speedups)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    let mut csv = Vec::new();
    for rank in ["opt", "lru"] {
        let sub = if rank == "opt" { "6a" } else { "6b" };
        let mut t = Table::new(
            std::iter::once("benchmark".to_string())
                .chain(SIZES_KB.iter().map(|kb| format!("{kb}KB")))
                .collect(),
        )
        .with_title(format!(
            "Figure {sub} — fully-associative vs direct-mapped speedup ({} ranking)",
            rank.to_uppercase()
        ));
        for (bench, r, speedups) in &results {
            if r == rank {
                t.row_mixed(bench.clone(), speedups, 3);
                for (kb, sp) in SIZES_KB.iter().zip(speedups) {
                    csv.push(vec![
                        rank.to_string(),
                        bench.clone(),
                        kb.to_string(),
                        format!("{sp:.4}"),
                    ]);
                }
            }
        }
        println!("{t}");
    }
    println!(
        "Paper anchors: OPT — mcf >= 1.25x everywhere; gromacs ~1.35x at 128KB but\n\
         ~1.0x above 1MB; lbm ~1.0x flat. LRU — all sensitivities shrink (mcf\n\
         <= ~1.10x) and cactusADM dips below 1.0 near 4MB."
    );
    fs_bench::save_csv(
        "fig6_assoc_sensitivity",
        &["ranking", "benchmark", "size_kb", "fa_over_dm_speedup"],
        &csv,
    );
}
