//! Micro-benchmarks of the futility rankings: update cost
//! (insert/hit/evict), rank-query cost and exact-rank (`true_futility`)
//! cost at realistic pool sizes. The coarse-grain timestamp LRU is the
//! paper's O(1) hardware design; the exact rankings pay an O(log n)
//! order-statistic query. The `-bucket` rows are the treap-free
//! two-level bucket backends (DESIGN.md §14) — same futility values as
//! their treap counterparts, O(1) updates and an O(16) counting-prefix
//! exact rank, which is the bucket-vs-treap arm of ROADMAP item 3.

use cachesim::prng::Prng;
use cachesim::{AccessMeta, FutilityRanking, PartitionId};
use fs_bench::timing::{black_box, Group};

const POOL: u64 = 16_384;
const P: PartitionId = PartitionId(0);

const UPDATE_RANKINGS: [&str; 8] = [
    "coarse-lru",
    "coarse-lru-bucket",
    "lru",
    "lfu",
    "opt",
    "random",
    "rrip",
    "rrip-bucket",
];

/// The coarse families, treap vs bucket: the pairs whose exact-rank
/// (shadow descent vs counting prefix-sum) gap drives the miss path.
const COARSE_PAIRS: [&str; 4] = ["coarse-lru", "coarse-lru-bucket", "rrip", "rrip-bucket"];

fn filled(name: &str) -> Box<dyn FutilityRanking> {
    let mut r = fs_bench::futility_ranking(name);
    r.reset(1);
    for i in 0..POOL {
        r.on_insert(P, i, i, AccessMeta::with_next_use(i * 3));
    }
    r
}

fn main() {
    let mut group = Group::new("ranking_hit_update");
    for name in UPDATE_RANKINGS {
        let mut r = filled(name);
        let mut rng = Prng::seed_from_u64(1);
        let mut t = POOL;
        group.bench(name, || {
            t += 1;
            let addr = rng.gen_range(0..POOL);
            r.on_hit(P, addr, t, AccessMeta::with_next_use(t * 3));
        });
    }
    group.finish();

    let mut group = Group::new("ranking_futility_query");
    for name in UPDATE_RANKINGS {
        let r = filled(name);
        let mut rng = Prng::seed_from_u64(2);
        group.bench(name, || {
            let addr = rng.gen_range(0..POOL);
            black_box(r.futility(P, addr));
        });
    }
    group.finish();

    // The per-eviction exact rank: the treap backends descend their
    // shadow tree, the bucket backends answer from 16-lane counter rows.
    let mut group = Group::new("ranking_true_futility");
    for name in COARSE_PAIRS {
        let r = filled(name);
        let mut rng = Prng::seed_from_u64(3);
        group.bench(name, || {
            let addr = rng.gen_range(0..POOL);
            black_box(r.true_futility(P, addr));
        });
    }
    group.finish();

    // Insert+evict pairs: the miss-path bookkeeping.
    let mut group = Group::new("ranking_insert_evict");
    for name in [
        "coarse-lru",
        "coarse-lru-bucket",
        "lru",
        "opt",
        "rrip",
        "rrip-bucket",
    ] {
        let mut r = filled(name);
        let mut t = POOL;
        let mut victim = 0u64;
        group.bench(name, || {
            t += 1;
            r.on_evict(P, victim);
            r.on_insert(P, POOL + t, t, AccessMeta::with_next_use(t * 3));
            victim += 1;
        });
    }
    group.finish();
}
