//! Micro-benchmarks of the futility rankings: update cost
//! (insert/hit/evict) and rank-query cost at realistic pool sizes.
//! The coarse-grain timestamp LRU is the paper's O(1) hardware design;
//! the exact rankings pay an O(log n) order-statistic query.

use cachesim::prng::Prng;
use cachesim::{AccessMeta, FutilityRanking, PartitionId};
use fs_bench::timing::{black_box, Group};

const POOL: u64 = 16_384;
const P: PartitionId = PartitionId(0);

fn filled(name: &str) -> Box<dyn FutilityRanking> {
    let mut r = fs_bench::futility_ranking(name);
    r.reset(1);
    for i in 0..POOL {
        r.on_insert(P, i, i, AccessMeta::with_next_use(i * 3));
    }
    r
}

fn main() {
    let mut group = Group::new("ranking_hit_update");
    for name in ["coarse-lru", "lru", "lfu", "opt", "random"] {
        let mut r = filled(name);
        let mut rng = Prng::seed_from_u64(1);
        let mut t = POOL;
        group.bench(name, || {
            t += 1;
            let addr = rng.gen_range(0..POOL);
            r.on_hit(P, addr, t, AccessMeta::with_next_use(t * 3));
        });
    }
    group.finish();

    let mut group = Group::new("ranking_futility_query");
    for name in ["coarse-lru", "lru", "lfu", "opt", "random"] {
        let r = filled(name);
        let mut rng = Prng::seed_from_u64(2);
        group.bench(name, || {
            let addr = rng.gen_range(0..POOL);
            black_box(r.futility(P, addr));
        });
    }
    group.finish();

    // Insert+evict pairs: the miss-path bookkeeping.
    let mut group = Group::new("ranking_insert_evict");
    for name in ["coarse-lru", "lru", "opt"] {
        let mut r = filled(name);
        let mut t = POOL;
        let mut victim = 0u64;
        group.bench(name, || {
            t += 1;
            r.on_evict(P, victim);
            r.on_insert(P, POOL + t, t, AccessMeta::with_next_use(t * 3));
            victim += 1;
        });
    }
    group.finish();
}
