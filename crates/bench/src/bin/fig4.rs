//! Figure 4: associativity CDFs of FS vs PF for size ratios
//! S1/S2 = 9/1 and 6/4 at equal insertion rates (I1 = I2 = 0.5), on the
//! Section IV substrate: two mcf threads on a 2MB random-candidates
//! cache with R = 16, insertion rates enforced by the rate-controlled
//! driver.
//!
//! Paper anchors: PF's small partition degrades badly (AEF 0.86 → 0.63
//! as its share shrinks 0.4 → 0.1); FS keeps Partition 1 (α = 1) at its
//! full associativity and only mildly degrades the scaled partition
//! (AEF 0.94 → 0.89).

use analysis::{downsample_cdf, Table};
use cachesim::{PartitionId, PartitionedCache};
use futility_core::scaling::alpha_two_partitions;
use futility_core::FsAnalytic;
use workloads::{benchmark, RateControlledDriver};

struct Outcome {
    label: String,
    aef: [f64; 2],
    cdf0: Vec<(f64, f64)>,
    cdf1: Vec<(f64, f64)>,
}

fn run(scheme_name: &str, s1: f64, insertions: u64, seed: u64) -> Outcome {
    const R: usize = 16;
    let lines = fs_bench::lines_of_kb(2048); // 2MB
    let mcf = benchmark("mcf").unwrap();
    let warmup = (lines * 6) as u64;
    let trace_len = ((warmup + insertions) as usize) * 5;
    let traces = vec![
        mcf.generate_with_base(trace_len, seed, 0),
        mcf.generate_with_base(trace_len, seed + 1, 1 << 40),
    ];
    let scheme: Box<dyn cachesim::PartitionScheme> = match scheme_name {
        "fs" => {
            let a2 = alpha_two_partitions(0.5, s1, R).expect("feasible");
            Box::new(FsAnalytic::with_alphas(vec![1.0, a2]))
        }
        other => fs_bench::scheme(other),
    };
    let mut cache = PartitionedCache::new(
        fs_bench::random_array(lines, R, seed),
        fs_bench::futility_ranking("lru"),
        scheme,
        2,
    );
    let t0 = (lines as f64 * s1) as usize;
    cache.set_targets(&[t0, lines - t0]);

    let mut driver = RateControlledDriver::new(traces, vec![0.5, 0.5], seed ^ 0xF1);
    // Warm up (fill the cache and let sizes converge), then measure.
    driver.run(&mut cache, warmup);
    cache.stats_mut().reset();
    driver.run(&mut cache, insertions);

    let p0 = cache.stats().partition(PartitionId(0));
    let p1 = cache.stats().partition(PartitionId(1));
    Outcome {
        label: format!("{scheme_name}(S1={s1})"),
        aef: [p0.aef(), p1.aef()],
        cdf0: downsample_cdf(&p0.associativity_cdf(), 20),
        cdf1: downsample_cdf(&p1.associativity_cdf(), 20),
    }
}

fn main() {
    let insertions = fs_bench::scaled(150_000) as u64;
    let mut outcomes = Vec::new();
    for &s1 in &[0.9, 0.6] {
        for scheme in ["fs", "pf"] {
            outcomes.push(run(scheme, s1, insertions, 42));
        }
    }

    let mut table = Table::new(vec![
        "config".into(),
        "AEF P1 (large)".into(),
        "AEF P2 (small)".into(),
    ])
    .with_title("Figure 4 — average eviction futility, FS vs PF (I1/I2 = 1)");
    for o in &outcomes {
        table.row(vec![
            o.label.clone(),
            fs_bench::fmt3(o.aef[0]),
            fs_bench::fmt3(o.aef[1]),
        ]);
    }
    println!("{table}");
    println!(
        "Paper anchors: FS P1 stays ~constant and high for both splits; FS P2\n\
         degrades only mildly as S2 shrinks (0.94 -> 0.89). PF degrades with\n\
         partition size (P2: 0.86 -> 0.63). FS > PF everywhere.\n"
    );

    println!("## Associativity CDFs (eviction futility -> cumulative probability)");
    let mut csv = Vec::new();
    for o in &outcomes {
        println!("{} P1: {}", o.label, fmt_cdf(&o.cdf0));
        println!("{} P2: {}", o.label, fmt_cdf(&o.cdf1));
        for (x, y) in &o.cdf0 {
            csv.push(vec![o.label.clone(), "P1".into(), format!("{x:.3}"), format!("{y:.4}")]);
        }
        for (x, y) in &o.cdf1 {
            csv.push(vec![o.label.clone(), "P2".into(), format!("{x:.3}"), format!("{y:.4}")]);
        }
    }
    fs_bench::save_csv("fig4_assoc_cdf", &["config", "partition", "futility", "cdf"], &csv);
}

fn fmt_cdf(cdf: &[(f64, f64)]) -> String {
    cdf.iter()
        .map(|(x, y)| format!("{x:.2}:{y:.2}"))
        .collect::<Vec<_>>()
        .join(" ")
}
