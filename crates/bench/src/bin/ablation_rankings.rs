//! Ablation: "our FS partitioning scheme is conceptually independent of
//! a futility ranking scheme" (§VI). Feedback-FS runs over every
//! ranking — exact LRU, coarse timestamp LRU, LFU, OPT, RRIP and the
//! futility-blind random floor — on the same two-thread workload, and
//! we report sizing accuracy, each partition's miss ratio and the AEF.
//!
//! Expected shape: sizing is enforced by all rankings (the scheme only
//! needs *some* ordering to scale); hit ratios follow ranking quality
//! (OPT ≥ LRU ≈ coarse ≈ RRIP ≥ LFU ≥ random on this workload).

use analysis::Table;
use cachesim::{PartitionId, PartitionedCache};
use workloads::{benchmark, InterleavedDriver};

const LINES: usize = 16_384; // 1MB

struct Point {
    occupancy: f64,
    miss0: f64,
    miss1: f64,
    aef0: f64,
}

fn run(ranking: &str, len: usize) -> Point {
    let mut cache = PartitionedCache::new(
        fs_bench::l2_array(LINES, 0xAB3),
        fs_bench::futility_ranking(ranking),
        fs_bench::scheme("fs-feedback"),
        2,
    );
    let t0 = LINES * 5 / 8;
    cache.set_targets(&[t0, LINES - t0]);
    let traces = vec![
        benchmark("mcf")
            .expect("profile")
            .generate_with_base(len, 41, 0),
        benchmark("omnetpp")
            .expect("profile")
            .generate_with_base(len, 42, 1 << 40),
    ];
    InterleavedDriver::new(traces).run(&mut cache, 0.3);
    let p0 = cache.stats().partition(PartitionId(0));
    let p1 = cache.stats().partition(PartitionId(1));
    Point {
        occupancy: cache.state().actual[0] as f64 / t0 as f64,
        miss0: p0.miss_ratio(),
        miss1: p1.miss_ratio(),
        aef0: p0.aef(),
    }
}

fn main() {
    let len = fs_bench::scaled(150_000);
    let mut t = Table::new(vec![
        "ranking".into(),
        "P1 occupancy/target".into(),
        "P1 miss ratio".into(),
        "P2 miss ratio".into(),
        "P1 AEF".into(),
    ])
    .with_title("Ablation — feedback FS across futility rankings (mcf + omnetpp, 62.5/37.5)");
    let mut csv = Vec::new();
    for ranking in ["opt", "lru", "coarse-lru", "rrip", "lfu", "random"] {
        let p = run(ranking, len);
        t.row(vec![
            ranking.into(),
            format!("{:.3}", p.occupancy),
            format!("{:.3}", p.miss0),
            format!("{:.3}", p.miss1),
            fs_bench::fmt3(p.aef0),
        ]);
        csv.push(vec![
            ranking.into(),
            format!("{:.4}", p.occupancy),
            format!("{:.4}", p.miss0),
            format!("{:.4}", p.miss1),
            format!("{:.4}", p.aef0),
        ]);
    }
    println!("{t}");
    println!(
        "Sizing is ranking-independent (occupancy ~1.0 everywhere); hit ratios\n\
         track ranking quality, with OPT as the performance headroom the paper\n\
         reports in §VI and random as the futility-blind floor."
    );
    fs_bench::save_csv(
        "ablation_rankings",
        &["ranking", "p1_occupancy", "p1_miss", "p2_miss", "p1_aef"],
        &csv,
    );
}
