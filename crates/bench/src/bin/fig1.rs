//! Figure 1: the associativity-and-sizing dilemma of replacement-based
//! partitioning, reconstructed as a runnable demonstration.
//!
//! A 10-line cache is split equally between two partitions, but their
//! current sizes are 4 and 6. An insertion for Partition 2 draws two
//! replacement candidates: the *least* useful line of Partition 1 and
//! the *most* useful line of Partition 2. PF must pick the oversized
//! partition's most-useful line (hurting associativity); a pure
//! max-futility policy must pick Partition 1's line (hurting sizing);
//! FS weighs the scaled futilities and resolves the dilemma smoothly.

use cachesim::{Candidate, PartitionId, PartitionScheme, PartitionState};
use futility_core::FsAnalytic;

fn main() {
    let mut state = PartitionState::new(2, 10);
    state.targets = vec![5, 5];
    state.actual = vec![4, 6];

    // Candidate 0: partition 1's least useful line (futility 1.0).
    // Candidate 1: partition 2's most useful line (futility 1/6).
    let cands = [
        Candidate {
            slot: 0,
            addr: 0xA,
            part: PartitionId(0),
            futility: 1.0,
        },
        Candidate {
            slot: 1,
            addr: 0xB,
            part: PartitionId(1),
            futility: 1.0 / 6.0,
        },
    ];

    println!("Figure 1 — the associativity/sizing dilemma");
    println!("cache: 10 lines, equal targets (5/5), actual sizes 4/6");
    println!("candidates: P1's least useful line (f=1.00) vs P2's most useful (f=0.17)\n");

    let mut pf = fs_bench::scheme("pf");
    let v = pf.victim(PartitionId(1), &cands, &state).victim;
    println!(
        "PF evicts candidate {v} ({}) — sizing first, associativity sacrificed",
        name(v)
    );
    assert_eq!(v, 1, "PF must take the oversized partition's line");

    let mut unpart = fs_bench::scheme("unpartitioned");
    let v = unpart.victim(PartitionId(1), &cands, &state).victim;
    println!(
        "max-futility evicts candidate {v} ({}) — associativity first, sizes drift",
        name(v)
    );
    assert_eq!(v, 0);

    // FS with a modest scaling factor on the oversized partition: the
    // dilemma dissolves — P1's genuinely useless line still loses...
    let mut fs = FsAnalytic::with_alphas(vec![1.0, 2.0]);
    let v = fs.victim(PartitionId(1), &cands, &state).victim;
    println!(
        "FS (α₂=2) evicts candidate {v} ({}) — scaled futility 1.00 vs 0.33",
        name(v)
    );
    assert_eq!(v, 0);

    // ...but once P2's candidate is merely mediocre, the scaling tips
    // the decision toward restoring the sizes.
    let cands2 = [
        Candidate {
            futility: 0.45,
            ..cands[0]
        },
        Candidate {
            futility: 0.50,
            ..cands[1]
        },
    ];
    let v = fs.victim(PartitionId(1), &cands2, &state).victim;
    println!(
        "FS (α₂=2) with f = 0.45 vs 0.50 evicts candidate {v} ({}) — scaled 0.45 vs 1.00",
        name(v)
    );
    assert_eq!(v, 1);
    println!("\nFS trades a small temporal size deviation for preserved associativity (§IV-E).");
}

fn name(v: usize) -> &'static str {
    if v == 0 {
        "P1's least useful"
    } else {
        "P2's most useful"
    }
}
