//! Figure 2: partitioning-induced associativity loss under the
//! Partitioning-First scheme. Workloads duplicate one benchmark N times
//! (N = 1, 2, 4, 8, 16, 32) on a 16-way set-associative cache with
//! 512KB per partition, OPT futility ranking; PF enforcement.
//!
//! * Fig. 2a — associativity CDF / AEF of the first partition (mcf):
//!   AEF decays from ~0.95 at N=1 toward the 0.5 random floor by N=32.
//! * Fig. 2b — misses of the first partition (normalized to N=1):
//!   grows with N; mcf worst (~+37% at N=32), lbm flat.
//! * Fig. 2c — IPC of the first partition (normalized to N=1): drops
//!   with N; mcf worst (~−24%), lbm flat.

use analysis::Table;
use cachesim::{PartitionId, PartitionedCache};
use simqos::{System, SystemConfig, Thread};
use workloads::{benchmark, ALL_BENCHMARKS};

const PARTITION_LINES: usize = 8192; // 512KB
const NS: [usize; 6] = [1, 2, 4, 8, 16, 32];

struct Point {
    n: usize,
    misses: u64,
    ipc: f64,
    aef: f64,
    cdf: Vec<(f64, f64)>,
}

fn run_one(bench: &str, n: usize, trace_len: usize) -> Point {
    let profile = benchmark(bench).expect("known benchmark");
    let lines = PARTITION_LINES * n;
    let cache = PartitionedCache::new(
        fs_bench::l2_array(lines, 0xF16_2 + n as u64),
        fs_bench::futility_ranking("opt"),
        fs_bench::scheme("pf"),
        n,
    );
    let threads: Vec<Thread> = (0..n)
        .map(|i| {
            Thread::new(
                format!("{bench}#{i}"),
                profile.generate_with_base(trace_len, 1000 + i as u64 * 2, (i as u64) << 40),
            )
        })
        .collect();
    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    // Targets default to the equal share (512KB each).
    let result = sys.run(0.3);
    let p0 = sys.cache().stats().partition(PartitionId(0));
    Point {
        n,
        misses: p0.misses,
        ipc: result.threads[0].ipc(),
        aef: p0.aef(),
        cdf: analysis::downsample_cdf(&p0.associativity_cdf(), 10),
    }
}

fn main() {
    let trace_len = fs_bench::scaled(40_000);
    let results: Vec<(String, Vec<Point>)> = std::thread::scope(|s| {
        let handles: Vec<_> = ALL_BENCHMARKS
            .iter()
            .map(|&bench| {
                s.spawn(move || {
                    let pts = NS.iter().map(|&n| run_one(bench, n, trace_len)).collect();
                    (bench.to_string(), pts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    // Fig 2a: associativity CDF of the first partition for mcf.
    println!("## Figure 2a — associativity CDF of partition 0 (mcf, PF, OPT ranking)");
    let mcf = &results.iter().find(|(b, _)| b == "mcf").expect("mcf ran").1;
    for p in mcf.iter() {
        let series: Vec<String> = p
            .cdf
            .iter()
            .map(|(x, y)| format!("{x:.1}:{y:.2}"))
            .collect();
        println!("N={:>2}  AEF={:.2}  CDF {}", p.n, p.aef, series.join(" "));
    }
    println!(
        "Paper anchors: AEF 0.95 (N=1) -> 0.82 -> 0.74 -> 0.66 -> 0.60 -> 0.56 (N=32),\n\
         approaching the futility-blind diagonal F(x) = x.\n"
    );

    // Fig 2b/2c: misses and IPC of the first partition, normalized.
    let mut tb = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(NS.iter().map(|n| format!("N={n}")))
            .collect(),
    )
    .with_title("Figure 2b — misses of partition 0 (normalized to N=1)");
    let mut tc = Table::new(
        std::iter::once("benchmark".to_string())
            .chain(NS.iter().map(|n| format!("N={n}")))
            .collect(),
    )
    .with_title("Figure 2c — IPC of partition 0 (normalized to N=1)");
    let mut csv = Vec::new();
    for (bench, pts) in &results {
        let m1 = pts[0].misses.max(1) as f64;
        let i1 = pts[0].ipc;
        let miss_norm: Vec<f64> = pts.iter().map(|p| p.misses as f64 / m1).collect();
        let ipc_norm: Vec<f64> = pts.iter().map(|p| p.ipc / i1).collect();
        tb.row_mixed(bench.clone(), &miss_norm, 3);
        tc.row_mixed(bench.clone(), &ipc_norm, 3);
        for (k, p) in pts.iter().enumerate() {
            csv.push(vec![
                bench.clone(),
                p.n.to_string(),
                format!("{:.4}", p.aef),
                format!("{:.4}", miss_norm[k]),
                format!("{:.4}", ipc_norm[k]),
            ]);
        }
    }
    println!("{tb}");
    println!(
        "Paper anchors: misses grow with N for reuse-heavy benchmarks (mcf ~1.37x\n\
         at N=32) and stay ~flat for streaming lbm.\n"
    );
    println!("{tc}");
    println!(
        "Paper anchors: IPC decays with N for associativity-sensitive benchmarks\n\
         (mcf ~0.76x at N=32); lbm is insensitive. PF does not scale with N."
    );
    fs_bench::save_csv(
        "fig2_pf_degradation",
        &["benchmark", "N", "aef_p0", "misses_norm", "ipc_norm"],
        &csv,
    );
}
