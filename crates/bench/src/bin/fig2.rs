//! Figure 2, regenerated standalone; see `fs_bench::experiments::fig2`
//! for the experiment definition and `--bin all` for the full sweep.

fn main() {
    fs_bench::experiments::run_single_from_cli(&fs_bench::experiments::FIG2);
}
