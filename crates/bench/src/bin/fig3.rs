//! Figure 3: analytically calculated scaling factors of Partition 2
//! (α₂) for insertion rates I₂ ∈ {0.6, 0.7, 0.8, 0.9} and size
//! fractions S₂ ∈ [0.2, 0.4], with R = 16 candidates (Equation 1).
//! Also demonstrates the `I₁ < S₁^R` partitioning bound shared by all
//! replacement-based schemes (Section IV-B).

use analysis::Table;
use futility_core::scaling::{alpha_two_partitions, ScalingError};

fn main() {
    const R: usize = 16;
    let s2_values: Vec<f64> = (0..=8).map(|k| 0.20 + 0.025 * k as f64).collect();
    let i2_values = [0.6, 0.7, 0.8, 0.9];

    let mut header = vec!["S2".to_string()];
    header.extend(i2_values.iter().map(|i2| format!("a2 @ I2={i2}")));
    let mut table = Table::new(header).with_title(
        "Figure 3 — scaling factor of Partition 2 vs its size fraction (R = 16)",
    );
    let mut rows_csv = Vec::new();
    for &s2 in &s2_values {
        let alphas: Vec<f64> = i2_values
            .iter()
            .map(|&i2| {
                alpha_two_partitions(1.0 - i2, 1.0 - s2, R)
                    .expect("all Figure 3 points are feasible")
            })
            .collect();
        table.row_mixed(format!("{s2:.3}"), &alphas, 3);
        let mut row = vec![format!("{s2:.3}")];
        row.extend(alphas.iter().map(|a| format!("{a:.4}")));
        rows_csv.push(row);
    }
    println!("{table}");
    println!(
        "Paper anchors: the I2=0.9 curve starts near 2.8–3.0 at S2=0.2 and all\n\
         curves decay toward 1.0 as S2 grows; larger I2 ⇒ larger α2 throughout.\n"
    );

    // The partitioning bound: I1 <= S1^R is unenforceable.
    let s1 = 0.8f64;
    let bound = s1.powi(R as i32);
    println!("## Partitioning bound (Section IV-B)");
    println!("S1 = {s1}, R = {R}: bound S1^R = {bound:.3e}");
    for i1 in [bound * 0.5, bound * 1.5, 0.01] {
        match alpha_two_partitions(i1, s1, R) {
            Ok(a) => println!("  I1 = {i1:.3e} -> feasible, alpha2 = {a:.3}"),
            Err(ScalingError::Infeasible { .. }) => {
                println!("  I1 = {i1:.3e} -> INFEASIBLE (below the bound)")
            }
            Err(e) => println!("  I1 = {i1:.3e} -> error: {e}"),
        }
    }
    println!(
        "\nPaper anchor: with R = 16, a partition with I = 0.01 can still occupy\n\
         ~75% of the cache; 0.01 > 0.75^16 = {:.2e} confirms feasibility.",
        0.75f64.powi(16)
    );

    fs_bench::save_csv(
        "fig3_scaling_factors",
        &["s2", "a2_i2_0.6", "a2_i2_0.7", "a2_i2_0.8", "a2_i2_0.9"],
        &rows_csv,
    );
}
