//! Micro-benchmarks of candidate generation and the full evict+install
//! cycle per cache-array organization (set-associative, skew-associative,
//! zcache with relocation, random-candidates). Run in release mode.

use cachesim::array::{CacheArray, RandomCandidates, SetAssociative, SkewAssociative, ZCache};
use cachesim::hashing::LineHash;
use cachesim::prng::Prng;
use cachesim::PartitionId;
use fs_bench::timing::{black_box, Group};

const LINES: usize = 16_384;

fn fill(array: &mut dyn CacheArray, seed: u64) {
    let mut rng = Prng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..LINES * 8 {
        let addr: u64 = rng.gen_range(0..1 << 24);
        if array.lookup(addr).is_some() {
            continue;
        }
        out.clear();
        array.candidate_slots(addr, &mut out);
        if let Some(&slot) = out.iter().find(|&&s| array.occupant(s).is_none()) {
            array.install(slot, addr, PartitionId(0));
        }
    }
}

fn arrays() -> Vec<(&'static str, Box<dyn CacheArray>)> {
    vec![
        (
            "set_assoc_16w",
            Box::new(SetAssociative::with_lines(LINES, 16, LineHash::new(1))),
        ),
        (
            "skew_assoc_16w",
            Box::new(SkewAssociative::new(LINES / 16, 16, 2)),
        ),
        ("zcache_4w_r16", Box::new(ZCache::new(LINES / 4, 4, 16, 3))),
        ("random_r16", Box::new(RandomCandidates::new(LINES, 16, 4))),
    ]
}

fn main() {
    let mut group = Group::new("candidate_generation");
    for (name, mut array) in arrays() {
        fill(array.as_mut(), 9);
        let mut rng = Prng::seed_from_u64(5);
        let mut out = Vec::with_capacity(32);
        group.bench(name, || {
            let addr: u64 = rng.gen_range(0..1 << 24);
            out.clear();
            array.candidate_slots(addr, &mut out);
            black_box(out.len());
        });
    }
    group.finish();

    // Full evict+install cycle, including zcache relocation chains.
    let mut group = Group::new("evict_install_cycle");
    for (name, mut array) in arrays() {
        fill(array.as_mut(), 11);
        let mut rng = Prng::seed_from_u64(6);
        let mut out = Vec::with_capacity(32);
        group.bench(name, || {
            let addr: u64 = rng.gen_range(0..1 << 24);
            if array.lookup(addr).is_some() {
                return;
            }
            out.clear();
            array.candidate_slots(addr, &mut out);
            // Evict the deepest candidate to exercise relocation.
            let victim = *out.last().expect("candidates");
            if array.occupant(victim).is_some() {
                array.evict(victim);
            }
            array.install(victim, addr, PartitionId(0));
        });
    }
    group.finish();
}
