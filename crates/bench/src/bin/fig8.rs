//! Figure 8 (sensitivity study, §VIII — the source text truncates here;
//! reconstructed as the advertised "sensitivity to two configuration
//! parameters"): how the feedback-FS controller's interval length `l`
//! and changing ratio `Δα` affect sizing precision (MAD) and
//! associativity (AEF), on the Section IV substrate (two mcf threads,
//! 2MB random-candidates cache, R = 16, coarse timestamp LRU — the
//! ranking the hardware design actually uses).
//!
//! Expected shape: small `l` or large `Δα` reacts faster (smaller size
//! deviations) but over-scales futility and costs associativity; the
//! paper's defaults (l = 16, Δα = 2) sit at the knee.

use analysis::Table;
use cachesim::{PartitionId, PartitionedCache};
use futility_core::{FeedbackConfig, FsFeedback};
use workloads::{benchmark, RateControlledDriver};

struct Point {
    mad: f64,
    aef0: f64,
    aef1: f64,
}

fn run_one(config: FeedbackConfig, insertions: u64, seed: u64) -> Point {
    const R: usize = 16;
    let lines = fs_bench::lines_of_kb(2048);
    let warmup = (lines * 8) as u64;
    let mcf = benchmark("mcf").expect("profile");
    let trace_len = ((warmup + insertions) as usize) * 5;
    let traces = vec![
        mcf.generate_with_base(trace_len, seed, 0),
        mcf.generate_with_base(trace_len, seed + 1, 1 << 40),
    ];
    let mut cache = PartitionedCache::new(
        fs_bench::random_array(lines, R, seed),
        fs_bench::futility_ranking("coarse-lru"),
        Box::new(FsFeedback::new(config)),
        2,
    );
    // An asymmetric split keeps the controller working: 70/30 targets
    // under equal insertion rates.
    let t0 = lines * 7 / 10;
    cache.set_targets(&[t0, lines - t0]);
    let mut driver = RateControlledDriver::new(traces, vec![0.5, 0.5], seed ^ 0xF8);
    driver.run(&mut cache, warmup);
    cache.stats_mut().reset();
    driver.run(&mut cache, insertions);
    let p0 = cache.stats().partition(PartitionId(0));
    let p1 = cache.stats().partition(PartitionId(1));
    Point {
        mad: p1.size_mad(),
        aef0: p0.aef(),
        aef1: p1.aef(),
    }
}

fn main() {
    let insertions = fs_bench::scaled(100_000) as u64;

    let intervals = [4u32, 8, 16, 32, 64, 128];
    let ratios = [1.25f64, 1.5, 2.0, 4.0, 8.0];

    let (by_l, by_r): (Vec<Point>, Vec<Point>) = std::thread::scope(|s| {
        let h1: Vec<_> = intervals
            .iter()
            .map(|&l| {
                s.spawn(move || {
                    run_one(
                        FeedbackConfig {
                            interval: l,
                            ..Default::default()
                        },
                        insertions,
                        21,
                    )
                })
            })
            .collect();
        let h2: Vec<_> = ratios
            .iter()
            .map(|&r| {
                s.spawn(move || {
                    run_one(
                        FeedbackConfig {
                            ratio: r,
                            ..Default::default()
                        },
                        insertions,
                        21,
                    )
                })
            })
            .collect();
        (
            h1.into_iter().map(|h| h.join().expect("worker")).collect(),
            h2.into_iter().map(|h| h.join().expect("worker")).collect(),
        )
    });

    let mut csv = Vec::new();
    let mut t = Table::new(vec![
        "interval l".into(),
        "MAD P2 (lines)".into(),
        "AEF P1".into(),
        "AEF P2".into(),
    ])
    .with_title("Figure 8a — feedback-FS sensitivity to interval length (Δα = 2)");
    for (l, p) in intervals.iter().zip(&by_l) {
        t.row(vec![
            l.to_string(),
            format!("{:.1}", p.mad),
            fs_bench::fmt3(p.aef0),
            fs_bench::fmt3(p.aef1),
        ]);
        csv.push(vec![
            "interval".into(),
            l.to_string(),
            format!("{:.2}", p.mad),
            format!("{:.4}", p.aef0),
            format!("{:.4}", p.aef1),
        ]);
    }
    println!("{t}");

    let mut t = Table::new(vec![
        "ratio Δα".into(),
        "MAD P2 (lines)".into(),
        "AEF P1".into(),
        "AEF P2".into(),
    ])
    .with_title("Figure 8b — feedback-FS sensitivity to changing ratio (l = 16)");
    for (r, p) in ratios.iter().zip(&by_r) {
        t.row(vec![
            format!("{r}"),
            format!("{:.1}", p.mad),
            fs_bench::fmt3(p.aef0),
            fs_bench::fmt3(p.aef1),
        ]);
        csv.push(vec![
            "ratio".into(),
            format!("{r}"),
            format!("{:.2}", p.mad),
            format!("{:.4}", p.aef0),
            format!("{:.4}", p.aef1),
        ]);
    }
    println!("{t}");
    println!(
        "Measured shape: the interval l governs sizing precision (MAD grows\n\
         roughly linearly with l) at negligible associativity cost, while the\n\
         changing ratio governs associativity (larger steps over-scale the\n\
         shrunk partition and erode its AEF) at flat MAD. The paper's default\n\
         (l = 16, ratio = 2) buys hardware simplicity (bit shifts, 4-bit\n\
         counters) at a modest corner of both costs."
    );
    fs_bench::save_csv(
        "fig8_sensitivity",
        &["knob", "value", "mad_p2", "aef_p1", "aef_p2"],
        &csv,
    );
}
