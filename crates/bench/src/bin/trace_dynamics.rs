//! Render the *temporal* behavior behind the paper's summary figures,
//! using the cachesim flight recorder:
//!
//! * `fs-walk` — the Figure-5 random walk: Partition 1's occupancy
//!   deviation from target under analytic FS at I1 = 0.1 and I1 = 0.5.
//! * `feedback` — the Figure-8 controller: feedback-FS shift-width /
//!   scaling-factor trajectories while holding an asymmetric 70/30
//!   split under equal insertion pressure.
//! * `vantage` — Vantage's aperture and `fmax`-calibration dynamics
//!   plus the forced-eviction rate on the same asymmetric split.
//! * `ranking-ops` — the feedback scenario again on the bucket-backed
//!   coarse ranking with its opt-in op counters enabled
//!   (`FutilityRanking::set_op_probes`): per-interval ranking
//!   operation counts (inserts/removes/hits/retags/rank queries), so
//!   miss-path time can be attributed to ranking ops.
//!
//! Each scenario writes its full time series (long format, plus a
//! scenario column) into `results/trace_dynamics.csv` and prints ASCII
//! strip charts of the headline series. Deterministic for a given
//! scale: seeds derive from `seed_for("trace_dynamics", index)`.
//!
//! Usage: trace_dynamics [--smoke|--quick]

use cachesim::prng::{seed_for, SplitMix64};
use cachesim::{FutilityRanking, PartitionId, PartitionedCache, Sample};
use fs_bench::Scale;
use futility_core::scaling::alpha_two_partitions;
use futility_core::{FsAnalytic, FsFeedback};
use workloads::{benchmark, RateControlledDriver};

const R: usize = 16;

struct Scenario {
    name: String,
    samples: Vec<Sample>,
    csv_rows: Vec<Vec<String>>,
}

/// Build the two-thread mcf substrate of Section IV, run `warmup`
/// insertions, reset stats, attach the recorder and run `insertions`
/// more. Returns the recorded samples + CSV rows.
fn run_recorded(
    name: &str,
    mut cache: PartitionedCache,
    rates: Vec<f64>,
    warmup: u64,
    insertions: u64,
    seed: u64,
) -> Scenario {
    let mut sm = SplitMix64::new(seed);
    let mcf = benchmark("mcf").expect("profile");
    let trace_len = ((warmup + insertions) as usize) * 5;
    let traces: Vec<_> = (0..rates.len())
        .map(|i| mcf.generate_with_base(trace_len, sm.next_u64(), (i as u64) << 40))
        .collect();
    let mut driver = RateControlledDriver::new(traces, rates, sm.next_u64());
    driver.run(&mut cache, warmup);
    cache.stats_mut().reset();
    cache.attach_timeseries((insertions / 256).max(1), 1 << 16);
    driver.run(&mut cache, insertions);
    let ts = cache.timeseries().expect("recorder attached");
    Scenario {
        name: name.to_string(),
        samples: ts.samples().copied().collect(),
        csv_rows: ts.rows(),
    }
}

fn fs_walk(scale: Scale, index: &mut u64) -> Vec<Scenario> {
    let lines = scale.lines(fs_bench::lines_of_kb(2048));
    let insertions = scale.accesses(150_000) as u64;
    let warmup = (lines * 22) as u64;
    [0.1f64, 0.5]
        .iter()
        .map(|&i1| {
            let seed = seed_for("trace_dynamics", next_index(index));
            let mut sm = SplitMix64::new(seed);
            let a2 = alpha_two_partitions(i1, 0.5, R).expect("feasible");
            let mut cache = PartitionedCache::new(
                fs_bench::random_array(lines, R, sm.next_u64()),
                fs_bench::futility_ranking("lru"),
                Box::new(FsAnalytic::with_alphas(vec![1.0, a2])),
                2,
            );
            cache.set_targets(&[lines / 2, lines / 2]);
            run_recorded(
                &format!("fs-walk(I1={i1})"),
                cache,
                vec![i1, 1.0 - i1],
                warmup,
                insertions,
                sm.next_u64(),
            )
        })
        .collect()
}

fn feedback(scale: Scale, index: &mut u64) -> Vec<Scenario> {
    let lines = scale.lines(fs_bench::lines_of_kb(2048));
    let insertions = scale.accesses(100_000) as u64;
    let warmup = (lines * 8) as u64;
    let seed = seed_for("trace_dynamics", next_index(index));
    let mut sm = SplitMix64::new(seed);
    let mut cache = PartitionedCache::new(
        fs_bench::random_array(lines, R, sm.next_u64()),
        fs_bench::futility_ranking("coarse-lru"),
        Box::new(FsFeedback::default_config()),
        2,
    );
    let t0 = lines * 7 / 10;
    cache.set_targets(&[t0, lines - t0]);
    vec![run_recorded(
        "feedback(l=16,da=2)",
        cache,
        vec![0.5, 0.5],
        warmup,
        insertions,
        sm.next_u64(),
    )]
}

fn vantage(scale: Scale, index: &mut u64) -> Vec<Scenario> {
    let lines = scale.lines(fs_bench::lines_of_kb(2048));
    let insertions = scale.accesses(100_000) as u64;
    let warmup = (lines * 8) as u64;
    let seed = seed_for("trace_dynamics", next_index(index));
    let mut sm = SplitMix64::new(seed);
    let mut cache = PartitionedCache::new(
        fs_bench::random_array(lines, R, sm.next_u64()),
        fs_bench::futility_ranking("lru"),
        fs_bench::scheme("vantage"),
        2,
    );
    let t0 = lines * 7 / 10;
    cache.set_targets(&[t0, lines - t0]);
    vec![run_recorded(
        "vantage(70/30)",
        cache,
        vec![0.5, 0.5],
        warmup,
        insertions,
        sm.next_u64(),
    )]
}

fn ranking_ops(scale: Scale, index: &mut u64) -> Vec<Scenario> {
    let lines = scale.lines(fs_bench::lines_of_kb(2048));
    let insertions = scale.accesses(100_000) as u64;
    let warmup = (lines * 8) as u64;
    let seed = seed_for("trace_dynamics", next_index(index));
    let mut sm = SplitMix64::new(seed);
    // The feedback scenario on the bucket backend, with the ranking's
    // lazy op counters switched on: the recorder then carries one
    // global `rank_*` series per op kind, each sample the count since
    // the previous tick (the first tick also absorbs the warmup).
    let mut rk = fs_bench::futility_ranking("coarse-lru-bucket");
    rk.set_op_probes(true);
    let mut cache = PartitionedCache::new(
        fs_bench::random_array(lines, R, sm.next_u64()),
        rk,
        Box::new(FsFeedback::default_config()),
        2,
    );
    let t0 = lines * 7 / 10;
    cache.set_targets(&[t0, lines - t0]);
    vec![run_recorded(
        "ranking-ops(bucket)",
        cache,
        vec![0.5, 0.5],
        warmup,
        insertions,
        sm.next_u64(),
    )]
}

fn next_index(index: &mut u64) -> u64 {
    let i = *index;
    *index += 1;
    i
}

/// Values of one `(series, part)` over time, in sample order.
fn series_of(samples: &[Sample], series: &str, part: Option<u16>) -> Vec<f64> {
    samples
        .iter()
        .filter(|s| s.series == series && s.part == part.map(PartitionId))
        .map(|s| s.value)
        .collect()
}

/// One-line ASCII strip chart: values bucketed to at most 72 columns,
/// levels mapped onto a 10-character ramp between the series min/max.
fn strip(values: &[f64]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "(no data)".into();
    }
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let cols = finite.len().min(72);
    let per = (finite.len() as f64 / cols as f64).ceil() as usize;
    let mut out = String::with_capacity(cols);
    for chunk in finite.chunks(per) {
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let t = if max > min {
            (mean - min) / (max - min)
        } else {
            0.5
        };
        let lvl = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
        out.push(RAMP[lvl] as char);
    }
    out
}

fn mean_abs(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().map(|v| v.abs()).sum::<f64>() / finite.len() as f64
    }
}

fn show(label: &str, values: &[f64]) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    println!(
        "  {label:<22} [{min:>9.2}, {max:>9.2}]  |{}|",
        strip(values)
    );
}

fn main() {
    let scale = Scale::from_args();
    let mut index = 0u64;
    let mut scenarios = Vec::new();
    scenarios.extend(fs_walk(scale, &mut index));
    scenarios.extend(feedback(scale, &mut index));
    scenarios.extend(vantage(scale, &mut index));
    scenarios.extend(ranking_ops(scale, &mut index));

    // One combined long-format CSV, scenario column first.
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .flat_map(|sc| {
            sc.csv_rows.iter().map(|r| {
                let mut row = Vec::with_capacity(r.len() + 1);
                row.push(sc.name.clone());
                row.extend(r.iter().cloned());
                row
            })
        })
        .collect();
    fs_bench::save_csv(
        "trace_dynamics",
        &["scenario", "time", "series", "part", "value"],
        &rows,
    );
    println!(
        "trace_dynamics: {} scenarios, {} samples -> results/trace_dynamics.csv\n",
        scenarios.len(),
        rows.len()
    );

    // Figure-5 walk: the deviation of Partition 1 under both splits.
    println!("## Figure-5-style deviation walk (P1 occupancy - target, lines)");
    let mut walk_mads = Vec::new();
    for sc in scenarios.iter().filter(|s| s.name.starts_with("fs-walk")) {
        let dev = series_of(&sc.samples, "deviation", Some(0));
        walk_mads.push((sc.name.clone(), mean_abs(&dev)));
        show(&sc.name, &dev);
    }
    for (name, mad) in &walk_mads {
        println!("  sampled MAD {name}: {mad:.1} lines");
    }
    println!();

    // Figure-8 controller: shift widths and the partition they steer.
    println!("## Feedback controller trajectories (Algorithm 2)");
    for sc in scenarios.iter().filter(|s| s.name.starts_with("feedback")) {
        for p in [0u16, 1] {
            show(
                &format!("shift_width P{}", p + 1),
                &series_of(&sc.samples, "shift_width", Some(p)),
            );
        }
        show(
            "deviation P2",
            &series_of(&sc.samples, "deviation", Some(1)),
        );
    }
    println!();

    // Vantage: apertures, calibration and forced evictions.
    println!("## Vantage aperture / calibration dynamics");
    for sc in scenarios.iter().filter(|s| s.name.starts_with("vantage")) {
        for p in [0u16, 1] {
            show(
                &format!("aperture P{}", p + 1),
                &series_of(&sc.samples, "aperture", Some(p)),
            );
        }
        show("fmax P1", &series_of(&sc.samples, "fmax", Some(0)));
        show(
            "forced_evict_rate",
            &series_of(&sc.samples, "forced_eviction_rate", None),
        );
        show(
            "unmanaged occupancy",
            &series_of(&sc.samples, "unmanaged_occupancy", None),
        );
    }
    println!();

    // Ranking op attribution: per-interval operation counts from the
    // bucket backend's opt-in counters (skip the warmup-absorbing
    // first sample so the strips show steady-state rates).
    println!("## Ranking op counters (bucket coarse-LRU, per recorder interval)");
    for sc in scenarios
        .iter()
        .filter(|s| s.name.starts_with("ranking-ops"))
    {
        for series in [
            "rank_inserts",
            "rank_removes",
            "rank_hits",
            "rank_queries",
            "rank_byte_queries",
        ] {
            let vals = series_of(&sc.samples, series, None);
            show(series, vals.get(1..).unwrap_or(&vals));
        }
    }
}
