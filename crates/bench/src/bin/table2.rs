//! Table II: the evaluated system configuration, as encoded by
//! `SystemConfig::micro2014()` and the experiment defaults, plus the
//! inventory of schemes and rankings the harness can drive.

use simqos::SystemConfig;

fn main() {
    let cfg = SystemConfig::micro2014();
    println!("## Table II — system configuration");
    println!("{}", cfg.describe());
    println!(
        "L2 $    8MB shared ({} lines), 16-way set associative, hashed (XOR-style) indexing",
        fs_bench::lines_of_kb(8192)
    );
    println!("Cores   32 (Figure 7 runs 32 concurrent threads)");
    println!();
    println!("Futility rankings: {}", ranking::ALL_RANKINGS.join(", "));
    println!(
        "Enforcement schemes: fs (analytic), fs-feedback, {}",
        baselines::ALL_BASELINES.join(", ")
    );
    println!(
        "\nFeedback-FS hardware budget (Section V-B): coarse timestamp LRU\n\
         (~1.5% state overhead) + five registers per partition\n\
         (ActualSize, TargetSize, 4-bit insertion/eviction counters,\n\
         3-bit ScalingShiftWidth); replacement path = 3R-1 narrow ops."
    );
}
