//! End-to-end engine throughput over the full workload × array ×
//! ranking × scheme grid: fixed deterministic traces, one cell per
//! combination, accesses/sec per cell plus a geomean, emitted as
//! machine-readable `BENCH_engine.json` so the perf trajectory is
//! tracked from PR to PR.
//!
//! Two workloads bracket the engine's two hot paths:
//! * `churn` — per-partition footprint 4× the cache, so the steady
//!   state is eviction-heavy (the miss/replacement path dominates);
//! * `resident` — total footprint half the cache, so after the cold
//!   fill every access hits (the lookup/hit path dominates, as in the
//!   Fig 6/7 sweeps).
//!
//! Usage:
//!   bench_engine [--smoke|--quick] [--out FILE] [--filter SUBSTR]
//!   bench_engine --validate FILE                  # check an emitted file
//!   bench_engine --validate FILE --against BASE   # + fail on >10% geomean drop
//!   bench_engine --ab-bucket [--gate X]   # interleaved bucket-vs-treap A/B
//!   bench_engine --ab-null                # A/A null of the same protocol
//!
//! `--ab-bucket` runs the in-process interleaved A/B protocol
//! (EXPERIMENTS.md) over the coarse-ranking cells: for every workload ×
//! array × {coarse-lru, rrip} × {fs-feedback, unpartitioned} cell it
//! builds a treap-backed and a bucket-backed engine on the same trace,
//! alternates timed passes A,B,A,B,… and reports the per-cell best-of
//! speedup plus pooled per-half geomeans. The headline number is the
//! churn-half fs-feedback pool (ROADMAP item 3); `--gate X` exits
//! non-zero if that pool's geomean speedup is below `X`. `--ab-null`
//! runs treap against treap to measure the protocol's noise floor.
//!
//! `--filter` restricts measurement to cells whose
//! `workload/array/ranking/scheme` quad contains the substring — for
//! quick one-component comparisons; a filtered file will not pass
//! `--validate`.
//!
//! `ci.sh` runs the smoke version and then `--validate`s the emitted
//! file: it must parse, contain a cell for every grid point, and carry a
//! finite positive geomean (printed in the CI log).

use cachesim::prng::{seed_for, Prng};
use cachesim::{AccessMeta, Engine, PartitionId, Trace};
use fs_bench::Scale;
use std::time::Instant;

const ARRAYS: [&str; 5] = [
    "set-assoc",
    "skew-assoc",
    "zcache",
    "rand-cands",
    "fully-assoc",
];
const SCHEMES: [&str; 6] = [
    "unpartitioned",
    "pf",
    "cqvp",
    "fs-feedback",
    "vantage",
    "prism",
];
const WORKLOADS: [&str; 2] = ["churn", "resident"];
const PARTS: usize = 4;
/// Cache size in lines at full scale (256KB of 64B lines).
const FULL_LINES: usize = 4096;
/// Trace length at full scale.
const FULL_ACCESSES: usize = 100_000;
/// Minimum timed accesses per cell (short traces are repeated so the
/// smoke measurement is not pure timer noise).
const MIN_TIMED: usize = 20_000;

/// A partition-interleaved workload over per-partition address
/// namespaces, annotated with next-use for OPT. `churn` draws each
/// partition's addresses from a universe as large as the whole cache
/// (4× total footprint → eviction-heavy); `resident` draws from 1/8th
/// of it (total footprint half the cache → all hits once warm).
struct Workload {
    parts: Vec<PartitionId>,
    addrs: Vec<u64>,
    metas: Vec<AccessMeta>,
}

impl Workload {
    fn generate(kind: &str, accesses: usize, lines: usize) -> Workload {
        let (seed_idx, universe) = match kind {
            "churn" => (0, lines as u64),
            "resident" => (1, (lines as u64 / 8).max(1)),
            other => panic!("unknown workload {other}"),
        };
        let mut rng = Prng::seed_from_u64(seed_for("bench_engine", seed_idx));
        let mut parts = Vec::with_capacity(accesses);
        let mut addrs = Vec::with_capacity(accesses);
        for _ in 0..accesses {
            let p: u16 = rng.gen_range(0..PARTS as u16);
            parts.push(PartitionId(p));
            addrs.push(p as u64 * 1_000_000 + rng.gen_range(0..universe));
        }
        let trace = Trace::from_addrs(addrs.iter().copied(), 1);
        let metas = trace
            .annotate_next_use()
            .into_iter()
            .map(AccessMeta::with_next_use)
            .collect();
        Workload {
            parts,
            addrs,
            metas,
        }
    }

    /// One full pass through the trace via the batched pipeline (one
    /// virtual call per pass; lookups software-pipelined inside).
    fn drive(&self, cache: &mut dyn Engine) {
        cache.access_batch_slices(&self.parts, &self.addrs, &self.metas);
    }
}

fn measure_cell(array: &str, ranking: &str, scheme: &str, lines: usize, wl: &Workload) -> f64 {
    // Monomorphized core for this array × ranking combination.
    let mut cache = fs_bench::engine_for(array, ranking, scheme, lines, 7, PARTS);
    cache.stats_mut().sample_deviation = false;
    // Warm up: fill the cache and size every internal structure.
    wl.drive(cache.as_mut());
    // Time each pass separately and report the best rate: throughput
    // noise on a shared machine is one-sided (competing load only slows
    // a pass down), so max-of-passes estimates the engine's capability
    // far more stably than the mean — which keeps the `--against`
    // regression gate from tripping on background load.
    let reps = MIN_TIMED.div_ceil(wl.addrs.len()).max(1);
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        wl.drive(cache.as_mut());
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        best = best.max(wl.addrs.len() as f64 / dt);
    }
    best
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
        Scale::Smoke => "smoke",
    }
}

fn cli_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn run_grid() {
    let scale = Scale::from_args();
    let filter = cli_value("--filter");
    let lines = scale.lines(FULL_LINES);
    let accesses = scale.accesses(FULL_ACCESSES);

    let mut cells = String::new();
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for workload in WORKLOADS {
        let wl = Workload::generate(workload, accesses, lines);
        for array in ARRAYS {
            for ranking in ranking::ALL_RANKINGS {
                for scheme in SCHEMES {
                    if let Some(f) = &filter {
                        if !format!("{workload}/{array}/{ranking}/{scheme}").contains(f.as_str()) {
                            continue;
                        }
                    }
                    let aps = measure_cell(array, ranking, scheme, lines, &wl);
                    if n > 0 {
                        cells.push_str(",\n");
                    }
                    cells.push_str(&format!(
                        "    {{\"workload\":\"{workload}\",\"array\":\"{array}\",\"ranking\":\"{ranking}\",\"scheme\":\"{scheme}\",\"accesses_per_sec\":{aps:.1}}}"
                    ));
                    log_sum += aps.ln();
                    n += 1;
                    println!("{workload:8} {array:12} {ranking:11} {scheme:14} {aps:>12.0} acc/s");
                }
            }
        }
    }
    let geomean = (log_sum / n as f64).exp();
    let json = format!(
        "{{\n  \"bench\": \"bench_engine\",\n  \"scale\": \"{}\",\n  \"lines\": {},\n  \"partitions\": {},\n  \"trace_accesses\": {},\n  \"cells\": [\n{}\n  ],\n  \"geomean_accesses_per_sec\": {:.1}\n}}\n",
        scale_name(scale),
        lines,
        PARTS,
        accesses,
        cells,
        geomean
    );
    let out = cli_value("--out").unwrap_or_else(|| "BENCH_engine.json".into());
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\n{n} cells, geomean {geomean:.0} accesses/sec -> {out}");
}

/// Dependency-free validation of an emitted file: every grid point has a
/// cell and the geomean parses to a finite positive number.
fn validate(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut missing = 0usize;
    for workload in WORKLOADS {
        for array in ARRAYS {
            for ranking in ranking::ALL_RANKINGS {
                for scheme in SCHEMES {
                    let needle = format!(
                        "{{\"workload\":\"{workload}\",\"array\":\"{array}\",\"ranking\":\"{ranking}\",\"scheme\":\"{scheme}\",\"accesses_per_sec\":"
                    );
                    if !text.contains(&needle) {
                        eprintln!("missing cell: {workload} × {array} × {ranking} × {scheme}");
                        missing += 1;
                    }
                }
            }
        }
    }
    let geomean = text
        .split("\"geomean_accesses_per_sec\":")
        .nth(1)
        .and_then(|s| {
            let end = s.find('}')?;
            s[..end].trim().parse::<f64>().ok()
        });
    match (missing, geomean) {
        (0, Some(g)) if g.is_finite() && g > 0.0 => {
            println!(
                "{path} OK: {} cells, geomean {g:.0} accesses/sec",
                WORKLOADS.len() * ARRAYS.len() * ranking::ALL_RANKINGS.len() * SCHEMES.len()
            );
            // Per-workload halves, so churn (miss-path) and resident
            // (hit-path) throughput are visible separately in the CI
            // log — a win on one half cannot mask the other.
            for (workload, g, n) in half_geomeans(&text) {
                println!("  {workload:8} half: {n} cells, geomean {g:.0} accesses/sec");
            }
        }
        (m, g) => {
            eprintln!("{path} INVALID: {m} missing cells, geomean {g:?}");
            std::process::exit(1);
        }
    }
}

/// Per-workload-half geomeans recovered from an emitted file's cells
/// without a JSON parser: every cell carries its workload tag and rate
/// in one object, so splitting on the cell prefix yields one
/// `(workload, accesses_per_sec)` pair per segment. Returns
/// `(workload, geomean, cell_count)` per workload, in `WORKLOADS`
/// order.
fn half_geomeans(text: &str) -> Vec<(&'static str, f64, usize)> {
    let mut acc: Vec<(&'static str, f64, usize)> =
        WORKLOADS.iter().map(|w| (*w, 0.0f64, 0usize)).collect();
    for seg in text.split("{\"workload\":\"").skip(1) {
        let Some((workload, rest)) = seg.split_once('"') else {
            continue;
        };
        let Some(aps) = rest.split("\"accesses_per_sec\":").nth(1).and_then(|s| {
            let end = s.find('}')?;
            s[..end].trim().parse::<f64>().ok()
        }) else {
            continue;
        };
        for slot in acc.iter_mut() {
            if slot.0 == workload {
                slot.1 += aps.ln();
                slot.2 += 1;
            }
        }
    }
    for slot in acc.iter_mut() {
        slot.1 = if slot.2 > 0 {
            (slot.1 / slot.2 as f64).exp()
        } else {
            f64::NAN
        };
    }
    acc
}

/// Extract `"geomean_accesses_per_sec": <f64>` and `"scale": "<name>"`
/// from an emitted file without a JSON parser.
fn parse_summary(path: &str) -> (f64, String) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let geomean = text
        .split("\"geomean_accesses_per_sec\":")
        .nth(1)
        .and_then(|s| {
            let end = s.find('}')?;
            s[..end].trim().parse::<f64>().ok()
        })
        .unwrap_or_else(|| panic!("{path}: no parsable geomean"));
    let scale = text
        .split("\"scale\": \"")
        .nth(1)
        .and_then(|s| Some(s[..s.find('"')?].to_string()))
        .unwrap_or_else(|| panic!("{path}: no scale field"));
    (geomean, scale)
}

/// Regression gate: compare a freshly emitted file against a committed
/// baseline at the same scale; fail (exit 1) if the overall geomean —
/// or either per-workload half — dropped by more than 10%. Gating the
/// churn and resident halves separately keeps a large win on one half
/// from masking a regression on the other. A single-shot run is noisier
/// than the interleaved A/B protocol in EXPERIMENTS.md, so the
/// tolerance is deliberately loose — this catches "accidentally made
/// the engine 2× slower", not 3% drifts.
fn compare_against(current: &str, baseline: &str) {
    let (cur, cur_scale) = parse_summary(current);
    let (base, base_scale) = parse_summary(baseline);
    if cur_scale != base_scale {
        eprintln!("scale mismatch: {current}={cur_scale}, {baseline}={base_scale}");
        std::process::exit(1);
    }
    let ratio = cur / base;
    println!(
        "{current} geomean {cur:.0} vs {baseline} geomean {base:.0} ({:+.1}%)",
        (ratio - 1.0) * 100.0
    );
    let mut regressed = !ratio.is_finite() || ratio < 0.90;
    let cur_text =
        std::fs::read_to_string(current).unwrap_or_else(|e| panic!("read {current}: {e}"));
    let base_text =
        std::fs::read_to_string(baseline).unwrap_or_else(|e| panic!("read {baseline}: {e}"));
    for ((workload, c, cn), (_, b, bn)) in half_geomeans(&cur_text)
        .into_iter()
        .zip(half_geomeans(&base_text))
    {
        if cn == 0 || bn == 0 {
            continue; // filtered halves carry no signal; the overall gate stands
        }
        let r = c / b;
        println!(
            "  {workload:8} half: {c:.0} vs {b:.0} ({:+.1}%)",
            (r - 1.0) * 100.0
        );
        if !r.is_finite() || r < 0.90 {
            eprintln!("REGRESSION: {workload}-half geomean dropped more than 10%");
            regressed = true;
        }
    }
    if regressed {
        eprintln!("REGRESSION: geomean dropped more than 10% vs the committed baseline");
        std::process::exit(1);
    }
}

/// Interleaved bucket-vs-treap A/B (or A/A null when `null`): both arms
/// share one trace, alternate timed passes, and score best-of-rounds —
/// the same one-sided-noise reasoning as [`measure_cell`], with the
/// interleaving additionally cancelling slow drifts (thermal ramps,
/// competing load) that a sequential A-then-B comparison would book as
/// a phantom speedup of whichever arm ran second.
fn run_ab(null: bool) {
    let scale = Scale::from_args();
    let lines = scale.lines(FULL_LINES);
    let accesses = scale.accesses(FULL_ACCESSES);
    /// Timed passes per arm after warmup.
    const ROUNDS: usize = 9;
    let families = [
        ("coarse-lru-treap", "coarse-lru-bucket"),
        ("rrip-treap", "rrip-bucket"),
    ];
    let schemes = ["fs-feedback", "unpartitioned"];
    let label = if null { "A/A null" } else { "bucket vs treap" };
    println!("bench_engine {label}: {ROUNDS} interleaved rounds/arm, {lines} lines\n");

    // (workload log-sum, n) pools; headline = churn × fs-feedback.
    let mut pools: Vec<(String, f64, usize)> = Vec::new();
    let mut pool = |key: String, speedup: f64| {
        for slot in pools.iter_mut() {
            if slot.0 == key {
                slot.1 += speedup.ln();
                slot.2 += 1;
                return;
            }
        }
        pools.push((key, speedup.ln(), 1));
    };
    for workload in WORKLOADS {
        let wl = Workload::generate(workload, accesses, lines);
        for array in ARRAYS {
            if array == "fully-assoc" {
                // Evicts through `max_futility_line`, where the backends
                // legitimately differ in tie order — not an A/B cell.
                continue;
            }
            for (treap, bucket) in families {
                for scheme in schemes {
                    let b_name = if null { treap } else { bucket };
                    let mut a = fs_bench::engine_for(array, treap, scheme, lines, 7, PARTS);
                    let mut b = fs_bench::engine_for(array, b_name, scheme, lines, 7, PARTS);
                    a.stats_mut().sample_deviation = false;
                    b.stats_mut().sample_deviation = false;
                    wl.drive(a.as_mut());
                    wl.drive(b.as_mut());
                    let (mut best_a, mut best_b) = (0.0f64, 0.0f64);
                    for _ in 0..ROUNDS {
                        let t0 = Instant::now();
                        wl.drive(a.as_mut());
                        let dt = t0.elapsed().as_secs_f64().max(1e-9);
                        best_a = best_a.max(wl.addrs.len() as f64 / dt);
                        let t0 = Instant::now();
                        wl.drive(b.as_mut());
                        let dt = t0.elapsed().as_secs_f64().max(1e-9);
                        best_b = best_b.max(wl.addrs.len() as f64 / dt);
                    }
                    // Identical futility values ⇒ identical outcomes;
                    // assert it so a wiring mistake cannot masquerade
                    // as a speedup.
                    assert_eq!(
                        a.stats().total_misses(),
                        b.stats().total_misses(),
                        "{workload}/{array}/{treap}/{scheme}: arms diverged"
                    );
                    let speedup = best_b / best_a;
                    println!(
                        "{workload:8} {array:12} {treap:16} {scheme:14} {:>10.0} vs {:>10.0} acc/s  x{speedup:.3}",
                        best_a, best_b
                    );
                    pool(format!("{workload} (all)"), speedup);
                    pool(format!("{workload} {scheme}"), speedup);
                }
            }
        }
    }
    println!();
    let mut headline = f64::NAN;
    for (key, logsum, n) in &pools {
        let g = (logsum / *n as f64).exp();
        println!("pooled {key:24} {n:2} cells: geomean x{g:.3}");
        if key == "churn fs-feedback" {
            headline = g;
        }
    }
    if let Some(gate) = cli_value("--gate") {
        let min: f64 = gate.parse().expect("--gate needs a number");
        if headline.is_nan() || headline < min {
            eprintln!("FAIL: churn fs-feedback pooled geomean x{headline:.3} < gate x{min}");
            std::process::exit(1);
        }
        println!("gate passed: churn fs-feedback x{headline:.3} >= x{min}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).expect("--validate needs a file path");
        validate(path);
        if let Some(baseline) = cli_value("--against") {
            compare_against(path, &baseline);
        }
        return;
    }
    if args.iter().any(|a| a == "--ab-bucket") {
        run_ab(false);
        return;
    }
    if args.iter().any(|a| a == "--ab-null") {
        run_ab(true);
        return;
    }
    run_grid();
}
