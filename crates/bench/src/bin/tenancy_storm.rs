//! Allocation-storm comparison: the multi-tenant QoS closed loop
//! (`tenancy` crate) drives the same re-solved target trajectory into
//! FS-feedback, Vantage and PriSM engines while the tenant population
//! goes through storms — a load-step, a departure, a re-arrival and a
//! popularity drift — and measures how well each scheme's per-tenant
//! occupancy *tracks* the moving targets (size MAD, lines).
//!
//! The comparison is exact by construction: the utility allocator
//! observes the traffic, not the cache, so with identical pre-generated
//! traffic every scheme receives the *identical* sequence of re-solved
//! targets at the identical access indices (the binary asserts this).
//! Any MAD difference is therefore purely enforcement quality — the
//! paper's claim, exercised end-to-end through the QoS layer.
//!
//! Outputs (all deterministic; byte-identical for any `--jobs N`,
//! cmp-gated by ci.sh):
//! * `results/tenancy_storm.csv` — per scheme × phase × tenant: miss
//!   ratio vs SLO, end-of-phase target, mean occupancy, size MAD.
//! * `results/tenancy_storm_resolves.csv` — the shared re-solve log
//!   (epoch, access index, per-tenant targets).
//!
//! Gate: pooled across the storm phases, FS-feedback's mean MAD must be
//! below BOTH Vantage's and PriSM's, else exit(1).
//!
//! Usage: tenancy_storm [--smoke|--quick] [--jobs N]

use cachesim::engine::AccessBlock;
use cachesim::prng::{seed_for, Prng};
use cachesim::PartitionId;
use fs_bench::Scale;
use std::time::Instant;
use tenancy::{QosBuilder, TenancyDriver, TenantSpec, UmonConfig, UtilityAllocator};
use workloads::{MultiZipf, PartitionPopulation};

/// Schemes under comparison; FS first (the gated subject).
const SCHEMES: [&str; 3] = ["fs-feedback", "vantage", "prism"];

/// The tenant roster: name, Zipf exponent, footprint as a multiple of
/// the cache (×100), and initial traffic weight.
const TENANTS: [(&str, f64, usize, f64); 6] = [
    ("frontend", 1.1, 100, 3.0),
    ("api", 0.9, 75, 2.0),
    ("batch", 0.7, 150, 1.5),
    ("analytics", 1.0, 100, 1.0),
    ("logging", 0.6, 200, 0.75),
    ("best-effort", 0.8, 125, 0.75),
];

/// One storm op applied to the traffic generator between phases.
enum StormOp {
    /// Step tenant `.0`'s traffic weight to `.1` (0 = departure).
    Weight(usize, f64),
    /// Drift tenant `.0`'s popularity head by `.1` thousandths of its
    /// population.
    Drift(usize, usize),
}

/// The storm schedule: phase label + the ops applied at its start.
/// Four allocation-storm events follow the baseline phase.
fn phases() -> Vec<(&'static str, Vec<StormOp>)> {
    vec![
        ("baseline", vec![]),
        ("load-step", vec![StormOp::Weight(0, 9.0)]),
        ("departure", vec![StormOp::Weight(2, 0.0)]),
        ("arrival", vec![StormOp::Weight(2, 4.5)]),
        (
            "drift",
            vec![StormOp::Drift(1, 500), StormOp::Drift(3, 333)],
        ),
    ]
}

fn total_lines(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1 << 18,
        Scale::Quick => 1 << 16,
        Scale::Smoke => 1 << 13,
    }
}

fn shards(scale: Scale) -> usize {
    match scale {
        Scale::Full | Scale::Quick => 8,
        Scale::Smoke => 4,
    }
}

/// The compiled QoS everyone runs under: explicit shares for the four
/// main tenants, floors/caps/priorities/SLOs mixed across the roster.
fn qos(lines: usize) -> tenancy::CompiledQos {
    QosBuilder::new()
        .tenant(
            TenantSpec::named(TENANTS[0].0)
                .share(0.30)
                .min_lines(lines / 8)
                .priority(4.0)
                .slo_miss_ratio(0.75),
        )
        .tenant(
            TenantSpec::named(TENANTS[1].0)
                .share(0.20)
                .priority(2.0)
                .slo_miss_ratio(0.85),
        )
        .tenant(
            TenantSpec::named(TENANTS[2].0)
                .share(0.15)
                .max_lines(lines / 2),
        )
        .tenant(TenantSpec::named(TENANTS[3].0).share(0.15))
        .tenant(
            TenantSpec::named(TENANTS[4].0)
                .max_lines(lines / 4)
                .slo_miss_ratio(0.98),
        )
        .tenant(TenantSpec::named(TENANTS[5].0))
        .compile(lines)
        .expect("storm QoS compiles")
}

fn generator(lines: usize) -> MultiZipf {
    let pops: Vec<PartitionPopulation> = TENANTS
        .iter()
        .map(|&(_, alpha, footprint_pct, weight)| PartitionPopulation {
            items: lines * footprint_pct / 100,
            alpha,
            weight,
        })
        .collect();
    MultiZipf::new(&pops)
}

/// Pre-generate one phase's traffic as ready-to-feed blocks.
fn generate_blocks(gen: &MultiZipf, n: usize, rng: &mut Prng) -> Vec<AccessBlock> {
    const BLOCK: usize = 1 << 14;
    let mut blocks = Vec::with_capacity(n.div_ceil(BLOCK));
    let mut left = n;
    while left > 0 {
        let take = left.min(BLOCK);
        let mut b = AccessBlock::with_capacity(take);
        gen.fill(&mut b, take, rng);
        blocks.push(b);
        left -= take;
    }
    blocks
}

fn fmt6(x: f64) -> String {
    if x.is_nan() {
        "nan".into()
    } else {
        format!("{x:.6}")
    }
}

struct PhaseResult {
    mad_mean: f64,
    slo_violations: usize,
    rows: Vec<Vec<String>>,
}

fn main() {
    let scale = Scale::from_args();
    let jobs = fs_bench::cli_jobs();
    let lines = total_lines(scale);
    let n_tenants = TENANTS.len();
    let granularity = lines / 64;
    let cadence = (lines / 2) as u64;
    let phase_accesses = 8 * lines;
    let warm_accesses = 2 * lines;
    let schedule = phases();

    // Traffic is generated once, up front, so every scheme sees the
    // same bytes: warm blocks, then per-phase blocks with the storm
    // ops applied between phases.
    let mut gen = generator(lines);
    let mut rng = Prng::seed_from_u64(seed_for("tenancy_storm_trace", 0));
    let warm_blocks = generate_blocks(&gen, warm_accesses, &mut rng);
    let mut phase_blocks: Vec<Vec<AccessBlock>> = Vec::new();
    for (_, ops) in &schedule {
        for op in ops {
            match *op {
                StormOp::Weight(t, w) => gen.set_weight(PartitionId(t as u16), w),
                StormOp::Drift(t, milli) => {
                    let items = gen.items(PartitionId(t as u16));
                    gen.set_drift(PartitionId(t as u16), items * milli / 1000);
                }
            }
        }
        phase_blocks.push(generate_blocks(&gen, phase_accesses, &mut rng));
    }

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    // mads[scheme][phase]
    let mut mads: Vec<Vec<f64>> = Vec::new();
    let mut resolve_logs: Vec<Vec<tenancy::ResolveEvent>> = Vec::new();

    for scheme in SCHEMES {
        let q = qos(lines);
        let alloc = UtilityAllocator::new(
            q,
            granularity,
            UmonConfig {
                sets: 64,
                ways: 16,
                sampling: 1,
            },
        );
        let mut engine = fs_bench::sharded_engine_for(
            scheme,
            lines,
            shards(scale),
            n_tenants,
            seed_for("tenancy_storm", 0),
        );
        engine.set_jobs(jobs);
        let mut driver = TenancyDriver::new(engine, alloc, cadence);
        driver.record_events(true);

        let t0 = Instant::now();
        for b in &warm_blocks {
            driver.feed(b);
        }
        driver.engine_mut().reset_stats();

        let mut scheme_mads = Vec::with_capacity(schedule.len());
        for (pi, (label, _)) in schedule.iter().enumerate() {
            let r = run_phase(&mut driver, scheme, pi, label, &phase_blocks[pi]);
            println!(
                "{scheme:>12} phase {pi} {label:<10} mad {:8.2} lines  slo violations {}",
                r.mad_mean, r.slo_violations
            );
            scheme_mads.push(r.mad_mean);
            csv_rows.extend(r.rows);
        }
        let fed: u64 = driver.accesses();
        println!(
            "{scheme:>12} done: {fed} accesses, {} re-solves, {:.0} acc/s",
            driver.epochs(),
            fed as f64 / t0.elapsed().as_secs_f64().max(1e-9)
        );
        mads.push(scheme_mads);
        resolve_logs.push(driver.events().to_vec());
    }

    // The allocation layer never looks at the cache, so the re-solve
    // trajectory must be identical across schemes — the property that
    // makes the MAD comparison pure enforcement quality.
    for (si, log) in resolve_logs.iter().enumerate().skip(1) {
        assert_eq!(
            log, &resolve_logs[0],
            "{} re-solved different targets than {}",
            SCHEMES[si], SCHEMES[0]
        );
    }
    let resolve_rows: Vec<Vec<String>> = resolve_logs[0]
        .iter()
        .flat_map(|e| {
            e.targets.iter().enumerate().map(move |(t, &target)| {
                vec![
                    e.epoch.to_string(),
                    e.at_access.to_string(),
                    TENANTS[t].0.to_string(),
                    target.to_string(),
                ]
            })
        })
        .collect();

    fs_bench::save_csv(
        "tenancy_storm",
        &[
            "scheme",
            "phase",
            "event",
            "tenant",
            "miss_ratio",
            "slo",
            "slo_violated",
            "target",
            "occupancy",
            "size_mad",
        ],
        &csv_rows,
    );
    fs_bench::save_csv(
        "tenancy_storm_resolves",
        &["epoch", "at_access", "tenant", "target"],
        &resolve_rows,
    );

    // The gate: pooled over the storm phases (everything after
    // baseline), FS must track the moving targets tighter than both
    // baselines.
    let pooled = |si: usize| {
        let storm = &mads[si][1..];
        storm.iter().sum::<f64>() / storm.len() as f64
    };
    let (fs, vantage, prism) = (pooled(0), pooled(1), pooled(2));
    println!(
        "\nstorm-pooled MAD (lines): fs-feedback {fs:.2}  vantage {vantage:.2}  prism {prism:.2}"
    );
    for pi in 1..schedule.len() {
        println!(
            "  phase {pi} {:<10} fs {:8.2}  vantage {:8.2}  prism {:8.2}",
            schedule[pi].0, mads[0][pi], mads[1][pi], mads[2][pi]
        );
    }
    if !(fs < vantage && fs < prism) {
        eprintln!(
            "STORM GATE FAILED: fs-feedback MAD {fs:.2} must be below vantage {vantage:.2} and prism {prism:.2}"
        );
        std::process::exit(1);
    }
    println!("storm gate OK: fs-feedback holds the re-solved targets tighter than both baselines");
}

/// Feed one phase through the driver and read its per-tenant report:
/// miss ratios vs SLO, end-of-phase targets, occupancy tracking.
fn run_phase(
    driver: &mut TenancyDriver,
    scheme: &str,
    pi: usize,
    label: &str,
    blocks: &[AccessBlock],
) -> PhaseResult {
    for b in blocks {
        driver.feed(b);
    }
    let stats = driver.engine().merged_stats();
    let targets = driver.targets().to_vec();
    let qos = driver.allocator().qos().clone();
    let mut rows = Vec::new();
    let mut mad_sum = 0.0;
    let mut mad_n = 0usize;
    let mut slo_violations = 0usize;
    for (t, &target) in targets.iter().enumerate() {
        let part = PartitionId(t as u16);
        let miss = stats.partition(part).miss_ratio();
        let slo = qos.slo_miss_ratio(t);
        let violated = slo.is_some_and(|s| miss > s);
        slo_violations += usize::from(violated);
        let mad = stats.size_mad(part);
        if mad.is_finite() {
            mad_sum += mad;
            mad_n += 1;
        }
        rows.push(vec![
            scheme.to_string(),
            pi.to_string(),
            label.to_string(),
            qos.name(t).to_string(),
            fmt6(miss),
            slo.map_or("-".into(), fmt6),
            u8::from(violated).to_string(),
            target.to_string(),
            fmt6(stats.avg_occupancy(part)),
            fmt6(mad),
        ]);
    }
    driver.engine_mut().reset_stats();
    PhaseResult {
        mad_mean: mad_sum / mad_n.max(1) as f64,
        slo_violations,
        rows,
    }
}
