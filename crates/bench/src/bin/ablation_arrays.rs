//! Ablation: how the cache-array organization affects Futility Scaling.
//!
//! The analytical properties of §IV assume uniformly distributed
//! replacement candidates. This ablation runs feedback-FS on four array
//! organizations — the idealized random-candidates array, a hashed
//! 16-way set-associative array, a 16-way skew-associative array and a
//! zcache Z(4,16) — and reports sizing accuracy (MAD) and associativity
//! (AEF) for a 70/30 split under equal insertion pressure.
//!
//! Expected shape: all four enforce the split; the closer an array's
//! candidate statistics are to uniform (random ≈ zcache ≈ skew ≳ hashed
//! SA), the tighter the sizing and the higher the AEF.

use analysis::Table;
use cachesim::array::{CacheArray, RandomCandidates, SetAssociative, SkewAssociative, ZCache};
use cachesim::hashing::LineHash;
use cachesim::{PartitionId, PartitionedCache};
use workloads::{benchmark, RateControlledDriver};

const LINES: usize = 16_384; // 1MB

fn array(kind: &str) -> Box<dyn CacheArray> {
    match kind {
        "random-r16" => Box::new(RandomCandidates::new(LINES, 16, 7)),
        "set-assoc-16w" => Box::new(SetAssociative::with_lines(LINES, 16, LineHash::new(7))),
        "skew-assoc-16w" => Box::new(SkewAssociative::new(LINES / 16, 16, 7)),
        "zcache-z4-r16" => Box::new(ZCache::new(LINES / 4, 4, 16, 7)),
        _ => unreachable!(),
    }
}

struct Point {
    occupancy: f64,
    mad: f64,
    aef0: f64,
    aef1: f64,
}

fn run(kind: &str, insertions: u64) -> Point {
    let mut cache = PartitionedCache::new(
        array(kind),
        fs_bench::futility_ranking("lru"),
        fs_bench::scheme("fs-feedback"),
        2,
    );
    let t0 = LINES * 7 / 10;
    cache.set_targets(&[t0, LINES - t0]);
    let mcf = benchmark("mcf").expect("profile");
    let warmup = (LINES * 8) as u64;
    let len = ((warmup + insertions) * 4) as usize;
    let traces = vec![
        mcf.generate_with_base(len, 31, 0),
        mcf.generate_with_base(len, 32, 1 << 40),
    ];
    let mut d = RateControlledDriver::new(traces, vec![0.5, 0.5], 11);
    d.run(&mut cache, warmup);
    cache.stats_mut().reset();
    d.run(&mut cache, insertions);
    let stats = cache.stats();
    Point {
        occupancy: stats.avg_occupancy(PartitionId(0)) / t0 as f64,
        mad: stats.size_mad(PartitionId(0)),
        aef0: stats.partition(PartitionId(0)).aef(),
        aef1: stats.partition(PartitionId(1)).aef(),
    }
}

fn main() {
    let insertions = fs_bench::scaled(80_000) as u64;
    let kinds = [
        "random-r16",
        "set-assoc-16w",
        "skew-assoc-16w",
        "zcache-z4-r16",
    ];
    let mut t = Table::new(vec![
        "array".into(),
        "P1 occupancy/target".into(),
        "P1 MAD (lines)".into(),
        "AEF P1".into(),
        "AEF P2".into(),
    ])
    .with_title("Ablation — feedback FS across cache-array organizations (70/30 split)");
    let mut csv = Vec::new();
    for kind in kinds {
        let p = run(kind, insertions);
        t.row(vec![
            kind.into(),
            format!("{:.3}", p.occupancy),
            format!("{:.1}", p.mad),
            fs_bench::fmt3(p.aef0),
            fs_bench::fmt3(p.aef1),
        ]);
        csv.push(vec![
            kind.into(),
            format!("{:.4}", p.occupancy),
            format!("{:.2}", p.mad),
            format!("{:.4}", p.aef0),
            format!("{:.4}", p.aef1),
        ]);
    }
    println!("{t}");
    println!(
        "All organizations hold the split; uniform-candidate arrays (random,\n\
         zcache, skew) track the §IV analysis most closely, supporting the\n\
         paper's choice of hashed/zcache arrays for FS."
    );
    fs_bench::save_csv(
        "ablation_arrays",
        &["array", "p1_occupancy", "p1_mad", "aef_p1", "aef_p2"],
        &csv,
    );
}
