//! Scale-out sweep: million-line caches with hundreds of partitions on
//! hash-partitioned shards, validated by the analytic Che/Fagin
//! miss-rate oracle (`analysis::ZipfOracle`) instead of golden CSVs —
//! at this scale exact goldens can't exist.
//!
//! Every cell drives disjoint per-partition Zipf(α=0.8) populations
//! (footprint 4× the cache) through a [`ShardedEngine`], then compares
//! the shard-merged measured miss rate against the closed-form oracle
//! for one partition's population at its target size. FS-feedback
//! cells are *gated* on agreement within [`ORACLE_TOL`]; Vantage/PriSM
//! cells are reported (their enforcement drift is part of the result).
//! Convergence (mean MAD of per-partition size deviation) rides along
//! in the same CSV, with the compare-geometry cells additionally
//! recording per-shard flight-recorder streams.
//!
//! Outputs are split by determinism:
//! * `results/sharded_validation.csv` + `results/sharded_timeseries.csv`
//!   — miss rates, oracle errors, MADs, merged recorder rows. No
//!   timing. Byte-identical for any `--jobs N` (ci.sh cmp-gates this).
//! * `BENCH_sharded.json` — accesses/sec per cell, geomean, shard
//!   scaling. Timing only; regression-gated via `--validate --against`.
//!
//! Usage:
//!   bench_sharded [--smoke|--quick] [--jobs N] [--out FILE]
//!   bench_sharded --ab-missrun [--smoke|--quick]   # certain-miss gather A/B
//!   bench_sharded --ab-bucket [--smoke|--quick]    # bucket-vs-treap ranking A/B
//!   bench_sharded --validate FILE [--against BASE]
//!
//! `--ab-missrun` re-runs the PR 8 certain-miss-gathering experiment at
//! DRAM-bound geometry: one unsharded engine, gather cap 16 vs cap 1
//! (observably identical by the certain-miss proof), interleaved timed
//! passes — the post-mortem predicted gathering only pays off here.
//!
//! `--ab-bucket` is the 1M-line cell of the PR 10 bucket-vs-treap
//! ranking A/B (ROADMAP item 3): the same fs-feedback geometry built
//! through [`fs_bench::sharded_engine_for_backend`] with the treap-free
//! [`ranking::BucketCoarseLru`] vs the default treap-backed coarse LRU,
//! interleaved timed passes, gated on identical merged hit/miss
//! outcomes (the backends are futility-value-identical by
//! `tests/bucket_vs_treap.rs`, so any divergence is a wiring bug).

use cachesim::engine::AccessBlock;
use cachesim::prng::{seed_for, Prng};
use cachesim::{PartitionId, ShardedEngine};
use fs_bench::Scale;
use std::time::Instant;
use workloads::MultiZipf;

/// Zipf exponent of every per-partition population.
const ALPHA: f64 = 0.8;
/// Items per partition, as a multiple of its line target.
const FOOTPRINT_X: usize = 4;
/// Gate: |measured − oracle| for FS-feedback cells. The slack covers
/// what the oracle idealizes away — 16-way set-associative coarse-LRU
/// is not exact fully-associative LRU, FS enforces targets by scaled
/// futility rather than a hard boundary, and hash-sharding splits each
/// population into S renormalized subsamples. Measured errors sit
/// around 0.01–0.02 (EXPERIMENTS.md); 0.035 is ~2× headroom.
const ORACLE_TOL: f64 = 0.035;
/// Schemes recorded at the compare geometry (convergence comparison).
const COMPARE_SCHEMES: [&str; 3] = ["fs-feedback", "vantage", "prism"];

/// One sweep cell. `record` attaches per-shard flight recorders (and
/// therefore takes the scalar per-shard path — its timing is reported
/// but the shard-scaling numbers come from the unrecorded cells).
struct Cell {
    parts: usize,
    shards: usize,
    scheme: &'static str,
    record: bool,
}

/// Total cache lines at each scale. Full is the headline ≥1M-line
/// geometry; smoke shrinks 64× like every other bench so ci.sh can
/// afford the oracle + determinism gates.
fn total_lines(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1 << 20,
        Scale::Quick => 1 << 18,
        Scale::Smoke => 1 << 14,
    }
}

/// The sweep grid: a shard-scaling sweep at the base partition count,
/// a partition sweep at the base shard count, and the recorded
/// scheme-comparison cells at the compare geometry.
fn grid(scale: Scale) -> Vec<Cell> {
    let (base_parts, part_sweep, shard_sweep, base_shards): (usize, Vec<usize>, Vec<usize>, usize) =
        match scale {
            Scale::Full | Scale::Quick => (128, vec![256, 512], vec![1, 2, 4, 8, 16], 8),
            Scale::Smoke => (16, vec![32], vec![1, 2, 4], 4),
        };
    let mut cells = Vec::new();
    for s in shard_sweep {
        cells.push(Cell {
            parts: base_parts,
            shards: s,
            scheme: "fs-feedback",
            record: false,
        });
    }
    for p in part_sweep {
        cells.push(Cell {
            parts: p,
            shards: base_shards,
            scheme: "fs-feedback",
            record: false,
        });
    }
    for scheme in COMPARE_SCHEMES {
        cells.push(Cell {
            parts: base_parts,
            shards: base_shards,
            scheme,
            record: true,
        });
    }
    cells
}

/// Deterministic measured-trace length: enough accesses that the
/// binomial error of the measured miss rate is well under the oracle
/// tolerance even at smoke scale.
fn measured_accesses(lines: usize) -> usize {
    (4 * lines).max(1 << 18)
}

/// Pre-generate `n` accesses as ready-to-feed blocks (generation cost
/// excluded from timing).
fn generate_blocks(gen: &MultiZipf, n: usize, rng: &mut Prng) -> Vec<AccessBlock> {
    const BLOCK: usize = 1 << 16;
    let mut blocks = Vec::with_capacity(n.div_ceil(BLOCK));
    let mut left = n;
    while left > 0 {
        let take = left.min(BLOCK);
        let mut b = AccessBlock::with_capacity(take);
        gen.fill(&mut b, take, rng);
        blocks.push(b);
        left -= take;
    }
    blocks
}

struct CellResult {
    miss_measured: f64,
    miss_oracle: f64,
    mad_mean: f64,
    accesses: usize,
    aps: f64,
    ts_rows: Vec<Vec<String>>,
}

fn run_cell(cell: &Cell, lines: usize, jobs: usize, index: u64) -> CellResult {
    let per_part = lines / cell.parts;
    let items = FOOTPRINT_X * per_part;
    let measured = measured_accesses(lines);
    let warm = 3 * lines;

    let mut eng = fs_bench::sharded_engine_for(
        cell.scheme,
        lines,
        cell.shards,
        cell.parts,
        seed_for("bench_sharded", index),
    );
    eng.set_jobs(jobs);
    if cell.record {
        // A handful of ticks per shard in the measurement window; the
        // ring keeps the tail, the merge keys rows by shard.
        let cadence = (measured / cell.shards / 8).max(1) as u64;
        eng.attach_timeseries(cadence, 2048);
    }

    let gen = MultiZipf::uniform_mix(cell.parts, items, ALPHA);
    let mut rng = Prng::seed_from_u64(seed_for("bench_sharded_trace", index));

    // Warmup: cold fill + feedback settle, streamed (not timed).
    for b in generate_blocks(&gen, warm, &mut rng) {
        eng.access_batch(&b);
    }
    eng.reset_stats();

    // Measured pass: stats + first timing sample.
    let blocks = generate_blocks(&gen, measured, &mut rng);
    let t0 = Instant::now();
    for b in &blocks {
        eng.access_batch(b);
    }
    let mut aps = measured as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Everything deterministic is read *now*, before the extra timing
    // pass pollutes counters and recorder rings.
    let stats = eng.merged_stats();
    let ts_rows = eng.merged_recorder_rows();
    let total = stats.total_hits() + stats.total_misses();
    let miss_measured = stats.total_misses() as f64 / total.max(1) as f64;
    let mad_sum: f64 = (0..cell.parts)
        .map(|p| stats.size_mad(PartitionId(p as u16)))
        .filter(|m| m.is_finite())
        .sum();
    let mad_mean = mad_sum / cell.parts as f64;

    // Second timed pass, best-of like bench_engine: throughput noise on
    // a shared machine is one-sided.
    let t0 = Instant::now();
    for b in &blocks {
        eng.access_batch(b);
    }
    aps = aps.max(measured as f64 / t0.elapsed().as_secs_f64().max(1e-9));

    let miss_oracle = analysis::ZipfOracle::new(items, ALPHA).miss_rate(per_part);
    CellResult {
        miss_measured,
        miss_oracle,
        mad_mean,
        accesses: measured,
        aps,
        ts_rows,
    }
}

fn fmt6(x: f64) -> String {
    if x.is_nan() {
        "nan".into()
    } else {
        format!("{x:.6}")
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Full => "full",
        Scale::Quick => "quick",
        Scale::Smoke => "smoke",
    }
}

fn cli_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn sweep() {
    let scale = Scale::from_args();
    let jobs = fs_bench::cli_jobs();
    let lines = total_lines(scale);
    let cells = grid(scale);

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut ts_csv: Vec<Vec<String>> = Vec::new();
    let mut json_cells = String::new();
    let mut log_sum = 0.0f64;
    let mut gate_failures: Vec<String> = Vec::new();
    let mut shard_aps: Vec<(usize, f64)> = Vec::new();

    for (i, cell) in cells.iter().enumerate() {
        let r = run_cell(cell, lines, jobs, i as u64);
        let err = (r.miss_measured - r.miss_oracle).abs();
        println!(
            "{:>9} lines {:>3} parts {:>2} shards {:12} rec={} miss {:.4} oracle {:.4} |err| {:.4} mad {:7.2} {:>12.0} acc/s",
            lines,
            cell.parts,
            cell.shards,
            cell.scheme,
            u8::from(cell.record),
            r.miss_measured,
            r.miss_oracle,
            err,
            r.mad_mean,
            r.aps
        );
        if cell.scheme == "fs-feedback" && err > ORACLE_TOL {
            gate_failures.push(format!(
                "{} parts={} shards={}: |{:.4} - {:.4}| = {:.4} > {ORACLE_TOL}",
                cell.scheme, cell.parts, cell.shards, r.miss_measured, r.miss_oracle, err
            ));
        }
        // Shard-scaling summary draws only on the shard sweep proper
        // (base partition count, no recorder).
        if cell.scheme == "fs-feedback" && !cell.record && cell.parts == cells[0].parts {
            shard_aps.push((cell.shards, r.aps));
        }
        csv_rows.push(vec![
            lines.to_string(),
            cell.parts.to_string(),
            cell.shards.to_string(),
            cell.scheme.to_string(),
            u8::from(cell.record).to_string(),
            r.accesses.to_string(),
            fmt6(r.miss_measured),
            fmt6(r.miss_oracle),
            fmt6(err),
            fmt6(ORACLE_TOL),
            fmt6(r.mad_mean),
        ]);
        for mut row in r.ts_rows {
            let mut full = vec![cell.scheme.to_string(), cell.shards.to_string()];
            full.append(&mut row);
            ts_csv.push(full);
        }
        if i > 0 {
            json_cells.push_str(",\n");
        }
        json_cells.push_str(&format!(
            "    {{\"lines\":{lines},\"partitions\":{},\"shards\":{},\"scheme\":\"{}\",\"record\":{},\"accesses_per_sec\":{:.1}}}",
            cell.parts,
            cell.shards,
            cell.scheme,
            cell.record,
            r.aps
        ));
        log_sum += r.aps.ln();
    }

    fs_bench::save_csv(
        "sharded_validation",
        &[
            "lines",
            "partitions",
            "shards",
            "scheme",
            "record",
            "accesses",
            "miss_measured",
            "miss_oracle",
            "abs_err",
            "tolerance",
            "mad_mean",
        ],
        &csv_rows,
    );
    fs_bench::save_csv(
        "sharded_timeseries",
        &[
            "scheme", "shards", "shard", "time", "series", "part", "value",
        ],
        &ts_csv,
    );

    // Shard-scaling summary over the unrecorded fs-feedback sweep: the
    // ratio of each shard count's throughput to the 1-shard cell.
    let base = shard_aps
        .iter()
        .find(|&&(s, _)| s == 1)
        .map(|&(_, a)| a)
        .unwrap_or(f64::NAN);
    let mut scaling = String::new();
    for &(s, a) in &shard_aps {
        if s == 1 {
            continue;
        }
        if !scaling.is_empty() {
            scaling.push_str(",\n");
        }
        scaling.push_str(&format!(
            "    {{\"shards\":{s},\"speedup_vs_1\":{:.3}}}",
            a / base
        ));
        println!("scaling: {s} shards {:.2}x vs 1 shard", a / base);
    }

    let geomean = (log_sum / cells.len() as f64).exp();
    let json = format!(
        "{{\n  \"bench\": \"bench_sharded\",\n  \"scale\": \"{}\",\n  \"lines\": {},\n  \"jobs\": {},\n  \"cells\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ],\n  \"geomean_accesses_per_sec\": {:.1}\n}}\n",
        scale_name(scale),
        lines,
        jobs,
        json_cells,
        scaling,
        geomean
    );
    let out = cli_value("--out").unwrap_or_else(|| "BENCH_sharded.json".into());
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "\n{} cells, geomean {geomean:.0} accesses/sec -> {out}",
        cells.len()
    );

    if !gate_failures.is_empty() {
        eprintln!("ORACLE GATE FAILED ({} cells):", gate_failures.len());
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("oracle gate OK: every fs-feedback cell within {ORACLE_TOL}");
}

/// Satellite: the PR 8 certain-miss-gathering A/B at DRAM-bound
/// geometry. One unsharded engine per arm (cap 16 vs cap 1 — the
/// gather cap is observably inert), same warmed state, interleaved
/// timed passes over the same pre-generated blocks.
fn ab_missrun() {
    let scale = Scale::from_args();
    let lines = total_lines(scale);
    let (parts, pairs) = match scale {
        Scale::Full | Scale::Quick => (128, 4),
        Scale::Smoke => (16, 2),
    };
    let per_part = lines / parts;
    let items = FOOTPRINT_X * per_part;
    let measured = measured_accesses(lines);

    let build = |cap: usize| {
        let mut e = fs_bench::sharded_engine_for(
            "fs-feedback",
            lines,
            1,
            parts,
            seed_for("bench_sharded_ab", 0),
        );
        e.set_miss_run_cap(cap);
        e.set_sample_deviation(false);
        e
    };
    let mut gather = build(16);
    let mut no_gather = build(1);

    let gen = MultiZipf::uniform_mix(parts, items, ALPHA);
    let mut rng = Prng::seed_from_u64(seed_for("bench_sharded_ab_trace", 0));
    for b in generate_blocks(&gen, 3 * lines, &mut rng) {
        gather.access_batch(&b);
        no_gather.access_batch(&b);
    }
    let blocks = generate_blocks(&gen, measured, &mut rng);

    let time_pass = |e: &mut ShardedEngine| {
        let t0 = Instant::now();
        for b in &blocks {
            e.access_batch(b);
        }
        measured as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let mut log_ratio = 0.0f64;
    for p in 0..pairs {
        let a = time_pass(&mut gather);
        let b = time_pass(&mut no_gather);
        println!(
            "pair {p}: gather {a:>12.0} acc/s  no-gather {b:>12.0} acc/s  ratio {:.3}",
            a / b
        );
        log_ratio += (a / b).ln();
    }
    let s = gather.merged_stats();
    let miss = s.total_misses() as f64 / (s.total_hits() + s.total_misses()).max(1) as f64;
    println!(
        "A/B certain-miss gathering at {lines} lines / {parts} parts (miss rate {miss:.3}): pooled geomean ratio {:.3}",
        (log_ratio / pairs as f64).exp()
    );
}

/// Satellite of the PR 10 treap-retirement: the bucket-vs-treap coarse
/// ranking A/B at the sharded 1M-line geometry. One engine per arm,
/// identical seeds and trace, interleaved timed passes; the merged
/// hit/miss totals must match exactly or the run aborts.
fn ab_bucket() {
    let scale = Scale::from_args();
    let lines = total_lines(scale);
    let (parts, shards, pairs) = match scale {
        Scale::Full | Scale::Quick => (128, 8, 4),
        Scale::Smoke => (16, 4, 2),
    };
    let per_part = lines / parts;
    let items = FOOTPRINT_X * per_part;
    let measured = measured_accesses(lines);

    let build = |backend: &str| {
        let mut e = fs_bench::sharded_engine_for_backend(
            "fs-feedback",
            lines,
            shards,
            parts,
            seed_for("bench_sharded_ab_bucket", 0),
            backend,
        );
        e.set_jobs(fs_bench::cli_jobs());
        e.set_sample_deviation(false);
        e
    };
    let mut treap = build("treap");
    let mut bucket = build("bucket");

    let gen = MultiZipf::uniform_mix(parts, items, ALPHA);
    let mut rng = Prng::seed_from_u64(seed_for("bench_sharded_ab_bucket_trace", 0));
    for b in generate_blocks(&gen, 3 * lines, &mut rng) {
        treap.access_batch(&b);
        bucket.access_batch(&b);
    }
    let blocks = generate_blocks(&gen, measured, &mut rng);

    let time_pass = |e: &mut ShardedEngine| {
        let t0 = Instant::now();
        for b in &blocks {
            e.access_batch(b);
        }
        measured as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let mut log_ratio = 0.0f64;
    for p in 0..pairs {
        let t = time_pass(&mut treap);
        let b = time_pass(&mut bucket);
        println!(
            "pair {p}: treap {t:>12.0} acc/s  bucket {b:>12.0} acc/s  speedup {:.3}",
            b / t
        );
        log_ratio += (b / t).ln();
    }

    let (st, sb) = (treap.merged_stats(), bucket.merged_stats());
    assert_eq!(
        (st.total_hits(), st.total_misses()),
        (sb.total_hits(), sb.total_misses()),
        "bucket and treap arms diverged — backends must be outcome-identical"
    );
    let miss = st.total_misses() as f64 / (st.total_hits() + st.total_misses()).max(1) as f64;
    println!(
        "A/B bucket-vs-treap coarse LRU at {lines} lines / {parts} parts / {shards} shards \
         (miss rate {miss:.3}, outcomes identical): pooled geomean speedup {:.3}",
        (log_ratio / pairs as f64).exp()
    );
}

/// Dependency-free validation of an emitted file: a cell for every
/// grid point of the file's scale, and a finite positive geomean.
fn validate(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let scale = match text.split("\"scale\": \"").nth(1).and_then(|s| {
        let end = s.find('"')?;
        Some(&s[..end])
    }) {
        Some("full") => Scale::Full,
        Some("quick") => Scale::Quick,
        Some("smoke") => Scale::Smoke,
        other => {
            eprintln!("{path} INVALID: unknown scale {other:?}");
            std::process::exit(1);
        }
    };
    let lines = total_lines(scale);
    let mut missing = 0usize;
    let cells = grid(scale);
    for cell in &cells {
        let needle = format!(
            "{{\"lines\":{lines},\"partitions\":{},\"shards\":{},\"scheme\":\"{}\",\"record\":{},\"accesses_per_sec\":",
            cell.parts, cell.shards, cell.scheme, cell.record
        );
        if !text.contains(&needle) {
            eprintln!(
                "missing cell: parts={} shards={} scheme={} record={}",
                cell.parts, cell.shards, cell.scheme, cell.record
            );
            missing += 1;
        }
    }
    let geomean = parse_geomean(&text);
    match (missing, geomean) {
        (0, Some(g)) if g.is_finite() && g > 0.0 => {
            println!(
                "{path} OK: {} cells, geomean {g:.0} accesses/sec",
                cells.len()
            );
        }
        (m, g) => {
            eprintln!("{path} INVALID: {m} missing cells, geomean {g:?}");
            std::process::exit(1);
        }
    }
}

fn parse_geomean(text: &str) -> Option<f64> {
    text.split("\"geomean_accesses_per_sec\":")
        .nth(1)
        .and_then(|s| {
            let end = s.find('}')?;
            s[..end].trim().parse::<f64>().ok()
        })
}

/// Regression gate vs a committed baseline at the same scale: fail on
/// a geomean drop of more than 10%. Deliberately loose (single-shot
/// timing), same rationale as `bench_engine`.
fn compare_against(current: &str, baseline: &str) {
    let read = |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}"));
    let (cur_text, base_text) = (read(current), read(baseline));
    let scale_of = |text: &str| {
        text.split("\"scale\": \"")
            .nth(1)
            .and_then(|s| Some(s[..s.find('"')?].to_string()))
    };
    if scale_of(&cur_text) != scale_of(&base_text) {
        eprintln!("scale mismatch between {current} and {baseline}");
        std::process::exit(1);
    }
    let cur = parse_geomean(&cur_text).unwrap_or_else(|| panic!("{current}: no geomean"));
    let base = parse_geomean(&base_text).unwrap_or_else(|| panic!("{baseline}: no geomean"));
    let ratio = cur / base;
    println!(
        "{current} geomean {cur:.0} vs {baseline} geomean {base:.0} ({:+.1}%)",
        (ratio - 1.0) * 100.0
    );
    if !ratio.is_finite() || ratio < 0.90 {
        eprintln!("REGRESSION: geomean dropped more than 10% vs the committed baseline");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).expect("--validate needs a file path");
        validate(path);
        if let Some(baseline) = cli_value("--against") {
            compare_against(path, &baseline);
        }
        return;
    }
    if args.iter().any(|a| a == "--ab-missrun") {
        ab_missrun();
        return;
    }
    if args.iter().any(|a| a == "--ab-bucket") {
        ab_bucket();
        return;
    }
    sweep();
}
