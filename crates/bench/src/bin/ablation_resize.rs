//! Ablation: smooth resizing (replacement-based FS) vs the resizing
//! penalty of placement-based way-partitioning (paper §II-B: placement
//! schemes must flush or migrate lines when a partition changes size).
//!
//! Two equal threads run on a 16-way cache; halfway through, the
//! allocation flips from 75/25 to 25/75. We report the shrinking and
//! growing partitions' miss ratios in windows around the flip: FS
//! transitions by steering evictions (no disruption beyond the
//! capacity change itself), while way-partitioning strands the lines
//! held in reassigned ways, producing a cold-start spike for the
//! growing partition.

use analysis::Table;
use cachesim::{AccessMeta, PartitionId, PartitionedCache};
use workloads::benchmark;

const LINES: usize = 16_384; // 1MB, 16-way
const WINDOW: usize = 40_000; // accesses per reporting window

struct Run {
    /// Miss ratio of the growing partition (P1), per window.
    p1_miss: Vec<f64>,
    /// Total misses across the run.
    total_misses: u64,
}

fn run(scheme_name: &str, windows: usize) -> Run {
    let scheme: Box<dyn cachesim::PartitionScheme> = match scheme_name {
        "way-partition" => Box::new(baselines::WayPartitioned::new(16)),
        other => fs_bench::scheme(other),
    };
    let mut cache = PartitionedCache::new(
        fs_bench::l2_array(LINES, 0xAB1),
        fs_bench::futility_ranking("coarse-lru"),
        scheme,
        2,
    );
    cache.set_targets(&[LINES * 3 / 4, LINES / 4]);

    let profile = benchmark("omnetpp").expect("profile");
    let traces = [
        profile.generate_with_base(windows * WINDOW, 1, 0),
        profile.generate_with_base(windows * WINDOW, 2, 1 << 40),
    ];

    let mut p1_miss = Vec::with_capacity(windows);
    let mut total_misses = 0u64;
    let mut pos = 0usize;
    for w in 0..windows {
        if w == windows / 2 {
            // The allocation flip under test.
            cache.set_targets(&[LINES / 4, LINES * 3 / 4]);
        }
        let mut p1_misses = 0u64;
        let mut p1_accesses = 0u64;
        for _ in 0..WINDOW / 2 {
            for (t, trace) in traces.iter().enumerate() {
                let a = trace.accesses[pos];
                let hit = cache
                    .access(PartitionId(t as u16), a.addr, AccessMeta::default())
                    .is_hit();
                if !hit {
                    total_misses += 1;
                    if t == 1 {
                        p1_misses += 1;
                    }
                }
                if t == 1 {
                    p1_accesses += 1;
                }
            }
            pos += 1;
        }
        p1_miss.push(p1_misses as f64 / p1_accesses.max(1) as f64);
    }
    Run {
        p1_miss,
        total_misses,
    }
}

fn main() {
    let windows = if fs_bench::quick_mode() { 8 } else { 16 };
    let fs = run("fs-feedback", windows);
    let wp = run("way-partition", windows);

    let mut t = Table::new(
        std::iter::once("window".to_string())
            .chain((0..windows).map(|w| {
                if w == windows / 2 {
                    format!("{w}*")
                } else {
                    format!("{w}")
                }
            }))
            .collect(),
    )
    .with_title("Ablation — miss ratio of the growing partition around a target flip (* = flip)");
    t.row_mixed("fs-feedback", &fs.p1_miss, 3);
    t.row_mixed("way-partition", &wp.p1_miss, 3);
    println!("{t}");
    println!(
        "total misses: fs-feedback {} vs way-partition {} ({:+.1}%)",
        fs.total_misses,
        wp.total_misses,
        (wp.total_misses as f64 / fs.total_misses as f64 - 1.0) * 100.0
    );
    println!(
        "\nExpected shape: both schemes see the growing partition's miss ratio\n\
         drop after the flip (more capacity), but way-partitioning pays a\n\
         transition penalty — reassigned ways hold the shrinking partition's\n\
         stranded lines, so the growing partition starts cold in them —\n\
         while FS hands capacity over line by line (smooth resizing, §II-A)."
    );

    let mut csv = Vec::new();
    for (name, r) in [("fs-feedback", &fs), ("way-partition", &wp)] {
        for (w, m) in r.p1_miss.iter().enumerate() {
            csv.push(vec![name.to_string(), w.to_string(), format!("{m:.4}")]);
        }
    }
    fs_bench::save_csv(
        "ablation_resize",
        &["scheme", "window", "p1_miss_ratio"],
        &csv,
    );
}
