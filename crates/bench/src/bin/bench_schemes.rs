//! Micro-benchmarks of the replacement path per enforcement scheme:
//! end-to-end cache accesses (lookup + victim selection + bookkeeping)
//! on a full 16-way hashed cache with 8 partitions.
//!
//! This quantifies the paper's hardware-cost claim from the simulator's
//! perspective: FS's victim selection is `3R−1` simple operations, so
//! feedback-FS should cost about the same as PF/unpartitioned on the
//! simulated replacement path, with Vantage slightly heavier (demotion
//! retags) and PriSM adding the sampling step.

use cachesim::prng::Prng;
use cachesim::{AccessMeta, PartitionId, PartitionedCache};
use fs_bench::timing::{black_box, Group};

const LINES: usize = 16_384; // 1MB
const PARTS: usize = 8;

fn make_cache(scheme: &str, ranking: &str) -> PartitionedCache {
    let mut cache = PartitionedCache::new(
        fs_bench::l2_array(LINES, 7),
        fs_bench::futility_ranking(ranking),
        fs_bench::scheme(scheme),
        PARTS,
    );
    // Disable sampling overheads irrelevant to the hot path.
    cache.stats_mut().sample_deviation = false;
    // Pre-fill so every miss evicts.
    let mut rng = Prng::seed_from_u64(1);
    for i in 0..(LINES as u64 * 4) {
        let part = PartitionId((i % PARTS as u64) as u16);
        let addr: u64 = rng.gen_range(0..60_000);
        cache.access(part, addr, AccessMeta::default());
    }
    cache
}

fn main() {
    let mut group = Group::new("replacement_path");
    for scheme in [
        "unpartitioned",
        "pf",
        "cqvp",
        "fs-feedback",
        "vantage",
        "prism",
    ] {
        let mut cache = make_cache(scheme, "coarse-lru");
        let mut rng = Prng::seed_from_u64(2);
        group.bench(scheme, || {
            let part = PartitionId(rng.gen_range(0..PARTS as u16));
            let addr: u64 = rng.gen_range(0..60_000);
            black_box(cache.access(part, addr, AccessMeta::default()));
        });
    }
    group.finish();

    // How much of the cost is the futility ranking vs the scheme: run
    // feedback-FS over the O(1) coarse ranking and over the exact
    // treap-backed rankings.
    let mut group = Group::new("fs_by_ranking");
    for ranking in ["coarse-lru", "lru", "lfu", "random"] {
        let mut cache = make_cache("fs-feedback", ranking);
        let mut rng = Prng::seed_from_u64(3);
        group.bench(ranking, || {
            let part = PartitionId(rng.gen_range(0..PARTS as u16));
            let addr: u64 = rng.gen_range(0..60_000);
            black_box(cache.access(part, addr, AccessMeta::default()));
        });
    }
    group.finish();
}
