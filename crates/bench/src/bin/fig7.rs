//! Figure 7: QoS comparison of the five enforcement schemes on a
//! 32-core CMP with an 8MB shared L2. Each mix has N_subject threads of
//! the associativity-sensitive `gromacs` (guaranteed 256KB each) and
//! 32 − N_subject threads of the memory-intensive bully `lbm` (which
//! split the rest). N_subject sweeps six points across 1..31 (the
//! paper sweeps eleven; the extra points do not change the curves).
//!
//! * Fig. 7a — average occupancy of subject threads vs their 256KB
//!   target: FullAssoc/PF/FS hold it exactly; Vantage can fall ≤~3%
//!   below; PriSM collapses 10–21% below (the abnormality).
//! * Fig. 7b — AEF of subject threads: FullAssoc 1.0; FS ~0.85;
//!   Vantage ~0.80; PF degrades toward 0.5; PriSM in between.
//! * Fig. 7c — subject-thread performance: FS ≈ FullAssoc, better than
//!   Vantage (up to ~6%) and PriSM (up to ~13.7%).

use analysis::Table;
use cachesim::{PartitionId, PartitionedCache};
use simqos::{static_qos, System, SystemConfig, Thread};
use workloads::benchmark;

const TOTAL_LINES: usize = 131_072; // 8MB
const SUBJECT_LINES: usize = 4_096; // 256KB
const CORES: usize = 32;
const SUBJECT_COUNTS: [usize; 6] = [1, 7, 13, 19, 25, 31];
const SCHEMES: [&str; 5] = ["full-assoc", "fs-feedback", "vantage", "pf", "prism"];

#[derive(Clone)]
struct Point {
    occupancy_frac: f64, // avg subject occupancy / target
    aef: f64,            // avg subject AEF
    ipc: f64,            // avg subject IPC
}

fn run_one(scheme: &str, rank: &str, subjects: usize, trace_len: usize) -> Option<Point> {
    let backgrounds = CORES - subjects;
    // Vantage manages only 90% of the cache: its background targets are
    // scaled so the managed total stays within (1-u) of the array.
    let targets = if scheme == "vantage" {
        let managed = (TOTAL_LINES as f64 * 0.9) as usize;
        if managed < subjects * SUBJECT_LINES {
            return None; // the paper skips N=31 for Vantage
        }
        static_qos(managed, subjects, SUBJECT_LINES, backgrounds)
    } else {
        static_qos(TOTAL_LINES, subjects, SUBJECT_LINES, backgrounds)
    };
    let array = if scheme == "full-assoc" {
        fs_bench::fa_array(TOTAL_LINES)
    } else {
        fs_bench::l2_array(TOTAL_LINES, 0xF16_7)
    };
    // Subject partitions are the only ones whose associativity is
    // reported, so the coarse ranking carries its exact measurement
    // shadow only for them (a large simulation-speed win). The ideal
    // FullAssoc scheme is the exception: it asks the ranking for the
    // most futile line of *any* pool, which needs the full shadow.
    let ranking: Box<dyn cachesim::FutilityRanking> =
        if rank == "coarse-lru" && scheme != "full-assoc" {
            Box::new(ranking::CoarseLru::with_shadow_pools(subjects.max(1)))
        } else {
            fs_bench::futility_ranking(rank)
        };
    let mut cache = PartitionedCache::new(array, ranking, fs_bench::scheme(scheme), CORES);
    cache.set_targets(&targets);

    let gromacs = benchmark("gromacs").expect("profile");
    let lbm = benchmark("lbm").expect("profile");
    let threads: Vec<Thread> = (0..CORES)
        .map(|i| {
            let (profile, name) = if i < subjects {
                (&gromacs, "gromacs")
            } else {
                (&lbm, "lbm")
            };
            Thread::new(
                format!("{name}#{i}"),
                profile.generate_with_base(trace_len, 3000 + i as u64, (i as u64) << 40),
            )
        })
        .collect();
    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    let result = sys.run(0.3);

    let mut occ = 0.0;
    let mut aef = 0.0;
    let mut ipc = 0.0;
    for i in 0..subjects {
        let p = sys.cache().stats().partition(PartitionId(i as u16));
        occ += p.avg_occupancy() / SUBJECT_LINES as f64;
        aef += p.aef();
        ipc += result.threads[i].ipc();
    }
    Some(Point {
        occupancy_frac: occ / subjects as f64,
        aef: aef / subjects as f64,
        ipc: ipc / subjects as f64,
    })
}

fn main() {
    let trace_len = fs_bench::scaled(32_000);
    let rankings = ["coarse-lru", "opt"];
    // (rank, scheme) -> one point per subject count.
    let results: Vec<(String, String, Vec<Option<Point>>)> = std::thread::scope(|s| {
        let handles: Vec<_> = rankings
            .iter()
            .flat_map(|&rank| SCHEMES.iter().map(move |&scheme| (rank, scheme)))
            .map(|(rank, scheme)| {
                s.spawn(move || {
                    let pts = SUBJECT_COUNTS
                        .iter()
                        .map(|&n| run_one(scheme, rank, n, trace_len))
                        .collect();
                    (rank.to_string(), scheme.to_string(), pts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    let mut csv = Vec::new();
    for rank in rankings {
        for (title, field) in [
            ("Figure 7a — avg subject occupancy / 256KB target", 0usize),
            ("Figure 7b — avg subject AEF", 1),
            ("Figure 7c — avg subject IPC", 2),
        ] {
            let mut t = Table::new(
                std::iter::once("scheme".to_string())
                    .chain(SUBJECT_COUNTS.iter().map(|n| format!("{n}")))
                    .collect(),
            )
            .with_title(format!("{title} ({rank} ranking)"));
            for (r, scheme, pts) in &results {
                if r != rank {
                    continue;
                }
                let vals: Vec<f64> = pts
                    .iter()
                    .map(|p| {
                        p.as_ref().map_or(f64::NAN, |p| match field {
                            0 => p.occupancy_frac,
                            1 => p.aef,
                            _ => p.ipc,
                        })
                    })
                    .collect();
                let cells: Vec<String> = std::iter::once(scheme.clone())
                    .chain(vals.iter().map(|v| fs_bench::fmt3(*v)))
                    .collect();
                t.row(cells);
            }
            println!("{t}");
        }
        // Headline comparison: FS vs Vantage and PriSM subject IPC.
        let ipc_of = |scheme: &str| -> Vec<f64> {
            results
                .iter()
                .find(|(r, s, _)| r == rank && s == scheme)
                .map(|(_, _, pts)| {
                    pts.iter()
                        .map(|p| p.as_ref().map_or(f64::NAN, |p| p.ipc))
                        .collect()
                })
                .expect("scheme ran")
        };
        let fs = ipc_of("fs-feedback");
        let improvement = |other: &[f64]| -> f64 {
            fs.iter()
                .zip(other)
                .filter(|(a, b)| a.is_finite() && b.is_finite())
                .map(|(a, b)| (a / b - 1.0) * 100.0)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        println!(
            "[{rank}] FS vs Vantage: up to {:+.1}% subject IPC; FS vs PriSM: up to {:+.1}%\n\
             (paper anchors: up to +6.0% and +13.7%)\n",
            improvement(&ipc_of("vantage")),
            improvement(&ipc_of("prism")),
        );
        for (r, scheme, pts) in &results {
            if r != rank {
                continue;
            }
            for (n, p) in SUBJECT_COUNTS.iter().zip(pts) {
                if let Some(p) = p {
                    csv.push(vec![
                        rank.to_string(),
                        scheme.clone(),
                        n.to_string(),
                        format!("{:.4}", p.occupancy_frac),
                        format!("{:.4}", p.aef),
                        format!("{:.4}", p.ipc),
                    ]);
                }
            }
        }
    }
    fs_bench::save_csv(
        "fig7_qos",
        &["ranking", "scheme", "n_subject", "occupancy_frac", "aef", "subject_ipc"],
        &csv,
    );
}
