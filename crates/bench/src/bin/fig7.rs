//! Figure 7, regenerated standalone; see `fs_bench::experiments::fig7`
//! for the experiment definition and `--bin all` for the full sweep.

fn main() {
    fs_bench::experiments::run_single_from_cli(&fs_bench::experiments::FIG7);
}
