//! Shared helpers for the experiment binaries that regenerate every
//! figure and table of the paper (see DESIGN.md §4 for the index).
//!
//! Each figure has its own binary (`cargo run --release -p fs-bench
//! --bin figN`); all binaries accept `--quick` to run a shortened
//! version suitable for smoke testing, print the paper's expected
//! series next to the measured ones, and drop a CSV under `results/`.

use cachesim::array::CacheArray;
use cachesim::array::{
    FullyAssociative, RandomCandidates, SetAssociative, SkewAssociative, ZCache,
};
use cachesim::hashing::LineHash;
use cachesim::scheme_api::EvictMaxFutility;
use cachesim::{Engine, EngineCore, FutilityRanking, PartitionScheme, ShardedEngine};
use futility_core::{FeedbackConfig, FsFeedback};
use ranking::{BucketCoarseLru, BucketRrip, CoarseLru, ExactLru, Lfu, Opt, RandomRanking, Rrip};
use std::path::{Path, PathBuf};

pub mod checkpoint;
pub mod experiments;
pub mod runner;
pub mod timing;

/// Cache line size used throughout (Table II).
pub const LINE_BYTES: usize = 64;

/// How much to shrink an experiment relative to the paper's full
/// configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration.
    Full,
    /// Traces shortened 8× — minutes, not hours (`--quick`).
    Quick,
    /// Traces *and* cache sizes shrunk 64× — seconds even in debug
    /// builds; drives every code path but not the paper's anchors
    /// (`--smoke`, used by the integration tests).
    Smoke,
}

impl Scale {
    /// Parse `--quick` / `--smoke` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--smoke") {
            Scale::Smoke
        } else if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Scale an access/insertion count.
    pub fn accesses(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 8).max(1),
            Scale::Smoke => (full / 64).max(1),
        }
    }

    /// Scale a cache size in lines (kept a multiple of 64 so 16-way
    /// arrays always get whole sets).
    pub fn lines(self, full: usize) -> usize {
        match self {
            Scale::Full | Scale::Quick => full,
            Scale::Smoke => (full / 64).max(64),
        }
    }
}

/// Parse `--jobs N` from the process arguments; defaults to the number
/// of available cores.
pub fn cli_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--jobs" {
            return args
                .get(i + 1)
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("--jobs needs a positive integer"));
        }
        if let Some(n) = a.strip_prefix("--jobs=") {
            return n.parse().expect("--jobs needs a positive integer");
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Convert a capacity in KB to lines.
pub fn lines_of_kb(kb: usize) -> usize {
    kb * 1024 / LINE_BYTES
}

/// Whether `--quick` was passed (shortened traces for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Scale a trace length down by 8x in quick mode.
pub fn scaled(len: usize) -> usize {
    if quick_mode() {
        len / 8
    } else {
        len
    }
}

/// The paper's L2 array: 16-way set-associative with hashed (XOR-style)
/// indexing.
pub fn l2_array(lines: usize, seed: u64) -> Box<dyn CacheArray> {
    Box::new(SetAssociative::with_lines(lines, 16, LineHash::new(seed)))
}

/// The Section IV analytical substrate: a random-candidates cache.
pub fn random_array(lines: usize, r: usize, seed: u64) -> Box<dyn CacheArray> {
    Box::new(RandomCandidates::new(lines, r, seed))
}

/// A fully-associative array (FullAssoc ideal / Figure 6).
pub fn fa_array(lines: usize) -> Box<dyn CacheArray> {
    Box::new(FullyAssociative::new(lines))
}

/// Construct any enforcement scheme evaluated in Section VIII by name:
/// `"fs-feedback"`, `"pf"`, `"cqvp"`, `"prism"`, `"vantage"`,
/// `"full-assoc"`, `"unpartitioned"`.
///
/// # Panics
/// Panics on unknown names (these binaries are the only callers).
pub fn scheme(name: &str) -> Box<dyn PartitionScheme> {
    if name == "fs-feedback" {
        return Box::new(FsFeedback::new(FeedbackConfig::default()));
    }
    baselines::by_name(name).unwrap_or_else(|| panic!("unknown scheme {name}"))
}

/// Construct a futility ranking by name (see [`ranking::by_name`]).
///
/// # Panics
/// Panics on unknown names.
pub fn futility_ranking(name: &str) -> Box<dyn FutilityRanking> {
    ranking::by_name(name).unwrap_or_else(|| panic!("unknown ranking {name}"))
}

/// Build an engine for one benchmark-grid cell, monomorphized over the
/// array × ranking × scheme combination (120 concrete [`EngineCore`]s
/// behind one object-safe [`Engine`]). The array geometry matches
/// `bench_engine`'s grid: 16 candidate ways per array kind at the given
/// line count. The scheme dimension is devirtualized for the two fast
/// lanes the paper's experiments hammer — `"fs-feedback"` and
/// `"unpartitioned"` — whose byte-lane capability checks and
/// `notify_insert`/`notify_evict` hooks then inline to constants on the
/// batched miss path; the remaining baselines stay trait objects to
/// bound the instantiation count (DESIGN.md §10).
///
/// The coarse rankings map to their treap-free bucket backends
/// ([`BucketCoarseLru`] / [`BucketRrip`], DESIGN.md §14), which produce
/// identical futility values and therefore identical outcomes. Two
/// exceptions keep the treaps in play: compositions that evict through
/// `max_futility_line` — the `"full-assoc"` scheme and the
/// `"fully-assoc"` array — need the exact-shadow tie-order semantics
/// only the treap backends provide, and the explicit names
/// `"coarse-lru-treap"` / `"rrip-treap"` request the treap backends
/// directly (the A/B reference arms of `bench_engine --ab-bucket`).
///
/// Unknown ranking names fall back to the fully boxed
/// [`PartitionedCache`](cachesim::PartitionedCache) composition;
/// unknown array names panic (the experiment binaries are the only
/// callers).
pub fn engine_for(
    array: &str,
    ranking_name: &str,
    scheme_name: &str,
    lines: usize,
    seed: u64,
    partitions: usize,
) -> Box<dyn Engine> {
    // Compositions whose evictions go through `max_futility_line` keep
    // the treap backends: its tie order is exact-shadow-defined there,
    // and the bucket backends' documented tie-order deviation would
    // change victims (tests/bucket_vs_treap.rs pins the complement).
    let evicts_by_max_line = scheme_name == "full-assoc" || array == "fully-assoc";
    macro_rules! with_scheme {
        ($arr:expr, $rank:expr) => {
            match scheme_name {
                "unpartitioned" => {
                    Box::new(EngineCore::new($arr, $rank, EvictMaxFutility, partitions))
                        as Box<dyn Engine>
                }
                "fs-feedback" => Box::new(EngineCore::new(
                    $arr,
                    $rank,
                    FsFeedback::new(FeedbackConfig::default()),
                    partitions,
                )),
                _ => Box::new(EngineCore::new(
                    $arr,
                    $rank,
                    scheme(scheme_name),
                    partitions,
                )),
            }
        };
    }
    macro_rules! with_ranking {
        ($arr:expr) => {
            match ranking_name {
                "lru" => with_scheme!($arr, ExactLru::new()),
                "coarse-lru" if evicts_by_max_line => with_scheme!($arr, CoarseLru::new()),
                "coarse-lru" | "coarse-lru-bucket" => with_scheme!($arr, BucketCoarseLru::new()),
                "coarse-lru-treap" => with_scheme!($arr, CoarseLru::new()),
                "lfu" => with_scheme!($arr, Lfu::new()),
                "opt" => with_scheme!($arr, Opt::new()),
                "random" => with_scheme!($arr, RandomRanking::new(0xFACE)),
                "rrip" if evicts_by_max_line => with_scheme!($arr, Rrip::new()),
                "rrip" | "rrip-bucket" => with_scheme!($arr, BucketRrip::new()),
                "rrip-treap" => with_scheme!($arr, Rrip::new()),
                other => Box::new(EngineCore::new(
                    Box::new($arr) as Box<dyn CacheArray>,
                    futility_ranking(other),
                    scheme(scheme_name),
                    partitions,
                )),
            }
        };
    }
    match array {
        "set-assoc" => with_ranking!(SetAssociative::with_lines(lines, 16, LineHash::new(seed))),
        "skew-assoc" => with_ranking!(SkewAssociative::new(lines / 16, 16, seed)),
        "zcache" => with_ranking!(ZCache::new(lines / 4, 4, 16, seed)),
        "rand-cands" => with_ranking!(RandomCandidates::new(lines, 16, seed)),
        "fully-assoc" => with_ranking!(FullyAssociative::new(lines)),
        other => panic!("unknown array {other}"),
    }
}

/// Build a [`ShardedEngine`] for a scale-out sweep cell: `shards`
/// monomorphized cores (16-way set-associative array, coarse-LRU
/// ranking *without* the exact-rank shadow — at ≥1M lines the
/// per-pool shadow treaps would dominate memory and time, and the
/// sharded sweeps read miss rates and MADs, not exact AEF), each over
/// `total_lines / shards` lines. The scheme dimension keeps the
/// `engine_for` fast lanes: `"fs-feedback"` and `"unpartitioned"` are
/// scheme-concrete (byte-lane victim selection folds to constants),
/// baselines stay boxed.
///
/// Per-shard array seeds derive from `seed` via
/// [`seed_for`](cachesim::prng::seed_for) keyed by shard index, the
/// same discipline as the experiment runner, so results never depend
/// on worker scheduling.
///
/// # Panics
/// Panics if `total_lines` is not divisible into 16-way shard arrays
/// or the scheme name is unknown.
pub fn sharded_engine_for(
    scheme_name: &str,
    total_lines: usize,
    shards: usize,
    partitions: usize,
    seed: u64,
) -> ShardedEngine {
    sharded_engine_for_backend(scheme_name, total_lines, shards, partitions, seed, "treap")
}

/// [`sharded_engine_for`] with the coarse-LRU backend selectable:
/// `"treap"` (the default — `CoarseLru::without_exact_shadow`, which
/// every committed sharded golden was pinned against) or `"bucket"`
/// ([`BucketCoarseLru`]). Both produce identical futility values, so
/// hit/miss outcomes and occupancies are bit-identical across backends
/// and only miss-path cost differs; eviction-futility (AEF) statistics
/// may differ, as neither backend carries the exact shadow.
///
/// # Panics
/// Panics on unknown backend or scheme names, or on a `total_lines`
/// that does not split into whole 16-way shard arrays.
pub fn sharded_engine_for_backend(
    scheme_name: &str,
    total_lines: usize,
    shards: usize,
    partitions: usize,
    seed: u64,
    backend: &str,
) -> ShardedEngine {
    assert!(shards > 0, "need at least one shard");
    assert_eq!(
        total_lines % (shards * 16),
        0,
        "total_lines must split into whole 16-way shard arrays"
    );
    assert!(
        backend == "treap" || backend == "bucket",
        "unknown coarse-LRU backend {backend}"
    );
    let lines = total_lines / shards;
    ShardedEngine::new(shards, partitions, |i| {
        let shard_seed = cachesim::prng::seed_for("shard", seed ^ (i as u64) << 32);
        let arr = SetAssociative::with_lines(lines, 16, LineHash::new(shard_seed));
        match (scheme_name, backend) {
            ("fs-feedback", "bucket") => Box::new(EngineCore::new(
                arr,
                BucketCoarseLru::new(),
                FsFeedback::new(FeedbackConfig::default()),
                partitions,
            )) as Box<dyn Engine>,
            ("fs-feedback", _) => Box::new(EngineCore::new(
                arr,
                CoarseLru::without_exact_shadow(),
                FsFeedback::new(FeedbackConfig::default()),
                partitions,
            )),
            ("unpartitioned", "bucket") => Box::new(EngineCore::new(
                arr,
                BucketCoarseLru::new(),
                EvictMaxFutility,
                partitions,
            )),
            ("unpartitioned", _) => Box::new(EngineCore::new(
                arr,
                CoarseLru::without_exact_shadow(),
                EvictMaxFutility,
                partitions,
            )),
            (_, "bucket") => Box::new(EngineCore::new(
                Box::new(arr) as Box<dyn CacheArray>,
                Box::new(BucketCoarseLru::new()) as Box<dyn FutilityRanking>,
                scheme(scheme_name),
                partitions,
            )),
            _ => Box::new(EngineCore::new(
                Box::new(arr) as Box<dyn CacheArray>,
                Box::new(CoarseLru::without_exact_shadow()) as Box<dyn FutilityRanking>,
                scheme(scheme_name),
                partitions,
            )),
        }
    })
}

/// Directory where binaries drop CSV series; created on demand.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results/");
    dir
}

/// Save a CSV series under `results/<name>.csv` (best effort: prints a
/// warning instead of failing the experiment on I/O errors).
pub fn save_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    save_csv_in(&results_dir(), name, header, rows);
}

/// Save a CSV series under `<dir>/<name>.csv` (best effort).
pub fn save_csv_in(dir: &Path, name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path) {
        Ok(f) => {
            if let Err(e) = analysis::write_csv(f, header, rows) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: failed to create {}: {e}", path.display()),
    }
}

/// Format a float with 3 decimals, rendering NaN as "-".
pub fn fmt3(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion() {
        assert_eq!(lines_of_kb(512), 8192);
        assert_eq!(lines_of_kb(8192), 131_072);
    }

    #[test]
    fn scheme_factory_covers_fs_and_baselines() {
        for name in [
            "fs-feedback",
            "pf",
            "cqvp",
            "prism",
            "vantage",
            "full-assoc",
            "unpartitioned",
        ] {
            assert_eq!(scheme(name).name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn scheme_factory_rejects_unknown() {
        let _ = scheme("lottery");
    }

    #[test]
    fn fmt3_renders_nan_as_dash() {
        assert_eq!(fmt3(f64::NAN), "-");
        assert_eq!(fmt3(0.25), "0.250");
    }

    #[test]
    fn engine_for_matches_boxed_composition() {
        use cachesim::{AccessBlock, AccessMeta, PartitionId, PartitionedCache};
        // One cell per scheme arm of the factory: boxed baseline,
        // concrete fs-feedback and concrete unpartitioned (the latter
        // two exercising the monomorphized byte lane where the ranking
        // supports it). The coarse cells are deliberately cross-backend:
        // `engine_for` hands them the bucket backends while the boxed
        // reference composition uses the treap rankings — identical
        // futility values must yield identical outcomes. The `-treap` /
        // `-bucket` suffixed cells pin the explicit A/B arms.
        for (arr, rank, sch) in [
            ("set-assoc", "lru", "pf"),
            ("zcache", "rrip", "fs-feedback"),
            ("rand-cands", "coarse-lru", "fs-feedback"),
            ("set-assoc", "coarse-lru", "unpartitioned"),
            ("set-assoc", "coarse-lru-treap", "fs-feedback"),
            ("zcache", "rrip-bucket", "fs-feedback"),
        ] {
            let mut mono = engine_for(arr, rank, sch, 256, 9, 2);
            let array: Box<dyn CacheArray> = match arr {
                "set-assoc" => l2_array(256, 9),
                "rand-cands" => Box::new(RandomCandidates::new(256, 16, 9)),
                _ => Box::new(ZCache::new(64, 4, 16, 9)),
            };
            // The boxed reference always uses the canonical treap
            // ranking of the family.
            let boxed_rank = match rank {
                "coarse-lru-treap" | "coarse-lru-bucket" => "coarse-lru",
                "rrip-treap" | "rrip-bucket" => "rrip",
                other => other,
            };
            let mut boxed =
                PartitionedCache::new(array, futility_ranking(boxed_rank), scheme(sch), 2);
            let mut block = AccessBlock::new();
            let mut x = 3u64;
            for _ in 0..4000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                block.push(
                    PartitionId((x % 2) as u16),
                    (x >> 33) % 512,
                    AccessMeta::default(),
                );
            }
            let hits = mono.access_batch(&block);
            for i in 0..block.len() {
                boxed.access(block.parts()[i], block.addrs()[i], block.metas()[i]);
            }
            assert_eq!(hits, boxed.stats().total_hits(), "{arr}/{rank}/{sch}");
            assert_eq!(
                mono.stats().total_misses(),
                boxed.stats().total_misses(),
                "{arr}/{rank}/{sch}"
            );
            assert_eq!(
                mono.state().actual,
                boxed.state().actual,
                "{arr}/{rank}/{sch}"
            );
        }
    }
}
