//! A minimal micro-benchmark harness (the in-tree replacement for
//! criterion): calibrated batching, median-of-batches reporting.
//!
//! Not statistically fancy — the goal is stable relative numbers for
//! the micro-benchmark binaries (`--bin bench_arrays`, `bench_rankings`,
//! `bench_schemes`) without external dependencies. Run them in release
//! mode; `--quick` cuts the measurement time ~10×.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported `std::hint::black_box` so benchmark code reads like the
/// criterion originals.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target wall time per measurement batch.
const BATCH_TARGET: Duration = Duration::from_millis(5);

/// Measure the cost of one call of `f`, in nanoseconds: calibrate a
/// batch size that runs ~[`BATCH_TARGET`], then time `batches` batches
/// and report the median batch's per-iteration cost.
pub fn measure_ns<F: FnMut()>(mut f: F, batches: usize) -> f64 {
    // Warm up and calibrate the batch size in one go.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t0.elapsed();
        if dt >= BATCH_TARGET || batch >= 1 << 30 {
            // Rescale to the target (clamped: dt can be ~0 for tiny f).
            let scale = BATCH_TARGET.as_secs_f64() / dt.as_secs_f64().max(1e-9);
            batch = ((batch as f64 * scale) as u64).max(1);
            break;
        }
        batch *= 4;
    }
    let mut per_iter: Vec<f64> = (0..batches.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    per_iter[per_iter.len() / 2]
}

/// A named group of measurements, printed as an aligned table.
pub struct Group {
    name: String,
    batches: usize,
    rows: Vec<(String, f64)>,
}

impl Group {
    /// Start a group; honors `--quick` (fewer batches).
    pub fn new(name: impl Into<String>) -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Group {
            name: name.into(),
            batches: if quick { 3 } else { 21 },
            rows: Vec::new(),
        }
    }

    /// Measure one labelled case.
    pub fn bench<F: FnMut()>(&mut self, label: impl Into<String>, f: F) -> &mut Self {
        let ns = measure_ns(f, self.batches);
        self.rows.push((label.into(), ns));
        self
    }

    /// Print the group: ns/iter plus the ratio to the fastest case.
    pub fn finish(&self) {
        println!("## {}", self.name);
        let best = self
            .rows
            .iter()
            .map(|(_, ns)| *ns)
            .fold(f64::INFINITY, f64::min);
        let width = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, ns) in &self.rows {
            println!("{label:width$}  {ns:>10.1} ns/iter  ({:>5.2}x)", ns / best);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_orders_cheap_below_expensive() {
        let cheap = measure_ns(
            || {
                black_box(1 + 1);
            },
            3,
        );
        let expensive = measure_ns(
            || {
                let mut s = 0u64;
                for i in 0..2000u64 {
                    s = s.wrapping_add(black_box(i));
                }
                black_box(s);
            },
            3,
        );
        assert!(cheap > 0.0);
        assert!(expensive > cheap, "{expensive} vs {cheap}");
    }
}
