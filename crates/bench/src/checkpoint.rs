//! Checkpoint/resume for long experiment runs.
//!
//! Every experiment point is a deterministic function of its per-point
//! seed ([`seed_for`](cachesim::prng::seed_for)), so a run interrupted
//! at an insertion boundary can be resumed bit-for-bit from a snapshot
//! of the engine plus the trace driver's replay state. The binaries
//! accept:
//!
//! * `--checkpoint-every N` — write a checkpoint file after every `N`
//!   measured insertions;
//! * `--checkpoint-dir DIR` — where checkpoint files go (default
//!   `results/checkpoints`);
//! * `--resume DIR` — before the measured run, load the point's
//!   checkpoint from `DIR` (skipping warmup entirely) and continue from
//!   the recorded insertion count;
//! * `--stop-after N` — end the measured run after `N` insertions,
//!   leaving a mid-run checkpoint behind for a later `--resume` (this
//!   is how the CI replay gate manufactures an interrupted run).
//!
//! One file per sweep point, named from the experiment and point label,
//! so resumption is `--jobs`-invariant just like the CSVs: no state is
//! shared between points, and each point's seed is derived from its
//! index, not from worker scheduling.
//!
//! A checkpoint file is a single snapshot stream: a `checkpoint` header
//! section (experiment, label, insertions done so far), the driver's
//! `rate-driver` section, and the complete engine image embedded as an
//! opaque blob. The engine image is itself a full
//! [`EngineCore::snapshot`](cachesim::EngineCore::snapshot) stream —
//! header, version and checksum included — so a checkpoint survives the
//! same corruption checks as any snapshot, twice over.
//!
//! Resuming with a *larger* `--checkpoint-every`-produced target than
//! the checkpointed run is deliberately allowed: the stored insertion
//! count says where the simulation stopped, and the measured run simply
//! continues to the currently requested horizon. That is how the
//! long-horizon runs in EXPERIMENTS.md extend a finished run without
//! replaying it.

use cachesim::{Engine, SnapshotError, SnapshotReader, SnapshotWriter};
use std::path::{Path, PathBuf};
use workloads::RateControlledDriver;

/// Checkpoint/resume policy parsed from the process arguments.
#[derive(Clone, Debug)]
pub struct Checkpointing {
    /// Write a checkpoint every this many measured insertions.
    every: Option<u64>,
    /// Directory receiving checkpoint files.
    dir: PathBuf,
    /// Directory to resume from, if any.
    resume: Option<PathBuf>,
    /// Stop the measured run after this many insertions (checkpoint
    /// files record the stop point, so a later `--resume` continues to
    /// the full horizon). Only useful together with `every`.
    stop_after: Option<u64>,
}

impl Checkpointing {
    /// Parse `--checkpoint-every N`, `--checkpoint-dir DIR` and
    /// `--resume DIR` from the process arguments.
    ///
    /// # Panics
    /// Panics on a malformed value (these are CLI entry points).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Checkpointing {
            every: flag_value(&args, "--checkpoint-every").map(|v| {
                let n: u64 = v
                    .parse()
                    .expect("--checkpoint-every needs a positive count");
                assert!(n > 0, "--checkpoint-every needs a positive count");
                n
            }),
            dir: flag_value(&args, "--checkpoint-dir")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("results/checkpoints")),
            resume: flag_value(&args, "--resume").map(PathBuf::from),
            stop_after: flag_value(&args, "--stop-after")
                .map(|v| v.parse().expect("--stop-after needs an insertion count")),
        }
    }

    /// A policy that neither writes nor resumes (the default for tests
    /// and library callers).
    pub fn disabled() -> Self {
        Checkpointing {
            every: None,
            dir: PathBuf::from("results/checkpoints"),
            resume: None,
            stop_after: None,
        }
    }

    /// Whether this run writes or reads checkpoints at all — when
    /// false, [`run`](Self::run) is exactly one uninterrupted
    /// `driver.run` call.
    pub fn active(&self) -> bool {
        self.every.is_some() || self.resume.is_some()
    }

    /// Whether `--resume DIR` was given: callers must attach their
    /// measurement recorder *before* [`try_resume`](Self::try_resume)
    /// (the checkpointed engine image expects one) instead of after
    /// warmup.
    pub fn resuming(&self) -> bool {
        self.resume.is_some()
    }

    /// The checkpoint file for one sweep point under `dir`.
    pub fn file_in(dir: &Path, experiment: &str, label: &str) -> PathBuf {
        dir.join(format!("{experiment}__{}.ckpt", sanitize(label)))
    }

    /// Try to resume this point from `--resume`: returns the number of
    /// measured insertions already performed, or 0 when no resume
    /// directory was given. The engine must already have its recorder
    /// attached (checkpoints are taken with the measurement recorder
    /// live, so the restored image expects one).
    ///
    /// # Panics
    /// Panics with the decode error when `--resume` was given but the
    /// point's checkpoint is missing, corrupt, or from a different
    /// configuration — resuming from bad state must never silently
    /// degrade into a fresh run.
    pub fn try_resume<E: Engine + ?Sized>(
        &self,
        experiment: &str,
        label: &str,
        driver: &mut RateControlledDriver,
        cache: &mut E,
    ) -> u64 {
        let Some(dir) = &self.resume else {
            return 0;
        };
        let path = Self::file_in(dir, experiment, label);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("--resume: cannot read {}: {e}", path.display()));
        load(&bytes, experiment, label, driver, cache)
            .unwrap_or_else(|e| panic!("--resume: {}: {e}", path.display()))
    }

    /// Run the measured window: `insertions` total, of which
    /// `already_done` (from [`try_resume`](Self::try_resume)) are
    /// skipped. With `--checkpoint-every N` the run is chunked and a
    /// checkpoint file is written after every chunk; chunking is
    /// invisible to the simulation (the driver carries its state across
    /// `run` calls), so the results are byte-identical to an
    /// uninterrupted run. Returns the total insertions driven
    /// (including the resumed portion); short counts mean a trace was
    /// exhausted.
    pub fn run<E: Engine + ?Sized>(
        &self,
        experiment: &str,
        label: &str,
        driver: &mut RateControlledDriver,
        cache: &mut E,
        already_done: u64,
        insertions: u64,
    ) -> u64 {
        let mut done = already_done;
        let target = self.stop_after.map_or(insertions, |s| s.min(insertions));
        let Some(every) = self.every else {
            if done < target {
                done += driver.run(cache, target - done);
            }
            return done;
        };
        while done < target {
            let chunk = every.min(target - done);
            let driven = driver.run(cache, chunk);
            done += driven;
            self.write(experiment, label, driver, cache, done);
            if driven < chunk {
                break; // trace exhausted; the checkpoint records where
            }
        }
        done
    }

    /// Serialize driver + engine into this point's checkpoint file
    /// (write-then-rename, so a crash never leaves a torn file behind).
    fn write<E: Engine + ?Sized>(
        &self,
        experiment: &str,
        label: &str,
        driver: &RateControlledDriver,
        cache: &E,
        done: u64,
    ) {
        std::fs::create_dir_all(&self.dir).expect("create checkpoint dir");
        let path = Self::file_in(&self.dir, experiment, label);
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, save(experiment, label, driver, cache, done))
            .unwrap_or_else(|e| panic!("write checkpoint {}: {e}", tmp.display()));
        std::fs::rename(&tmp, &path)
            .unwrap_or_else(|e| panic!("publish checkpoint {}: {e}", path.display()));
    }
}

/// Encode one checkpoint: header, driver replay state, engine image.
pub fn save<E: Engine + ?Sized>(
    experiment: &str,
    label: &str,
    driver: &RateControlledDriver,
    cache: &E,
    done: u64,
) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.begin("checkpoint");
    w.str(experiment);
    w.str(label);
    w.u64(done);
    w.end();
    driver.save_state(&mut w);
    w.begin("engine-image");
    w.bytes(&cache.snapshot());
    w.end();
    w.finish()
}

/// Decode a checkpoint into a freshly rebuilt driver + engine of the
/// same composition; returns the insertion count recorded at save time.
///
/// # Errors
/// [`SnapshotError::Mismatch`] when the checkpoint belongs to a
/// different experiment or sweep point, plus every error the underlying
/// snapshot decoders can produce.
pub fn load<E: Engine + ?Sized>(
    bytes: &[u8],
    experiment: &str,
    label: &str,
    driver: &mut RateControlledDriver,
    cache: &mut E,
) -> Result<u64, SnapshotError> {
    let mut r = SnapshotReader::open(bytes)?;
    r.begin("checkpoint")?;
    let exp = r.str()?;
    if exp != experiment {
        return Err(SnapshotError::mismatch(format!(
            "checkpoint belongs to experiment {exp:?}, expected {experiment:?}"
        )));
    }
    let lab = r.str()?;
    if lab != label {
        return Err(SnapshotError::mismatch(format!(
            "checkpoint belongs to point {lab:?}, expected {label:?}"
        )));
    }
    let done = r.u64()?;
    r.end()?;
    driver.load_state(&mut r)?;
    r.begin("engine-image")?;
    let image = r.bytes()?;
    cache.restore(image)?;
    r.end()?;
    r.finish()?;
    Ok(done)
}

/// Point labels become file names: keep alphanumerics, `.`, `-`, `_`;
/// everything else maps to `-`.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Parse `--horizon N`: extend an experiment's measured window to `N`
/// insertions while keeping everything *composition-relevant* (recorder
/// cadence, warmup, seeds) pinned to the scale's defaults. Synthetic
/// traces are prefix-stable in their seed, so a checkpoint taken at the
/// default horizon resumes seamlessly into a longer one — that is the
/// long-horizon methodology in EXPERIMENTS.md.
pub fn horizon_override() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    flag_value(&args, "--horizon").map(|v| {
        let n: u64 = v.parse().expect("--horizon needs an insertion count");
        assert!(n > 0, "--horizon needs a positive insertion count");
        n
    })
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return Some(
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} needs a value"))
                    .clone(),
            );
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::array::RandomCandidates;
    use cachesim::{PartitionedCache, Trace};

    fn composition(seed: u64) -> (PartitionedCache, RateControlledDriver) {
        let cache = PartitionedCache::new(
            Box::new(RandomCandidates::new(256, 8, seed)),
            cachesim::naive_lru(),
            cachesim::evict_max_futility(),
            2,
        );
        let traces = vec![
            Trace::from_addrs((0..40_000u64).map(|i| i % 900), 1),
            Trace::from_addrs((0..40_000u64).map(|i| (1 << 20) | (i % 500)), 1),
        ];
        let driver = RateControlledDriver::new(traces, vec![0.5, 0.5], seed ^ 0xC0FFEE);
        (cache, driver)
    }

    #[test]
    fn checkpoint_round_trip_resumes_bit_identically() {
        // Uninterrupted reference run.
        let (mut full_cache, mut full_driver) = composition(7);
        full_driver.run(&mut full_cache, 5_000);

        // Checkpointed run: stop at 3_000, encode, rebuild, decode.
        let (mut cache, mut driver) = composition(7);
        driver.run(&mut cache, 3_000);
        let file = save("exp", "point", &driver, &cache, 3_000);

        let (mut cache2, mut driver2) = composition(7);
        let done = load(&file, "exp", "point", &mut driver2, &mut cache2).unwrap();
        assert_eq!(done, 3_000);
        driver2.run(&mut cache2, 2_000);

        assert_eq!(full_cache.snapshot(), cache2.snapshot());
    }

    #[test]
    fn checkpoint_rejects_wrong_point() {
        let (mut cache, mut driver) = composition(3);
        driver.run(&mut cache, 100);
        let file = save("exp", "point-a", &driver, &cache, 100);
        let (mut cache2, mut driver2) = composition(3);
        let err = load(&file, "exp", "point-b", &mut driver2, &mut cache2).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
        let err = load(&file, "other", "point-a", &mut driver2, &mut cache2).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn labels_sanitize_to_safe_file_names() {
        let p = Checkpointing::file_in(Path::new("d"), "fig5", "fs(I1=0.1)");
        assert_eq!(p, PathBuf::from("d/fig5__fs-I1-0.1-.ckpt"));
    }

    #[test]
    fn chunked_run_matches_uninterrupted_run() {
        let (mut full_cache, mut full_driver) = composition(11);
        full_driver.run(&mut full_cache, 4_000);

        let dir = std::env::temp_dir().join("fs-ckpt-test-chunked");
        let _ = std::fs::remove_dir_all(&dir);
        let cp = Checkpointing {
            every: Some(700), // does not divide 4_000: exercises the tail chunk
            dir: dir.clone(),
            resume: None,
            stop_after: None,
        };
        let (mut cache, mut driver) = composition(11);
        let done = cp.run("exp", "p", &mut driver, &mut cache, 0, 4_000);
        assert_eq!(done, 4_000);
        assert_eq!(full_cache.snapshot(), cache.snapshot());

        // The last checkpoint on disk resumes to the same final state.
        let bytes = std::fs::read(Checkpointing::file_in(&dir, "exp", "p")).unwrap();
        let (mut cache2, mut driver2) = composition(11);
        let done = load(&bytes, "exp", "p", &mut driver2, &mut cache2).unwrap();
        assert_eq!(done, 4_000);
        assert_eq!(full_cache.snapshot(), cache2.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
