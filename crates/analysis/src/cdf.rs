//! Distribution utilities: CDF evaluation, downsampling for printable
//! tables, and summary statistics (mean / MAD / percentiles).

/// Arithmetic mean of a slice; NaN when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Evaluate a step CDF given as sorted `(x, cum_prob)` pairs at `x`.
/// Returns 0 before the first point and the last probability after the
/// final point.
pub fn cdf_at(cdf: &[(f64, f64)], x: f64) -> f64 {
    let mut result = 0.0;
    for &(xi, p) in cdf {
        if xi <= x {
            result = p;
        } else {
            break;
        }
    }
    result
}

/// Downsample a dense CDF to `points` evenly spaced x positions so it
/// can be printed as a compact series.
pub fn downsample_cdf(cdf: &[(f64, f64)], points: usize) -> Vec<(f64, f64)> {
    if cdf.is_empty() || points == 0 {
        return Vec::new();
    }
    let lo = cdf.first().unwrap().0;
    let hi = cdf.last().unwrap().0;
    (0..points)
        .map(|k| {
            let x = lo + (hi - lo) * (k as f64 + 1.0) / points as f64;
            (x, cdf_at(cdf, x))
        })
        .collect()
}

/// Summary statistics of a sample distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DistributionSummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Mean absolute value (the paper's MAD when samples are signed
    /// deviations from a target).
    pub mean_abs: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl DistributionSummary {
    /// Summarize a sample (copied and sorted internally).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return DistributionSummary {
                count: 0,
                mean: f64::NAN,
                mean_abs: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                median: f64::NAN,
                p95: f64::NAN,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let pct = |q: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        DistributionSummary {
            count: sorted.len(),
            mean: mean(&sorted),
            mean_abs: sorted.iter().map(|x| x.abs()).sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            median: pct(0.5),
            p95: pct(0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_evaluation_steps() {
        let cdf = [(0.0, 0.1), (0.5, 0.6), (1.0, 1.0)];
        assert_eq!(cdf_at(&cdf, -1.0), 0.0);
        assert_eq!(cdf_at(&cdf, 0.25), 0.1);
        assert_eq!(cdf_at(&cdf, 0.5), 0.6);
        assert_eq!(cdf_at(&cdf, 2.0), 1.0);
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let cdf: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64 / 99.0, (i + 1) as f64 / 100.0))
            .collect();
        let ds = downsample_cdf(&cdf, 10);
        assert_eq!(ds.len(), 10);
        assert!((ds.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in ds.windows(2) {
            assert!(w[1].1 >= w[0].1, "monotone");
        }
    }

    #[test]
    fn summary_statistics() {
        let s = DistributionSummary::of(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 0.0).abs() < 1e-12);
        assert!((s.mean_abs - 1.2).abs() < 1e-12);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = DistributionSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan());
    }
}
