#![warn(missing_docs)]

//! Analysis toolkit for the Futility Scaling reproduction: associativity
//! CDFs and AEF summaries, size-deviation statistics, and plain-text /
//! CSV report rendering used by every experiment binary.

pub mod cdf;
pub mod oracle;
pub mod report;
pub mod stats;

pub use cdf::{cdf_at, downsample_cdf, mean, DistributionSummary};
pub use oracle::ZipfOracle;
pub use report::{write_csv, Table};
pub use stats::{ci95_halfwidth, geometric_mean, harmonic_mean, stddev};
