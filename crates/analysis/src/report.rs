//! Plain-text table rendering and CSV output for experiment harnesses.

use std::fmt::Write as _;
use std::io;

/// A simple column-aligned text table with an optional title, rendering
/// to a `String` via [`Display`](std::fmt::Display).
///
/// # Example
/// ```
/// use analysis::Table;
/// let mut t = Table::new(vec!["scheme".into(), "AEF".into()]);
/// t.row(vec!["fs".into(), "0.86".into()]);
/// let s = t.to_string();
/// assert!(s.contains("scheme") && s.contains("0.86"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            title: None,
            header,
            rows: Vec::new(),
        }
    }

    /// Attach a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Append a row of formatted floats with the given precision.
    pub fn row_mixed(
        &mut self,
        label: impl Into<String>,
        values: &[f64],
        precision: usize,
    ) -> &mut Self {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.widths();
        let line = |cells: &[String], out: &mut std::fmt::Formatter<'_>| {
            let mut s = String::new();
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:>width$}");
            }
            writeln!(out, "{}", s.trim_end())
        };
        if let Some(t) = &self.title {
            writeln!(f, "## {t}")?;
        }
        line(&self.header, f)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(row, f)?;
        }
        Ok(())
    }
}

/// Write rows as CSV to any writer (used to dump series for plotting).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_csv<W: io::Write>(mut w: W, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    writeln!(w, "{}", header.join(","))?;
    for row in rows {
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "value".into()]).with_title("demo");
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, 2 rows");
    }

    #[test]
    fn row_mixed_formats_floats() {
        let mut t = Table::new(vec!["k".into(), "v1".into(), "v2".into()]);
        t.row_mixed("r", &[1.23456, 2.0], 2);
        assert!(t.to_string().contains("1.23"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "extra".into()]);
        t.row(vec![]);
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x,y\n1,2\n3,4\n");
    }
}
