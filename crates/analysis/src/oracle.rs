//! Closed-form LRU miss-rate oracle for Zipf(α) populations, after
//! Che's approximation (Che, Tung & Wang 2002) as formalized by Fagin
//! and applied to power-law CDN populations by Berthet (PAPERS.md).
//!
//! The model: an LRU cache of `C` lines serving independent-reference
//! traffic over `n` items with popularities `q_k` behaves as if every
//! item were evicted exactly `T` time units after its last reference,
//! where the *characteristic time* `T` is the unique root of
//!
//! ```text
//! Σ_k (1 − e^(−q_k · T)) = C
//! ```
//!
//! (the expected number of distinct items referenced in a window of
//! length `T` equals the cache size). Each item then hits with
//! probability `1 − e^(−q_k T)`, so the traffic-weighted miss rate is
//! `1 − Σ_k q_k (1 − e^(−q_k T))`. The approximation is asymptotically
//! exact as `n → ∞` (Fagin) and is accurate to well under a percent at
//! the sizes the sharded sweeps run (≥thousands of items); for a
//! *uniform* population it degenerates to the exact `1 − C/n`.
//!
//! At ≥1M-line scales exact golden CSVs can't exist, so this oracle is
//! the validation layer for `bench_sharded`: measured shard-merged miss
//! rates must agree with [`ZipfOracle::miss_rate`] within a stated
//! tolerance (DESIGN.md §12). Two idealizations bound how tight that
//! tolerance can be: the engine's caches are finite-associativity (not
//! true LRU — FS enforces partitions by scaled-futility eviction), and
//! sharding splits each population hash-randomly across shards.
//! Both effects are small and the sweep quantifies them.

/// Analytic miss-rate model of an LRU cache serving one Zipf(α)
/// population under the independent reference model.
pub struct ZipfOracle {
    /// Normalized popularities, descending: `q[k] ∝ (k+1)^−α`.
    q: Vec<f64>,
}

impl ZipfOracle {
    /// Oracle for `items` distinct items with Zipf exponent `alpha`
    /// (`alpha == 0.0` is the uniform population).
    ///
    /// # Panics
    /// Panics if `items == 0` or `alpha` is negative or non-finite.
    pub fn new(items: usize, alpha: f64) -> Self {
        assert!(items > 0, "need at least one item");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let mut q: Vec<f64> = (0..items).map(|k| ((k + 1) as f64).powf(-alpha)).collect();
        let h: f64 = q.iter().sum();
        for w in &mut q {
            *w /= h;
        }
        ZipfOracle { q }
    }

    /// Number of items in the population.
    pub fn items(&self) -> usize {
        self.q.len()
    }

    /// Popularity of the `k`-th most popular item (0-based).
    pub fn popularity(&self, k: usize) -> f64 {
        self.q[k]
    }

    /// Expected number of distinct items referenced in a window of
    /// length `t` (in accesses): `Σ_k (1 − e^(−q_k t))`.
    fn distinct_in_window(&self, t: f64) -> f64 {
        self.q.iter().map(|&qk| -(-qk * t).exp_m1()).sum()
    }

    /// Che's characteristic time for a cache of `cache_lines` lines:
    /// the root of `distinct_in_window(T) = C`, found by bisection
    /// (monotone in `T`, so the root is unique). Returns `f64::INFINITY`
    /// when the cache holds the whole population.
    pub fn characteristic_time(&self, cache_lines: usize) -> f64 {
        let c = cache_lines as f64;
        let n = self.q.len();
        if cache_lines >= n {
            return f64::INFINITY;
        }
        if cache_lines == 0 {
            return 0.0;
        }
        // Bracket the root: distinct_in_window(0) = 0 < C, and the
        // window sum approaches n > C, so doubling must cross it.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while self.distinct_in_window(hi) < c {
            hi *= 2.0;
            assert!(hi.is_finite(), "characteristic-time bracket diverged");
        }
        // ~100 halvings take the bracket to f64 resolution.
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if mid <= lo || mid >= hi {
                break;
            }
            if self.distinct_in_window(mid) < c {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Per-item hit probability under the characteristic-time
    /// approximation: `1 − e^(−q_k T)`.
    pub fn hit_probability(&self, k: usize, cache_lines: usize) -> f64 {
        let t = self.characteristic_time(cache_lines);
        if t.is_infinite() {
            return 1.0;
        }
        -(-self.q[k] * t).exp_m1()
    }

    /// Traffic-weighted analytic miss rate of an LRU cache of
    /// `cache_lines` lines serving this population.
    pub fn miss_rate(&self, cache_lines: usize) -> f64 {
        let t = self.characteristic_time(cache_lines);
        if t.is_infinite() {
            return 0.0;
        }
        let hit: f64 = self.q.iter().map(|&qk| qk * -(-qk * t).exp_m1()).sum();
        (1.0 - hit).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_population_is_exact() {
        // α = 0: every window of length T references each item with the
        // same probability, and the Che approximation collapses to the
        // exact independent-reference result miss = 1 − C/n.
        let o = ZipfOracle::new(1000, 0.0);
        for c in [1usize, 10, 250, 500, 999] {
            let expect = 1.0 - c as f64 / 1000.0;
            assert!(
                (o.miss_rate(c) - expect).abs() < 1e-6,
                "C={c}: {} vs {expect}",
                o.miss_rate(c)
            );
        }
    }

    #[test]
    fn miss_rate_is_monotone_in_cache_size_and_bounded() {
        let o = ZipfOracle::new(5000, 0.8);
        let mut prev = 1.0;
        for c in [0usize, 1, 10, 100, 1000, 2500, 4999, 5000, 6000] {
            let m = o.miss_rate(c);
            assert!((0.0..=1.0).contains(&m), "C={c}: {m}");
            assert!(m <= prev + 1e-12, "C={c}: {m} > {prev}");
            prev = m;
        }
        assert_eq!(o.miss_rate(0), 1.0);
        assert_eq!(o.miss_rate(5000), 0.0);
    }

    #[test]
    fn characteristic_time_solves_the_window_equation() {
        let o = ZipfOracle::new(2000, 1.0);
        for c in [50usize, 400, 1500] {
            let t = o.characteristic_time(c);
            let filled = o.distinct_in_window(t);
            assert!((filled - c as f64).abs() < 1e-6, "C={c}: {filled}");
        }
    }

    #[test]
    fn skew_helps_hit_rate() {
        // At equal cache size, a more skewed population must miss less:
        // the cache keeps the heavy hitters.
        let c = 500;
        let m0 = ZipfOracle::new(10_000, 0.0).miss_rate(c);
        let m8 = ZipfOracle::new(10_000, 0.8).miss_rate(c);
        let m12 = ZipfOracle::new(10_000, 1.2).miss_rate(c);
        assert!(m12 < m8 && m8 < m0, "{m12} < {m8} < {m0}");
    }

    #[test]
    fn popularities_normalize_and_descend() {
        let o = ZipfOracle::new(100, 0.7);
        let sum: f64 = (0..100).map(|k| o.popularity(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for k in 1..100 {
            assert!(o.popularity(k) <= o.popularity(k - 1));
        }
        assert_eq!(o.items(), 100);
    }
}
