//! Aggregate statistics for multi-run reporting: alternative means and
//! normal-approximation confidence intervals.

/// Geometric mean; NaN when empty, and requires positive samples.
///
/// # Panics
/// Panics if any sample is non-positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean needs positive samples"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Harmonic mean (the right aggregate for rates like IPC across equal
/// instruction counts); NaN when empty.
///
/// # Panics
/// Panics if any sample is non-positive.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "harmonic mean needs positive samples"
    );
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Sample standard deviation (n−1 denominator); NaN for fewer than two
/// samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mean = crate::cdf::mean(xs);
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Normal-approximation 95% confidence half-width of the sample mean
/// (`1.96 · s / √n`); NaN for fewer than two samples.
pub fn ci95_halfwidth(xs: &[f64]) -> f64 {
    let s = stddev(xs);
    1.96 * s / (xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_reciprocals_is_one() {
        let g = geometric_mean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn harmonic_mean_is_dominated_by_small_values() {
        let h = harmonic_mean(&[1.0, 1.0, 0.1]);
        let a = crate::cdf::mean(&[1.0, 1.0, 0.1]);
        assert!(h < a, "harmonic {h} < arithmetic {a}");
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        let _ = harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn stddev_and_ci_behave() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.138).abs() < 0.01);
        let hw = ci95_halfwidth(&xs);
        assert!(hw > 1.0 && hw < 2.0, "{hw}");
        assert!(stddev(&[1.0]).is_nan());
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let xs = [3.0; 10];
        assert_eq!(stddev(&xs), 0.0);
        assert_eq!(ci95_halfwidth(&xs), 0.0);
        assert!((geometric_mean(&xs) - 3.0).abs() < 1e-12);
    }
}
