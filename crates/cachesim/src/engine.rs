//! The trace-driven simulation engine composing a cache array, a
//! futility ranking and a partitioning scheme into one partitioned
//! shared cache.
//!
//! The engine is generic: [`EngineCore<A, R, S>`] is monomorphized over
//! its three components, so the hot grid combinations used by the
//! throughput benches and figure sweeps compile to fully inlined,
//! devirtualized cores (see `fs_bench::engine_for`). The historical
//! boxed composition survives unchanged as the [`PartitionedCache`]
//! type alias — `EngineCore` over `Box<dyn …>` components — so every
//! existing experiment and test API keeps working.
//!
//! Accesses enter either one at a time ([`EngineCore::access`]) or in
//! blocks ([`EngineCore::access_batch`]): the batched pipeline applies
//! runs of consecutive hits through one bulk
//! [`on_hit_batch`](crate::ranking_api::FutilityRanking::on_hit_batch)
//! ranking call — which treap-backed rankings deduplicate per line —
//! and gathers runs of consecutive *certain misses* (addresses probed
//! absent and not installed earlier in the run) so their replacement
//! decisions execute back to back with the residency probes hoisted
//! out. Replacement itself takes the byte lane where the composition
//! supports it: hardware-futility rankings
//! ([`futility_bytes`](crate::ranking_api::FutilityRanking::futility_bytes))
//! hand raw `u8`-range numerators to byte-capable schemes
//! ([`victim_from_bytes`](crate::scheme_api::PartitionScheme::victim_from_bytes)),
//! which pick the victim with a SWAR argmax ([`crate::swar`]) instead
//! of materializing `f64` futilities. For arrays that opt in
//! (`CacheArray::wants_lookup_prefetch`), the pipeline also keeps the
//! index lookups of up to 16 upcoming accesses prefetched ahead of the
//! dependent probes (mirroring `OsTreap`'s interleaved rank walks); no
//! current array does — see the measurement note in
//! `array/set_assoc.rs`. The two entry points are bit-for-bit
//! equivalent.

use crate::array::CacheArray;
use crate::ids::{AccessMeta, PartitionId, SlotId};
use crate::ranking_api::{FutilityRanking, HitRecord};
use crate::recorder::{RecordCtx, Recorder, TimeSeriesRecorder};
use crate::scheme_api::{Candidate, PartitionScheme, PartitionState, VictimDecision};
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::stats::CacheStats;

/// A line evicted during an access, reported back to the driver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Eviction {
    /// Evicted line address.
    pub addr: u64,
    /// Pool the line belonged to at eviction time.
    pub part: PartitionId,
    /// True (exact-rank) futility of the line at eviction time.
    pub futility: f64,
}

/// Result of one cache access.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line missed and was installed, evicting `evicted` (or nothing
    /// while the cache still had free space).
    Miss {
        /// The victim, if an eviction was necessary.
        evicted: Option<Eviction>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// The eviction triggered by this access, if any.
    pub fn eviction(&self) -> Option<Eviction> {
        match self {
            AccessOutcome::Miss { evicted } => *evicted,
            AccessOutcome::Hit => None,
        }
    }
}

/// A struct-of-arrays block of accesses, the unit the batched drivers
/// hand to [`EngineCore::access_batch`]. Reuse one block across flushes
/// ([`clear`](Self::clear) keeps the capacity) to keep the driver loop
/// allocation-free.
#[derive(Clone, Debug, Default)]
pub struct AccessBlock {
    parts: Vec<PartitionId>,
    addrs: Vec<u64>,
    metas: Vec<AccessMeta>,
}

impl AccessBlock {
    /// An empty block.
    pub fn new() -> Self {
        AccessBlock::default()
    }

    /// An empty block with room for `cap` accesses per flush.
    pub fn with_capacity(cap: usize) -> Self {
        AccessBlock {
            parts: Vec::with_capacity(cap),
            addrs: Vec::with_capacity(cap),
            metas: Vec::with_capacity(cap),
        }
    }

    /// Append one access.
    #[inline]
    pub fn push(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) {
        self.parts.push(part);
        self.addrs.push(addr);
        self.metas.push(meta);
    }

    /// Number of queued accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Drop the queued accesses, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.parts.clear();
        self.addrs.clear();
        self.metas.clear();
    }

    /// The partition of each queued access.
    pub fn parts(&self) -> &[PartitionId] {
        &self.parts
    }

    /// The line address of each queued access.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The metadata of each queued access.
    pub fn metas(&self) -> &[AccessMeta] {
        &self.metas
    }
}

/// How many accesses ahead the batched pipeline issues
/// [`CacheArray::prefetch_lookup`] hints. Matches `OsTreap`'s
/// interleaved walk width: enough in-flight loads to cover memory
/// latency, few enough to not thrash L1.
const LOOKAHEAD: usize = 16;

/// Cap on a gathered certain-miss run. Bounds the O(run²) duplicate
/// membership scan and keeps the hoisted residency probes within the
/// same window the lookup prefetcher covers.
const MISS_RUN: usize = 16;

/// A partitioned shared cache: array + futility ranking + scheme,
/// monomorphized over the three component types.
///
/// Most callers want the boxed composition [`PartitionedCache`]; the
/// generic form exists so hot component combinations can be compiled
/// into dedicated, fully inlined cores (built e.g. by
/// `fs_bench::engine_for`) that the [`Engine`] trait then dispatches to
/// with one virtual call per *batch* instead of several per access.
///
/// # Example
///
/// Feed accesses in blocks through the batched pipeline (the
/// recommended driver entry point — bit-for-bit identical to per-access
/// [`access`](Self::access), but software-pipelined):
///
/// ```
/// use cachesim::{AccessBlock, PartitionedCache, PartitionId, AccessMeta};
/// use cachesim::array::RandomCandidates;
///
/// let array = RandomCandidates::new(256, 16, 42);
/// let mut cache = PartitionedCache::new(
///     Box::new(array),
///     cachesim::naive_lru(),
///     cachesim::evict_max_futility(),
///     2,
/// );
/// cache.set_targets(&[128, 128]);
/// let mut block = AccessBlock::with_capacity(512);
/// for addr in 0..512u64 {
///     block.push(PartitionId((addr % 2) as u16), addr, AccessMeta::default());
/// }
/// let hits = cache.access_batch(&block);
/// assert_eq!(hits, 0);
/// assert_eq!(cache.stats().total_misses(), 512);
/// ```
pub struct EngineCore<A, R, S> {
    array: A,
    ranking: R,
    scheme: S,
    state: PartitionState,
    stats: CacheStats,
    time: u64,
    partitions: usize,
    cands: Vec<Candidate>,
    /// Byte-lane scratch: raw futility numerators, one per candidate.
    fut_raw: Vec<u16>,
    decision: VictimDecision,
    /// Deferred consecutive-hit run of the batched pipeline, flushed
    /// into one `on_hit_batch` ranking call at run boundaries.
    hit_run: Vec<HitRecord>,
    /// Optional flight recorder, ticked after every access. `None` (the
    /// default) costs one branch per access and zero allocations.
    recorder: Option<Box<dyn Recorder>>,
    /// Cap on a gathered certain-miss run ([`MISS_RUN`] by default;
    /// 1 disables gathering). A pure perf knob — the replayed decisions
    /// are bit-identical for any cap — kept out of snapshots.
    miss_run_cap: usize,
}

/// The classic boxed composition: an [`EngineCore`] whose components
/// are trait objects. All pre-batching code built against
/// `PartitionedCache` keeps compiling unchanged; it now doubles as the
/// compatibility wrapper around the generic core.
pub type PartitionedCache =
    EngineCore<Box<dyn CacheArray>, Box<dyn FutilityRanking>, Box<dyn PartitionScheme>>;

impl<A: CacheArray, R: FutilityRanking, S: PartitionScheme> EngineCore<A, R, S> {
    /// Compose a cache with `partitions` application partitions. Targets
    /// default to an equal share of the array; adjust with
    /// [`set_targets`](Self::set_targets).
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(array: A, mut ranking: R, mut scheme: S, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let pools = partitions + scheme.extra_pools();
        ranking.reset(pools);
        let total = array.num_slots();
        let mut state = PartitionState::new(pools, total);
        let share = total / partitions;
        for t in state.targets.iter_mut().take(partitions) {
            *t = share;
        }
        scheme.configure(&state);
        let mut stats = CacheStats::new(pools);
        // Only application partitions take deviation samples (scheme
        // pools have no meaningful targets); seed the incremental
        // accounting with the starting occupancy of zero.
        stats.sampled_parts = partitions;
        for (i, &t) in state.targets.iter().enumerate().take(partitions) {
            stats.update_occupancy(i, 0, t);
        }
        EngineCore {
            stats,
            array,
            ranking,
            scheme,
            state,
            time: 0,
            partitions,
            cands: Vec::with_capacity(64),
            fut_raw: Vec::with_capacity(64),
            decision: VictimDecision::default(),
            hit_run: Vec::new(),
            recorder: None,
            miss_run_cap: MISS_RUN,
        }
    }

    /// Set the certain-miss gather cap (clamped to at least 1; 1
    /// disables gathering so every miss re-probes). Observable behavior
    /// is identical for any cap — this knob exists for A/B-measuring
    /// the gather optimisation (EXPERIMENTS.md) — so it is not part of
    /// snapshots.
    pub fn set_miss_run_cap(&mut self, cap: usize) {
        self.miss_run_cap = cap.max(1);
    }

    /// Set per-partition targets (lines). Slices shorter than the
    /// partition count leave the remaining targets unchanged.
    ///
    /// # Panics
    /// Panics if `targets` is longer than the partition count.
    pub fn set_targets(&mut self, targets: &[usize]) {
        assert!(targets.len() <= self.partitions);
        self.state.targets[..targets.len()].copy_from_slice(targets);
        for i in 0..targets.len() {
            self.stats
                .update_occupancy(i, self.state.actual[i], self.state.targets[i]);
        }
        self.scheme.configure(&self.state);
    }

    /// Number of application partitions (excluding scheme pools).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Simulation statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (e.g. to `reset()` after warmup or to disable
    /// deviation sampling for throughput runs).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Current sizing state (targets, actual sizes, counters).
    pub fn state(&self) -> &PartitionState {
        &self.state
    }

    /// The futility ranking (for inspection).
    pub fn ranking(&self) -> &dyn FutilityRanking {
        &self.ranking
    }

    /// The scheme (for inspection).
    pub fn scheme(&self) -> &dyn PartitionScheme {
        &self.scheme
    }

    /// The array (for inspection).
    pub fn array(&self) -> &dyn CacheArray {
        &self.array
    }

    /// Engine time: number of accesses processed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Attach a flight recorder; it is ticked after every access from
    /// now on. Replaces (and drops) any previously attached recorder.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Detach and return the attached recorder, if any. The engine
    /// reverts to the zero-cost no-recorder path.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// The attached recorder, if any (for inspection).
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_deref()
    }

    /// Convenience: attach a [`TimeSeriesRecorder`] sampling every
    /// `cadence` accesses into a ring of at most `capacity` samples.
    pub fn attach_timeseries(&mut self, cadence: u64, capacity: usize) {
        self.set_recorder(Box::new(TimeSeriesRecorder::new(cadence, capacity)));
    }

    /// The attached recorder downcast to a [`TimeSeriesRecorder`], if
    /// it is one.
    pub fn timeseries(&self) -> Option<&TimeSeriesRecorder> {
        self.recorder.as_ref()?.as_any().downcast_ref()
    }

    /// Mutable access to the attached [`TimeSeriesRecorder`], if any
    /// (e.g. to enable streaming spill or drain rows).
    pub fn timeseries_mut(&mut self) -> Option<&mut TimeSeriesRecorder> {
        self.recorder.as_mut()?.as_any_mut().downcast_mut()
    }

    /// Process one access from `part` to line `addr`.
    pub fn access(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        let outcome = self.access_inner(part, addr, meta);
        if self.recorder.is_some() {
            self.record_tick();
        }
        outcome
    }

    /// Process a block of accesses through the software-pipelined batch
    /// path, returning the number of hits. Observably identical to
    /// calling [`access`](Self::access) per element — same outcomes,
    /// statistics, component state and recorder samples — but runs of
    /// consecutive hits are applied through one bulk ranking call that
    /// treap-backed rankings collapse to one update per distinct line,
    /// and arrays that opt into lookup prefetching get the index lines
    /// of up to 16 upcoming accesses hinted ahead of the dependent
    /// lookups.
    pub fn access_batch(&mut self, block: &AccessBlock) -> u64 {
        self.access_batch_slices(&block.parts, &block.addrs, &block.metas)
    }

    /// [`access_batch`](Self::access_batch), additionally appending
    /// every access's [`AccessOutcome`] to `outcomes` (in access order).
    pub fn access_batch_into(
        &mut self,
        block: &AccessBlock,
        outcomes: &mut Vec<AccessOutcome>,
    ) -> u64 {
        self.batch_impl::<true>(&block.parts, &block.addrs, &block.metas, outcomes)
    }

    /// Slice form of [`access_batch`](Self::access_batch), for drivers
    /// that already hold struct-of-arrays access streams.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    pub fn access_batch_slices(
        &mut self,
        parts: &[PartitionId],
        addrs: &[u64],
        metas: &[AccessMeta],
    ) -> u64 {
        let mut sink = Vec::new();
        self.batch_impl::<false>(parts, addrs, metas, &mut sink)
    }

    fn batch_impl<const RECORD: bool>(
        &mut self,
        parts: &[PartitionId],
        addrs: &[u64],
        metas: &[AccessMeta],
        outcomes: &mut Vec<AccessOutcome>,
    ) -> u64 {
        assert_eq!(parts.len(), addrs.len(), "batch slice lengths differ");
        assert_eq!(metas.len(), addrs.len(), "batch slice lengths differ");
        let n = addrs.len();
        if RECORD {
            outcomes.reserve(n);
        }
        // A recorder observes the engine after every access, so the
        // batch must not defer anything; fall back to the scalar path.
        if self.recorder.is_some() {
            let mut hits = 0u64;
            for i in 0..n {
                let out = self.access(parts[i], addrs[i], metas[i]);
                hits += u64::from(out.is_hit());
                if RECORD {
                    outcomes.push(out);
                }
            }
            return hits;
        }
        let mut hits = 0u64;
        let mut pf = 0usize;
        // Rankings that ignore hits (stable random ranks) skip the
        // record collection entirely; the deferred-run machinery then
        // costs nothing on the hit path. Likewise the hint cursor only
        // runs for arrays that can compute probe addresses up front —
        // even a no-op hint loop measurably slows the hit path, so
        // both hooks are opt-in, checked once per batch.
        let collect_hits = self.ranking.wants_hit_records();
        let prefetch = self.array.wants_lookup_prefetch();
        let mut i = 0usize;
        while i < n {
            // Keep up to LOOKAHEAD lookup hints in flight. The hint is
            // issued before the dependent lookup chain below, so by the
            // time access `i + LOOKAHEAD` is processed the index lines
            // its probe touches are (usually) already in cache. Misses
            // mutate the index and may invalidate a hinted line; that
            // only costs the hint.
            if prefetch {
                let pf_to = (i + LOOKAHEAD).min(n);
                while pf < pf_to {
                    self.array.prefetch_lookup(addrs[pf]);
                    pf += 1;
                }
            }
            let (part, addr, meta) = (parts[i], addrs[i], metas[i]);
            debug_assert!(part.index() < self.partitions, "foreign pool access");
            self.time += 1;
            match self.array.lookup_occupant(addr) {
                Some((slot, occ)) if occ.part == part => {
                    // Simple hit: queue the ranking update; the stats
                    // and scheme notification commute with it (neither
                    // reads ranking state), so they apply immediately.
                    if collect_hits {
                        self.hit_run.push(HitRecord {
                            part,
                            addr,
                            slot,
                            time: self.time,
                            meta,
                        });
                    }
                    self.scheme.notify_hit(part);
                    self.stats.record_hit(part);
                    hits += 1;
                    if RECORD {
                        outcomes.push(AccessOutcome::Hit);
                    }
                    i += 1;
                }
                Some((slot, occ)) => {
                    // Foreign hit: the scheme may retag, which touches
                    // ranking and array state — flush the deferred run
                    // first, then take the exact scalar path.
                    self.flush_hit_run();
                    let mut pool = occ.part;
                    if let Some(dest) = self.scheme.on_foreign_hit(pool, part) {
                        self.apply_retag(slot, pool, dest, addr);
                        pool = dest;
                    }
                    self.ranking.on_hit(pool, addr, self.time, meta);
                    self.scheme.notify_hit(pool);
                    self.stats.record_hit(part);
                    hits += 1;
                    if RECORD {
                        outcomes.push(AccessOutcome::Hit);
                    }
                    i += 1;
                }
                None => {
                    // Replacement decisions read ranking state: the
                    // deferred hits must land first.
                    self.flush_hit_run();
                    // Certain-miss run gathering: scan ahead while the
                    // upcoming addresses are (a) absent from the array
                    // *now* and (b) not installed by an earlier access
                    // of this run. Evictions only remove lines and the
                    // run only installs its own addresses, so every
                    // gathered access is still guaranteed to miss when
                    // its turn comes — its re-probe is the only thing
                    // skipped, and the replacement decisions execute
                    // back to back in original order, bit-identically.
                    // The gather probes themselves are independent
                    // lookups with no replacement work interleaved, so
                    // they overlap in the memory pipeline instead of
                    // serializing behind each miss's candidate walk.
                    let mut j = i + 1;
                    while j < n && j - i < self.miss_run_cap {
                        let a = addrs[j];
                        if addrs[i..j].contains(&a) || self.array.lookup_occupant(a).is_some() {
                            break;
                        }
                        j += 1;
                    }
                    let out = self.miss_path(part, addr, meta);
                    if RECORD {
                        outcomes.push(out);
                    }
                    for k in (i + 1)..j {
                        debug_assert!(parts[k].index() < self.partitions, "foreign pool access");
                        self.time += 1;
                        let out = self.miss_path(parts[k], addrs[k], metas[k]);
                        if RECORD {
                            outcomes.push(out);
                        }
                    }
                    i = j;
                }
            }
        }
        self.flush_hit_run();
        hits
    }

    /// Apply the deferred hit run. Long runs go through one bulk
    /// ranking call (which treap-backed rankings deduplicate per
    /// line); short runs replay through scalar `on_hit` — on
    /// miss-heavy traces nearly every run has a single record, and
    /// the bulk call's dedup scratch costs more than it saves there.
    /// The two paths are observably identical by the `on_hit_batch`
    /// contract.
    #[inline]
    fn flush_hit_run(&mut self) {
        const BULK_THRESHOLD: usize = 4;
        if self.hit_run.is_empty() {
            return;
        }
        if self.hit_run.len() < BULK_THRESHOLD {
            for h in &self.hit_run {
                self.ranking.on_hit(h.part, h.addr, h.time, h.meta);
            }
        } else {
            self.ranking.on_hit_batch(&self.hit_run);
        }
        self.hit_run.clear();
    }

    /// The recorder tick, split out so the no-recorder hot path stays
    /// small. Taking the recorder out of its `Option` keeps its `&mut`
    /// disjoint from the state/stats/scheme borrows in the context.
    fn record_tick(&mut self) {
        let mut recorder = self.recorder.take().expect("caller checked");
        recorder.record(&RecordCtx {
            time: self.time,
            partitions: self.partitions,
            state: &self.state,
            stats: &self.stats,
            scheme: &self.scheme,
            ranking: &self.ranking,
        });
        self.recorder = Some(recorder);
    }

    #[inline]
    fn access_inner(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        debug_assert!(part.index() < self.partitions, "foreign pool access");
        self.time += 1;
        if let Some((slot, occ)) = self.array.lookup_occupant(addr) {
            let mut pool = occ.part;
            if pool != part {
                if let Some(dest) = self.scheme.on_foreign_hit(pool, part) {
                    self.apply_retag(slot, pool, dest, addr);
                    pool = dest;
                }
            }
            self.ranking.on_hit(pool, addr, self.time, meta);
            self.scheme.notify_hit(pool);
            self.stats.record_hit(part);
            return AccessOutcome::Hit;
        }
        self.miss_path(part, addr, meta)
    }

    /// The replacement path shared by the scalar and batched pipelines:
    /// record the miss, pick (and evict) a victim, install the line.
    fn miss_path(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        self.stats.record_miss(part);
        let dest_pool = self.scheme.insertion_pool(part);

        if self.array.is_fully_associative() {
            return self.miss_fully_associative(part, dest_pool, addr, meta);
        }

        // One pass over the candidate walk: an empty slot short-circuits
        // (no eviction necessary), otherwise the occupants come back as
        // ready-made candidates.
        self.cands.clear();
        if let Some(free) = self.array.fill_candidates(addr, &mut self.cands) {
            self.install(free, dest_pool, addr, meta);
            return AccessOutcome::Miss { evicted: None };
        }
        debug_assert!(!self.cands.is_empty(), "array returned no candidates");

        // Byte lane: when the ranking exposes raw hardware-futility
        // numerators and the scheme can pick victims from them, the
        // whole f64 futility materialization and the scalar victim scan
        // collapse into one integer SWAR argmax. Bit-exact (same victim
        // index, including ties) by the `futility_bytes` /
        // `victim_from_bytes` contracts; byte-capable schemes never
        // retag, so the retag loop is skipped whole. Both capability
        // checks are constants after monomorphization.
        if self.scheme.wants_futility_bytes()
            && self.ranking.futility_bytes(&self.cands, &mut self.fut_raw)
        {
            debug_assert_eq!(self.fut_raw.len(), self.cands.len());
            let v = self
                .scheme
                .victim_from_bytes(part, &self.cands, &self.fut_raw, &self.state);
            debug_assert!(v < self.cands.len());
            let victim = self.cands[v];
            // Byte-lane rankings are approximate (their futility is the
            // hardware estimate), so eviction stats take the shadow
            // rank, exactly as the scalar path below does.
            let futility = self.ranking.true_futility(victim.part, victim.addr);
            self.evict(victim.slot, victim.part, victim.addr, futility);
            self.install(victim.slot, dest_pool, addr, meta);
            return AccessOutcome::Miss {
                evicted: Some(Eviction {
                    addr: victim.addr,
                    part: victim.part,
                    futility,
                }),
            };
        }

        self.ranking.futility_batch(&mut self.cands);

        // The decision buffer lives on the cache so Vantage's retag list
        // reuses its allocation; taken out for the duration of the retag
        // loop to keep the borrows disjoint.
        let mut decision = std::mem::take(&mut self.decision);
        self.scheme
            .victim_into(part, &self.cands, &self.state, &mut decision);
        debug_assert!(decision.victim < self.cands.len());

        for &(idx, to) in &decision.retags {
            let c = self.cands[idx];
            if c.part != to {
                self.apply_retag(c.slot, c.part, to, c.addr);
                self.cands[idx].part = to;
            }
        }

        let victim = self.cands[decision.victim];
        // An exact ranking's candidate futility *is* the true futility,
        // so it can be reused for eviction stats unless a retag just
        // invalidated it.
        let futility = if decision.retags.is_empty() && self.ranking.futility_is_exact() {
            victim.futility
        } else {
            self.ranking.true_futility(victim.part, victim.addr)
        };
        self.evict(victim.slot, victim.part, victim.addr, futility);
        self.install(victim.slot, dest_pool, addr, meta);
        self.decision = decision;
        AccessOutcome::Miss {
            evicted: Some(Eviction {
                addr: victim.addr,
                part: victim.part,
                futility,
            }),
        }
    }

    fn miss_fully_associative(
        &mut self,
        part: PartitionId,
        dest_pool: PartitionId,
        addr: u64,
        meta: AccessMeta,
    ) -> AccessOutcome {
        self.cands.clear();
        if let Some(free) = self.array.fill_candidates(addr, &mut self.cands) {
            self.install(free, dest_pool, addr, meta);
            return AccessOutcome::Miss { evicted: None };
        }
        let victim_pool = self.scheme.victim_partition_fully_assoc(part, &self.state);
        let victim_addr = self.ranking.max_futility_line(victim_pool).expect(
            "fully-associative eviction from empty pool: ranking must support max_futility_line",
        );
        let slot = self
            .array
            .lookup(victim_addr)
            .expect("ranking/array out of sync");
        let futility = self.ranking.true_futility(victim_pool, victim_addr);
        self.evict(slot, victim_pool, victim_addr, futility);
        self.install(slot, dest_pool, addr, meta);
        AccessOutcome::Miss {
            evicted: Some(Eviction {
                addr: victim_addr,
                part: victim_pool,
                futility,
            }),
        }
    }

    /// Fold the occupancy change of `pool` into the incremental
    /// deviation accounting (only application partitions are sampled).
    #[inline]
    fn occupancy_changed(&mut self, pool: PartitionId) {
        let idx = pool.index();
        if idx < self.partitions {
            self.stats
                .update_occupancy(idx, self.state.actual[idx], self.state.targets[idx]);
        }
    }

    fn apply_retag(&mut self, slot: SlotId, from: PartitionId, to: PartitionId, addr: u64) {
        debug_assert_eq!(
            self.array.occupant(slot).map(|o| (o.addr, o.part)),
            Some((addr, from)),
            "retag occupant mismatch"
        );
        // A retag out of an application partition into a scheme pool is
        // the moment the line stops serving its partition: record its
        // futility as an (associativity-relevant) departure, exactly as
        // an eviction would be recorded.
        if from.index() < self.partitions && to.index() >= self.partitions {
            let f = self.ranking.true_futility(from, addr);
            self.stats.record_eviction(from, f);
        }
        self.array.retag(slot, to);
        self.ranking.on_retag(from, to, addr);
        self.state.actual[from.index()] -= 1;
        self.state.actual[to.index()] += 1;
        self.occupancy_changed(from);
        self.occupancy_changed(to);
    }

    fn evict(&mut self, slot: SlotId, pool: PartitionId, addr: u64, futility: f64) {
        // Departures of application-partition lines are recorded here;
        // scheme-pool departures were already recorded at demotion time.
        if pool.index() < self.partitions {
            self.stats.record_eviction(pool, futility);
        }
        self.ranking.on_evict(pool, addr);
        self.array.evict(slot);
        self.state.actual[pool.index()] -= 1;
        self.state.evictions[pool.index()] += 1;
        self.occupancy_changed(pool);
        self.scheme.notify_evict(pool, &self.state);
        self.stats
            .sample_deviation_tick(&self.state.actual[..self.partitions], &self.state.targets);
    }

    fn install(&mut self, slot: SlotId, pool: PartitionId, addr: u64, meta: AccessMeta) {
        self.array.install(slot, addr, pool);
        self.ranking.on_insert(pool, addr, self.time, meta);
        self.state.actual[pool.index()] += 1;
        self.state.insertions[pool.index()] += 1;
        self.occupancy_changed(pool);
        self.scheme.notify_insert(pool, &self.state);
    }

    /// Serialize the full engine state — time, sizing state, stats and
    /// every component (array, ranking, scheme, recorder) — into the
    /// versioned, checksummed snapshot format. A snapshot taken between
    /// accesses captures everything the simulation depends on: an engine
    /// built with the same composition that [`restore`](Self::restore)s
    /// it replays the remaining trace bit-for-bit.
    ///
    /// Must be called between accesses (never mid-batch); the deferred
    /// hit run is always flushed at batch boundaries, so this holds for
    /// every caller outside the engine itself.
    pub fn snapshot(&self) -> Vec<u8> {
        debug_assert!(self.hit_run.is_empty(), "snapshot taken mid-batch");
        let mut w = SnapshotWriter::new();
        w.begin("engine");
        w.u64(self.time);
        w.usize(self.partitions);
        w.usize(self.state.targets.len());
        w.usize(self.state.total_slots);
        w.end();
        w.begin("sizing");
        for &t in &self.state.targets {
            w.usize(t);
        }
        for &a in &self.state.actual {
            w.usize(a);
        }
        for &i in &self.state.insertions {
            w.u64(i);
        }
        for &e in &self.state.evictions {
            w.u64(e);
        }
        w.end();
        self.stats.save_state(&mut w);
        w.begin("array");
        w.str(self.array.name());
        w.usize(self.array.num_slots());
        w.end();
        self.array.save_state(&mut w);
        w.begin("ranking");
        w.str(self.ranking.name());
        w.end();
        self.ranking.save_state(&mut w);
        w.begin("scheme");
        w.str(self.scheme.name());
        w.end();
        self.scheme.save_state(&mut w);
        w.begin("recorder");
        w.bool(self.recorder.is_some());
        w.end();
        if let Some(rec) = &self.recorder {
            rec.save_state(&mut w);
        }
        w.finish()
    }

    /// Restore a [`snapshot`](Self::snapshot) into this engine. The
    /// engine must have been built with the same composition — same
    /// component names and geometry, same partition count, and a
    /// recorder attached iff one was attached at snapshot time —
    /// otherwise the restore fails with [`SnapshotError::Mismatch`].
    ///
    /// # Errors
    /// Fails (without panicking) on truncated, corrupted or
    /// incompatible input. On error the engine state is unspecified;
    /// discard the engine rather than continuing to use it.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        r.begin("engine")?;
        let time = r.u64()?;
        let partitions = r.usize()?;
        if partitions != self.partitions {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {} partitions, engine has {}",
                partitions, self.partitions
            )));
        }
        let pools = r.usize()?;
        if pools != self.state.targets.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {} pools, engine has {}",
                pools,
                self.state.targets.len()
            )));
        }
        let total_slots = r.usize()?;
        if total_slots != self.state.total_slots {
            return Err(SnapshotError::mismatch(format!(
                "snapshot cache has {} slots, engine has {}",
                total_slots, self.state.total_slots
            )));
        }
        r.end()?;
        r.begin("sizing")?;
        let mut targets = Vec::with_capacity(pools);
        let mut actual = Vec::with_capacity(pools);
        let mut insertions = Vec::with_capacity(pools);
        let mut evictions = Vec::with_capacity(pools);
        for _ in 0..pools {
            targets.push(r.usize()?);
        }
        for _ in 0..pools {
            actual.push(r.usize()?);
        }
        for _ in 0..pools {
            insertions.push(r.u64()?);
        }
        for _ in 0..pools {
            evictions.push(r.u64()?);
        }
        r.end()?;
        self.stats.load_state(&mut r)?;
        r.begin("array")?;
        let array_name = r.str()?;
        if array_name != self.array.name() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot array is {:?}, engine array is {:?}",
                array_name,
                self.array.name()
            )));
        }
        let num_slots = r.usize()?;
        if num_slots != self.array.num_slots() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot array has {} slots, engine array has {}",
                num_slots,
                self.array.num_slots()
            )));
        }
        r.end()?;
        self.array.load_state(&mut r)?;
        r.begin("ranking")?;
        let ranking_name = r.str()?;
        if ranking_name != self.ranking.name() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot ranking is {:?}, engine ranking is {:?}",
                ranking_name,
                self.ranking.name()
            )));
        }
        r.end()?;
        self.ranking.load_state(&mut r)?;
        r.begin("scheme")?;
        let scheme_name = r.str()?;
        if scheme_name != self.scheme.name() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot scheme is {:?}, engine scheme is {:?}",
                scheme_name,
                self.scheme.name()
            )));
        }
        r.end()?;
        self.scheme.load_state(&mut r)?;
        r.begin("recorder")?;
        let has_recorder = r.bool()?;
        r.end()?;
        match (&mut self.recorder, has_recorder) {
            (Some(rec), true) => rec.load_state(&mut r)?,
            (None, false) => {}
            (Some(_), false) => {
                return Err(SnapshotError::mismatch(
                    "engine has a recorder attached but the snapshot has none",
                ));
            }
            (None, true) => {
                return Err(SnapshotError::mismatch(
                    "snapshot has a recorder but the engine has none attached",
                ));
            }
        }
        r.finish()?;
        self.time = time;
        self.state.targets = targets;
        self.state.actual = actual;
        self.state.insertions = insertions;
        self.state.evictions = evictions;
        // Per-access scratch never carries state across accesses; clear
        // it so a restore into a mid-lifetime engine leaves nothing
        // stale behind.
        self.cands.clear();
        self.fut_raw.clear();
        self.hit_run.clear();
        self.decision = VictimDecision::default();
        Ok(())
    }
}

/// Object-safe engine interface: what drivers and benches need, one
/// virtual call per operation (and per *batch*, not per access, on the
/// batched path). `fs_bench::engine_for` returns monomorphized
/// [`EngineCore`]s behind this trait for the hot grid combinations and
/// falls back to the boxed [`PartitionedCache`] otherwise.
pub trait Engine: Send {
    /// Process one access (see [`EngineCore::access`]).
    fn access(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome;
    /// Process a block of accesses, returning the hit count (see
    /// [`EngineCore::access_batch`]).
    fn access_batch(&mut self, block: &AccessBlock) -> u64;
    /// Batched processing that also reports per-access outcomes (see
    /// [`EngineCore::access_batch_into`]).
    fn access_batch_into(&mut self, block: &AccessBlock, outcomes: &mut Vec<AccessOutcome>) -> u64;
    /// Slice form of [`access_batch`](Engine::access_batch).
    fn access_batch_slices(
        &mut self,
        parts: &[PartitionId],
        addrs: &[u64],
        metas: &[AccessMeta],
    ) -> u64;
    /// Set per-partition targets (see [`EngineCore::set_targets`]).
    fn set_targets(&mut self, targets: &[usize]);
    /// Number of application partitions.
    fn partitions(&self) -> usize;
    /// Simulation statistics.
    fn stats(&self) -> &CacheStats;
    /// Mutable statistics.
    fn stats_mut(&mut self) -> &mut CacheStats;
    /// Current sizing state.
    fn state(&self) -> &PartitionState;
    /// Engine time.
    fn time(&self) -> u64;
    /// The array (for inspection).
    fn array(&self) -> &dyn CacheArray;
    /// The ranking (for inspection).
    fn ranking(&self) -> &dyn FutilityRanking;
    /// The scheme (for inspection).
    fn scheme(&self) -> &dyn PartitionScheme;
    /// Serialize the full engine state (see [`EngineCore::snapshot`]).
    fn snapshot(&self) -> Vec<u8>;
    /// Restore a snapshot taken from the same composition (see
    /// [`EngineCore::restore`]).
    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
    /// Attach a [`TimeSeriesRecorder`] (see
    /// [`EngineCore::attach_timeseries`]).
    fn attach_timeseries(&mut self, cadence: u64, capacity: usize);
    /// The attached recorder downcast to a [`TimeSeriesRecorder`], if
    /// it is one.
    fn timeseries(&self) -> Option<&TimeSeriesRecorder>;
    /// Mutable access to the attached [`TimeSeriesRecorder`], if any
    /// (e.g. to enable streaming spill or drain rows).
    fn timeseries_mut(&mut self) -> Option<&mut TimeSeriesRecorder>;
    /// Set the certain-miss gather cap (see
    /// [`EngineCore::set_miss_run_cap`]).
    fn set_miss_run_cap(&mut self, cap: usize);
}

impl<A: CacheArray, R: FutilityRanking, S: PartitionScheme> Engine for EngineCore<A, R, S> {
    fn access(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        EngineCore::access(self, part, addr, meta)
    }
    fn access_batch(&mut self, block: &AccessBlock) -> u64 {
        EngineCore::access_batch(self, block)
    }
    fn access_batch_into(&mut self, block: &AccessBlock, outcomes: &mut Vec<AccessOutcome>) -> u64 {
        EngineCore::access_batch_into(self, block, outcomes)
    }
    fn access_batch_slices(
        &mut self,
        parts: &[PartitionId],
        addrs: &[u64],
        metas: &[AccessMeta],
    ) -> u64 {
        EngineCore::access_batch_slices(self, parts, addrs, metas)
    }
    fn set_targets(&mut self, targets: &[usize]) {
        EngineCore::set_targets(self, targets)
    }
    fn partitions(&self) -> usize {
        EngineCore::partitions(self)
    }
    fn stats(&self) -> &CacheStats {
        EngineCore::stats(self)
    }
    fn stats_mut(&mut self) -> &mut CacheStats {
        EngineCore::stats_mut(self)
    }
    fn state(&self) -> &PartitionState {
        EngineCore::state(self)
    }
    fn time(&self) -> u64 {
        EngineCore::time(self)
    }
    fn array(&self) -> &dyn CacheArray {
        EngineCore::array(self)
    }
    fn ranking(&self) -> &dyn FutilityRanking {
        EngineCore::ranking(self)
    }
    fn scheme(&self) -> &dyn PartitionScheme {
        EngineCore::scheme(self)
    }
    fn snapshot(&self) -> Vec<u8> {
        EngineCore::snapshot(self)
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        EngineCore::restore(self, bytes)
    }
    fn attach_timeseries(&mut self, cadence: u64, capacity: usize) {
        EngineCore::attach_timeseries(self, cadence, capacity)
    }
    fn timeseries(&self) -> Option<&TimeSeriesRecorder> {
        EngineCore::timeseries(self)
    }
    fn timeseries_mut(&mut self) -> Option<&mut TimeSeriesRecorder> {
        EngineCore::timeseries_mut(self)
    }
    fn set_miss_run_cap(&mut self, cap: usize) {
        EngineCore::set_miss_run_cap(self, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{FullyAssociative, RandomCandidates, SetAssociative};
    use crate::hashing::LineHash;

    fn small_cache(partitions: usize) -> PartitionedCache {
        PartitionedCache::new(
            Box::new(RandomCandidates::new(64, 8, 1)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            partitions,
        )
    }

    #[test]
    fn second_access_hits() {
        let mut c = small_cache(1);
        let p = PartitionId(0);
        assert!(!c.access(p, 42, AccessMeta::default()).is_hit());
        assert!(c.access(p, 42, AccessMeta::default()).is_hit());
        assert_eq!(c.stats().partition(p).hits, 1);
        assert_eq!(c.stats().partition(p).misses, 1);
    }

    #[test]
    fn no_eviction_until_full() {
        let mut c = small_cache(1);
        let p = PartitionId(0);
        for addr in 0..64u64 {
            let out = c.access(p, addr, AccessMeta::default());
            assert_eq!(out, AccessOutcome::Miss { evicted: None });
        }
        let out = c.access(p, 1000, AccessMeta::default());
        assert!(out.eviction().is_some(), "full cache must evict");
        assert_eq!(c.array().occupied(), 64);
    }

    #[test]
    fn actual_sizes_track_occupancy() {
        let mut c = small_cache(2);
        for addr in 0..32u64 {
            c.access(PartitionId(0), addr, AccessMeta::default());
        }
        for addr in 100..116u64 {
            c.access(PartitionId(1), addr, AccessMeta::default());
        }
        assert_eq!(c.state().actual[0], 32);
        assert_eq!(c.state().actual[1], 16);
        assert_eq!(c.state().actual.iter().sum::<usize>(), c.array().occupied());
    }

    #[test]
    fn unpartitioned_lru_evicts_oldest_uniform_candidates() {
        // With max-futility eviction on a full candidate list of the
        // whole cache (R == slots), the engine behaves as exact LRU.
        let mut c = PartitionedCache::new(
            Box::new(RandomCandidates::new(4, 4, 2)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            1,
        );
        let p = PartitionId(0);
        for addr in 0..4u64 {
            c.access(p, addr, AccessMeta::default());
        }
        let out = c.access(p, 99, AccessMeta::default());
        assert_eq!(out.eviction().unwrap().addr, 0, "oldest line evicted");
        assert!((out.eviction().unwrap().futility - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_associative_path_evicts_most_futile() {
        let mut c = PartitionedCache::new(
            Box::new(FullyAssociative::new(4)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            1,
        );
        let p = PartitionId(0);
        for addr in 0..4u64 {
            c.access(p, addr, AccessMeta::default());
        }
        // Touch line 0 so line 1 becomes oldest.
        c.access(p, 0, AccessMeta::default());
        let out = c.access(p, 50, AccessMeta::default());
        assert_eq!(out.eviction().unwrap().addr, 1);
    }

    #[test]
    fn set_associative_composition_smoke() {
        let mut c = PartitionedCache::new(
            Box::new(SetAssociative::new(8, 4, LineHash::new(1))),
            crate::naive_lru(),
            crate::evict_max_futility(),
            2,
        );
        for i in 0..1000u64 {
            let p = PartitionId((i % 2) as u16);
            // Working set of 20 lines fits in the 32-line cache, so the
            // steady state must produce hits.
            c.access(p, i % 20, AccessMeta::default());
        }
        assert_eq!(c.array().occupied(), 20);
        assert!(c.stats().total_hits() > 0);
    }

    #[test]
    fn set_targets_validates_and_applies() {
        let mut c = small_cache(2);
        c.set_targets(&[48, 16]);
        assert_eq!(c.state().targets[0], 48);
        assert_eq!(c.state().targets[1], 16);
    }

    #[test]
    fn attached_timeseries_tracks_live_occupancy() {
        let mut c = small_cache(2);
        c.attach_timeseries(16, 4096);
        for i in 0..400u64 {
            c.access(PartitionId((i % 2) as u16), i, AccessMeta::default());
        }
        let ts = c.timeseries().expect("recorder attached");
        assert!(!ts.is_empty());
        // The newest occupancy samples must match the live state.
        for part in [PartitionId(0), PartitionId(1)] {
            let last = ts
                .samples()
                .rfind(|s| s.series == "occupancy" && s.part == Some(part))
                .unwrap();
            // The last tick was at time 400 (a multiple of 16 would be
            // 400? 400/16 = 25, yes) — occupancy then equals now since
            // no accesses followed.
            assert_eq!(last.time, 400);
            assert_eq!(last.value, c.state().actual[part.index()] as f64);
        }
        // Detaching returns the engine to the no-recorder path.
        let rec = c.take_recorder().unwrap();
        assert!(c.timeseries().is_none());
        let n_before = rec
            .as_any()
            .downcast_ref::<crate::recorder::TimeSeriesRecorder>()
            .unwrap()
            .len();
        c.access(PartitionId(0), 9999, AccessMeta::default());
        assert_eq!(
            rec.as_any()
                .downcast_ref::<crate::recorder::TimeSeriesRecorder>()
                .unwrap()
                .len(),
            n_before
        );
    }

    #[test]
    fn eviction_futility_recorded_in_stats() {
        let mut c = small_cache(1);
        let p = PartitionId(0);
        for addr in 0..200u64 {
            c.access(p, addr, AccessMeta::default());
        }
        let stats = c.stats().partition(p);
        assert_eq!(stats.evictions, 200 - 64);
        assert!(stats.aef() > 0.5, "LRU + R=8 should beat random eviction");
    }

    #[test]
    fn batch_matches_scalar_on_mixed_traffic() {
        // A quick inline spot check; the full cross-product equivalence
        // property lives in tests/batch_equivalence.rs.
        let mut scalar = small_cache(2);
        let mut batched = small_cache(2);
        let mut block = AccessBlock::with_capacity(256);
        let mut x = 7u64;
        for _ in 0..256 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            block.push(
                PartitionId((x % 2) as u16),
                (x >> 32) % 96,
                AccessMeta::default(),
            );
        }
        let mut expect = Vec::new();
        for i in 0..block.len() {
            expect.push(scalar.access(block.parts()[i], block.addrs()[i], block.metas()[i]));
        }
        let mut got = Vec::new();
        let hits = batched.access_batch_into(&block, &mut got);
        assert_eq!(got, expect);
        assert_eq!(hits, expect.iter().filter(|o| o.is_hit()).count() as u64);
        assert_eq!(batched.stats().total_hits(), scalar.stats().total_hits());
        assert_eq!(batched.time(), scalar.time());
    }

    #[test]
    fn monomorphized_core_matches_boxed_compat_wrapper() {
        // The same composition through the generic core and through the
        // boxed alias must agree access for access.
        let mut mono = EngineCore::new(
            RandomCandidates::new(64, 8, 1),
            crate::ranking_api::NaiveLru::new(),
            crate::scheme_api::EvictMaxFutility,
            2,
        );
        let mut boxed = small_cache(2);
        let mut block = AccessBlock::new();
        for i in 0..500u64 {
            block.push(
                PartitionId((i % 2) as u16),
                (i * 37) % 90,
                AccessMeta::default(),
            );
        }
        let mono_hits = mono.access_batch(&block);
        let mut expect = Vec::new();
        boxed.access_batch_into(&block, &mut expect);
        assert_eq!(
            mono_hits,
            expect.iter().filter(|o| o.is_hit()).count() as u64
        );
        assert_eq!(mono.stats().total_misses(), boxed.stats().total_misses());
        assert_eq!(mono.state().actual, boxed.state().actual);
        // And through the object-safe dispatch trait.
        let mut dyn_eng: Box<dyn Engine> = Box::new(EngineCore::new(
            RandomCandidates::new(64, 8, 1),
            crate::ranking_api::NaiveLru::new(),
            crate::scheme_api::EvictMaxFutility,
            2,
        ));
        assert_eq!(dyn_eng.access_batch(&block), mono_hits);
        assert_eq!(dyn_eng.stats().total_hits(), mono.stats().total_hits());
    }

    fn drive(c: &mut PartitionedCache, seed: u64, n: u64) -> Vec<AccessOutcome> {
        let mut x = seed | 1;
        let mut out = Vec::new();
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.push(c.access(
                PartitionId((x % 2) as u16),
                (x >> 33) % 150,
                AccessMeta::default(),
            ));
        }
        out
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        let mut original = small_cache(2);
        original.set_targets(&[40, 24]);
        original.attach_timeseries(16, 64);
        drive(&mut original, 11, 700);
        let snap = original.snapshot();

        let mut resumed = small_cache(2);
        resumed.attach_timeseries(16, 64);
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.time(), original.time());
        assert_eq!(resumed.state().actual, original.state().actual);
        assert_eq!(resumed.state().targets, original.state().targets);

        // The continuation must match access for access, and the final
        // serialized states must be byte-identical.
        let a = drive(&mut original, 99, 500);
        let b = drive(&mut resumed, 99, 500);
        assert_eq!(a, b);
        assert_eq!(original.snapshot(), resumed.snapshot());
        let (ta, tb) = (
            original.timeseries().unwrap(),
            resumed.timeseries().unwrap(),
        );
        assert_eq!(ta.rows(), tb.rows());
    }

    #[test]
    fn restore_rejects_mismatched_composition() {
        let mut donor = small_cache(2);
        drive(&mut donor, 3, 100);
        let snap = donor.snapshot();

        // Wrong partition count.
        let err = small_cache(3).restore(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
        // Wrong geometry.
        let mut wrong_geom = PartitionedCache::new(
            Box::new(RandomCandidates::new(128, 8, 1)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            2,
        );
        let err = wrong_geom.restore(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
        // Wrong array type.
        let mut wrong_array = PartitionedCache::new(
            Box::new(FullyAssociative::new(64)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            2,
        );
        let err = wrong_array.restore(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
        // Recorder attached on the engine but absent from the snapshot.
        let mut with_rec = small_cache(2);
        with_rec.attach_timeseries(16, 64);
        let err = with_rec.restore(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
    }
}
