//! The trace-driven simulation engine composing a cache array, a
//! futility ranking and a partitioning scheme into one partitioned
//! shared cache.

use crate::array::CacheArray;
use crate::ids::{AccessMeta, PartitionId, SlotId};
use crate::ranking_api::FutilityRanking;
use crate::recorder::{RecordCtx, Recorder, TimeSeriesRecorder};
use crate::scheme_api::{Candidate, PartitionScheme, PartitionState, VictimDecision};
use crate::stats::CacheStats;

/// A line evicted during an access, reported back to the driver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Eviction {
    /// Evicted line address.
    pub addr: u64,
    /// Pool the line belonged to at eviction time.
    pub part: PartitionId,
    /// True (exact-rank) futility of the line at eviction time.
    pub futility: f64,
}

/// Result of one cache access.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line missed and was installed, evicting `evicted` (or nothing
    /// while the cache still had free space).
    Miss {
        /// The victim, if an eviction was necessary.
        evicted: Option<Eviction>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// The eviction triggered by this access, if any.
    pub fn eviction(&self) -> Option<Eviction> {
        match self {
            AccessOutcome::Miss { evicted } => *evicted,
            AccessOutcome::Hit => None,
        }
    }
}

/// A partitioned shared cache: array + futility ranking + scheme.
///
/// # Example
///
/// ```
/// use cachesim::{PartitionedCache, PartitionId, AccessMeta};
/// use cachesim::array::RandomCandidates;
///
/// let array = RandomCandidates::new(256, 16, 42);
/// let mut cache = PartitionedCache::new(
///     Box::new(array),
///     cachesim::naive_lru(),
///     cachesim::evict_max_futility(),
///     2,
/// );
/// cache.set_targets(&[128, 128]);
/// for addr in 0..512u64 {
///     cache.access(PartitionId((addr % 2) as u16), addr, AccessMeta::default());
/// }
/// assert_eq!(cache.stats().total_misses(), 512);
/// ```
pub struct PartitionedCache {
    array: Box<dyn CacheArray>,
    ranking: Box<dyn FutilityRanking>,
    scheme: Box<dyn PartitionScheme>,
    state: PartitionState,
    stats: CacheStats,
    time: u64,
    partitions: usize,
    cands: Vec<Candidate>,
    decision: VictimDecision,
    /// Optional flight recorder, ticked after every access. `None` (the
    /// default) costs one branch per access and zero allocations.
    recorder: Option<Box<dyn Recorder>>,
}

impl PartitionedCache {
    /// Compose a cache with `partitions` application partitions. Targets
    /// default to an equal share of the array; adjust with
    /// [`set_targets`](Self::set_targets).
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(
        array: Box<dyn CacheArray>,
        mut ranking: Box<dyn FutilityRanking>,
        mut scheme: Box<dyn PartitionScheme>,
        partitions: usize,
    ) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let pools = partitions + scheme.extra_pools();
        ranking.reset(pools);
        let total = array.num_slots();
        let mut state = PartitionState::new(pools, total);
        let share = total / partitions;
        for t in state.targets.iter_mut().take(partitions) {
            *t = share;
        }
        scheme.configure(&state);
        let mut stats = CacheStats::new(pools);
        // Only application partitions take deviation samples (scheme
        // pools have no meaningful targets); seed the incremental
        // accounting with the starting occupancy of zero.
        stats.sampled_parts = partitions;
        for (i, &t) in state.targets.iter().enumerate().take(partitions) {
            stats.update_occupancy(i, 0, t);
        }
        PartitionedCache {
            stats,
            array,
            ranking,
            scheme,
            state,
            time: 0,
            partitions,
            cands: Vec::with_capacity(64),
            decision: VictimDecision::default(),
            recorder: None,
        }
    }

    /// Set per-partition targets (lines). Slices shorter than the
    /// partition count leave the remaining targets unchanged.
    ///
    /// # Panics
    /// Panics if `targets` is longer than the partition count.
    pub fn set_targets(&mut self, targets: &[usize]) {
        assert!(targets.len() <= self.partitions);
        self.state.targets[..targets.len()].copy_from_slice(targets);
        for i in 0..targets.len() {
            self.stats
                .update_occupancy(i, self.state.actual[i], self.state.targets[i]);
        }
        self.scheme.configure(&self.state);
    }

    /// Number of application partitions (excluding scheme pools).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Simulation statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (e.g. to `reset()` after warmup or to disable
    /// deviation sampling for throughput runs).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// Current sizing state (targets, actual sizes, counters).
    pub fn state(&self) -> &PartitionState {
        &self.state
    }

    /// The futility ranking (for inspection).
    pub fn ranking(&self) -> &dyn FutilityRanking {
        self.ranking.as_ref()
    }

    /// The scheme (for inspection).
    pub fn scheme(&self) -> &dyn PartitionScheme {
        self.scheme.as_ref()
    }

    /// The array (for inspection).
    pub fn array(&self) -> &dyn CacheArray {
        self.array.as_ref()
    }

    /// Engine time: number of accesses processed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Attach a flight recorder; it is ticked after every access from
    /// now on. Replaces (and drops) any previously attached recorder.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Detach and return the attached recorder, if any. The engine
    /// reverts to the zero-cost no-recorder path.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// The attached recorder, if any (for inspection).
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_deref()
    }

    /// Convenience: attach a [`TimeSeriesRecorder`] sampling every
    /// `cadence` accesses into a ring of at most `capacity` samples.
    pub fn attach_timeseries(&mut self, cadence: u64, capacity: usize) {
        self.set_recorder(Box::new(TimeSeriesRecorder::new(cadence, capacity)));
    }

    /// The attached recorder downcast to a [`TimeSeriesRecorder`], if
    /// it is one.
    pub fn timeseries(&self) -> Option<&TimeSeriesRecorder> {
        self.recorder.as_ref()?.as_any().downcast_ref()
    }

    /// Process one access from `part` to line `addr`.
    pub fn access(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        let outcome = self.access_inner(part, addr, meta);
        if self.recorder.is_some() {
            self.record_tick();
        }
        outcome
    }

    /// The recorder tick, split out so the no-recorder hot path stays
    /// small. Taking the recorder out of its `Option` keeps its `&mut`
    /// disjoint from the state/stats/scheme borrows in the context.
    fn record_tick(&mut self) {
        let mut recorder = self.recorder.take().expect("caller checked");
        recorder.record(&RecordCtx {
            time: self.time,
            partitions: self.partitions,
            state: &self.state,
            stats: &self.stats,
            scheme: self.scheme.as_ref(),
        });
        self.recorder = Some(recorder);
    }

    #[inline]
    fn access_inner(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        debug_assert!(part.index() < self.partitions, "foreign pool access");
        self.time += 1;
        if let Some((slot, occ)) = self.array.lookup_occupant(addr) {
            let mut pool = occ.part;
            if pool != part {
                if let Some(dest) = self.scheme.on_foreign_hit(pool, part) {
                    self.apply_retag(slot, pool, dest, addr);
                    pool = dest;
                }
            }
            self.ranking.on_hit(pool, addr, self.time, meta);
            self.scheme.notify_hit(pool);
            self.stats.record_hit(part);
            return AccessOutcome::Hit;
        }

        self.stats.record_miss(part);
        let dest_pool = self.scheme.insertion_pool(part);

        if self.array.is_fully_associative() {
            return self.miss_fully_associative(part, dest_pool, addr, meta);
        }

        // One pass over the candidate walk: an empty slot short-circuits
        // (no eviction necessary), otherwise the occupants come back as
        // ready-made candidates.
        self.cands.clear();
        if let Some(free) = self.array.fill_candidates(addr, &mut self.cands) {
            self.install(free, dest_pool, addr, meta);
            return AccessOutcome::Miss { evicted: None };
        }
        debug_assert!(!self.cands.is_empty(), "array returned no candidates");

        self.ranking.futility_batch(&mut self.cands);

        // The decision buffer lives on the cache so Vantage's retag list
        // reuses its allocation; taken out for the duration of the retag
        // loop to keep the borrows disjoint.
        let mut decision = std::mem::take(&mut self.decision);
        self.scheme
            .victim_into(part, &self.cands, &self.state, &mut decision);
        debug_assert!(decision.victim < self.cands.len());

        for &(idx, to) in &decision.retags {
            let c = self.cands[idx];
            if c.part != to {
                self.apply_retag(c.slot, c.part, to, c.addr);
                self.cands[idx].part = to;
            }
        }

        let victim = self.cands[decision.victim];
        // An exact ranking's candidate futility *is* the true futility,
        // so it can be reused for eviction stats unless a retag just
        // invalidated it.
        let futility = if decision.retags.is_empty() && self.ranking.futility_is_exact() {
            victim.futility
        } else {
            self.ranking.true_futility(victim.part, victim.addr)
        };
        self.evict(victim.slot, victim.part, victim.addr, futility);
        self.install(victim.slot, dest_pool, addr, meta);
        self.decision = decision;
        AccessOutcome::Miss {
            evicted: Some(Eviction {
                addr: victim.addr,
                part: victim.part,
                futility,
            }),
        }
    }

    fn miss_fully_associative(
        &mut self,
        part: PartitionId,
        dest_pool: PartitionId,
        addr: u64,
        meta: AccessMeta,
    ) -> AccessOutcome {
        self.cands.clear();
        if let Some(free) = self.array.fill_candidates(addr, &mut self.cands) {
            self.install(free, dest_pool, addr, meta);
            return AccessOutcome::Miss { evicted: None };
        }
        let victim_pool = self.scheme.victim_partition_fully_assoc(part, &self.state);
        let victim_addr = self.ranking.max_futility_line(victim_pool).expect(
            "fully-associative eviction from empty pool: ranking must support max_futility_line",
        );
        let slot = self
            .array
            .lookup(victim_addr)
            .expect("ranking/array out of sync");
        let futility = self.ranking.true_futility(victim_pool, victim_addr);
        self.evict(slot, victim_pool, victim_addr, futility);
        self.install(slot, dest_pool, addr, meta);
        AccessOutcome::Miss {
            evicted: Some(Eviction {
                addr: victim_addr,
                part: victim_pool,
                futility,
            }),
        }
    }

    /// Fold the occupancy change of `pool` into the incremental
    /// deviation accounting (only application partitions are sampled).
    #[inline]
    fn occupancy_changed(&mut self, pool: PartitionId) {
        let idx = pool.index();
        if idx < self.partitions {
            self.stats
                .update_occupancy(idx, self.state.actual[idx], self.state.targets[idx]);
        }
    }

    fn apply_retag(&mut self, slot: SlotId, from: PartitionId, to: PartitionId, addr: u64) {
        debug_assert_eq!(
            self.array.occupant(slot).map(|o| (o.addr, o.part)),
            Some((addr, from)),
            "retag occupant mismatch"
        );
        // A retag out of an application partition into a scheme pool is
        // the moment the line stops serving its partition: record its
        // futility as an (associativity-relevant) departure, exactly as
        // an eviction would be recorded.
        if from.index() < self.partitions && to.index() >= self.partitions {
            let f = self.ranking.true_futility(from, addr);
            self.stats.record_eviction(from, f);
        }
        self.array.retag(slot, to);
        self.ranking.on_retag(from, to, addr);
        self.state.actual[from.index()] -= 1;
        self.state.actual[to.index()] += 1;
        self.occupancy_changed(from);
        self.occupancy_changed(to);
    }

    fn evict(&mut self, slot: SlotId, pool: PartitionId, addr: u64, futility: f64) {
        // Departures of application-partition lines are recorded here;
        // scheme-pool departures were already recorded at demotion time.
        if pool.index() < self.partitions {
            self.stats.record_eviction(pool, futility);
        }
        self.ranking.on_evict(pool, addr);
        self.array.evict(slot);
        self.state.actual[pool.index()] -= 1;
        self.state.evictions[pool.index()] += 1;
        self.occupancy_changed(pool);
        self.scheme.notify_evict(pool, &self.state);
        self.stats
            .sample_deviation_tick(&self.state.actual[..self.partitions], &self.state.targets);
    }

    fn install(&mut self, slot: SlotId, pool: PartitionId, addr: u64, meta: AccessMeta) {
        self.array.install(slot, addr, pool);
        self.ranking.on_insert(pool, addr, self.time, meta);
        self.state.actual[pool.index()] += 1;
        self.state.insertions[pool.index()] += 1;
        self.occupancy_changed(pool);
        self.scheme.notify_insert(pool, &self.state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{FullyAssociative, RandomCandidates, SetAssociative};
    use crate::hashing::LineHash;

    fn small_cache(partitions: usize) -> PartitionedCache {
        PartitionedCache::new(
            Box::new(RandomCandidates::new(64, 8, 1)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            partitions,
        )
    }

    #[test]
    fn second_access_hits() {
        let mut c = small_cache(1);
        let p = PartitionId(0);
        assert!(!c.access(p, 42, AccessMeta::default()).is_hit());
        assert!(c.access(p, 42, AccessMeta::default()).is_hit());
        assert_eq!(c.stats().partition(p).hits, 1);
        assert_eq!(c.stats().partition(p).misses, 1);
    }

    #[test]
    fn no_eviction_until_full() {
        let mut c = small_cache(1);
        let p = PartitionId(0);
        for addr in 0..64u64 {
            let out = c.access(p, addr, AccessMeta::default());
            assert_eq!(out, AccessOutcome::Miss { evicted: None });
        }
        let out = c.access(p, 1000, AccessMeta::default());
        assert!(out.eviction().is_some(), "full cache must evict");
        assert_eq!(c.array().occupied(), 64);
    }

    #[test]
    fn actual_sizes_track_occupancy() {
        let mut c = small_cache(2);
        for addr in 0..32u64 {
            c.access(PartitionId(0), addr, AccessMeta::default());
        }
        for addr in 100..116u64 {
            c.access(PartitionId(1), addr, AccessMeta::default());
        }
        assert_eq!(c.state().actual[0], 32);
        assert_eq!(c.state().actual[1], 16);
        assert_eq!(c.state().actual.iter().sum::<usize>(), c.array().occupied());
    }

    #[test]
    fn unpartitioned_lru_evicts_oldest_uniform_candidates() {
        // With max-futility eviction on a full candidate list of the
        // whole cache (R == slots), the engine behaves as exact LRU.
        let mut c = PartitionedCache::new(
            Box::new(RandomCandidates::new(4, 4, 2)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            1,
        );
        let p = PartitionId(0);
        for addr in 0..4u64 {
            c.access(p, addr, AccessMeta::default());
        }
        let out = c.access(p, 99, AccessMeta::default());
        assert_eq!(out.eviction().unwrap().addr, 0, "oldest line evicted");
        assert!((out.eviction().unwrap().futility - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_associative_path_evicts_most_futile() {
        let mut c = PartitionedCache::new(
            Box::new(FullyAssociative::new(4)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            1,
        );
        let p = PartitionId(0);
        for addr in 0..4u64 {
            c.access(p, addr, AccessMeta::default());
        }
        // Touch line 0 so line 1 becomes oldest.
        c.access(p, 0, AccessMeta::default());
        let out = c.access(p, 50, AccessMeta::default());
        assert_eq!(out.eviction().unwrap().addr, 1);
    }

    #[test]
    fn set_associative_composition_smoke() {
        let mut c = PartitionedCache::new(
            Box::new(SetAssociative::new(8, 4, LineHash::new(1))),
            crate::naive_lru(),
            crate::evict_max_futility(),
            2,
        );
        for i in 0..1000u64 {
            let p = PartitionId((i % 2) as u16);
            // Working set of 20 lines fits in the 32-line cache, so the
            // steady state must produce hits.
            c.access(p, i % 20, AccessMeta::default());
        }
        assert_eq!(c.array().occupied(), 20);
        assert!(c.stats().total_hits() > 0);
    }

    #[test]
    fn set_targets_validates_and_applies() {
        let mut c = small_cache(2);
        c.set_targets(&[48, 16]);
        assert_eq!(c.state().targets[0], 48);
        assert_eq!(c.state().targets[1], 16);
    }

    #[test]
    fn attached_timeseries_tracks_live_occupancy() {
        let mut c = small_cache(2);
        c.attach_timeseries(16, 4096);
        for i in 0..400u64 {
            c.access(PartitionId((i % 2) as u16), i, AccessMeta::default());
        }
        let ts = c.timeseries().expect("recorder attached");
        assert!(!ts.is_empty());
        // The newest occupancy samples must match the live state.
        for part in [PartitionId(0), PartitionId(1)] {
            let last = ts
                .samples()
                .rfind(|s| s.series == "occupancy" && s.part == Some(part))
                .unwrap();
            // The last tick was at time 400 (a multiple of 16 would be
            // 400? 400/16 = 25, yes) — occupancy then equals now since
            // no accesses followed.
            assert_eq!(last.time, 400);
            assert_eq!(last.value, c.state().actual[part.index()] as f64);
        }
        // Detaching returns the engine to the no-recorder path.
        let rec = c.take_recorder().unwrap();
        assert!(c.timeseries().is_none());
        let n_before = rec
            .as_any()
            .downcast_ref::<crate::recorder::TimeSeriesRecorder>()
            .unwrap()
            .len();
        c.access(PartitionId(0), 9999, AccessMeta::default());
        assert_eq!(
            rec.as_any()
                .downcast_ref::<crate::recorder::TimeSeriesRecorder>()
                .unwrap()
                .len(),
            n_before
        );
    }

    #[test]
    fn eviction_futility_recorded_in_stats() {
        let mut c = small_cache(1);
        let p = PartitionId(0);
        for addr in 0..200u64 {
            c.access(p, addr, AccessMeta::default());
        }
        let stats = c.stats().partition(p);
        assert_eq!(stats.evictions, 200 - 64);
        assert!(stats.aef() > 0.5, "LRU + R=8 should beat random eviction");
    }
}
