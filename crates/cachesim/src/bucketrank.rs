//! Two-level counting-bucket substrate for u8-futility rankings
//! (DESIGN.md §14).
//!
//! The coarse hardware rankings (8-bit timestamp LRU, RRIP) carry at
//! most 256 distinct futility values, so the order-statistic treap the
//! exact rankings need — O(log n) insert/remove/rank with ~10 dependent
//! cache misses per descent — is overkill for them: occupancy-by-value
//! *counts* answer every query the engine asks. A [`BucketPool`] keeps,
//! per partition:
//!
//! * 256 intrusive doubly-linked **bucket lists** of lines, packed in a
//!   slab arena (one `u32`-indexed node per resident line, free-listed
//!   so a warm pool never allocates);
//! * a two-level counter pyramid — 256 per-bucket `u32` counts viewed
//!   as 16 rows × 16, plus a 16-lane per-row **summary** — so any
//!   circular range-rank is three [`swar::sum_u32`](crate::swar::sum_u32)
//!   row sums;
//! * a 256-bit occupancy bitmap, making "first non-empty bucket from
//!   here, circularly" (the degenerate select the fully-associative
//!   ideal needs) four word scans.
//!
//! Every mutation is O(1); every rank query is O(16) independent lane
//! adds with no pointer chasing. The `ranking` crate's
//! `BucketCoarseLru`/`BucketRrip` build the full `FutilityRanking`
//! surface on top (bucket = timestamp tag, resp. aged-RRPV class).
//!
//! Within a bucket, lists are ordered by **touch recency**: nodes are
//! appended at the tail, so the head is the line least recently moved
//! into the bucket. That order is deterministic, observable (via
//! [`head_addr`](BucketPool::head_addr) /
//! [`for_each`](BucketPool::for_each)) and therefore part of the
//! snapshot contract: serializing lists in order and re-appending on
//! load reproduces identical bytes on re-save.

use crate::swar::sum_u32;

/// Buckets per pool: one per distinct 8-bit futility value.
pub const BUCKETS: usize = 256;
/// Rows of the two-level counter pyramid (16 × 16 = 256).
const ROWS: usize = 16;
/// Sentinel index for "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    addr: u64,
    prev: u32,
    next: u32,
}

/// One partition's bucket structure; see the module docs.
#[derive(Debug)]
pub struct BucketPool {
    /// Slab arena of line nodes; freed slots are chained through
    /// `next` starting at `free`.
    nodes: Vec<Node>,
    free: u32,
    head: [u32; BUCKETS],
    tail: [u32; BUCKETS],
    /// Level 1: lines per bucket.
    counts: [u32; BUCKETS],
    /// Level 2: lines per 16-bucket row (`summary[r] = Σ counts[16r..16r+16]`).
    summary: [u32; ROWS],
    /// Bit `b` set iff bucket `b` is non-empty.
    occupied: [u64; 4],
    len: usize,
}

impl Default for BucketPool {
    fn default() -> Self {
        BucketPool::new()
    }
}

impl BucketPool {
    /// An empty pool; the arena grows on demand and is retained across
    /// removals (free list), so a warm pool performs no allocation.
    pub fn new() -> Self {
        BucketPool {
            nodes: Vec::new(),
            free: NIL,
            head: [NIL; BUCKETS],
            tail: [NIL; BUCKETS],
            counts: [0; BUCKETS],
            summary: [0; ROWS],
            occupied: [0; 4],
            len: 0,
        }
    }

    /// Total lines across all buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lines in bucket `b`.
    pub fn count(&self, b: usize) -> u32 {
        self.counts[b]
    }

    /// The address stored at node `idx`.
    pub fn addr(&self, idx: u32) -> u64 {
        self.nodes[idx as usize].addr
    }

    #[inline]
    fn inc(&mut self, b: usize) {
        if self.counts[b] == 0 {
            self.occupied[b >> 6] |= 1u64 << (b & 63);
        }
        self.counts[b] += 1;
        self.summary[b >> 4] += 1;
        self.len += 1;
    }

    #[inline]
    fn dec(&mut self, b: usize) {
        debug_assert!(self.counts[b] > 0, "dec on empty bucket {b}");
        self.counts[b] -= 1;
        if self.counts[b] == 0 {
            self.occupied[b >> 6] &= !(1u64 << (b & 63));
        }
        self.summary[b >> 4] -= 1;
        self.len -= 1;
    }

    #[inline]
    fn link_tail(&mut self, idx: u32, b: usize) {
        let t = self.tail[b];
        self.nodes[idx as usize].prev = t;
        self.nodes[idx as usize].next = NIL;
        if t == NIL {
            self.head[b] = idx;
        } else {
            self.nodes[t as usize].next = idx;
        }
        self.tail[b] = idx;
    }

    #[inline]
    fn unlink(&mut self, idx: u32, b: usize) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev == NIL {
            debug_assert_eq!(self.head[b], idx, "node not in claimed bucket");
            self.head[b] = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            debug_assert_eq!(self.tail[b], idx, "node not in claimed bucket");
            self.tail[b] = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Insert `addr` at the tail of bucket `b`; returns the node index
    /// the caller must retain (alongside `b`) for `remove`/`move_to_tail`.
    pub fn insert(&mut self, addr: u64, b: usize) -> u32 {
        let idx = if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize].addr = addr;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "bucket arena full");
            self.nodes.push(Node {
                addr,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.link_tail(idx, b);
        self.inc(b);
        idx
    }

    /// Remove node `idx` from bucket `b`, returning its address and
    /// recycling the slot.
    pub fn remove(&mut self, idx: u32, b: usize) -> u64 {
        let addr = self.nodes[idx as usize].addr;
        self.unlink(idx, b);
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
        self.dec(b);
        addr
    }

    /// Move node `idx` from bucket `from` to the tail of bucket `to`
    /// (also when `from == to`: a touch refreshes recency order).
    pub fn move_to_tail(&mut self, idx: u32, from: usize, to: usize) {
        self.unlink(idx, from);
        self.link_tail(idx, to);
        if from != to {
            self.dec(from);
            self.inc(to);
        }
    }

    /// Splice bucket `from`'s whole list onto the tail of bucket `to`,
    /// preserving order, in O(1) — the RRIP generation bump ("every
    /// line of this age class just saturated") becomes one counter move
    /// instead of a per-line walk.
    pub fn merge_into(&mut self, from: usize, to: usize) {
        debug_assert_ne!(from, to, "merging a bucket into itself");
        let h = self.head[from];
        if h == NIL {
            return;
        }
        let t = self.tail[to];
        if t == NIL {
            self.head[to] = h;
        } else {
            self.nodes[t as usize].next = h;
            self.nodes[h as usize].prev = t;
        }
        self.tail[to] = self.tail[from];
        self.head[from] = NIL;
        self.tail[from] = NIL;
        let moved = self.counts[from];
        if self.counts[to] == 0 && moved > 0 {
            self.occupied[to >> 6] |= 1u64 << (to & 63);
        }
        self.counts[to] += moved;
        self.counts[from] = 0;
        self.occupied[from >> 6] &= !(1u64 << (from & 63));
        self.summary[to >> 4] += moved;
        self.summary[from >> 4] -= moved;
    }

    /// The address at the head (least recently appended line) of bucket
    /// `b`, if any.
    pub fn head_addr(&self, b: usize) -> Option<u64> {
        match self.head[b] {
            NIL => None,
            idx => Some(self.nodes[idx as usize].addr),
        }
    }

    /// Sum of bucket counts over the *inclusive linear* range `lo..=hi`
    /// via the two-level pyramid: at most two partial rows plus a slice
    /// of the summary row, each a SWAR row sum.
    fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi < BUCKETS);
        let (ra, rb) = (lo >> 4, hi >> 4);
        if ra == rb {
            return sum_u32(&self.counts[lo..=hi]);
        }
        let mut total = sum_u32(&self.counts[lo..((ra + 1) << 4)]);
        total += sum_u32(&self.counts[(rb << 4)..=hi]);
        if ra + 1 < rb {
            total += sum_u32(&self.summary[ra + 1..rb]);
        }
        total
    }

    /// Sum of bucket counts over the *inclusive circular* range from
    /// `lo` to `hi` (wrapping past 255) — the rank query: for a
    /// timestamp ranking, lines at distance `≤ d` of current tag `ts`
    /// occupy the circular tag range `[ts − d, ts]`.
    pub fn circular_sum(&self, lo: u8, hi: u8) -> u64 {
        let (lo, hi) = (lo as usize, hi as usize);
        if lo <= hi {
            self.range_sum(lo, hi)
        } else {
            self.range_sum(lo, BUCKETS - 1) + self.range_sum(0, hi)
        }
    }

    /// The first non-empty bucket at or after `start`, scanning
    /// circularly (so some bucket is always found while the pool is
    /// non-empty). Four word probes of the occupancy bitmap.
    pub fn first_occupied_from(&self, start: u8) -> Option<u8> {
        if self.len == 0 {
            return None;
        }
        let s = start as usize;
        let (w0, b0) = (s >> 6, s & 63);
        let high = self.occupied[w0] & (!0u64 << b0);
        if high != 0 {
            return Some(((w0 << 6) + high.trailing_zeros() as usize) as u8);
        }
        for k in 1..4 {
            let w = (w0 + k) & 3;
            if self.occupied[w] != 0 {
                return Some(((w << 6) + self.occupied[w].trailing_zeros() as usize) as u8);
            }
        }
        let wrap = self.occupied[w0] & !(!0u64 << b0);
        debug_assert!(wrap != 0, "occupancy bitmap disagrees with len");
        Some(((w0 << 6) + wrap.trailing_zeros() as usize) as u8)
    }

    /// Visit every address of bucket `b` in list (touch-recency) order
    /// — the snapshot serialization order.
    pub fn for_each(&self, b: usize, mut f: impl FnMut(u64)) {
        let mut idx = self.head[b];
        while idx != NIL {
            let n = self.nodes[idx as usize];
            f(n.addr);
            idx = n.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Oracle: per-bucket deques of addresses, same operations replayed
    /// naively.
    #[derive(Default)]
    struct Model {
        buckets: Vec<VecDeque<u64>>,
    }

    impl Model {
        fn new() -> Self {
            Model {
                buckets: vec![VecDeque::new(); BUCKETS],
            }
        }
        fn insert(&mut self, addr: u64, b: usize) {
            self.buckets[b].push_back(addr);
        }
        fn remove(&mut self, addr: u64, b: usize) {
            let pos = self.buckets[b].iter().position(|&a| a == addr).unwrap();
            self.buckets[b].remove(pos);
        }
        fn move_to_tail(&mut self, addr: u64, from: usize, to: usize) {
            self.remove(addr, from);
            self.insert(addr, to);
        }
        fn merge_into(&mut self, from: usize, to: usize) {
            let moved: Vec<u64> = self.buckets[from].drain(..).collect();
            self.buckets[to].extend(moved);
        }
        fn len(&self) -> usize {
            self.buckets.iter().map(|q| q.len()).sum()
        }
        fn circular_sum(&self, lo: u8, hi: u8) -> u64 {
            let mut b = lo;
            let mut total = 0;
            loop {
                total += self.buckets[b as usize].len() as u64;
                if b == hi {
                    return total;
                }
                b = b.wrapping_add(1);
            }
        }
        fn first_occupied_from(&self, start: u8) -> Option<u8> {
            (0..=255u16)
                .map(|k| start.wrapping_add(k as u8))
                .find(|&b| !self.buckets[b as usize].is_empty())
        }
    }

    fn check_equal(pool: &BucketPool, model: &Model) {
        assert_eq!(pool.len(), model.len());
        for b in 0..BUCKETS {
            assert_eq!(pool.count(b) as usize, model.buckets[b].len(), "bucket {b}");
            let mut got = Vec::new();
            pool.for_each(b, |a| got.push(a));
            let want: Vec<u64> = model.buckets[b].iter().copied().collect();
            assert_eq!(got, want, "bucket {b} order");
            assert_eq!(pool.head_addr(b), want.first().copied(), "bucket {b} head");
        }
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn randomized_ops_match_reference_model() {
        let mut pool = BucketPool::new();
        let mut model = Model::new();
        // Live set: (addr, node idx, bucket).
        let mut live: Vec<(u64, u32, usize)> = Vec::new();
        let mut rng = Lcg(0x5EED_0001);
        let mut next_addr = 0u64;
        for step in 0..3000 {
            match rng.next() % 10 {
                // Weighted toward inserts early so the pool fills up.
                0..=3 => {
                    let b = (rng.next() % BUCKETS as u64) as usize;
                    next_addr += 1;
                    let idx = pool.insert(next_addr, b);
                    model.insert(next_addr, b);
                    live.push((next_addr, idx, b));
                }
                4..=5 if !live.is_empty() => {
                    let i = (rng.next() as usize) % live.len();
                    let (addr, idx, b) = live.swap_remove(i);
                    assert_eq!(pool.remove(idx, b), addr);
                    model.remove(addr, b);
                }
                6..=8 if !live.is_empty() => {
                    let i = (rng.next() as usize) % live.len();
                    let to = (rng.next() % BUCKETS as u64) as usize;
                    let (addr, idx, from) = live[i];
                    pool.move_to_tail(idx, from, to);
                    model.move_to_tail(addr, from, to);
                    live[i].2 = to;
                }
                9 => {
                    let from = (rng.next() % BUCKETS as u64) as usize;
                    let to = (from + 1 + (rng.next() % 255) as usize) % BUCKETS;
                    pool.merge_into(from, to);
                    model.merge_into(from, to);
                    for e in live.iter_mut() {
                        if e.2 == from {
                            e.2 = to;
                        }
                    }
                }
                _ => {}
            }
            if step % 97 == 0 {
                check_equal(&pool, &model);
            }
        }
        check_equal(&pool, &model);
        // Rank + select queries against the oracle over many ranges.
        for _ in 0..400 {
            let lo = (rng.next() % 256) as u8;
            let hi = (rng.next() % 256) as u8;
            assert_eq!(
                pool.circular_sum(lo, hi),
                model.circular_sum(lo, hi),
                "sum [{lo},{hi}]"
            );
            assert_eq!(
                pool.first_occupied_from(lo),
                model.first_occupied_from(lo),
                "first from {lo}"
            );
        }
    }

    #[test]
    fn empty_pool_answers_queries() {
        let pool = BucketPool::new();
        assert_eq!(pool.len(), 0);
        assert!(pool.is_empty());
        assert_eq!(pool.circular_sum(0, 255), 0);
        assert_eq!(pool.circular_sum(200, 10), 0);
        assert_eq!(pool.first_occupied_from(7), None);
        assert_eq!(pool.head_addr(0), None);
    }

    #[test]
    fn touch_refreshes_order_within_a_bucket() {
        let mut pool = BucketPool::new();
        let a = pool.insert(1, 5);
        let _b = pool.insert(2, 5);
        let _c = pool.insert(3, 5);
        assert_eq!(pool.head_addr(5), Some(1));
        // Same-bucket move: head shifts to the next-oldest line.
        pool.move_to_tail(a, 5, 5);
        assert_eq!(pool.head_addr(5), Some(2));
        let mut order = Vec::new();
        pool.for_each(5, |x| order.push(x));
        assert_eq!(order, vec![2, 3, 1]);
        assert_eq!(pool.count(5), 3);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn free_list_recycles_slots_without_growth() {
        let mut pool = BucketPool::new();
        let mut idxs = Vec::new();
        for i in 0..64u64 {
            idxs.push(pool.insert(i, (i % 7) as usize));
        }
        let cap = pool.nodes.len();
        for (i, idx) in idxs.drain(..).enumerate() {
            pool.remove(idx, i % 7);
        }
        for i in 0..64u64 {
            pool.insert(1000 + i, (i % 11) as usize);
        }
        // Steady-state churn reuses the freed slots: the arena never
        // grew past its peak population.
        assert_eq!(pool.nodes.len(), cap);
        assert_eq!(pool.len(), 64);
    }

    #[test]
    fn merge_preserves_relative_order() {
        let mut pool = BucketPool::new();
        pool.insert(1, 10);
        pool.insert(2, 10);
        pool.insert(3, 20);
        pool.merge_into(10, 20);
        let mut order = Vec::new();
        pool.for_each(20, |x| order.push(x));
        assert_eq!(order, vec![3, 1, 2]);
        assert_eq!(pool.count(10), 0);
        assert_eq!(pool.count(20), 3);
        assert_eq!(pool.head_addr(10), None);
        assert_eq!(pool.first_occupied_from(0), Some(20));
        // Merging an empty bucket is a no-op.
        pool.merge_into(10, 20);
        assert_eq!(pool.count(20), 3);
    }

    #[test]
    fn circular_sum_wraps_exactly() {
        let mut pool = BucketPool::new();
        pool.insert(1, 0);
        pool.insert(2, 255);
        pool.insert(3, 128);
        assert_eq!(pool.circular_sum(255, 0), 2);
        assert_eq!(pool.circular_sum(0, 255), 3);
        assert_eq!(pool.circular_sum(1, 127), 0);
        assert_eq!(pool.circular_sum(128, 128), 1);
        assert_eq!(pool.circular_sum(129, 0), 2);
        assert_eq!(pool.first_occupied_from(129), Some(255));
        assert_eq!(pool.first_occupied_from(1), Some(128));
    }
}
