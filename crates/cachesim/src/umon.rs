//! UMON — a sampled utility monitor (Qureshi & Patt's UMON-DSS), the
//! hardware mechanism allocation policies use to obtain per-thread
//! miss/hit curves online. One monitor shadows one thread: a small
//! number of sampled sets keep full LRU stacks of shadow tags, and a
//! hit at stack depth `d` increments the way-`d` hit counter — giving
//! the marginal-utility curve UCP-style policies allocate from.
//!
//! The paper's evaluation uses a *static* allocation policy, but its
//! Section II framing (allocation policy ↔ enforcement scheme) expects
//! utility-driven allocators on top; this module provides the missing
//! monitor so the `simqos` UCP allocator can run online.

use crate::hashing::{IndexHash, LineHash};

/// A sampled shadow-tag utility monitor for one thread.
///
/// # Example
/// ```
/// use cachesim::umon::Umon;
/// let mut m = Umon::new(32, 16, 1);
/// for round in 0..4u64 {
///     for addr in 0..2_000u64 {
///         m.observe(addr);
///     }
///     let _ = round;
/// }
/// let hits = m.hit_curve();
/// assert_eq!(hits.len(), 17); // 0..=ways
/// assert!(hits[16] >= hits[8]);
/// ```
#[derive(Clone, Debug)]
pub struct Umon {
    /// Sampled sets, each an LRU stack of shadow tags (front = MRU).
    stacks: Vec<Vec<u64>>,
    ways: usize,
    /// Only addresses with `hash(addr) % sampling == 0` are observed.
    sampling: u64,
    hash: LineHash,
    /// `hit_counters[d]` = hits that an LRU cache of `d+1` ways would
    /// have captured at exactly stack depth `d`.
    hit_counters: Vec<u64>,
    misses: u64,
    observed: u64,
}

impl Umon {
    /// Create a monitor with `sets` sampled sets of `ways` shadow tags,
    /// observing one of every `sampling` lines (1 = observe all).
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(sets: usize, ways: usize, sampling: u64) -> Self {
        assert!(sets > 0 && ways > 0 && sampling > 0);
        Umon {
            stacks: vec![Vec::with_capacity(ways); sets],
            ways,
            sampling,
            hash: LineHash::new(0x0DD5),
            hit_counters: vec![0; ways],
            misses: 0,
            observed: 0,
        }
    }

    /// Number of shadow ways (the curve's resolution).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accesses that passed the sampling filter.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observe one access. Returns `true` if the address was sampled.
    pub fn observe(&mut self, addr: u64) -> bool {
        let h = self.hash.hash(addr);
        if !h.is_multiple_of(self.sampling) {
            return false;
        }
        self.observed += 1;
        let set = ((h / self.sampling) % self.stacks.len() as u64) as usize;
        let stack = &mut self.stacks[set];
        match stack.iter().position(|&t| t == addr) {
            Some(depth) => {
                self.hit_counters[depth] += 1;
                let tag = stack.remove(depth);
                stack.insert(0, tag);
            }
            None => {
                self.misses += 1;
                if stack.len() == self.ways {
                    stack.pop();
                }
                stack.insert(0, addr);
            }
        }
        true
    }

    /// Whether this monitor has observed nothing (no sampled access)
    /// since construction or the last [`reset_counters`](Self::reset_counters).
    /// A cold monitor has no information: its hit curve is flat zero
    /// and a miss-ratio curve would be undefined (0/0). Allocators must
    /// check this before reading curves — see
    /// [`miss_ratio_curve`](Self::miss_ratio_curve).
    pub fn is_cold(&self) -> bool {
        self.observed == 0
    }

    /// Cumulative hit counts at 0, 1, …, `ways` ways (length
    /// `ways + 1`, starting at 0). Multiply by the sampling factor to
    /// estimate whole-cache hits.
    pub fn hit_curve(&self) -> Vec<f64> {
        let mut curve = Vec::new();
        self.hit_curve_into(&mut curve);
        curve
    }

    /// Write the cumulative hit curve into `out` (cleared first,
    /// allocation-free once `out` has capacity `ways + 1`). The
    /// re-solve loops of online allocators call this per tenant per
    /// epoch; the buffer variant keeps that path off the heap
    /// (`tests/no_alloc_hot_path.rs`, re-solve arm).
    pub fn hit_curve_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.ways + 1);
        let mut acc = 0.0;
        out.push(0.0);
        for &h in &self.hit_counters {
            acc += h as f64;
            out.push(acc);
        }
    }

    /// Estimated miss ratio at each way count 0..=ways, or `None` while
    /// the monitor is [cold](Self::is_cold).
    ///
    /// The cold case is deliberately explicit: a cold monitor used to
    /// report a flat all-1.0 curve (`observed.max(1)` hid the 0/0),
    /// which a utility-driven allocator reads as "this tenant gains
    /// nothing from cache" and starves it before its first sampled
    /// access lands. Callers that want a flat fallback must opt in.
    pub fn miss_ratio_curve(&self) -> Option<Vec<f64>> {
        if self.is_cold() {
            return None;
        }
        let total = self.observed as f64;
        Some(self.hit_curve().iter().map(|h| 1.0 - h / total).collect())
    }

    /// Zero the counters (start a new measurement epoch), keeping the
    /// shadow tags warm.
    pub fn reset_counters(&mut self) {
        self.hit_counters.fill(0);
        self.misses = 0;
        self.observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_working_set_hits_at_few_ways() {
        let mut m = Umon::new(16, 8, 1);
        // 8 hot lines touched repeatedly: after warmup, every access
        // hits at shallow stack depths.
        for r in 0..200u64 {
            m.observe(r % 8);
        }
        let curve = m.hit_curve();
        assert!(curve[8] > 150.0, "most accesses hit: {curve:?}");
        // The curve is monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn streaming_gets_no_hits() {
        let mut m = Umon::new(16, 8, 1);
        for addr in 0..5_000u64 {
            m.observe(addr);
        }
        let curve = m.hit_curve();
        assert_eq!(curve[8], 0.0, "a pure stream never reuses: {curve:?}");
        let mrc = m.miss_ratio_curve().expect("warm monitor has a curve");
        assert!((mrc[8] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cold_monitor_has_no_miss_ratio_curve() {
        // Regression: a cold monitor used to report a flat 1.0 curve
        // ("cache is useless to this tenant") instead of "no data".
        let mut m = Umon::new(16, 8, 1);
        assert!(m.is_cold());
        assert!(m.miss_ratio_curve().is_none());
        // One sampled access is enough to warm it ...
        m.observe(42);
        assert!(!m.is_cold());
        let curve = m.miss_ratio_curve().expect("warmed");
        assert_eq!(curve.len(), 9);
        assert!((curve[0] - 1.0).abs() < 1e-12);
        // ... and a counter reset makes it cold again (new epoch).
        m.reset_counters();
        assert!(m.is_cold());
        assert!(m.miss_ratio_curve().is_none());
    }

    #[test]
    fn hit_curve_into_matches_allocating_variant_and_reuses_capacity() {
        let mut m = Umon::new(16, 8, 1);
        for r in 0..500u64 {
            m.observe(r % 12);
        }
        let mut buf = Vec::with_capacity(9);
        let ptr = buf.as_ptr();
        m.hit_curve_into(&mut buf);
        assert_eq!(buf, m.hit_curve());
        // A second fill must reuse the same allocation.
        m.hit_curve_into(&mut buf);
        assert_eq!(ptr, buf.as_ptr(), "buffer was reallocated");
    }

    #[test]
    fn stack_depth_separates_working_set_sizes() {
        let mut m = Umon::new(1, 8, 1);
        // Cycle over 4 lines: LRU stack hits at depth 3 exactly.
        for r in 0..400u64 {
            m.observe(r % 4);
        }
        let curve = m.hit_curve();
        assert_eq!(curve[3], 0.0, "no hits below 4 ways");
        assert!(curve[4] > 300.0, "all hits at 4 ways: {curve:?}");
    }

    #[test]
    fn sampling_reduces_observations() {
        let mut all = Umon::new(16, 8, 1);
        let mut sampled = Umon::new(16, 8, 8);
        for addr in 0..8_000u64 {
            all.observe(addr);
            sampled.observe(addr);
        }
        assert_eq!(all.observed(), 8_000);
        let frac = sampled.observed() as f64 / 8_000.0;
        assert!((frac - 1.0 / 8.0).abs() < 0.05, "sampled {frac}");
    }

    #[test]
    fn reset_keeps_tags_warm() {
        let mut m = Umon::new(8, 4, 1);
        for r in 0..100u64 {
            m.observe(r % 4);
        }
        m.reset_counters();
        assert_eq!(m.observed(), 0);
        m.observe(0);
        // The tag was still resident: an immediate hit, no cold miss.
        assert!((m.hit_curve().last().unwrap() - 1.0).abs() < 1e-12);
    }
}
