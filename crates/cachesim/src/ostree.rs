//! An order-statistic treap: a balanced search tree with subtree-size
//! augmentation, giving `O(log n)` insert, remove, rank and select.
//!
//! Exact futility is an *order-statistic* problem (the paper defines a
//! line's futility as its rank normalized to `[0,1]`), so one structure
//! backs the exact LRU, LFU and OPT rankings as well as the "true
//! futility" measurement hooks: keys are `(ordering value, line address)`
//! pairs, ranks are counts of strictly smaller keys.
//!
//! The implementation is an arena-backed treap with deterministic
//! priorities drawn from an internal xorshift stream, so simulations are
//! reproducible.

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<K> {
    key: K,
    prio: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// Order-statistic treap over unique keys.
///
/// # Example
///
/// ```
/// use cachesim::ostree::OsTreap;
/// let mut t = OsTreap::new(7);
/// t.insert((5, 0));
/// t.insert((1, 0));
/// t.insert((9, 0));
/// assert_eq!(t.rank(&(5, 0)), 1); // one key smaller than (5,0)
/// assert_eq!(*t.select(2).unwrap(), (9, 0));
/// assert!(t.remove(&(1, 0)));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct OsTreap<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
}

impl<K: Ord + Clone> OsTreap<K> {
    /// Create an empty treap; `seed` drives the deterministic priority
    /// stream (any value works, including 0).
    pub fn new(seed: u64) -> Self {
        OsTreap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: seed | 1,
        }
    }

    /// Number of keys currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.subtree_size(self.root) as usize
    }

    /// Whether the treap holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    #[inline]
    fn subtree_size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn next_prio(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn alloc(&mut self, key: K) -> u32 {
        let prio = self.next_prio();
        let node = Node {
            key,
            prio,
            left: NIL,
            right: NIL,
            size: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    #[inline]
    fn pull(&mut self, n: u32) {
        let (l, r) = {
            let nd = &self.nodes[n as usize];
            (nd.left, nd.right)
        };
        let size = 1 + self.subtree_size(l) + self.subtree_size(r);
        self.nodes[n as usize].size = size;
    }

    /// Split into (keys < key, keys >= key).
    fn split(&mut self, t: u32, key: &K) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key < *key {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split(right, key);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split(left, key);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Split into (keys <= key, keys > key).
    fn split_le(&mut self, t: u32, key: &K) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key <= *key {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split_le(right, key);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split_le(left, key);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let m = self.merge(ar, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge(a, bl);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    /// Insert a key. Returns `false` (and leaves the treap unchanged) if
    /// the key is already present.
    pub fn insert(&mut self, key: K) -> bool {
        if self.contains(&key) {
            return false;
        }
        let n = self.alloc(key);
        let key_ref = self.nodes[n as usize].key.clone();
        let (a, b) = self.split(self.root, &key_ref);
        let ab = self.merge(a, n);
        self.root = self.merge(ab, b);
        true
    }

    /// Remove a key. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let (a, bc) = self.split(self.root, key);
        let (b, c) = self.split_le(bc, key);
        let removed = b != NIL;
        if removed {
            debug_assert_eq!(self.nodes[b as usize].size, 1);
            self.free.push(b);
        }
        self.root = self.merge(a, c);
        removed
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let mut t = self.root;
        while t != NIL {
            let nd = &self.nodes[t as usize];
            match key.cmp(&nd.key) {
                std::cmp::Ordering::Less => t = nd.left,
                std::cmp::Ordering::Greater => t = nd.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of stored keys strictly smaller than `key` (the key itself
    /// need not be present).
    pub fn rank(&self, key: &K) -> usize {
        let mut t = self.root;
        let mut acc = 0usize;
        while t != NIL {
            let nd = &self.nodes[t as usize];
            if nd.key < *key {
                acc += 1 + self.subtree_size(nd.left) as usize;
                t = nd.right;
            } else {
                t = nd.left;
            }
        }
        acc
    }

    /// The key with exactly `rank` smaller keys (0-based), or `None` if
    /// out of range.
    pub fn select(&self, rank: usize) -> Option<&K> {
        if rank >= self.len() {
            return None;
        }
        let mut t = self.root;
        let mut rank = rank as u32;
        loop {
            let nd = &self.nodes[t as usize];
            let ls = self.subtree_size(nd.left);
            if rank < ls {
                t = nd.left;
            } else if rank == ls {
                return Some(&nd.key);
            } else {
                rank -= ls + 1;
                t = nd.right;
            }
        }
    }

    /// Smallest key, if any.
    pub fn min(&self) -> Option<&K> {
        self.select(0)
    }

    /// Largest key, if any.
    pub fn max(&self) -> Option<&K> {
        self.len().checked_sub(1).and_then(|r| self.select(r))
    }

    /// Remove all keys.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
    }
}

impl<K: Ord + Clone> Default for OsTreap<K> {
    fn default() -> Self {
        OsTreap::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_rank_select_roundtrip() {
        let mut t = OsTreap::new(1);
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            assert!(t.insert((k, 0u64)));
        }
        assert_eq!(t.len(), 7);
        assert_eq!(t.rank(&(10, 0)), 0);
        assert_eq!(t.rank(&(50, 0)), 3);
        assert_eq!(t.rank(&(95, 0)), 7);
        assert_eq!(*t.select(0).unwrap(), (10, 0));
        assert_eq!(*t.select(6).unwrap(), (90, 0));
        assert!(t.select(7).is_none());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = OsTreap::new(2);
        assert!(t.insert((1, 1)));
        assert!(!t.insert((1, 1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t: OsTreap<(u64, u64)> = OsTreap::new(3);
        t.insert((5, 5));
        assert!(!t.remove(&(6, 6)));
        assert!(t.remove(&(5, 5)));
        assert!(t.is_empty());
    }

    #[test]
    fn min_max_track_extremes() {
        let mut t = OsTreap::new(4);
        assert!(t.min().is_none());
        for k in [(3u64, 0u64), (1, 0), (2, 0)] {
            t.insert(k);
        }
        assert_eq!(*t.min().unwrap(), (1, 0));
        assert_eq!(*t.max().unwrap(), (3, 0));
        t.remove(&(3, 0));
        assert_eq!(*t.max().unwrap(), (2, 0));
    }

    #[test]
    fn arena_reuses_freed_nodes() {
        let mut t = OsTreap::new(5);
        for i in 0..100u64 {
            t.insert((i, 0u64));
        }
        for i in 0..100u64 {
            t.remove(&(i, 0));
        }
        let cap = t.nodes.len();
        for i in 100..200u64 {
            t.insert((i, 0));
        }
        assert_eq!(t.nodes.len(), cap, "freed slots should be reused");
    }

    /// Differential test against a sorted Vec reference model.
    #[test]
    fn matches_reference_model_under_random_ops() {
        let mut t = OsTreap::new(6);
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x1234_5678u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5000 {
            let k = (rng() % 500, 0u64);
            match rng() % 3 {
                0 => {
                    let inserted = t.insert(k);
                    let model_has = model.binary_search(&k).is_ok();
                    assert_eq!(inserted, !model_has);
                    if inserted {
                        let pos = model.binary_search(&k).unwrap_err();
                        model.insert(pos, k);
                    }
                }
                1 => {
                    let removed = t.remove(&k);
                    match model.binary_search(&k) {
                        Ok(pos) => {
                            assert!(removed);
                            model.remove(pos);
                        }
                        Err(_) => assert!(!removed),
                    }
                }
                _ => {
                    let expect = match model.binary_search(&k) {
                        Ok(p) | Err(p) => p,
                    };
                    assert_eq!(t.rank(&k), expect);
                }
            }
            assert_eq!(t.len(), model.len());
        }
        for (i, k) in model.iter().enumerate() {
            assert_eq!(t.select(i), Some(k));
        }
    }
}
