//! An order-statistic treap: a balanced search tree with subtree-size
//! augmentation, giving `O(log n)` insert, remove, rank and select.
//!
//! Exact futility is an *order-statistic* problem (the paper defines a
//! line's futility as its rank normalized to `[0,1]`), so one structure
//! backs the exact LRU, LFU and OPT rankings as well as the "true
//! futility" measurement hooks: keys are `(ordering value, line address)`
//! pairs, ranks are counts of strictly smaller keys.
//!
//! The implementation is an arena-backed treap with deterministic
//! priorities drawn from an internal xorshift stream, so simulations are
//! reproducible.

const NIL: u32 = u32::MAX;

/// One rank lookup in a [`OsTreap::rank_many`] batch.
///
/// `pool` and `tag` are caller-owned routing fields the treap ignores:
/// the derived `Ord` sorts by `(pool, key, tag, rank)`, so a single
/// `sort_unstable` over a mixed-pool batch both groups queries by pool
/// and puts each group in the key order `rank_many` requires. `tag`
/// typically indexes back into the caller's candidate array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RankQuery<K> {
    /// Caller-side group id (sorted first; not interpreted here).
    pub pool: u32,
    /// The key whose rank is requested.
    pub key: K,
    /// Caller-side routing tag (e.g. candidate index).
    pub tag: u32,
    /// Output: number of stored keys strictly smaller than `key`.
    pub rank: u32,
}

/// State of one resumable rank walk (see [`OsTreap::walk_step`]).
///
/// Advancing a rank descent one level at a time lets a caller keep
/// several independent walks in flight at once; the descents are
/// memory-latency-bound, so interleaving their node loads overlaps
/// what would otherwise be serial dependency chains.
#[derive(Clone, Copy, Debug)]
pub struct WalkCursor {
    t: u32,
    acc: u32,
}

impl WalkCursor {
    /// Rank accumulated so far; final once [`OsTreap::walk_step`]
    /// returns `false`.
    #[inline]
    pub fn rank(&self) -> u32 {
        self.acc
    }
}

#[derive(Clone, Debug)]
/// 32 bytes for the common `K = (u64, u64)` — two nodes per cache line.
/// Priorities are the high 32 bits of an xorshift64* draw; a collision
/// only costs a deterministic tie-break in `merge`, never correctness,
/// and rank queries are independent of tree shape anyway.
///
/// The order-statistic augmentation is the *left subtree's* size, not
/// the node's own subtree size: a rank descent then needs exactly one
/// load per level (the node itself) instead of a second dependent load
/// of the left child's size — the walk is memory-latency-bound, so this
/// halves its critical path. Structural updates thread the current
/// subtree's total size down the recursion where they need it.
struct Node<K> {
    key: K,
    prio: u32,
    left: u32,
    right: u32,
    left_size: u32,
}

/// Order-statistic treap over unique keys.
///
/// # Example
///
/// ```
/// use cachesim::ostree::OsTreap;
/// let mut t = OsTreap::new(7);
/// t.insert((5, 0));
/// t.insert((1, 0));
/// t.insert((9, 0));
/// assert_eq!(t.rank(&(5, 0)), 1); // one key smaller than (5,0)
/// assert_eq!(*t.select(2).unwrap(), (9, 0));
/// assert!(t.remove(&(1, 0)));
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct OsTreap<K> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
    /// Number of live keys (subtree totals are not stored per node).
    count: u32,
}

impl<K: Ord + Clone> OsTreap<K> {
    /// Create an empty treap; `seed` drives the deterministic priority
    /// stream (any value works, including 0).
    pub fn new(seed: u64) -> Self {
        OsTreap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: seed | 1,
            count: 0,
        }
    }

    /// Number of keys currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the treap holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Unchecked arena access for the descent-heavy hot paths.
    ///
    /// SAFETY invariant: every non-NIL index stored in `root`, a node's
    /// `left`/`right`, or `free` was produced by `alloc`, so it is
    /// `< nodes.len()`; the arena never shrinks except in [`clear`],
    /// which resets `root` and `free` along with it. Debug builds keep
    /// the bounds check as an assertion.
    #[inline(always)]
    fn node(&self, t: u32) -> &Node<K> {
        debug_assert!((t as usize) < self.nodes.len());
        unsafe { self.nodes.get_unchecked(t as usize) }
    }

    /// See [`node`](Self::node) for the safety invariant.
    #[inline(always)]
    fn node_mut(&mut self, t: u32) -> &mut Node<K> {
        debug_assert!((t as usize) < self.nodes.len());
        unsafe { self.nodes.get_unchecked_mut(t as usize) }
    }

    #[inline]
    fn next_prio(&mut self) -> u32 {
        // xorshift64*, keeping the (well-mixed) high half.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u32
    }

    fn alloc(&mut self, key: K) -> u32 {
        let prio = self.next_prio();
        let node = Node {
            key,
            prio,
            left: NIL,
            right: NIL,
            left_size: 0,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Rotate the left child of `t` up; returns the new subtree root.
    /// `left_size` fields must be correct on entry (including the newly
    /// inserted node, when called from `insert_rec`).
    #[inline]
    fn rotate_right(&mut self, t: u32) -> u32 {
        let l = self.node(t).left;
        let lr = self.node(l).right;
        // New left subtree of `t` is `l`'s old right subtree, whose size
        // is `size(l) − 1 − left_size(l)` with `size(l) = left_size(t)`.
        let new_ls_t = self.node(t).left_size - 1 - self.node(l).left_size;
        let tn = self.node_mut(t);
        tn.left = lr;
        tn.left_size = new_ls_t;
        self.node_mut(l).right = t;
        l
    }

    /// Rotate the right child of `t` up; returns the new subtree root.
    #[inline]
    fn rotate_left(&mut self, t: u32) -> u32 {
        let r = self.node(t).right;
        let rl = self.node(r).left;
        self.node_mut(t).right = rl;
        // `t` becomes `r`'s left subtree: its size is `t`'s old left
        // subtree plus `t` itself plus `r`'s old left subtree.
        let new_ls_r = self.node(t).left_size + 1 + self.node(r).left_size;
        let rn = self.node_mut(r);
        rn.left = t;
        rn.left_size = new_ls_r;
        r
    }

    /// Merge two treaps where every key of `a` precedes every key of
    /// `b`; `size_a` is the total size of `a` (threaded down because
    /// nodes only store left-subtree sizes).
    fn merge(&mut self, a: u32, size_a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.node(a).prio > self.node(b).prio {
            let ar = self.node(a).right;
            let size_ar = size_a - 1 - self.node(a).left_size;
            let m = self.merge(ar, size_ar, b);
            self.node_mut(a).right = m;
            a
        } else {
            let bl = self.node(b).left;
            let m = self.merge(a, size_a, bl);
            let bn = self.node_mut(b);
            bn.left = m;
            bn.left_size += size_a;
            b
        }
    }

    /// Insert a key. Returns `false` (and leaves the treap unchanged) if
    /// the key is already present.
    ///
    /// Single descent with rotations on the way back up. The resulting
    /// shape is identical to a split/merge insert: a treap's shape is
    /// uniquely determined by its (key, priority) set, and the priority
    /// is drawn exactly when the key turns out to be absent.
    pub fn insert(&mut self, key: K) -> bool {
        let (root, inserted) = self.insert_rec(self.root, key);
        self.root = root;
        self.count += inserted as u32;
        inserted
    }

    fn insert_rec(&mut self, t: u32, key: K) -> (u32, bool) {
        if t == NIL {
            return (self.alloc(key), true);
        }
        match key.cmp(&self.node(t).key) {
            std::cmp::Ordering::Equal => (t, false),
            std::cmp::Ordering::Less => {
                let left = self.node(t).left;
                let (child, inserted) = self.insert_rec(left, key);
                self.node_mut(t).left = child;
                if !inserted {
                    return (t, false);
                }
                self.node_mut(t).left_size += 1;
                if self.node(child).prio > self.node(t).prio {
                    (self.rotate_right(t), true)
                } else {
                    (t, true)
                }
            }
            std::cmp::Ordering::Greater => {
                let right = self.node(t).right;
                let (child, inserted) = self.insert_rec(right, key);
                self.node_mut(t).right = child;
                if !inserted {
                    return (t, false);
                }
                if self.node(child).prio > self.node(t).prio {
                    (self.rotate_left(t), true)
                } else {
                    (t, true)
                }
            }
        }
    }

    /// Remove a key. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let root_size = self.count;
        let (root, removed) = self.remove_rec(self.root, root_size, key);
        self.root = root;
        self.count -= removed as u32;
        removed
    }

    fn remove_rec(&mut self, t: u32, size_t: u32, key: &K) -> (u32, bool) {
        if t == NIL {
            return (NIL, false);
        }
        match key.cmp(&self.node(t).key) {
            std::cmp::Ordering::Less => {
                let (left, ls) = {
                    let nd = self.node(t);
                    (nd.left, nd.left_size)
                };
                let (child, removed) = self.remove_rec(left, ls, key);
                let tn = self.node_mut(t);
                tn.left = child;
                tn.left_size -= removed as u32;
                (t, removed)
            }
            std::cmp::Ordering::Greater => {
                let (right, rs) = {
                    let nd = self.node(t);
                    (nd.right, size_t - 1 - nd.left_size)
                };
                let (child, removed) = self.remove_rec(right, rs, key);
                self.node_mut(t).right = child;
                (t, removed)
            }
            std::cmp::Ordering::Equal => {
                let (l, r, ls) = {
                    let nd = self.node(t);
                    (nd.left, nd.right, nd.left_size)
                };
                let m = self.merge(l, ls, r);
                self.free.push(t);
                (m, true)
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let mut t = self.root;
        while t != NIL {
            let nd = self.node(t);
            match key.cmp(&nd.key) {
                std::cmp::Ordering::Less => t = nd.left,
                std::cmp::Ordering::Greater => t = nd.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Number of stored keys strictly smaller than `key` (the key itself
    /// need not be present).
    pub fn rank(&self, key: &K) -> usize {
        self.rank_walk(self.root, 0, key) as usize
    }

    /// Shared descent loop for scalar rank lookups, starting at subtree
    /// `t` with `base` keys already known to be smaller.
    ///
    /// Written branch-free on the descent direction: the left-or-right
    /// choice of a balanced search tree is data-dependent and
    /// mispredicts roughly every other level, so both children are
    /// selected by conditional moves instead. The left child's size is
    /// loaded unconditionally — one extra predictable load beats a
    /// pipeline flush per level.
    #[inline]
    fn rank_walk(&self, mut t: u32, mut acc: u32, key: &K) -> u32 {
        while t != NIL {
            let nd = self.node(t);
            let smaller = nd.key < *key;
            acc += if smaller { 1 + nd.left_size } else { 0 };
            t = if smaller { nd.right } else { nd.left };
        }
        acc
    }

    /// Start a resumable rank walk from the root (see [`WalkCursor`]).
    #[inline]
    pub fn walk_start(&self) -> WalkCursor {
        WalkCursor {
            t: self.root,
            acc: 0,
        }
    }

    /// Advance a rank walk one level; returns `false` once the walk has
    /// fallen off the tree and [`WalkCursor::rank`] is final.
    ///
    /// Same branch-free descent step as [`rank`](Self::rank), exposed
    /// one level at a time so a caller can interleave several
    /// independent walks (possibly over different treaps): each level
    /// costs one dependent node load, so `W` interleaved walks keep `W`
    /// loads in flight instead of serializing full descents.
    #[inline]
    pub fn walk_step(&self, c: &mut WalkCursor, key: &K) -> bool {
        if c.t == NIL {
            return false;
        }
        let nd = self.node(c.t);
        let smaller = nd.key < *key;
        c.acc += if smaller { 1 + nd.left_size } else { 0 };
        c.t = if smaller { nd.right } else { nd.left };
        true
    }

    /// Batched [`rank`](Self::rank): answer every query in one shared
    /// descent instead of one root-to-leaf walk per key.
    ///
    /// Queries must be sorted by `key` within the slice (`pool`/`tag`
    /// are ignored here — sort the whole [`RankQuery`] and pass each
    /// pool's sub-slice). Each tree node is visited at most once per
    /// contiguous query range, so a batch of `R` nearby keys costs
    /// roughly one descent plus `O(R)` partitioning rather than `R`
    /// full descents.
    pub fn rank_many(&self, queries: &mut [RankQuery<K>]) {
        debug_assert!(queries.windows(2).all(|w| w[0].key <= w[1].key));
        if queries.is_empty() {
            return;
        }
        self.rank_range(self.root, 0, queries);
    }

    fn rank_range(&self, mut t: u32, mut base: u32, mut queries: &mut [RankQuery<K>]) {
        loop {
            if let [q] = queries {
                // Singleton: finish with the scalar walk — same tight
                // loop as `rank`, resumed from the shared prefix.
                q.rank = self.rank_walk(t, base, &q.key);
                return;
            }
            if t == NIL {
                for q in queries {
                    q.rank = base;
                }
                return;
            }
            let nd = self.node(t);
            let (left, right, left_size) = (nd.left, nd.right, nd.left_size);
            // Queries with key <= node key have rank determined entirely
            // by the left subtree (strictly-smaller count semantics: the
            // node itself is not smaller than an equal key).
            let split = queries.partition_point(|q| q.key <= nd.key);
            let (lo, hi) = queries.split_at_mut(split);
            if hi.is_empty() {
                t = left;
                queries = lo;
                continue;
            }
            if !lo.is_empty() {
                self.rank_range(left, base, lo);
            }
            t = right;
            base += 1 + left_size;
            queries = hi;
        }
    }

    /// The key with exactly `rank` smaller keys (0-based), or `None` if
    /// out of range.
    pub fn select(&self, rank: usize) -> Option<&K> {
        if rank >= self.len() {
            return None;
        }
        let mut t = self.root;
        let mut rank = rank as u32;
        loop {
            let nd = self.node(t);
            let ls = nd.left_size;
            if rank < ls {
                t = nd.left;
            } else if rank == ls {
                return Some(&nd.key);
            } else {
                rank -= ls + 1;
                t = nd.right;
            }
        }
    }

    /// Smallest key, if any.
    pub fn min(&self) -> Option<&K> {
        self.select(0)
    }

    /// Largest key, if any.
    pub fn max(&self) -> Option<&K> {
        self.len().checked_sub(1).and_then(|r| self.select(r))
    }

    /// Remove all keys.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.count = 0;
    }

    /// Serialize the full arena — nodes (including free-listed ones),
    /// free list, root, priority-stream state and live count — so a
    /// restored treap is structurally identical, byte for byte, to the
    /// saved one (same shape, same future priority draws). `write_key`
    /// encodes one key.
    pub fn save_state(
        &self,
        w: &mut crate::snapshot::SnapshotWriter,
        mut write_key: impl FnMut(&mut crate::snapshot::SnapshotWriter, &K),
    ) {
        w.u64(self.rng);
        w.u32(self.root);
        w.u32(self.count);
        w.usize(self.nodes.len());
        for nd in &self.nodes {
            write_key(w, &nd.key);
            w.u32(nd.prio);
            w.u32(nd.left);
            w.u32(nd.right);
            w.u32(nd.left_size);
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
    }

    /// Restore an arena saved by [`save_state`](Self::save_state),
    /// replacing the current contents. `read_key` decodes one key.
    ///
    /// # Errors
    /// [`SnapshotError`](crate::snapshot::SnapshotError) on truncation
    /// or on any index that would violate the arena invariant backing
    /// the unchecked hot-path accesses (every stored index is either
    /// `NIL` or `< nodes.len()`).
    pub fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader,
        mut read_key: impl FnMut(
            &mut crate::snapshot::SnapshotReader,
        ) -> Result<K, crate::snapshot::SnapshotError>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let rng = r.u64()?;
        let root = r.u32()?;
        let count = r.u32()?;
        let n = r.seq_len(16)?;
        let in_range = |idx: u32| idx == NIL || (idx as usize) < n;
        if !in_range(root) {
            return Err(SnapshotError::corrupt("treap root index out of range"));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let key = read_key(r)?;
            let prio = r.u32()?;
            let left = r.u32()?;
            let right = r.u32()?;
            let left_size = r.u32()?;
            if !in_range(left) || !in_range(right) {
                return Err(SnapshotError::corrupt("treap child index out of range"));
            }
            nodes.push(Node {
                key,
                prio,
                left,
                right,
                left_size,
            });
        }
        let free_len = r.seq_len(4)?;
        let mut free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            let f = r.u32()?;
            if f == NIL || (f as usize) >= n {
                return Err(SnapshotError::corrupt("treap free index out of range"));
            }
            free.push(f);
        }
        if count as usize + free.len() != n {
            return Err(SnapshotError::corrupt(
                "treap live count + free list does not cover the arena",
            ));
        }
        self.nodes = nodes;
        self.free = free;
        self.root = root;
        self.rng = rng;
        self.count = count;
        Ok(())
    }
}

impl<K: Ord + Clone> Default for OsTreap<K> {
    fn default() -> Self {
        OsTreap::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_rank_select_roundtrip() {
        let mut t = OsTreap::new(1);
        for k in [50u64, 20, 80, 10, 30, 70, 90] {
            assert!(t.insert((k, 0u64)));
        }
        assert_eq!(t.len(), 7);
        assert_eq!(t.rank(&(10, 0)), 0);
        assert_eq!(t.rank(&(50, 0)), 3);
        assert_eq!(t.rank(&(95, 0)), 7);
        assert_eq!(*t.select(0).unwrap(), (10, 0));
        assert_eq!(*t.select(6).unwrap(), (90, 0));
        assert!(t.select(7).is_none());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = OsTreap::new(2);
        assert!(t.insert((1, 1)));
        assert!(!t.insert((1, 1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t: OsTreap<(u64, u64)> = OsTreap::new(3);
        t.insert((5, 5));
        assert!(!t.remove(&(6, 6)));
        assert!(t.remove(&(5, 5)));
        assert!(t.is_empty());
    }

    #[test]
    fn min_max_track_extremes() {
        let mut t = OsTreap::new(4);
        assert!(t.min().is_none());
        for k in [(3u64, 0u64), (1, 0), (2, 0)] {
            t.insert(k);
        }
        assert_eq!(*t.min().unwrap(), (1, 0));
        assert_eq!(*t.max().unwrap(), (3, 0));
        t.remove(&(3, 0));
        assert_eq!(*t.max().unwrap(), (2, 0));
    }

    #[test]
    fn arena_reuses_freed_nodes() {
        let mut t = OsTreap::new(5);
        for i in 0..100u64 {
            t.insert((i, 0u64));
        }
        for i in 0..100u64 {
            t.remove(&(i, 0));
        }
        let cap = t.nodes.len();
        for i in 100..200u64 {
            t.insert((i, 0));
        }
        assert_eq!(t.nodes.len(), cap, "freed slots should be reused");
    }

    #[test]
    fn rank_many_matches_scalar_rank() {
        let mut t = OsTreap::new(9);
        let mut x = 0x9E37_79B9u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..300 {
            t.insert((rng() % 1000, rng() % 4));
        }
        // Query a mix of present and absent keys, including duplicates.
        let mut queries: Vec<RankQuery<(u64, u64)>> = (0..64)
            .map(|i| RankQuery {
                pool: 0,
                key: (rng() % 1100, rng() % 4),
                tag: i,
                rank: u32::MAX,
            })
            .collect();
        queries.sort_unstable();
        t.rank_many(&mut queries);
        for q in &queries {
            assert_eq!(
                q.rank as usize,
                t.rank(&q.key),
                "batched rank mismatch for {:?}",
                q.key
            );
        }
        // Empty treap: every rank is 0.
        let empty: OsTreap<(u64, u64)> = OsTreap::new(1);
        let mut qs = queries.clone();
        empty.rank_many(&mut qs);
        assert!(qs.iter().all(|q| q.rank == 0));
    }

    #[test]
    fn snapshot_round_trip_is_structurally_identical() {
        use crate::snapshot::{SnapshotReader, SnapshotWriter};
        let mut t = OsTreap::new(77);
        for i in 0..200u64 {
            t.insert((i * 31 % 97, i));
        }
        for i in 0..60u64 {
            t.remove(&(i * 31 % 97, i));
        }
        let mut w = SnapshotWriter::new();
        t.save_state(&mut w, |w, k| {
            w.u64(k.0);
            w.u64(k.1);
        });
        let bytes = w.finish();
        let mut back: OsTreap<(u64, u64)> = OsTreap::new(0);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        back.load_state(&mut r, |r| Ok((r.u64()?, r.u64()?)))
            .unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), t.len());
        for i in 0..back.len() {
            assert_eq!(back.select(i), t.select(i));
        }
        // Future behavior (priority stream, arena reuse) continues
        // identically: the same inserts give the same serialized bytes.
        t.insert((1000, 0));
        back.insert((1000, 0));
        let ser = |t: &OsTreap<(u64, u64)>| {
            let mut w = SnapshotWriter::new();
            t.save_state(&mut w, |w, k| {
                w.u64(k.0);
                w.u64(k.1);
            });
            w.finish()
        };
        assert_eq!(ser(&t), ser(&back));
    }

    /// Differential test against a sorted Vec reference model.
    #[test]
    fn matches_reference_model_under_random_ops() {
        let mut t = OsTreap::new(6);
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut x = 0x1234_5678u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5000 {
            let k = (rng() % 500, 0u64);
            match rng() % 3 {
                0 => {
                    let inserted = t.insert(k);
                    let model_has = model.binary_search(&k).is_ok();
                    assert_eq!(inserted, !model_has);
                    if inserted {
                        let pos = model.binary_search(&k).unwrap_err();
                        model.insert(pos, k);
                    }
                }
                1 => {
                    let removed = t.remove(&k);
                    match model.binary_search(&k) {
                        Ok(pos) => {
                            assert!(removed);
                            model.remove(pos);
                        }
                        Err(_) => assert!(!removed),
                    }
                }
                _ => {
                    let expect = match model.binary_search(&k) {
                        Ok(p) | Err(p) => p,
                    };
                    assert_eq!(t.rank(&k), expect);
                }
            }
            assert_eq!(t.len(), model.len());
        }
        for (i, k) in model.iter().enumerate() {
            assert_eq!(t.select(i), Some(k));
        }
    }
}
