//! The idealized "random candidates" array of Section IV: on each
//! eviction the R replacement candidates are independent and uniformly
//! distributed over the whole cache, so the analytical framework's
//! *uniformity assumption* holds by construction. The paper's Figures 4
//! and 5 are measured on a 2MB instance of this array with R = 16.

use super::{read_free_list, CacheArray, SlotTable};
use crate::ids::{Occupant, PartitionId, SlotId};
use crate::prng::Prng;
use crate::scheme_api::Candidate;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// A cache array whose candidate list is `R` slots sampled uniformly at
/// random (without replacement) from the whole array.
pub struct RandomCandidates {
    table: SlotTable,
    r: usize,
    rng: Prng,
    free: Vec<SlotId>,
}

impl RandomCandidates {
    /// Create an array of `num_lines` slots providing `r` candidates per
    /// eviction, with a deterministic sampling seed.
    ///
    /// # Panics
    /// Panics if `r == 0` or `r > num_lines`.
    pub fn new(num_lines: usize, r: usize, seed: u64) -> Self {
        assert!(r > 0 && r <= num_lines, "need 0 < R <= num_lines");
        RandomCandidates {
            table: SlotTable::new(num_lines),
            r,
            rng: Prng::seed_from_u64(seed),
            free: (0..num_lines as SlotId).rev().collect(),
        }
    }
}

impl CacheArray for RandomCandidates {
    fn name(&self) -> &'static str {
        "rand-cands"
    }

    fn num_slots(&self) -> usize {
        self.table.len()
    }

    fn candidates_per_eviction(&self) -> usize {
        self.r
    }

    fn lookup(&self, addr: u64) -> Option<SlotId> {
        self.table.lookup(addr)
    }

    fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        self.table.occupant(slot)
    }

    fn candidate_slots(&mut self, _addr: u64, out: &mut Vec<SlotId>) {
        // While the cache is filling, hand out a free slot directly.
        if let Some(&slot) = self.free.last() {
            out.push(slot);
            return;
        }
        // Full cache: R distinct uniform slots (rejection sampling; R is
        // tiny compared to the slot count, so retries are rare).
        let n = self.table.len() as u32;
        while out.len() < self.r {
            let s = self.rng.gen_range(0..n);
            if !out.contains(&s) {
                out.push(s);
            }
        }
    }

    fn fill_candidates(&mut self, addr: u64, out: &mut Vec<Candidate>) -> Option<SlotId> {
        let _ = addr;
        // Warmup: a free slot is handed out directly, no occupants read.
        if let Some(&slot) = self.free.last() {
            return Some(slot);
        }
        // Full cache: identical rejection sampling to `candidate_slots`
        // (same RNG draw sequence, same dedup-by-slot semantics), with
        // the occupant fetched in the same pass.
        let n = self.table.len() as u32;
        while out.len() < self.r {
            let s = self.rng.gen_range(0..n);
            if !out.iter().any(|c| c.slot == s) {
                let occ = self.table.occupant(s).expect("full cache has no empties");
                out.push(Candidate {
                    slot: s,
                    addr: occ.addr,
                    part: occ.part,
                    futility: 0.0,
                });
            }
        }
        None
    }

    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        self.table.lookup_occupant(addr)
    }

    fn evict(&mut self, slot: SlotId) {
        self.table.evict(slot);
        self.free.push(slot);
    }

    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        if let Some(pos) = self.free.iter().rposition(|&s| s == slot) {
            self.free.swap_remove(pos);
        }
        self.table.install(slot, addr, part);
    }

    fn retag(&mut self, slot: SlotId, part: PartitionId) {
        self.table.retag(slot, part);
    }

    fn occupied(&self) -> usize {
        self.table.occupied()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("rand-cands");
        w.usize(self.r);
        for s in self.rng.state() {
            w.u64(s);
        }
        self.table.save_state(w);
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("rand-cands")?;
        let cands = r.usize()?;
        if cands != self.r {
            return Err(SnapshotError::mismatch(format!(
                "array provides {} candidates, snapshot has {cands}",
                self.r
            )));
        }
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        self.table.load_state(r)?;
        let free = read_free_list(r, &self.table)?;
        r.end()?;
        self.rng = Prng::from_state(state);
        self.free = free;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_free_slots_before_sampling() {
        let mut a = RandomCandidates::new(4, 2, 1);
        let mut out = Vec::new();
        a.candidate_slots(0, &mut out);
        assert_eq!(out.len(), 1, "warmup returns a single free slot");
        let s = out[0];
        a.install(s, 10, PartitionId(0));
        assert_eq!(a.occupied(), 1);
    }

    #[test]
    fn full_cache_returns_r_distinct_occupied() {
        let mut a = RandomCandidates::new(8, 4, 2);
        for addr in 0..8u64 {
            let mut out = Vec::new();
            a.candidate_slots(addr, &mut out);
            a.install(out[0], addr, PartitionId(0));
        }
        let mut out = Vec::new();
        a.candidate_slots(99, &mut out);
        assert_eq!(out.len(), 4);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "candidates must be distinct");
        assert!(out.iter().all(|&s| a.occupant(s).is_some()));
    }

    #[test]
    fn candidates_cover_the_cache_uniformly() {
        // Statistical check of the uniformity assumption: every slot
        // should appear as a candidate with roughly equal frequency.
        let n = 64;
        let mut a = RandomCandidates::new(n, 8, 3);
        for addr in 0..n as u64 {
            let mut out = Vec::new();
            a.candidate_slots(addr, &mut out);
            a.install(out[0], addr, PartitionId(0));
        }
        let mut counts = vec![0u32; n];
        let trials = 4000;
        for _ in 0..trials {
            let mut out = Vec::new();
            a.candidate_slots(0, &mut out);
            for s in out {
                counts[s as usize] += 1;
            }
        }
        let expected = (trials * 8 / n) as f64; // 500
        for &c in &counts {
            assert!(
                (c as f64) > expected * 0.7 && (c as f64) < expected * 1.3,
                "slot frequency {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn evict_returns_slot_to_free_pool() {
        let mut a = RandomCandidates::new(2, 1, 4);
        a.install(0, 5, PartitionId(0));
        a.install(1, 6, PartitionId(0));
        a.evict(0);
        let mut out = Vec::new();
        a.candidate_slots(7, &mut out);
        assert_eq!(out, vec![0], "freed slot is offered first");
    }
}
