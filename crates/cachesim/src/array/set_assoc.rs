//! Conventional set-associative cache array with pluggable indexing.

use super::{CacheArray, SlotTable};
use crate::hashing::IndexHash;
use crate::ids::{Occupant, PartitionId, SlotId};
use crate::scheme_api::Candidate;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// A `sets × ways` set-associative array. Slot `set * ways + way`.
///
/// With `ways = 1` this is a direct-mapped cache (one replacement
/// candidate, the paper's worst-case baseline in Figure 6).
pub struct SetAssociative {
    table: SlotTable,
    sets: usize,
    ways: usize,
    hash: Box<dyn IndexHash>,
}

impl SetAssociative {
    /// Create an array with `sets` sets of `ways` ways, indexed by
    /// `hash(addr) % sets`.
    ///
    /// # Panics
    /// Panics if `sets == 0` or `ways == 0`.
    pub fn new<H: IndexHash + 'static>(sets: usize, ways: usize, hash: H) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be nonzero");
        SetAssociative {
            table: SlotTable::new(sets * ways),
            sets,
            ways,
            hash: Box::new(hash),
        }
    }

    /// Build an array of `total_lines` lines with the given way count
    /// (helper for "a 512KB 16-way cache" style configuration).
    ///
    /// # Panics
    /// Panics if `total_lines` is not a multiple of `ways`.
    pub fn with_lines<H: IndexHash + 'static>(total_lines: usize, ways: usize, hash: H) -> Self {
        assert_eq!(
            total_lines % ways,
            0,
            "total_lines {total_lines} not a multiple of ways {ways}"
        );
        SetAssociative::new(total_lines / ways, ways, hash)
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        (self.hash.hash(addr) % self.sets as u64) as usize
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

impl CacheArray for SetAssociative {
    fn name(&self) -> &'static str {
        "set-assoc"
    }

    fn num_slots(&self) -> usize {
        self.table.len()
    }

    fn candidates_per_eviction(&self) -> usize {
        self.ways
    }

    fn lookup(&self, addr: u64) -> Option<SlotId> {
        // The map-based lookup is O(1); verify residency in debug builds.
        let slot = self.table.lookup(addr)?;
        debug_assert_eq!(slot as usize / self.ways, self.set_of(addr));
        Some(slot)
    }

    fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        self.table.occupant(slot)
    }

    fn candidate_slots(&mut self, addr: u64, out: &mut Vec<SlotId>) {
        let set = self.set_of(addr);
        let base = (set * self.ways) as SlotId;
        out.extend(base..base + self.ways as SlotId);
    }

    fn fill_candidates(&mut self, addr: u64, out: &mut Vec<Candidate>) -> Option<SlotId> {
        let set = self.set_of(addr);
        let base = (set * self.ways) as SlotId;
        for slot in base..base + self.ways as SlotId {
            match self.table.occupant(slot) {
                Some(occ) => out.push(Candidate {
                    slot,
                    addr: occ.addr,
                    part: occ.part,
                    futility: 0.0,
                }),
                None => return Some(slot),
            }
        }
        None
    }

    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        self.table.lookup_occupant(addr)
    }

    // `prefetch_lookup` deliberately keeps the no-op default. The
    // probed set is a pure function of the address, so prefetching the
    // set's slot range ahead of the dependent occupant read is
    // possible — but measured *slower* than not prefetching: computing
    // the hint address repeats the index hash (a virtual `IndexHash`
    // call plus a `% sets` division) per hint, which costs more than
    // the latency it hides, because the out-of-order core already
    // overlaps the independent lookups of neighbouring accesses.

    fn evict(&mut self, slot: SlotId) {
        self.table.evict(slot);
    }

    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        debug_assert_eq!(slot as usize / self.ways, self.set_of(addr));
        self.table.install(slot, addr, part);
    }

    fn retag(&mut self, slot: SlotId, part: PartitionId) {
        self.table.retag(slot, part);
    }

    fn occupied(&self) -> usize {
        self.table.occupied()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("set-assoc");
        w.usize(self.sets);
        w.usize(self.ways);
        self.table.save_state(w);
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("set-assoc")?;
        let (sets, ways) = (r.usize()?, r.usize()?);
        if sets != self.sets || ways != self.ways {
            return Err(SnapshotError::mismatch(format!(
                "array is {}x{} (sets x ways), snapshot is {sets}x{ways}",
                self.sets, self.ways
            )));
        }
        self.table.load_state(r)?;
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::{LineHash, ModuloIndex};

    #[test]
    fn candidates_are_the_whole_set() {
        let mut a = SetAssociative::new(4, 2, ModuloIndex);
        let mut out = Vec::new();
        a.candidate_slots(5, &mut out); // set 1 with modulo indexing
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn install_then_lookup_then_evict() {
        let mut a = SetAssociative::new(4, 2, ModuloIndex);
        let mut out = Vec::new();
        a.candidate_slots(9, &mut out); // set 1
        let slot = out[0];
        a.install(slot, 9, PartitionId(0));
        assert_eq!(a.lookup(9), Some(slot));
        assert_eq!(a.occupied(), 1);
        a.evict(slot);
        assert_eq!(a.lookup(9), None);
    }

    #[test]
    fn direct_mapped_has_one_candidate() {
        let mut a = SetAssociative::with_lines(64, 1, LineHash::new(3));
        assert_eq!(a.candidates_per_eviction(), 1);
        let mut out = Vec::new();
        a.candidate_slots(1234, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn with_lines_builds_right_geometry() {
        let a = SetAssociative::with_lines(8192, 16, LineHash::new(0));
        assert_eq!(a.sets(), 512);
        assert_eq!(a.ways(), 16);
        assert_eq!(a.num_slots(), 8192);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn with_lines_rejects_bad_geometry() {
        let _ = SetAssociative::with_lines(100, 16, LineHash::new(0));
    }
}
