//! Cache arrays: the component that "implements associative lookups and
//! provides a list of replacement candidates on each eviction"
//! (Section III-A).
//!
//! Implementations:
//! * [`SetAssociative`] — conventional W-way set-associative array with
//!   pluggable index hashing (R = W); covers the paper's 16-way hashed
//!   L2 and, with `ways = 1`, the direct-mapped caches of Figure 6.
//! * [`RandomCandidates`] — the idealized array of Section IV whose R
//!   candidates are drawn independently and uniformly from the whole
//!   cache (the *uniformity assumption* holds by construction).
//! * [`FullyAssociative`] — every line is a candidate; used for the
//!   FullAssoc upper bound and Figure 6.
//! * [`SkewAssociative`] — W ways with independent hash functions.
//! * [`ZCache`] — zcache-style array: W ways, candidate expansion by
//!   walking rehash positions, relocation on install (gives R > W).

mod fully_assoc;
mod random_cands;
mod set_assoc;
mod skew;
mod zcache;

pub use fully_assoc::FullyAssociative;
pub use random_cands::RandomCandidates;
pub use set_assoc::SetAssociative;
pub use skew::SkewAssociative;
pub use zcache::ZCache;

use crate::ids::{Occupant, PartitionId, SlotId};
use crate::scheme_api::Candidate;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// A physical cache array. All addresses are line addresses.
///
/// The engine drives arrays as follows: on a miss it calls
/// [`candidate_slots`](CacheArray::candidate_slots); if a returned slot
/// is empty the incoming line is installed there, otherwise the scheme
/// picks a victim among the occupied candidates, the engine calls
/// [`evict`](CacheArray::evict) on the victim slot and then
/// [`install`](CacheArray::install) with that slot. Arrays that relocate
/// lines internally (zcache) may move other lines during `install`, but
/// must keep `lookup` consistent.
pub trait CacheArray: Send {
    /// Short identifier, e.g. `"set-assoc"`, `"rand-cands"`.
    fn name(&self) -> &'static str;

    /// Total number of line slots.
    fn num_slots(&self) -> usize;

    /// Nominal number of replacement candidates per eviction (`R`).
    fn candidates_per_eviction(&self) -> usize;

    /// Find the slot currently holding `addr`, if cached.
    fn lookup(&self, addr: u64) -> Option<SlotId>;

    /// Occupant of a slot, or `None` if the slot is empty.
    fn occupant(&self, slot: SlotId) -> Option<Occupant>;

    /// Append the replacement-candidate slots for inserting `addr` into
    /// `out` (cleared by the caller). May include empty slots; must
    /// return at least one slot unless the array reports itself as
    /// fully associative.
    fn candidate_slots(&mut self, addr: u64, out: &mut Vec<SlotId>);

    /// Single-pass miss-path candidate walk: either the first *empty*
    /// candidate slot in candidate order (`Some(slot)` — the incoming
    /// line installs there, `out` may hold a partial prefix), or `None`
    /// with one [`Candidate`] per occupied candidate slot appended to
    /// `out` (futility left 0.0 for the ranking to fill). Must offer
    /// exactly the slots [`candidate_slots`](Self::candidate_slots)
    /// would, in the same order — including any internal RNG draws — so
    /// replacement decisions are identical on both paths.
    ///
    /// The default delegates to `candidate_slots` plus per-slot
    /// [`occupant`](Self::occupant) calls and allocates a temporary
    /// slot list; concrete arrays override it with a fused walk that
    /// touches each slot once and never allocates.
    fn fill_candidates(&mut self, addr: u64, out: &mut Vec<Candidate>) -> Option<SlotId> {
        let mut slots = Vec::with_capacity(self.candidates_per_eviction());
        self.candidate_slots(addr, &mut slots);
        for slot in slots {
            match self.occupant(slot) {
                Some(occ) => out.push(Candidate {
                    slot,
                    addr: occ.addr,
                    part: occ.part,
                    futility: 0.0,
                }),
                None => return Some(slot),
            }
        }
        None
    }

    /// Fused [`lookup`](Self::lookup) + [`occupant`](Self::occupant):
    /// the hit path needs both, and resolving them in one virtual call
    /// halves its dispatch cost.
    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        let slot = self.lookup(addr)?;
        let occ = self.occupant(slot)?;
        Some((slot, occ))
    }

    /// Hint that [`lookup_occupant`](Self::lookup_occupant) for `addr`
    /// is coming soon: prefetch index memory the probe will touch.
    /// Purely a performance hint — implementations must not change
    /// observable state — used by the engine's batched pipeline to
    /// overlap the hit path's dependent loads across a block of
    /// accesses. The default does nothing; an array overriding it must
    /// also override [`wants_lookup_prefetch`](Self::wants_lookup_prefetch)
    /// to return `true`, or the engine never calls it.
    fn prefetch_lookup(&self, _addr: u64) {}

    /// Whether [`prefetch_lookup`](Self::prefetch_lookup) does anything
    /// useful for this array. The engine's batched pipeline checks this
    /// once per batch and skips the hint cursor entirely when `false` —
    /// measured on the hit-heavy grid cells, even a no-op hint loop
    /// costs ~35% throughput, so the hints must be opt-in. Must be
    /// constant for the lifetime of the array.
    fn wants_lookup_prefetch(&self) -> bool {
        false
    }

    /// Remove the occupant of `slot`.
    ///
    /// # Panics
    /// May panic if the slot is empty.
    fn evict(&mut self, slot: SlotId);

    /// Install `addr` (tagged with `part`) using `slot`, which must be
    /// empty. Relocating arrays may instead place `addr` elsewhere and
    /// shuffle resident lines into `slot`.
    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId);

    /// Change the partition tag of the line in `slot`.
    ///
    /// # Panics
    /// May panic if the slot is empty.
    fn retag(&mut self, slot: SlotId, part: PartitionId);

    /// Whether this array is fully associative (no candidate list; the
    /// engine asks the ranking for victims instead).
    fn is_fully_associative(&self) -> bool {
        false
    }

    /// Number of occupied slots.
    fn occupied(&self) -> usize;

    /// Serialize the array's dynamic state (occupancy, free-slot order,
    /// internal RNG) for checkpointing. Geometry and hash configuration
    /// are *not* serialized: restore targets an identically-constructed
    /// array (DESIGN.md §11).
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restore state saved by [`save_state`](Self::save_state) into an
    /// identically-configured array.
    ///
    /// # Errors
    /// [`SnapshotError`] on decode failure or a geometry mismatch.
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError>;
}

/// Boxed arrays forward every method (including overridden defaults),
/// so a generic [`EngineCore`](crate::engine::EngineCore) instantiated
/// with `Box<dyn CacheArray>` behaves exactly like one instantiated
/// with the concrete array.
impl<T: CacheArray + ?Sized> CacheArray for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn num_slots(&self) -> usize {
        (**self).num_slots()
    }
    fn candidates_per_eviction(&self) -> usize {
        (**self).candidates_per_eviction()
    }
    fn lookup(&self, addr: u64) -> Option<SlotId> {
        (**self).lookup(addr)
    }
    fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        (**self).occupant(slot)
    }
    fn candidate_slots(&mut self, addr: u64, out: &mut Vec<SlotId>) {
        (**self).candidate_slots(addr, out)
    }
    fn fill_candidates(&mut self, addr: u64, out: &mut Vec<Candidate>) -> Option<SlotId> {
        (**self).fill_candidates(addr, out)
    }
    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        (**self).lookup_occupant(addr)
    }
    fn prefetch_lookup(&self, addr: u64) {
        (**self).prefetch_lookup(addr)
    }
    fn wants_lookup_prefetch(&self) -> bool {
        (**self).wants_lookup_prefetch()
    }
    fn evict(&mut self, slot: SlotId) {
        (**self).evict(slot)
    }
    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        (**self).install(slot, addr, part)
    }
    fn retag(&mut self, slot: SlotId, part: PartitionId) {
        (**self).retag(slot, part)
    }
    fn is_fully_associative(&self) -> bool {
        (**self).is_fully_associative()
    }
    fn occupied(&self) -> usize {
        (**self).occupied()
    }
    fn save_state(&self, w: &mut SnapshotWriter) {
        (**self).save_state(w)
    }
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        (**self).load_state(r)
    }
}

/// Shared slot-table helper used by the concrete arrays. The residency
/// index is an [`FxHashMap`](crate::fxmap::FxHashMap) pre-sized for the
/// slot count, so the warm hot path never grows it. (A hand-rolled
/// open-addressing table was measured ~3x slower on the miss path's
/// remove/insert churn — see the `fxmap` module docs.)
#[derive(Clone, Debug)]
pub(crate) struct SlotTable {
    slots: Vec<Option<Occupant>>,
    map: crate::fxmap::FxHashMap<u64, SlotId>,
    occupied: usize,
}

impl SlotTable {
    pub(crate) fn new(n: usize) -> Self {
        let mut map = crate::fxmap::FxHashMap::default();
        map.reserve(n);
        SlotTable {
            slots: vec![None; n],
            map,
            occupied: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub(crate) fn occupied(&self) -> usize {
        self.occupied
    }

    #[inline]
    pub(crate) fn lookup(&self, addr: u64) -> Option<SlotId> {
        self.map.get(&addr).copied()
    }

    #[inline]
    pub(crate) fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        self.slots[slot as usize]
    }

    #[inline]
    pub(crate) fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        let slot = *self.map.get(&addr)?;
        self.slots[slot as usize].map(|occ| (slot, occ))
    }

    pub(crate) fn evict(&mut self, slot: SlotId) {
        let occ = self.slots[slot as usize]
            .take()
            .expect("evict from empty slot");
        self.map.remove(&occ.addr);
        self.occupied -= 1;
    }

    pub(crate) fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        assert!(
            self.slots[slot as usize].is_none(),
            "install into occupied slot {slot}"
        );
        self.slots[slot as usize] = Some(Occupant { addr, part });
        self.map.insert(addr, slot);
        self.occupied += 1;
    }

    pub(crate) fn retag(&mut self, slot: SlotId, part: PartitionId) {
        let occ = self.slots[slot as usize]
            .as_mut()
            .expect("retag empty slot");
        occ.part = part;
    }

    /// Serialize the slot contents. The residency map and occupancy
    /// counter are derived state and are rebuilt on load.
    pub(crate) fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("slots");
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some(occ) => {
                    w.u8(1);
                    w.u64(occ.addr);
                    w.u16(occ.part.0);
                }
                None => w.u8(0),
            }
        }
        w.end();
    }

    /// Restore slot contents saved by [`save_state`](Self::save_state)
    /// into a table of the same size, rebuilding the residency map.
    pub(crate) fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("slots")?;
        let n = r.seq_len(1)?;
        if n != self.slots.len() {
            return Err(SnapshotError::mismatch(format!(
                "slot table holds {} slots, snapshot has {n}",
                self.slots.len()
            )));
        }
        let mut slots: Vec<Option<Occupant>> = Vec::with_capacity(n);
        let mut map = crate::fxmap::FxHashMap::default();
        map.reserve(n);
        let mut occupied = 0usize;
        for slot in 0..n {
            match r.u8()? {
                0 => slots.push(None),
                1 => {
                    let addr = r.u64()?;
                    let part = PartitionId(r.u16()?);
                    if map.insert(addr, slot as SlotId).is_some() {
                        return Err(SnapshotError::corrupt(format!(
                            "duplicate address {addr:#x} in slot table"
                        )));
                    }
                    slots.push(Some(Occupant { addr, part }));
                    occupied += 1;
                }
                tag => {
                    return Err(SnapshotError::corrupt(format!(
                        "invalid slot occupancy tag {tag}"
                    )))
                }
            }
        }
        r.end()?;
        self.slots = slots;
        self.map = map;
        self.occupied = occupied;
        Ok(())
    }

    /// Move the occupant of `from` into the empty slot `to`.
    pub(crate) fn relocate(&mut self, from: SlotId, to: SlotId) {
        assert!(self.slots[to as usize].is_none(), "relocate into occupied");
        let occ = self.slots[from as usize]
            .take()
            .expect("relocate from empty");
        self.map.insert(occ.addr, to);
        self.slots[to as usize] = Some(occ);
    }
}

/// Decode a free-slot list (u64 length + u32 entries) written next to a
/// [`SlotTable`], validating it against the freshly-restored table:
/// every entry must reference an empty in-range slot, appear once, and
/// together with the occupied slots cover the whole array.
pub(crate) fn read_free_list(
    r: &mut SnapshotReader,
    table: &SlotTable,
) -> Result<Vec<SlotId>, SnapshotError> {
    let len = r.seq_len(4)?;
    if len + table.occupied() != table.len() {
        return Err(SnapshotError::corrupt(format!(
            "free list ({len}) + occupied ({}) does not cover {} slots",
            table.occupied(),
            table.len()
        )));
    }
    let mut free = Vec::with_capacity(len);
    let mut seen = vec![false; table.len()];
    for _ in 0..len {
        let slot = r.u32()?;
        let idx = slot as usize;
        if idx >= table.len() {
            return Err(SnapshotError::corrupt(format!(
                "free-list slot {slot} out of range"
            )));
        }
        if table.occupant(slot).is_some() {
            return Err(SnapshotError::corrupt(format!(
                "free-list slot {slot} is occupied"
            )));
        }
        if seen[idx] {
            return Err(SnapshotError::corrupt(format!(
                "free-list slot {slot} listed twice"
            )));
        }
        seen[idx] = true;
        free.push(slot);
    }
    Ok(free)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_table_install_lookup_evict() {
        let mut t = SlotTable::new(4);
        t.install(2, 99, PartitionId(1));
        assert_eq!(t.lookup(99), Some(2));
        assert_eq!(t.occupant(2).unwrap().part, PartitionId(1));
        assert_eq!(t.occupied(), 1);
        t.retag(2, PartitionId(3));
        assert_eq!(t.occupant(2).unwrap().part, PartitionId(3));
        t.evict(2);
        assert_eq!(t.lookup(99), None);
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn slot_table_relocate_moves_mapping() {
        let mut t = SlotTable::new(4);
        t.install(0, 7, PartitionId(0));
        t.relocate(0, 3);
        assert_eq!(t.lookup(7), Some(3));
        assert!(t.occupant(0).is_none());
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    #[should_panic(expected = "install into occupied")]
    fn double_install_panics() {
        let mut t = SlotTable::new(2);
        t.install(0, 1, PartitionId(0));
        t.install(0, 2, PartitionId(0));
    }
}
