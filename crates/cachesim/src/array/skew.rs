//! Skew-associative array: W ways, each indexed by an independent hash
//! function, so the candidate set of an address is spread across the
//! cache instead of being confined to one set. Referenced by the paper
//! as a "cache with good hash indexing" for which the uniformity
//! assumption is statistically close.

use super::{CacheArray, SlotTable};
use crate::hashing::{IndexHash, LineHash};
use crate::ids::{Occupant, PartitionId, SlotId};
use crate::scheme_api::Candidate;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// A W-way skew-associative array of `sets * ways` lines; way `w` of
/// address `a` lives at slot `w * sets + h_w(a) % sets`.
pub struct SkewAssociative {
    table: SlotTable,
    sets: usize,
    hashes: Vec<Box<dyn IndexHash>>,
}

impl SkewAssociative {
    /// Create an array with `sets` rows per way and `ways` ways; hash
    /// functions are derived deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `sets == 0` or `ways == 0`.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        assert!(sets > 0 && ways > 0);
        let hashes: Vec<Box<dyn IndexHash>> = (0..ways)
            .map(|w| Box::new(LineHash::new(seed ^ (w as u64 + 1).wrapping_mul(0xD1B5))) as _)
            .collect();
        SkewAssociative {
            table: SlotTable::new(sets * ways),
            sets,
            hashes,
        }
    }

    #[inline]
    fn way_slot(&self, way: usize, addr: u64) -> SlotId {
        (way * self.sets + (self.hashes[way].hash(addr) % self.sets as u64) as usize) as SlotId
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.hashes.len()
    }
}

impl CacheArray for SkewAssociative {
    fn name(&self) -> &'static str {
        "skew-assoc"
    }

    fn num_slots(&self) -> usize {
        self.table.len()
    }

    fn candidates_per_eviction(&self) -> usize {
        self.hashes.len()
    }

    fn lookup(&self, addr: u64) -> Option<SlotId> {
        self.table.lookup(addr)
    }

    fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        self.table.occupant(slot)
    }

    fn candidate_slots(&mut self, addr: u64, out: &mut Vec<SlotId>) {
        for w in 0..self.hashes.len() {
            out.push(self.way_slot(w, addr));
        }
    }

    fn fill_candidates(&mut self, addr: u64, out: &mut Vec<Candidate>) -> Option<SlotId> {
        for w in 0..self.hashes.len() {
            let slot = self.way_slot(w, addr);
            match self.table.occupant(slot) {
                Some(occ) => out.push(Candidate {
                    slot,
                    addr: occ.addr,
                    part: occ.part,
                    futility: 0.0,
                }),
                None => return Some(slot),
            }
        }
        None
    }

    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        self.table.lookup_occupant(addr)
    }

    fn evict(&mut self, slot: SlotId) {
        self.table.evict(slot);
    }

    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        debug_assert!(
            (0..self.hashes.len()).any(|w| self.way_slot(w, addr) == slot),
            "slot {slot} is not a home position of {addr:#x}"
        );
        self.table.install(slot, addr, part);
    }

    fn retag(&mut self, slot: SlotId, part: PartitionId) {
        self.table.retag(slot, part);
    }

    fn occupied(&self) -> usize {
        self.table.occupied()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("skew-assoc");
        w.usize(self.sets);
        w.usize(self.hashes.len());
        self.table.save_state(w);
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("skew-assoc")?;
        let (sets, ways) = (r.usize()?, r.usize()?);
        if sets != self.sets || ways != self.hashes.len() {
            return Err(SnapshotError::mismatch(format!(
                "array is {}x{} (sets x ways), snapshot is {sets}x{ways}",
                self.sets,
                self.hashes.len()
            )));
        }
        self.table.load_state(r)?;
        r.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_span_ways() {
        let mut a = SkewAssociative::new(16, 4, 7);
        let mut out = Vec::new();
        a.candidate_slots(123, &mut out);
        assert_eq!(out.len(), 4);
        for (w, &s) in out.iter().enumerate() {
            let way = s as usize / 16;
            assert_eq!(way, w, "candidate {s} should live in way {w}");
        }
    }

    #[test]
    fn install_and_lookup_roundtrip() {
        let mut a = SkewAssociative::new(8, 2, 9);
        let mut out = Vec::new();
        a.candidate_slots(55, &mut out);
        a.install(out[1], 55, PartitionId(2));
        assert_eq!(a.lookup(55), Some(out[1]));
        assert_eq!(a.occupant(out[1]).unwrap().part, PartitionId(2));
    }

    #[test]
    fn different_addresses_rarely_fully_collide() {
        let mut a = SkewAssociative::new(64, 4, 11);
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        a.candidate_slots(1, &mut c1);
        a.candidate_slots(2, &mut c2);
        assert_ne!(c1, c2, "independent hashes should separate addresses");
    }
}
