//! A zcache-style array (Sanchez & Kozyrakis, MICRO 2010): W ways with
//! independent hash functions, but the candidate list is *expanded*
//! beyond W by walking the rehash positions of the current candidates,
//! yielding R > W replacement candidates at the cost of relocating a
//! short chain of lines on each eviction. The FS paper cites zcache both
//! as the origin of the generalized associativity framework (candidates
//! per eviction, associativity distributions) and as an array for which
//! the uniformity assumption holds well.

use super::{CacheArray, SlotTable};
use crate::hashing::{IndexHash, LineHash};
use crate::ids::{Occupant, PartitionId, SlotId};
use crate::scheme_api::Candidate;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Per-candidate expansion record: how the walk reached this slot.
#[derive(Copy, Clone, Debug)]
struct WalkNode {
    slot: SlotId,
    /// Index (into the walk) of the candidate whose occupant can move
    /// into `slot`; `usize::MAX` for the level-0 home positions.
    parent: usize,
}

/// A zcache `Z(ways, R)`: candidate walks stop once `R` candidates have
/// been gathered (or the frontier is exhausted).
pub struct ZCache {
    table: SlotTable,
    sets: usize,
    r: usize,
    hashes: Vec<Box<dyn IndexHash>>,
    walk: Vec<WalkNode>,
}

impl ZCache {
    /// Create a zcache with `sets` rows per way, `ways` ways and `r`
    /// candidates per eviction.
    ///
    /// # Panics
    /// Panics if `sets == 0`, `ways < 2` or `r < ways`.
    pub fn new(sets: usize, ways: usize, r: usize, seed: u64) -> Self {
        assert!(sets > 0 && ways >= 2 && r >= ways);
        let hashes: Vec<Box<dyn IndexHash>> = (0..ways)
            .map(|w| Box::new(LineHash::new(seed ^ (w as u64 + 1).wrapping_mul(0xA2C9))) as _)
            .collect();
        ZCache {
            table: SlotTable::new(sets * ways),
            sets,
            r,
            hashes,
            walk: Vec::new(),
        }
    }

    #[inline]
    fn way_slot(&self, way: usize, addr: u64) -> SlotId {
        (way * self.sets + (self.hashes[way].hash(addr) % self.sets as u64) as usize) as SlotId
    }

    #[inline]
    fn way_of(&self, slot: SlotId) -> usize {
        slot as usize / self.sets
    }

    /// BFS over rehash positions into `self.walk`. Level 0: home
    /// positions of `addr`; deeper levels: rehash positions of the
    /// occupants found along the way. `install` replays the recorded
    /// walk to relocate the chain, so both candidate entry points must
    /// build it identically.
    fn build_walk(&mut self, addr: u64) {
        self.walk.clear();
        for w in 0..self.hashes.len() {
            let slot = self.way_slot(w, addr);
            if !self.walk.iter().any(|n| n.slot == slot) {
                self.walk.push(WalkNode {
                    slot,
                    parent: usize::MAX,
                });
            }
        }
        let mut frontier = 0usize;
        while self.walk.len() < self.r && frontier < self.walk.len() {
            let node = self.walk[frontier];
            if let Some(occ) = self.table.occupant(node.slot) {
                let home_way = self.way_of(node.slot);
                for w in 0..self.hashes.len() {
                    if w == home_way {
                        continue;
                    }
                    let slot = self.way_slot(w, occ.addr);
                    if !self.walk.iter().any(|n| n.slot == slot) {
                        self.walk.push(WalkNode {
                            slot,
                            parent: frontier,
                        });
                        if self.walk.len() >= self.r {
                            break;
                        }
                    }
                }
            }
            frontier += 1;
        }
    }
}

impl CacheArray for ZCache {
    fn name(&self) -> &'static str {
        "zcache"
    }

    fn num_slots(&self) -> usize {
        self.table.len()
    }

    fn candidates_per_eviction(&self) -> usize {
        self.r
    }

    fn lookup(&self, addr: u64) -> Option<SlotId> {
        self.table.lookup(addr)
    }

    fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        self.table.occupant(slot)
    }

    fn candidate_slots(&mut self, addr: u64, out: &mut Vec<SlotId>) {
        self.build_walk(addr);
        out.extend(self.walk.iter().map(|n| n.slot));
    }

    fn fill_candidates(&mut self, addr: u64, out: &mut Vec<Candidate>) -> Option<SlotId> {
        // The full walk must be recorded even when an empty slot cuts
        // the scan short: `install` relocates along it.
        self.build_walk(addr);
        for i in 0..self.walk.len() {
            let slot = self.walk[i].slot;
            match self.table.occupant(slot) {
                Some(occ) => out.push(Candidate {
                    slot,
                    addr: occ.addr,
                    part: occ.part,
                    futility: 0.0,
                }),
                None => return Some(slot),
            }
        }
        None
    }

    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        self.table.lookup_occupant(addr)
    }

    fn evict(&mut self, slot: SlotId) {
        self.table.evict(slot);
    }

    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        // Find the victim in the recorded walk and relocate the chain:
        // parent occupants slide down into their child slots; the
        // incoming line lands in the freed level-0 slot.
        let mut idx = self
            .walk
            .iter()
            .position(|n| n.slot == slot)
            .unwrap_or(usize::MAX);
        let mut hole = slot;
        while idx != usize::MAX {
            let node = self.walk[idx];
            if node.parent == usize::MAX {
                break;
            }
            let parent = self.walk[node.parent];
            self.table.relocate(parent.slot, hole);
            hole = parent.slot;
            idx = node.parent;
        }
        debug_assert!(
            (0..self.hashes.len()).any(|w| self.way_slot(w, addr) == hole),
            "relocation chain must end at a home position of the incoming line"
        );
        self.table.install(hole, addr, part);
        self.walk.clear();
    }

    fn retag(&mut self, slot: SlotId, part: PartitionId) {
        self.table.retag(slot, part);
    }

    fn occupied(&self) -> usize {
        self.table.occupied()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        // `walk` is per-miss scratch (engine snapshots happen between
        // accesses, never mid-miss), so only the table is state.
        w.begin("zcache");
        w.usize(self.sets);
        w.usize(self.hashes.len());
        w.usize(self.r);
        self.table.save_state(w);
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("zcache")?;
        let (sets, ways, cands) = (r.usize()?, r.usize()?, r.usize()?);
        if sets != self.sets || ways != self.hashes.len() || cands != self.r {
            return Err(SnapshotError::mismatch(format!(
                "array is Z(sets={}, ways={}, R={}), snapshot is Z(sets={sets}, ways={ways}, R={cands})",
                self.sets,
                self.hashes.len(),
                self.r
            )));
        }
        self.table.load_state(r)?;
        r.end()?;
        self.walk.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_reaches_r_candidates_when_populated() {
        let mut z = ZCache::new(64, 4, 16, 5);
        // Fill the cache so expansions have occupants to walk through.
        let mut out = Vec::new();
        for addr in 0..(64 * 4) as u64 {
            out.clear();
            z.candidate_slots(addr, &mut out);
            if let Some(&s) = out.iter().find(|&&s| z.occupant(s).is_none()) {
                z.install(s, addr, PartitionId(0));
            }
        }
        out.clear();
        z.candidate_slots(99_999, &mut out);
        assert_eq!(out.len(), 16, "walk should expand to R candidates");
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "candidates must be distinct");
    }

    #[test]
    fn relocation_chain_preserves_residency() {
        let mut z = ZCache::new(32, 4, 12, 6);
        let mut out = Vec::new();
        let mut resident = Vec::new();
        for addr in 0..200u64 {
            out.clear();
            z.candidate_slots(addr, &mut out);
            if let Some(&s) = out.iter().find(|&&s| z.occupant(s).is_none()) {
                z.install(s, addr, PartitionId(0));
                resident.push(addr);
            } else {
                // Evict the deepest candidate to exercise relocation.
                let victim_slot = *out.last().unwrap();
                let victim_addr = z.occupant(victim_slot).unwrap().addr;
                z.evict(victim_slot);
                z.install(victim_slot, addr, PartitionId(0));
                resident.retain(|&a| a != victim_addr);
                resident.push(addr);
            }
            // Every resident line must still be findable.
            for &a in &resident {
                let slot = z.lookup(a).expect("resident line lost");
                assert_eq!(z.occupant(slot).unwrap().addr, a);
            }
        }
        assert_eq!(z.occupied(), resident.len());
    }

    #[test]
    fn level0_eviction_installs_in_place() {
        let mut z = ZCache::new(16, 2, 4, 7);
        let mut out = Vec::new();
        z.candidate_slots(1, &mut out);
        let s = out[0];
        z.install(s, 1, PartitionId(0));
        // Re-walk for a line colliding at the same home position and
        // evict the level-0 candidate: no relocation needed.
        out.clear();
        z.candidate_slots(1, &mut out);
        z.evict(s);
        z.install(s, 1, PartitionId(0));
        assert_eq!(z.lookup(1), Some(s));
    }
}
