//! Fully-associative array: every resident line is a potential victim.
//!
//! There is no finite candidate list; the engine instead asks the
//! futility ranking for the most futile line of the partition chosen by
//! the scheme (see
//! [`PartitionScheme::victim_partition_fully_assoc`](crate::scheme_api::PartitionScheme::victim_partition_fully_assoc)).
//! Used for the paper's *FullAssoc* ideal scheme and the
//! fully-associative side of Figure 6.

use super::{read_free_list, CacheArray, SlotTable};
use crate::ids::{Occupant, PartitionId, SlotId};
use crate::scheme_api::Candidate;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// A fully-associative cache of `num_lines` lines.
pub struct FullyAssociative {
    table: SlotTable,
    free: Vec<SlotId>,
}

impl FullyAssociative {
    /// Create an empty fully-associative array.
    ///
    /// # Panics
    /// Panics if `num_lines == 0`.
    pub fn new(num_lines: usize) -> Self {
        assert!(num_lines > 0);
        FullyAssociative {
            table: SlotTable::new(num_lines),
            free: (0..num_lines as SlotId).rev().collect(),
        }
    }
}

impl CacheArray for FullyAssociative {
    fn name(&self) -> &'static str {
        "fully-assoc"
    }

    fn num_slots(&self) -> usize {
        self.table.len()
    }

    fn candidates_per_eviction(&self) -> usize {
        self.table.len()
    }

    fn lookup(&self, addr: u64) -> Option<SlotId> {
        self.table.lookup(addr)
    }

    fn occupant(&self, slot: SlotId) -> Option<Occupant> {
        self.table.occupant(slot)
    }

    fn candidate_slots(&mut self, _addr: u64, out: &mut Vec<SlotId>) {
        // Only meaningful while there are free slots; once full the
        // engine uses the ranking-driven fully-associative path.
        if let Some(&slot) = self.free.last() {
            out.push(slot);
        }
    }

    fn fill_candidates(&mut self, _addr: u64, _out: &mut Vec<Candidate>) -> Option<SlotId> {
        // A free slot while warming up, nothing once full: the engine's
        // fully-associative path asks the ranking for victims instead of
        // walking a candidate list.
        self.free.last().copied()
    }

    fn lookup_occupant(&self, addr: u64) -> Option<(SlotId, Occupant)> {
        self.table.lookup_occupant(addr)
    }

    fn evict(&mut self, slot: SlotId) {
        self.table.evict(slot);
        self.free.push(slot);
    }

    fn install(&mut self, slot: SlotId, addr: u64, part: PartitionId) {
        if let Some(pos) = self.free.iter().rposition(|&s| s == slot) {
            self.free.swap_remove(pos);
        }
        self.table.install(slot, addr, part);
    }

    fn retag(&mut self, slot: SlotId, part: PartitionId) {
        self.table.retag(slot, part);
    }

    fn is_fully_associative(&self) -> bool {
        true
    }

    fn occupied(&self) -> usize {
        self.table.occupied()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("fully-assoc");
        self.table.save_state(w);
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("fully-assoc")?;
        self.table.load_state(r)?;
        let free = read_free_list(r, &self.table)?;
        r.end()?;
        self.free = free;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_fully_associative() {
        let a = FullyAssociative::new(8);
        assert!(a.is_fully_associative());
        assert_eq!(a.candidates_per_eviction(), 8);
    }

    #[test]
    fn warmup_offers_free_slots() {
        let mut a = FullyAssociative::new(2);
        let mut out = Vec::new();
        a.candidate_slots(1, &mut out);
        assert_eq!(out.len(), 1);
        a.install(out[0], 1, PartitionId(0));
        out.clear();
        a.candidate_slots(2, &mut out);
        assert_eq!(out.len(), 1);
        a.install(out[0], 2, PartitionId(0));
        out.clear();
        a.candidate_slots(3, &mut out);
        assert!(out.is_empty(), "no free slots once full");
        assert_eq!(a.occupied(), 2);
    }

    #[test]
    fn evict_frees_capacity() {
        let mut a = FullyAssociative::new(1);
        a.install(0, 9, PartitionId(0));
        a.evict(0);
        let mut out = Vec::new();
        a.candidate_slots(10, &mut out);
        assert_eq!(out, vec![0]);
    }
}
