//! The futility-ranking interface (Section III-A).
//!
//! A futility ranking "maintains a strict total order of the uselessness
//! of cache lines within each partition". A line ranked `r`-th in a
//! partition of `M` lines has futility `f = r / M ∈ (0, 1]`; the line
//! with `f = 1` is the most useless one and is what a fully-associative
//! cache would evict.
//!
//! Concrete rankings (exact LRU, coarse-grain timestamp LRU, LFU, OPT,
//! Random) live in the `ranking` crate; this module only defines the
//! trait plus a minimal exact-LRU used by doc examples and smoke tests.

use crate::fxmap::FxHashMap;
use crate::ids::{AccessMeta, PartitionId};
use crate::ostree::{OsTreap, RankQuery};
use crate::scheme_api::Candidate;

/// Per-partition futility bookkeeping driven by the simulation engine.
///
/// All methods take the *pool* the line belongs to; pools `0..N` are the
/// application partitions and higher pools are scheme-internal (e.g.
/// Vantage's unmanaged region).
pub trait FutilityRanking: Send {
    /// Short identifier, e.g. `"lru"`, `"opt"`, `"coarse-lru"`.
    fn name(&self) -> &'static str;

    /// (Re)initialize for `pools` pools, dropping all state.
    fn reset(&mut self, pools: usize);

    /// A new line `addr` was inserted into `part` at engine time `time`.
    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, meta: AccessMeta);

    /// Line `addr` in `part` was hit at engine time `time`.
    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, meta: AccessMeta);

    /// Line `addr` was evicted from `part`.
    fn on_evict(&mut self, part: PartitionId, addr: u64);

    /// Line `addr` migrated from pool `from` to pool `to` without leaving
    /// the cache (used by demotion-based schemes such as Vantage).
    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64);

    /// The futility of `addr` within `part`, in `[0, 1]`, as seen by the
    /// replacement scheme. For approximate rankings (coarse-grain
    /// timestamps) this is the approximation the hardware would compute.
    fn futility(&self, part: PartitionId, addr: u64) -> f64;

    /// Fill `futility` for a whole eviction candidate set in one call.
    ///
    /// Semantically identical to calling [`futility`](Self::futility)
    /// per candidate — the default does exactly that — but rankings
    /// override it to amortize work across the `R` candidates: exact
    /// (treap-backed) rankings batch all lookups into one shared tree
    /// descent, coarse rankings collapse the per-call `Option` chains
    /// into a tight loop. Implementations must produce bitwise-identical
    /// values to the scalar path; `&mut self` only licenses reuse of
    /// internal scratch buffers, never observable state changes.
    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        for c in cands {
            c.futility = self.futility(c.part, c.addr);
        }
    }

    /// Whether [`futility`](Self::futility) already equals
    /// [`true_futility`](Self::true_futility) (no approximation). Exact
    /// rankings return `true`, letting the engine reuse the victim's
    /// candidate futility for eviction stats instead of paying a second
    /// ranked lookup.
    fn futility_is_exact(&self) -> bool {
        false
    }

    /// The *exact* normalized rank of `addr` within `part`, used for
    /// measuring associativity distributions. Defaults to
    /// [`futility`](Self::futility); approximate rankings may override it
    /// with a precise shadow rank.
    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.futility(part, addr)
    }

    /// The globally most-futile line of `part`, if the ranking can answer
    /// that (needed only by the idealized fully-associative scheme).
    fn max_futility_line(&self, part: PartitionId) -> Option<u64>;

    /// Number of lines currently tracked in `part`.
    fn pool_len(&self, part: PartitionId) -> usize;
}

/// Minimal exact-LRU ranking built directly on [`OsTreap`]; used by doc
/// examples and as a reference model in tests. The `ranking` crate's
/// `ExactLru` is the full-featured equivalent.
#[derive(Debug, Default)]
pub struct NaiveLru {
    pools: Vec<Pool>,
    scratch: Vec<RankQuery<(u64, u64)>>,
}

#[derive(Debug)]
struct Pool {
    by_time: OsTreap<(u64, u64)>,
    last: FxHashMap<u64, u64>,
}

impl NaiveLru {
    /// Create an empty ranking; pools are sized on
    /// [`reset`](FutilityRanking::reset).
    pub fn new() -> Self {
        NaiveLru::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut Pool {
        let idx = part.index();
        if idx >= self.pools.len() {
            self.pools.resize_with(idx + 1, Pool::default);
        }
        &mut self.pools[idx]
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool {
            by_time: OsTreap::new(0xACE5),
            last: FxHashMap::default(),
        }
    }
}

impl FutilityRanking for NaiveLru {
    fn name(&self) -> &'static str {
        "naive-lru"
    }

    fn reset(&mut self, pools: usize) {
        self.pools.clear();
        self.pools.resize_with(pools, Pool::default);
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        let pool = self.pool_mut(part);
        pool.by_time.insert((time, addr));
        pool.last.insert(addr, time);
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        let pool = self.pool_mut(part);
        if let Some(old) = pool.last.insert(addr, time) {
            pool.by_time.remove(&(old, addr));
        }
        pool.by_time.insert((time, addr));
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        let pool = self.pool_mut(part);
        if let Some(old) = pool.last.remove(&addr) {
            pool.by_time.remove(&(old, addr));
        }
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        let time = {
            let pool = self.pool_mut(from);
            match pool.last.remove(&addr) {
                Some(t) => {
                    pool.by_time.remove(&(t, addr));
                    t
                }
                None => return,
            }
        };
        let pool = self.pool_mut(to);
        pool.by_time.insert((time, addr));
        pool.last.insert(addr, time);
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        let pool = match self.pools.get(part.index()) {
            Some(p) => p,
            None => return 0.0,
        };
        let time = match pool.last.get(&addr) {
            Some(&t) => t,
            None => return 0.0,
        };
        let m = pool.by_time.len();
        if m == 0 {
            return 0.0;
        }
        // rank = number of lines touched longer ago than this one.
        let rank = pool.by_time.rank(&(time, addr));
        (m - rank) as f64 / m as f64
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        self.scratch.clear();
        for (i, c) in cands.iter_mut().enumerate() {
            let time = self
                .pools
                .get(c.part.index())
                .and_then(|p| p.last.get(&c.addr).copied());
            match time {
                Some(t) => self.scratch.push(RankQuery {
                    pool: c.part.index() as u32,
                    key: (t, c.addr),
                    tag: i as u32,
                    rank: 0,
                }),
                None => c.futility = 0.0,
            }
        }
        self.scratch.sort_unstable();
        let mut s = 0;
        while s < self.scratch.len() {
            let pool_idx = self.scratch[s].pool as usize;
            let mut e = s + 1;
            while e < self.scratch.len() && self.scratch[e].pool as usize == pool_idx {
                e += 1;
            }
            let by_time = &self.pools[pool_idx].by_time;
            let m = by_time.len();
            if m == 0 {
                for q in &self.scratch[s..e] {
                    cands[q.tag as usize].futility = 0.0;
                }
            } else {
                by_time.rank_many(&mut self.scratch[s..e]);
                for q in &self.scratch[s..e] {
                    cands[q.tag as usize].futility = (m - q.rank as usize) as f64 / m as f64;
                }
            }
            s = e;
        }
    }

    fn futility_is_exact(&self) -> bool {
        true
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools
            .get(part.index())
            .and_then(|p| p.by_time.min())
            .map(|&(_, addr)| addr)
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.by_time.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);

    #[test]
    fn oldest_line_has_futility_one() {
        let mut r = NaiveLru::new();
        r.reset(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_insert(P, 11, 1, AccessMeta::default());
        r.on_insert(P, 12, 2, AccessMeta::default());
        assert!((r.futility(P, 10) - 1.0).abs() < 1e-12);
        assert!((r.futility(P, 12) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_futility_line(P), Some(10));
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut r = NaiveLru::new();
        r.reset(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_insert(P, 11, 1, AccessMeta::default());
        r.on_hit(P, 10, 2, AccessMeta::default());
        assert_eq!(r.max_futility_line(P), Some(11));
        assert!((r.futility(P, 11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evict_removes_line() {
        let mut r = NaiveLru::new();
        r.reset(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_evict(P, 10);
        assert_eq!(r.pool_len(P), 0);
        assert_eq!(r.futility(P, 10), 0.0);
    }

    #[test]
    fn retag_moves_line_between_pools() {
        let mut r = NaiveLru::new();
        r.reset(2);
        let q = PartitionId(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_retag(P, q, 10);
        assert_eq!(r.pool_len(P), 0);
        assert_eq!(r.pool_len(q), 1);
        assert_eq!(r.max_futility_line(q), Some(10));
    }
}
